# Developer/CI entry points for the DIALITE reproduction.
#
#   make test         tier-1 test suite (the driver's gate)
#   make bench-smoke  table-engine micro-benchmark, smoke mode (fast, JSON out)
#   make bench        full table-engine benchmark incl. the >= 2x acceptance check
#   make ci           what CI runs: tier-1 tests + smoke benchmark

PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test bench bench-smoke ci

test:
	$(PYTHON) -m pytest -x -q

bench-smoke:
	$(PYTHON) benchmarks/bench_table_engine.py --smoke --json .benchmarks/table_engine_smoke.json

bench:
	$(PYTHON) benchmarks/bench_table_engine.py --json .benchmarks/table_engine.json

ci: test bench-smoke
