# Developer/CI entry points for the DIALITE reproduction.
#
#   make test         tier-1 test suite (the driver's gate)
#   make lint         static checks (pyflakes if installed, else compileall)
#   make bench-smoke  table-engine micro-benchmark, smoke mode (fast, JSON out)
#   make bench        full table-engine benchmark incl. the >= 2x acceptance check
#   make bench-store  store warm-start benchmark @1k tables incl. the >= 5x check
#   make ci           what CI runs: tier-1 tests + smoke benchmarks + lint

PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test lint bench bench-smoke bench-store store-smoke ci

test:
	$(PYTHON) -m pytest -x -q

# Prefer pyflakes when it is installed; the fallback is chosen by
# availability, not by exit status, so real pyflakes findings fail the run.
lint:
	@if $(PYTHON) -c "import pyflakes" 2>/dev/null; then \
		$(PYTHON) -m pyflakes src/repro benchmarks tests; \
	else \
		$(PYTHON) -m compileall -q src/repro benchmarks tests; \
	fi

bench-smoke:
	$(PYTHON) benchmarks/bench_table_engine.py --smoke --json .benchmarks/table_engine_smoke.json

bench:
	$(PYTHON) benchmarks/bench_table_engine.py --json .benchmarks/table_engine.json

# Store round-trip smoke: warm results == cold results, zero warm scans,
# timings recorded under .benchmarks/ (no speedup gate at smoke scale).
store-smoke:
	$(PYTHON) benchmarks/bench_store_warmstart.py --smoke --json .benchmarks/store_warmstart.json

bench-store:
	$(PYTHON) benchmarks/bench_store_warmstart.py --check --json .benchmarks/store_warmstart.json

ci: test bench-smoke store-smoke lint
