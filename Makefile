# Developer/CI entry points for the DIALITE reproduction.
#
#   make test         tier-1 test suite (the driver's gate)
#   make lint         static checks (pyflakes if installed, else compileall)
#                     + the no-full-lake-scan guard over discoverer query paths
#   make bench-smoke  table-engine micro-benchmark, smoke mode (fast, JSON out)
#   make bench        full table-engine benchmark incl. the >= 2x acceptance check
#   make bench-store  store warm-start benchmark @1k tables incl. the >= 5x check
#   make bench-candidates  candidate-engine fan-out @2k tables incl. the >= 4x check
#   make candidates-smoke  same suite @300 tables, relaxed gate (runs in CI)
#   make bench-fd     interned FD kernel vs legacy object kernel @8x500 incl. the >= 3x check
#   make fd-smoke     same suite, small scale: identity asserts + JSON, no speed gate (runs in CI)
#   make bench-service  serving layer @400 tables: warm cached+batched >= 3x sequential cold calls
#   make serve-smoke  service smoke: TCP client session (discover/cache/ingest/stats) +
#                     byte-identity + zero-staleness asserts, no speed gate (runs in CI)
#   make bench-segments  segment v2 binary decode @1k tables incl. the >= 2x-over-v1 check
#   make segments-smoke  same suite, tiny scale: cross-format identity + migrate
#                     round trip asserts, no speed gate (runs in CI)
#   make obs-smoke    observability overhead smoke: disabled tracing must cost
#                     <= 8% vs a stubbed-no-op baseline on a warm workload (runs in CI)
#   make obs-export-smoke  telemetry export round trip: registry snapshot ->
#                     prometheus text -> parse -> values match; exporter JSONL
#                     flush + keep-N rotation semantics (runs in CI)
#   make bench-shard  sharded scatter-gather @20k tables x 4 shards: discover p95
#                     >= 2.5x vs the 1-shard pipeline (wall p95 with >= 4 cores,
#                     critical-path CPU p95 on starved hosts), identical top-k
#   make shard-smoke  same suite, small scale: identity + one-shard-rewrite asserts
#                     through the process executor, no speed gate (runs in CI)
#   make bench-chaos  fault-tolerance chaos suite: concurrent discover/ingest
#                     under injected worker kills + connection drops; zero
#                     errors, zero wrong/stale answers vs a per-version
#                     oracle, non-degraded p95 <= 2x the no-fault baseline
#   make chaos-smoke  same suite, small scale + same gates (runs in CI)
#   make ci           what CI runs: tier-1 tests + smoke benchmarks + lint

PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test lint bench bench-smoke bench-store store-smoke bench-candidates candidates-smoke bench-fd fd-smoke bench-service serve-smoke bench-segments segments-smoke obs-smoke obs-export-smoke bench-shard shard-smoke bench-chaos chaos-smoke ci

test:
	$(PYTHON) -m pytest -x -q

# Prefer pyflakes when it is installed; the fallback is chosen by
# availability, not by exit status, so real pyflakes findings fail the run.
# The full-scan guard fails the build if any discoverer's query path
# iterates the raw lake mapping instead of retrieving through the engine;
# the FD hot-path guard fails it if integration hot paths regress to
# per-cell normalized_key round trips instead of cell_key / interned codes;
# the obs span-placement guard fails it if span/record allocation creeps
# into per-row/per-cell loops of the hot modules;
# the fault-site guard fails it if a registered fault point loses its live
# call site or an inject.fire() call appears that the registry doesn't know.
lint:
	@if $(PYTHON) -c "import pyflakes" 2>/dev/null; then \
		$(PYTHON) -m pyflakes src/repro benchmarks tests tools; \
	else \
		$(PYTHON) -m compileall -q src/repro benchmarks tests tools; \
	fi
	$(PYTHON) tools/check_no_full_scan.py
	$(PYTHON) tools/check_fd_hot_paths.py
	$(PYTHON) tools/check_segment_compat.py
	$(PYTHON) tools/check_obs_spans.py
	$(PYTHON) tools/check_fault_sites.py

bench-smoke:
	$(PYTHON) benchmarks/bench_table_engine.py --smoke --json .benchmarks/table_engine_smoke.json

bench:
	$(PYTHON) benchmarks/bench_table_engine.py --json .benchmarks/table_engine.json

# Store round-trip smoke: warm results == cold results, zero warm scans,
# timings recorded under .benchmarks/ (no speedup gate at smoke scale).
store-smoke:
	$(PYTHON) benchmarks/bench_store_warmstart.py --smoke --json .benchmarks/store_warmstart.json

bench-store:
	$(PYTHON) benchmarks/bench_store_warmstart.py --check --json .benchmarks/store_warmstart.json

# Candidate-engine smoke: engine fan-out == full-scan results, warm
# postings load with zero rebuild.  Unlike the other smokes this one
# keeps --check (ISSUE 3 requires the CI smoke to assert the speedup
# gate); the gate is relaxed to 1.5x (measured ~2.5x) to absorb CI
# timing jitter -- the correctness assertions run regardless.
candidates-smoke:
	$(PYTHON) benchmarks/bench_candidates.py --smoke --check --json .benchmarks/candidates.json

bench-candidates:
	$(PYTHON) benchmarks/bench_candidates.py --check --json .benchmarks/candidates.json

# FD kernel smoke: interned kernel output is asserted cell/provenance/
# null-kind/row-order identical to the legacy object kernel; timings land
# in .benchmarks/ but the >= 3x gate only runs at full scale (bench-fd),
# where the measurement is not jitter-dominated.
fd-smoke:
	$(PYTHON) benchmarks/bench_fd_kernel.py --smoke --json .benchmarks/fd_kernel.json

bench-fd:
	$(PYTHON) benchmarks/bench_fd_kernel.py --check --json .benchmarks/fd_kernel.json

# Serving-layer smoke: an end-to-end TCP client session (discover, cache
# hit, ingest + re-query at the new version, stats counters) plus the
# byte-identity and zero-staleness assertions at small scale; the >= 3x
# throughput gate only runs at full scale (bench-service), where the
# cold-open baseline is not jitter-dominated.
serve-smoke:
	$(PYTHON) benchmarks/bench_service.py --smoke --json .benchmarks/service.json

bench-service:
	$(PYTHON) benchmarks/bench_service.py --check --json .benchmarks/service.json

# Segment-format smoke: v1 and v2 stores over the same lake decode to
# identical cells, migration rewrites every segment, and discovery is
# format-blind; the >= 2x decode gate only runs at full scale
# (bench-segments), on the decode-dominated 1k x 512 categorical lake.
segments-smoke:
	$(PYTHON) benchmarks/bench_segments.py --smoke --json .benchmarks/segments.json

bench-segments:
	$(PYTHON) benchmarks/bench_segments.py --check --json .benchmarks/segments.json

# Observability overhead smoke: the disabled-tracing pipeline vs the same
# pipeline with repro.obs entry points stubbed to bare no-ops, scored as
# the median of paired CPU-time ratios (noise-hardened for shared hosts);
# fails if the shipped instrumentation costs more than 8% (measured ~0-3%).
obs-smoke:
	$(PYTHON) tools/check_obs_overhead.py

# Telemetry export smoke: a populated registry rendered to Prometheus
# text and parsed back must match value-for-value (counters, gauges,
# histogram sums and cumulative buckets); also pins the exporter's JSONL
# flush envelope and rotate_file's keep-N semantics.
obs-export-smoke:
	$(PYTHON) tools/check_obs_export.py

# Sharded-lake smoke: 4-shard process-executor scatter-gather answers are
# asserted identical to the 1-shard pipeline, and a single-table ingest
# must bump exactly one shard version; the >= 2.5x p95 gate only runs at
# full scale (bench-shard), where per-query work dwarfs the fan-out IPC.
shard-smoke:
	$(PYTHON) benchmarks/bench_shard.py --smoke --json .benchmarks/shard.json

bench-shard:
	$(PYTHON) benchmarks/bench_shard.py --check --json .benchmarks/shard.json

# Chaos smoke: a live 4-shard service under concurrent discovers + ingests
# with injected worker kills and client connection drops.  Unlike the other
# smokes the gates run at every scale (they are correctness gates, not
# speed gates): every request completes (retried or annotated-degraded),
# zero wrong/stale answers vs a per-lake-version oracle, and non-degraded
# p95 stays within 2x the no-fault baseline measured in the same run.
chaos-smoke:
	$(PYTHON) benchmarks/bench_chaos.py --smoke --check --json .benchmarks/chaos.json

bench-chaos:
	$(PYTHON) benchmarks/bench_chaos.py --check --json .benchmarks/chaos.json

ci: test bench-smoke store-smoke candidates-smoke fd-smoke serve-smoke segments-smoke obs-smoke obs-export-smoke shard-smoke chaos-smoke lint
