#!/usr/bin/env python
"""CI smoke: the telemetry export round trip must be lossless.

Exercises the full `repro obs export` data path without a server:

1. populate a fresh ``MetricsRegistry`` with known counters, gauges and
   histogram observations;
2. render its snapshot with ``prometheus_text`` and parse it back with
   ``parse_prometheus_text``;
3. assert every parsed value matches the registry exactly (counters,
   gauges, histogram sum/count, and cumulative bucket counts);
4. run a ``TelemetryExporter`` flush cycle (metrics document + queued
   trace) against a temp file and verify the JSONL documents round-trip
   through ``json.loads`` with identity attached;
5. verify ``rotate_file`` keep-N semantics on an oversized sink.

Fails loudly (exit 1) on the first mismatch.
"""

from __future__ import annotations

import json
import sys
import tempfile
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.obs.export import (  # noqa: E402
    TelemetryExporter,
    parse_prometheus_text,
    prometheus_text,
    rotate_file,
    snapshot_identity,
)
from repro.obs.metrics import MetricsRegistry  # noqa: E402


def fail(message: str) -> None:
    print(f"obs export smoke FAILED: {message}")
    sys.exit(1)


def check_prometheus_round_trip() -> None:
    registry = MetricsRegistry()
    registry.counter("service.requests").inc(41)
    registry.counter("shard.scatter.failures").inc(3)
    registry.gauge("cache.entries").set(17.5)
    latency = registry.histogram("service.latency.discover")
    for value in (0.4, 3.0, 12.0, 48.0, 950.0):
        latency.observe_ms(value)
    snapshot = registry.snapshot()

    text = prometheus_text(snapshot)
    parsed = parse_prometheus_text(text)

    if parsed.get("repro_service_requests") != 41:
        fail(f"counter mismatch: {parsed.get('repro_service_requests')!r} != 41")
    if parsed.get("repro_shard_scatter_failures") != 3:
        fail("counter shard.scatter.failures did not survive")
    if parsed.get("repro_cache_entries") != 17.5:
        fail(f"gauge mismatch: {parsed.get('repro_cache_entries')!r} != 17.5")

    hist = snapshot["histograms"]["service.latency.discover"]
    if parsed.get("repro_service_latency_discover_count") != hist["count"]:
        fail("histogram count mismatch")
    if abs(parsed.get("repro_service_latency_discover_sum", -1) - hist["sum"]) > 1e-6:
        fail("histogram sum mismatch")
    buckets = parsed.get("repro_service_latency_discover_bucket") or {}
    cumulative = 0
    for bound, count in hist["buckets"].items():
        cumulative += count
        le = "+Inf" if bound == "+inf" else f"{float(bound):g}"
        key = f'le="{le}"'
        if buckets.get(key) != cumulative:
            fail(
                f"bucket {key}: parsed {buckets.get(key)!r}, "
                f"registry cumulative {cumulative}"
            )
    if buckets.get('le="+Inf"') != hist["count"]:
        fail("+Inf bucket must equal the observation count")
    print(
        f"  prometheus round trip ok: {len(parsed)} metric families, "
        f"{len(buckets)} latency buckets, values match registry"
    )


def check_exporter_flush(base: Path) -> None:
    registry = MetricsRegistry()
    registry.counter("demo.flushes").inc(7)
    sink = base / "telemetry.jsonl"
    exporter = TelemetryExporter(
        sink,
        interval_s=3600.0,  # flushed explicitly; the thread never fires
        identity=snapshot_identity("smoke"),
        registries=[registry.snapshot],
    )
    exporter.offer_trace(
        {"name": "client.discover", "wall_ms": 1.0, "trace_id": "abc123"},
        summary={"op": "discover", "latency_ms": 1.0},
    )
    written = exporter.flush()
    exporter.close()
    lines = [json.loads(l) for l in sink.read_text(encoding="utf-8").splitlines()]
    if written < 2 or len(lines) < 2:
        fail(f"expected >=2 exported documents, got {len(lines)}")
    kinds = {doc["kind"] for doc in lines}
    if not {"metrics", "trace"} <= kinds:
        fail(f"expected metrics+trace documents, got kinds {sorted(kinds)}")
    metrics_doc = next(doc for doc in lines if doc["kind"] == "metrics")
    if metrics_doc["metrics"]["counters"].get("demo.flushes") != 7:
        fail("exported metrics document lost the counter value")
    if metrics_doc["identity"].get("role") != "smoke":
        fail("exported metrics document lost its identity")
    trace_doc = next(doc for doc in lines if doc["kind"] == "trace")
    if trace_doc["trace"].get("trace_id") != "abc123":
        fail("exported trace document lost its trace_id")
    print(f"  exporter flush ok: {len(lines)} JSONL documents, identity attached")


def check_rotation(base: Path) -> None:
    sink = base / "rotating.jsonl"
    for round_ in range(4):
        sink.write_text("x" * 128, encoding="utf-8")
        rotate_file(sink, max_bytes=64, keep=2)
    backups = sorted(p.name for p in base.glob("rotating.jsonl.*"))
    if backups != ["rotating.jsonl.1", "rotating.jsonl.2"]:
        fail(f"keep-2 rotation left {backups}")
    if sink.exists():
        fail("rotate_file must move the live file aside")
    print(f"  rotation ok: keep-2 held {backups}, oldest dropped")


def main() -> int:
    print("obs export smoke:")
    check_prometheus_round_trip()
    with tempfile.TemporaryDirectory(prefix="repro-obs-export-") as tmp:
        base = Path(tmp)
        check_exporter_flush(base)
        check_rotation(base)
    print("obs export smoke ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
