#!/usr/bin/env python
"""CI guard: the fault-injection registry and the code stay in sync.

The chaos harness and the crash-recovery property tests are only as
strong as the fault plane's coverage: a fault point that no longer maps
to a real call site silently stops being exercised (the tests arm it,
nothing fires, nothing is asserted), and a ``inject.fire(...)`` call
whose name is not registered raises ``KeyError`` in *production* the
first time injection is enabled.

Both directions are checked against
:data:`repro.faults.inject.FAULT_POINTS`:

* **registry -> code**: every registered point's file must contain its
  call-site marker -- ``inject.fire("<point>"`` by default, or the
  explicit token recorded in the registry for points that trigger
  through another mechanism (the worker-kill handshake);
* **code -> registry**: every ``inject.fire("...")`` literal anywhere in
  ``src/repro`` must name a registered point, and must live in the file
  the registry says it does.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src" / "repro"
sys.path.insert(0, str(REPO / "src"))

from repro.faults.inject import FAULT_POINTS  # noqa: E402

_FIRE = re.compile(r"""inject\.fire\(\s*["']([^"']+)["']""")


def check() -> list[str]:
    problems: list[str] = []

    # registry -> code
    for point, (relpath, token) in sorted(FAULT_POINTS.items()):
        path = SRC / relpath
        if not path.exists():
            problems.append(f"{point}: registered file {relpath} does not exist")
            continue
        source = path.read_text(encoding="utf-8")
        marker = token if token is not None else f'inject.fire("{point}"'
        if marker not in source:
            problems.append(
                f"{point}: no call site in {relpath} (expected {marker!r})"
            )

    # code -> registry.  The faults package itself is exempt: it is the
    # definition site, and its docstrings show fire() calls as examples.
    by_file: dict[str, list[str]] = {}
    for path in sorted(SRC.rglob("*.py")):
        rel = path.relative_to(SRC).as_posix()
        if rel.startswith("faults/"):
            continue
        for match in _FIRE.finditer(path.read_text(encoding="utf-8")):
            by_file.setdefault(match.group(1), []).append(rel)
    for point, files in sorted(by_file.items()):
        if point not in FAULT_POINTS:
            problems.append(
                f"{point}: fired in {', '.join(files)} but not registered "
                f"in repro.faults.inject.FAULT_POINTS"
            )
            continue
        registered = FAULT_POINTS[point][0]
        for rel in files:
            if rel != registered:
                problems.append(
                    f"{point}: fired in {rel} but registered for {registered}"
                )
    return problems


def main() -> int:
    problems = check()
    if problems:
        print("fault-site guard FAILED:")
        for problem in problems:
            print(f"  {problem}")
        return 1
    print(
        f"fault-site guard ok: {len(FAULT_POINTS)} registered fault points "
        f"all map to live call sites, and every inject.fire() call is "
        f"registered"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
