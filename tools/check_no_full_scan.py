#!/usr/bin/env python
"""CI guard: discoverer query paths must retrieve through the engine.

The sublinear-query-path refactor (ISSUE 3) moved every discoverer onto
the two-phase contract: retrieval via the shared
:class:`repro.candidates.CandidateEngine`, scoring over the retrieved
candidate set only.  This check fails the build if code in
``repro.discovery`` regresses to iterating the raw lake mapping --
``self._lake.items()``, ``for name in self._lake``,
``self._lake.values()`` and friends -- which would silently restore
O(lake) per-query cost.

Every function and method in the package is checked, so moving a lake
walk into a helper does not evade the guard.  The only exemptions are
the *fit-time* lifecycle methods, where a full pass over the lake is the
point (index construction is the offline step): ``fit``,
``_build_index``, ``rebind_lake``, ``bind_engine``, ``__getstate__``,
and the KB synthesis that runs inside SANTOS's fit.

Subscript access (``self._lake[name]``) stays legal everywhere: scoring
a retrieved candidate's cells is exactly what the candidate set
licenses.

The sharded-lake layer (ISSUE 8) is held to the same bar: the
scatter-gather *query* path (``ShardedLakeIndex.search`` and the worker
round functions) must never walk a lake mapping -- each shard retrieves
through its own engine and the reducer merges.  Its exemptions are the
write/build-side lifecycle where routing or (re)indexing a full lake is
the point.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

SRC = Path(__file__).resolve().parent.parent / "src" / "repro"

#: Fit-time / lifecycle functions where a full lake pass is legitimate,
#: in discoverer code.
FIT_TIME = {
    "fit",
    "_build_index",
    "rebind_lake",
    "bind_engine",
    "__getstate__",
    "synthesize_from_tables",  # KB minting, runs inside SANTOS's fit
    "evaluate_discoverer",     # offline benchmark metric, fits then searches
}

#: Ingest/build-side lifecycle in repro.shard where routing or indexing
#: the whole lake is the operation itself (never on the query path).
SHARD_FIT_TIME = {
    "ingest",             # routes every table to its home shard
    "build",              # offline index construction, one pass per shard
    "rebalance",          # full rewrite under a new routing rule
    "_hydrate",           # warm-start refit of stale shards
    "_compute_fit_state",  # lake-global KB/IDF products, computed at build
}

CHECKED_DIRS = (
    (SRC / "discovery", FIT_TIME),
    (SRC / "shard", SHARD_FIT_TIME),
)

#: Names that refer to the lake mapping inside discoverer code.
LAKE_NAMES = {"lake", "_lake"}


def _is_lake_expr(node: ast.AST) -> bool:
    """``lake`` / ``self._lake`` (any attribute chain ending in a lake name)."""
    if isinstance(node, ast.Name):
        return node.id in LAKE_NAMES
    if isinstance(node, ast.Attribute):
        return node.attr in LAKE_NAMES
    return False


def check_file(path: Path, exemptions: set[str]) -> list[str]:
    tree = ast.parse(path.read_text(encoding="utf-8"))
    violations = []
    for node in ast.walk(tree):
        if (
            isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
            and node.name not in exemptions
        ):
            # Nested defs are reached through ast.walk on the module, so
            # a lake walk inside a closure is still caught (attributed to
            # the innermost function).
            violations.extend(_violations_in_own_body(node, path))
    return violations


def _violations_in_own_body(function: ast.FunctionDef, path: Path) -> list[str]:
    """Violations in *function* excluding its nested defs (each nested
    def is visited separately, under its own exemption decision)."""

    class Collector(ast.NodeVisitor):
        def __init__(self) -> None:
            self.nodes: list[ast.AST] = []

        def generic_visit(self, node: ast.AST) -> None:
            if node is not function and isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                return  # nested def: handled on its own walk
            self.nodes.append(node)
            super().generic_visit(node)

    collector = Collector()
    collector.visit(function)
    found = []

    def flag(node: ast.AST, what: str) -> None:
        found.append(
            f"{path.name}:{node.lineno}: {function.name}() {what} -- "
            f"query paths must go through the CandidateEngine"
        )

    for node in collector.nodes:
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in ("items", "values", "keys")
            and _is_lake_expr(node.func.value)
        ):
            flag(node, f"calls lake.{node.func.attr}()")
        if isinstance(node, (ast.For, ast.comprehension)):
            if _is_lake_expr(node.iter):
                flag(node if isinstance(node, ast.For) else node.iter, "iterates the lake mapping")
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in ("dict", "list", "set", "sorted", "tuple")
            and node.args
            and _is_lake_expr(node.args[0])
        ):
            flag(node, f"materializes the lake via {node.func.id}()")
    return found


def main() -> int:
    violations: list[str] = []
    checked = 0
    for directory, exemptions in CHECKED_DIRS:
        for path in sorted(directory.glob("*.py")):
            violations.extend(check_file(path, exemptions))
            checked += 1
    if violations:
        print("full-lake-scan guard FAILED:")
        for violation in violations:
            print(f"  {violation}")
        return 1
    packages = " + ".join(f"repro.{d.name}" for d, _ in CHECKED_DIRS)
    print(
        f"full-lake-scan guard ok: no non-fit-time code in {packages} "
        f"iterates the raw lake ({checked} modules checked)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
