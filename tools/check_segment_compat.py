#!/usr/bin/env python
"""CI guard: the v1 segment path must not fall behind the v2 writer.

Two stores can hold the same lake in different segment encodings (v1
JSONL, v2 binary columnar), and ``LakeStore.migrate`` rewrites between
them in either direction.  That contract silently breaks if someone
adds a field to the v2 writer's manifest entries (or a cell shape to
the v2 codec) without teaching the v1 path the same trick: migration
v2 -> v1 would then *lose* data while every test that only exercises
one format stays green.

This guard ingests one adversarial lake -- every cell shape the codec
distinguishes (bools, huge ints, NaN / -0.0 / infinities, unicode,
empty strings, MISSING and PRODUCED nulls), plus an empty table and a
single-cell table -- once per format, and fails the build unless:

* both writers emit manifest entries with the **same key set** and the
  same values for every format-independent key (hash, columns, stats,
  row count);
* both readers reconstruct **bit-identical cells** (type-exact;
  floats compared by IEEE bit pattern so NaN and -0.0 survive);
* migrating each store to the *other* format round-trips to the same
  cells and the same content hashes in both directions.
"""

from __future__ import annotations

import json
import shutil
import struct
import sys
import tempfile
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.datalake import DataLake  # noqa: E402
from repro.store import LakeStore  # noqa: E402
from repro.table import MISSING, PRODUCED, Table  # noqa: E402

#: Manifest-entry keys whose values legitimately differ across formats.
FORMAT_DEPENDENT_KEYS = {"segment", "segment_format", "column_offsets"}


def adversarial_lake() -> DataLake:
    cells = Table(
        ["flags", "ints", "floats", "strings", "nulls"],
        [
            (True, 2**80, float("nan"), "héllo", MISSING),
            (False, -(2**80), -0.0, "日本語", PRODUCED),
            (True, 0, float("inf"), "", MISSING),
            (False, -1, float("-inf"), "plain", "not-null"),
            (True, 2**53 + 1, 1e308, "a" * 300, PRODUCED),
        ],
        name="cells",
    )
    single = Table(["only"], [(MISSING,)], name="single")
    empty = Table(["a", "b"], [], name="empty")
    return DataLake([cells, single, empty])


def bits(cell):
    """A comparison key under which NaN == NaN and -0.0 != 0.0."""
    if type(cell) is float:
        return ("f", struct.pack("<d", cell))
    return (type(cell).__name__, cell)


def table_bits(table: Table):
    return [tuple(bits(c) for c in row) for row in table.rows]


def entry_views(store_dir: Path) -> dict:
    """The raw on-disk manifest entries -- the actual format contract."""
    manifest = json.loads((store_dir / "manifest.json").read_text("utf-8"))
    return manifest["tables"]


def check() -> list[str]:
    problems: list[str] = []
    lake = adversarial_lake()
    base = Path(tempfile.mkdtemp(prefix="segment_compat_"))
    try:
        stores = {}
        for fmt in ("v1", "v2"):
            store = LakeStore.create(base / f"{fmt}.store", segment_format=fmt)
            store.ingest(lake)
            stores[fmt] = store

        views = {fmt: entry_views(base / f"{fmt}.store") for fmt in stores}
        for name in lake.names:
            e1, e2 = views["v1"][name], views["v2"][name]
            missing = set(e2) - set(e1)
            extra = set(e1) - set(e2)
            if missing:
                problems.append(
                    f"{name}: v1 writer lost manifest fields the v2 writer "
                    f"emits: {sorted(missing)}"
                )
            if extra:
                problems.append(
                    f"{name}: v1 writer emits fields unknown to v2: "
                    f"{sorted(extra)}"
                )
            for key in (set(e1) & set(e2)) - FORMAT_DEPENDENT_KEYS:
                if e1[key] != e2[key]:
                    problems.append(
                        f"{name}: manifest field {key!r} differs across "
                        f"formats: {e1[key]!r} != {e2[key]!r}"
                    )
            t1 = stores["v1"].load_table(name)
            t2 = stores["v2"].load_table(name)
            if t1.columns != t2.columns:
                problems.append(f"{name}: column names differ across formats")
            elif table_bits(t1) != table_bits(t2):
                problems.append(
                    f"{name}: cells are not bit-identical across formats"
                )

        # Migration both ways: cells and hashes survive the round trip.
        for source_fmt, target_fmt in (("v1", "v2"), ("v2", "v1")):
            copy_dir = base / f"{source_fmt}_to_{target_fmt}.store"
            shutil.copytree(base / f"{source_fmt}.store", copy_dir)
            migrated = LakeStore.open(copy_dir, check_sketch=False)
            migrated.migrate(segment_format=target_fmt)
            target_views = views[target_fmt]
            for name, entry in entry_views(copy_dir).items():
                target = target_views[name]
                for key in set(entry) | set(target):
                    if key in FORMAT_DEPENDENT_KEYS:
                        continue
                    if entry.get(key) != target.get(key):
                        problems.append(
                            f"{name}: migrate {source_fmt}->{target_fmt} "
                            f"changed manifest field {key!r}"
                        )
                before = stores[source_fmt].load_table(name)
                after = migrated.load_table(name)
                if table_bits(before) != table_bits(after):
                    problems.append(
                        f"{name}: migrate {source_fmt}->{target_fmt} changed "
                        f"cell bits"
                    )
    finally:
        shutil.rmtree(base, ignore_errors=True)
    return problems


def main() -> int:
    problems = check()
    if problems:
        print("segment compatibility guard FAILED:")
        for problem in problems:
            print(f"  {problem}")
        return 1
    print(
        "segment compatibility guard ok: v1 and v2 writers agree on manifest "
        "fields, cells are bit-identical, migration round-trips both ways"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
