#!/usr/bin/env python
"""CI guard: observability must stay out of per-row/per-cell loops.

The tracing design (``repro.obs``) keeps hot kernels measurable without
slowing them down: phase totals are accumulated with plain
``perf_counter()`` arithmetic inside the loop and attached to the span
tree *once* afterwards via ``Tracer.record``, and metrics are observed
once per probe/solve, never per entry.  A ``span(...)`` (or
``record(...)``) call lexically inside a ``for``/``while`` body in a hot
module would allocate a span object and take the tracer lock on every
iteration -- exactly the overhead the no-op recorder exists to avoid.

This check fails the build if any call named ``span`` or ``record``
(bare or attribute form: ``trace.span``, ``tracer.span``,
``tracer.record``) appears inside a loop in the hot modules below.
Calls before/after loops, and in cold modules (service, pipeline,
discovery, aligner), stay legal: one span per request stage is the
intended grain.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

SRC = Path(__file__).resolve().parent.parent / "src" / "repro"

#: Modules whose loops run per tuple, per cell or per posting entry --
#: plus the telemetry plane itself (exporter flush / recorder ring / SLO
#: windows), which must never open spans in its own loops: telemetry
#: observing telemetry is exactly the recursion the discipline forbids.
HOT_MODULES = (
    "integration/intern.py",
    "integration/vectorized.py",
    "candidates/postings.py",
    "store/codec.py",
    "obs/export.py",
    "obs/recorder.py",
    "obs/slo.py",
)

_FLAGGED = {"span", "record"}


def _call_name(node: ast.Call) -> str | None:
    if isinstance(node.func, ast.Name):
        return node.func.id
    if isinstance(node.func, ast.Attribute):
        return node.func.attr
    return None


def check_file(path: Path) -> list[str]:
    tree = ast.parse(path.read_text(encoding="utf-8"))
    violations: list[str] = []

    def visit(node: ast.AST, in_loop: bool) -> None:
        if isinstance(node, ast.Call) and _call_name(node) in _FLAGGED and in_loop:
            violations.append(
                f"{path.relative_to(SRC)}:{node.lineno}: "
                f"{_call_name(node)}(...) inside a loop -- accumulate with "
                f"perf_counter() and attach once via Tracer.record after the loop"
            )
        for child in ast.iter_child_nodes(node):
            visit(child, in_loop or isinstance(node, (ast.For, ast.While)))

    visit(tree, False)
    return violations


def main() -> int:
    violations: list[str] = []
    for name in HOT_MODULES:
        violations.extend(check_file(SRC / name))
    if violations:
        print("obs span-placement guard FAILED:")
        for violation in violations:
            print(f"  {violation}")
        return 1
    print(
        f"obs span-placement guard ok: no span/record allocation inside "
        f"loops across {len(HOT_MODULES)} hot modules"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
