#!/usr/bin/env python
"""CI smoke: disabled tracing must stay cheap vs a fully stubbed baseline.

The observability layer's contract (ISSUE 7) is that when no tracer is
ambient, instrumentation reduces to one ``threading.local`` read per
``trace.span`` call (returning the shared no-op span) and one lock-free
counter bump per metrics call.  This tool measures that contract instead
of trusting it:

* **shipped** -- the pipeline exactly as deployed, tracing disabled
  (no ambient tracer, no trace sink);
* **stubbed** -- the same pipeline with ``repro.obs.trace`` /
  ``repro.obs.metrics`` module entry points monkeypatched to bare
  no-ops, which is the closest runnable approximation of "the
  instrumentation was never written".

Every call site imports the *modules* (``from ..obs import metrics,
trace``) and resolves ``trace.span`` / ``metrics.counter`` at call time
-- the convention exists precisely so this tool can swap the functions
globally without touching call sites.

Both variants run the same warm workload (discover over a synthetic
lake + an ALITE FD integrate).  Measurement is noise-hardened for
shared/starved CI hosts:

* ``time.process_time`` (own-CPU seconds) instead of wall clock -- the
  workload is single-threaded pure compute, and wall clock on a
  timesharing host mostly measures when the scheduler deschedules the
  process (tens of percent of swing run to run);
* paired back-to-back samples, alternating which arm goes first, scored
  as the **median of per-pair ratios** -- slow multiplicative drift
  (thermal/frequency state) hits both arms of a pair roughly equally
  and cancels in the ratio, and the median sheds the outlier pairs a
  busy host still produces;
* GC disabled during timing (collected between timed regions) so a
  cycle cannot land inside one arm only.

Even so, a single ~25ms CPU-time sample on a noisy shared host swings
several percent, so the threshold (default 8%) is set to what the
measurement can actually resolve: the regression this smoke exists to
catch is span/record allocation creeping into per-row hot loops, which
shows up as tens of percent, not single digits.  Measured steady-state
overhead is ~0-3%.  Fails (exit 1) if the median shipped/stubbed ratio
exceeds ``1 + --threshold``.
"""

from __future__ import annotations

import argparse
import gc
import random
import sys
import time
from statistics import median
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core.pipeline import Dialite  # noqa: E402
from repro.datalake.catalog import DataLake  # noqa: E402
from repro.obs import metrics, trace  # noqa: E402
from repro.table.table import Table  # noqa: E402


# ----------------------------------------------------------------------
# The stubbed baseline: repro.obs entry points as bare no-ops
# ----------------------------------------------------------------------
class _StubSpan:
    """Accepts the whole Span surface and does nothing."""

    counters: dict = {}
    wall_s = 0.0

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False

    def add(self, **counters):
        pass

    def child(self, name):
        return None


_STUB_SPAN = _StubSpan()


class _StubTracer:
    root = None
    current = None

    def __init__(self, *args, **kwargs):
        pass

    def span(self, name, **counters):
        return _STUB_SPAN

    def record(self, name, wall_s=0.0, cpu_s=None, **counters):
        pass

    def to_dict(self):
        return {}


class _StubInstrument:
    def inc(self, amount=1):
        pass

    def set(self, value):
        pass

    def add(self, amount):
        pass

    def observe(self, value):
        pass

    def observe_ms(self, value):
        pass

    def observe_seconds(self, value):
        pass


_STUB_INSTRUMENT = _StubInstrument()

_TRACE_PATCH = {
    "span": lambda name, **counters: _STUB_SPAN,
    "record": lambda name, wall_s=0.0, cpu_s=None, **counters: None,
    "current_tracer": lambda: None,
    "Tracer": _StubTracer,
}
_METRICS_PATCH = {
    "counter": lambda name: _STUB_INSTRUMENT,
    "gauge": lambda name: _STUB_INSTRUMENT,
    "histogram": lambda name, buckets=None: _STUB_INSTRUMENT,
}


class _stubbed_obs:
    """Swap the obs entry points for no-ops; restore on exit."""

    def __enter__(self):
        self._saved = (
            {k: getattr(trace, k) for k in _TRACE_PATCH},
            {k: getattr(metrics, k) for k in _METRICS_PATCH},
        )
        for key, value in _TRACE_PATCH.items():
            setattr(trace, key, value)
        for key, value in _METRICS_PATCH.items():
            setattr(metrics, key, value)
        return self

    def __exit__(self, *exc):
        saved_trace, saved_metrics = self._saved
        for key, value in saved_trace.items():
            setattr(trace, key, value)
        for key, value in saved_metrics.items():
            setattr(metrics, key, value)
        return False


# ----------------------------------------------------------------------
# Workload: warm discover + integrate over a synthetic lake
# ----------------------------------------------------------------------
def build_lake(num_tables: int, rows: int, seed: int = 7) -> DataLake:
    rng = random.Random(seed)
    vocab = [f"ent{v:04d}" for v in range(num_tables * 4)]
    lake = DataLake()
    for t in range(num_tables):
        key_col = [rng.choice(vocab) for _ in range(rows)]
        rows_out = [
            (key_col[r], f"x{rng.randrange(1000)}", f"y{rng.randrange(50)}")
            for r in range(rows)
        ]
        lake.add(Table(["Entity", f"Attr{t % 5}", "Group"], rows_out, name=f"t{t:03d}"))
    return lake


def build_workload(num_tables: int = 48, rows: int = 24, queries: int = 4):
    lake = build_lake(num_tables, rows)
    pipeline = Dialite(lake).fit()
    rng = random.Random(13)
    vocab = [f"ent{v:04d}" for v in range(num_tables * 4)]
    query_tables = [
        Table(
            ["Entity"],
            [(rng.choice(vocab),) for _ in range(8)],
            name=f"q{i}",
        )
        for i in range(queries)
    ]

    def workload() -> None:
        for query in query_tables:
            outcome = pipeline.discover(query, k=4, query_column="Entity")
            pipeline.integrate(outcome.integration_set[:4])

    return workload


def measure(workload, runs: int) -> tuple[float, float, float]:
    """``runs`` paired samples -> (median shipped/stubbed ratio, and the
    two arms' median CPU seconds for the report line)."""
    shipped = []
    stubbed = []

    def run_shipped() -> float:
        gc.collect()
        start = time.process_time()
        workload()
        return time.process_time() - start

    def run_stubbed() -> float:
        with _stubbed_obs():
            gc.collect()
            start = time.process_time()
            workload()
            return time.process_time() - start

    gc.disable()
    try:
        for i in range(runs):
            if i % 2:
                b = run_stubbed()
                a = run_shipped()
            else:
                a = run_shipped()
                b = run_stubbed()
            shipped.append(a)
            stubbed.append(b)
    finally:
        gc.enable()
    ratios = [a / b for a, b in zip(shipped, stubbed)]
    return median(ratios), median(shipped), median(stubbed)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--runs", type=int, default=50, help="paired repetitions")
    parser.add_argument(
        "--threshold", type=float, default=0.08,
        help="max allowed median shipped/stubbed ratio - 1 (default 0.08)",
    )
    args = parser.parse_args()

    workload = build_workload()
    workload()  # warm both code paths and every lazy cache before timing
    with _stubbed_obs():
        workload()

    ratio, shipped_s, stubbed_s = measure(workload, args.runs)
    overhead = ratio - 1.0
    print(
        f"obs overhead smoke: shipped {shipped_s * 1000:.1f}ms, "
        f"stubbed baseline {stubbed_s * 1000:.1f}ms, "
        f"overhead {overhead * 100:+.2f}% (threshold {args.threshold * 100:.0f}%, "
        f"median of {args.runs} paired run ratios)"
    )
    if overhead > args.threshold:
        print("obs overhead smoke FAILED: disabled tracing is not cheap enough")
        return 1
    print("obs overhead smoke ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
