#!/usr/bin/env python
"""CI smoke: disabled tracing must cost <= 3% over a fully stubbed baseline.

The observability layer's contract (ISSUE 7) is that when no tracer is
ambient, instrumentation reduces to one ``threading.local`` read per
``trace.span`` call (returning the shared no-op span) and one lock-free
counter bump per metrics call.  This tool measures that contract instead
of trusting it:

* **shipped** -- the pipeline exactly as deployed, tracing disabled
  (no ambient tracer, no trace sink);
* **stubbed** -- the same pipeline with ``repro.obs.trace`` /
  ``repro.obs.metrics`` module entry points monkeypatched to bare
  no-ops, which is the closest runnable approximation of "the
  instrumentation was never written".

Every call site imports the *modules* (``from ..obs import metrics,
trace``) and resolves ``trace.span`` / ``metrics.counter`` at call time
-- the convention exists precisely so this tool can swap the functions
globally without touching call sites.

Both variants run the same warm workload (discover over a synthetic
lake + an ALITE FD integrate), interleaved min-of-N to shed scheduler
noise.  Fails (exit 1) if shipped exceeds stubbed by more than
``--threshold`` (default 3%).
"""

from __future__ import annotations

import argparse
import random
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core.pipeline import Dialite  # noqa: E402
from repro.datalake.catalog import DataLake  # noqa: E402
from repro.obs import metrics, trace  # noqa: E402
from repro.table.table import Table  # noqa: E402


# ----------------------------------------------------------------------
# The stubbed baseline: repro.obs entry points as bare no-ops
# ----------------------------------------------------------------------
class _StubSpan:
    """Accepts the whole Span surface and does nothing."""

    counters: dict = {}
    wall_s = 0.0

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False

    def add(self, **counters):
        pass

    def child(self, name):
        return None


_STUB_SPAN = _StubSpan()


class _StubTracer:
    root = None
    current = None

    def __init__(self, *args, **kwargs):
        pass

    def span(self, name, **counters):
        return _STUB_SPAN

    def record(self, name, wall_s=0.0, cpu_s=None, **counters):
        pass

    def to_dict(self):
        return {}


class _StubInstrument:
    def inc(self, amount=1):
        pass

    def set(self, value):
        pass

    def add(self, amount):
        pass

    def observe(self, value):
        pass

    def observe_ms(self, value):
        pass

    def observe_seconds(self, value):
        pass


_STUB_INSTRUMENT = _StubInstrument()

_TRACE_PATCH = {
    "span": lambda name, **counters: _STUB_SPAN,
    "record": lambda name, wall_s=0.0, cpu_s=None, **counters: None,
    "current_tracer": lambda: None,
    "Tracer": _StubTracer,
}
_METRICS_PATCH = {
    "counter": lambda name: _STUB_INSTRUMENT,
    "gauge": lambda name: _STUB_INSTRUMENT,
    "histogram": lambda name, buckets=None: _STUB_INSTRUMENT,
}


class _stubbed_obs:
    """Swap the obs entry points for no-ops; restore on exit."""

    def __enter__(self):
        self._saved = (
            {k: getattr(trace, k) for k in _TRACE_PATCH},
            {k: getattr(metrics, k) for k in _METRICS_PATCH},
        )
        for key, value in _TRACE_PATCH.items():
            setattr(trace, key, value)
        for key, value in _METRICS_PATCH.items():
            setattr(metrics, key, value)
        return self

    def __exit__(self, *exc):
        saved_trace, saved_metrics = self._saved
        for key, value in saved_trace.items():
            setattr(trace, key, value)
        for key, value in saved_metrics.items():
            setattr(metrics, key, value)
        return False


# ----------------------------------------------------------------------
# Workload: warm discover + integrate over a synthetic lake
# ----------------------------------------------------------------------
def build_lake(num_tables: int, rows: int, seed: int = 7) -> DataLake:
    rng = random.Random(seed)
    vocab = [f"ent{v:04d}" for v in range(num_tables * 4)]
    lake = DataLake()
    for t in range(num_tables):
        key_col = [rng.choice(vocab) for _ in range(rows)]
        rows_out = [
            (key_col[r], f"x{rng.randrange(1000)}", f"y{rng.randrange(50)}")
            for r in range(rows)
        ]
        lake.add(Table(["Entity", f"Attr{t % 5}", "Group"], rows_out, name=f"t{t:03d}"))
    return lake


def build_workload(num_tables: int = 48, rows: int = 24, queries: int = 4):
    lake = build_lake(num_tables, rows)
    pipeline = Dialite(lake).fit()
    rng = random.Random(13)
    vocab = [f"ent{v:04d}" for v in range(num_tables * 4)]
    query_tables = [
        Table(
            ["Entity"],
            [(rng.choice(vocab),) for _ in range(8)],
            name=f"q{i}",
        )
        for i in range(queries)
    ]

    def workload() -> None:
        for query in query_tables:
            outcome = pipeline.discover(query, k=4, query_column="Entity")
            pipeline.integrate(outcome.integration_set[:4])

    return workload


def measure(workload, runs: int) -> tuple[float, float]:
    """Interleaved min-of-``runs`` for (shipped, stubbed) seconds."""
    shipped = []
    stubbed = []
    for _ in range(runs):
        start = time.perf_counter()
        workload()
        shipped.append(time.perf_counter() - start)
        with _stubbed_obs():
            start = time.perf_counter()
            workload()
            stubbed.append(time.perf_counter() - start)
    return min(shipped), min(stubbed)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--runs", type=int, default=5, help="interleaved repetitions")
    parser.add_argument(
        "--threshold", type=float, default=0.03,
        help="max allowed (shipped - stubbed) / stubbed (default 0.03)",
    )
    args = parser.parse_args()

    workload = build_workload()
    workload()  # warm both code paths and every lazy cache before timing
    with _stubbed_obs():
        workload()

    shipped_s, stubbed_s = measure(workload, args.runs)
    overhead = (shipped_s - stubbed_s) / stubbed_s
    print(
        f"obs overhead smoke: shipped {shipped_s * 1000:.1f}ms, "
        f"stubbed baseline {stubbed_s * 1000:.1f}ms, "
        f"overhead {overhead * 100:+.2f}% (threshold {args.threshold * 100:.0f}%, "
        f"min of {args.runs} interleaved runs)"
    )
    if overhead > args.threshold:
        print("obs overhead smoke FAILED: disabled tracing is not cheap enough")
        return 1
    print("obs overhead smoke ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
