#!/usr/bin/env python
"""CI guard: FD hot-path modules must not rebuild per-cell keys the slow way.

:func:`repro.integration.tuples.cell_key` exists precisely so hot paths
(complementation closure, subsumption, partitioning, join keying) can key
single cells without the tuple-of-one round trip through
``normalized_key((cell,))[0]`` -- each such call allocates a one-tuple, a
tagged tuple and an outer tuple, then immediately unwraps it, and it sits
inside per-cell loops.  PR 4 removed the last offenders
(``connected_components``, the outer-join ``key_of``); this check fails the
build if the pattern regresses anywhere in the integration package's hot
modules.

Two patterns are flagged, in hot-path modules only:

* any call ``normalized_key(<tuple literal>)`` -- keying a synthesized
  tuple of cells instead of an existing vector is the round-trip shape
  regardless of the literal's length;
* any subscript ``normalized_key(...)[...]`` -- unwrapping a freshly built
  whole-vector key to get at one element.

Whole-vector uses (``normalized_key(work.cells)`` as a dict key or sort
component, once per tuple) stay legal everywhere: that is the function's
job.  ``nested_loop.py`` and ``definition.py`` are exempt -- they are the
deliberately object-level baselines -- as are ``tuples.py`` (the
definition site) and ``explain.py``/``base.py`` (not hot).
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

INTEGRATION_DIR = (
    Path(__file__).resolve().parent.parent / "src" / "repro" / "integration"
)

#: The modules whose per-cell loops are the FD hot paths.
HOT_MODULES = (
    "alite.py",
    "intern.py",
    "iterator.py",
    "outerjoin.py",
    "parallel.py",
    "subsume.py",
)


def _is_normalized_key_call(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id == "normalized_key"
    )


def check_file(path: Path) -> list[str]:
    tree = ast.parse(path.read_text(encoding="utf-8"))
    violations = []
    for node in ast.walk(tree):
        if _is_normalized_key_call(node) and node.args and isinstance(
            node.args[0], ast.Tuple
        ):
            violations.append(
                f"{path.name}:{node.lineno}: normalized_key(<tuple literal>) -- "
                f"key single cells with cell_key() on FD hot paths"
            )
        if isinstance(node, ast.Subscript) and _is_normalized_key_call(node.value):
            violations.append(
                f"{path.name}:{node.lineno}: normalized_key(...)[...] -- "
                f"the per-cell unwrap round trip; use cell_key() instead"
            )
    return violations


def main() -> int:
    violations: list[str] = []
    for name in HOT_MODULES:
        violations.extend(check_file(INTEGRATION_DIR / name))
    if violations:
        print("FD hot-path guard FAILED:")
        for violation in violations:
            print(f"  {violation}")
        return 1
    print(
        f"FD hot-path guard ok: no per-cell normalized_key round trips in "
        f"{len(HOT_MODULES)} hot integration modules"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
