"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.store import journal
from repro.datalake.fixtures import (
    covid_integration_set,
    covid_joinable_table,
    covid_query_table,
    covid_unionable_table,
    vaccine_integration_set,
)
from repro.datalake.synth import SyntheticLakeBuilder, build_integration_set


@pytest.fixture(scope="session", autouse=True)
def _no_fsync_in_tests():
    """Run the whole suite with physical fsyncs off (REPRO_FSYNC=0
    equivalent).  Durability syscalls change no byte any assertion sees
    -- atomicity still comes from tmp+``os.replace`` -- but at ~5-7ms
    per fsync they dominate the runtime of ingest-heavy tests.  The
    crash-recovery suite manages the flag itself (and restores whatever
    this fixture set)."""
    was_on = journal.fsync_enabled()
    journal.set_fsync_enabled(False)
    yield
    journal.set_fsync_enabled(was_on)


@pytest.fixture
def covid_tables():
    """The paper's T1, T2, T3 (Figure 2)."""
    return covid_integration_set()


@pytest.fixture
def covid_query():
    return covid_query_table()


@pytest.fixture
def covid_unionable():
    return covid_unionable_table()


@pytest.fixture
def covid_joinable():
    return covid_joinable_table()


@pytest.fixture
def vaccine_tables():
    """The paper's T4, T5, T6 (Figure 7)."""
    return vaccine_integration_set()


@pytest.fixture
def small_synth_lake():
    """A small deterministic synthetic lake with ground truth."""
    return SyntheticLakeBuilder(seed=7).build(
        num_unionable=3, num_joinable=3, num_distractors=4
    )


@pytest.fixture
def small_integration_set():
    """Five pre-aligned fragments for FD tests."""
    return build_integration_set(
        num_tables=5, rows_per_table=12, num_attributes=6,
        attributes_per_table=3, key_pool_size=20, null_rate=0.1, seed=3,
    )
