"""Unit tests for the persistent lake store (repro.store).

Covers the segment codec, content hashing, incremental ingest semantics
(only deltas are rewritten; versions bump; stale indexes drop), sketch-
config compatibility enforcement, the lazy warm-start read path, and the
zero-raw-scan guarantee of a warm discover run.
"""

from __future__ import annotations

import json

import pytest

from repro.core.pipeline import Dialite
from repro.datalake import DataLake, LakeIndex
from repro.datalake.fixtures import (
    covid_joinable_table,
    covid_query_table,
    covid_unionable_table,
)
from repro.store import (
    IngestReport,
    LakeStore,
    SketchConfig,
    SketchConfigMismatch,
    StoreError,
    StoreNotFound,
    table_content_hash,
)
from repro.store.codec import decode_column, encode_column
from repro.table import MISSING, PRODUCED, Table


@pytest.fixture
def lake():
    return DataLake([covid_unionable_table(), covid_joinable_table()])


@pytest.fixture
def store(tmp_path, lake):
    store = LakeStore.create(tmp_path / "lake.store")
    store.ingest(lake)
    return store


class TestCodec:
    def test_column_round_trip_preserves_null_kinds(self):
        array = ("x", 1, 2.5, True, False, MISSING, PRODUCED, "", "±")
        restored = decode_column(encode_column(array))
        assert restored == array
        assert restored[5] is MISSING and restored[6] is PRODUCED

    def test_content_hash_ignores_name_but_not_data(self):
        a = Table(["c"], [(1,), (2,)], name="a")
        b = Table(["c"], [(1,), (2,)], name="b")
        c = Table(["c"], [(1,), (3,)], name="a")
        d = Table(["d"], [(1,), (2,)], name="a")
        assert table_content_hash(a) == table_content_hash(b)
        assert table_content_hash(a) != table_content_hash(c)
        assert table_content_hash(a) != table_content_hash(d)

    def test_content_hash_distinguishes_null_kinds(self):
        a = Table(["c"], [(MISSING,)], name="t")
        b = Table(["c"], [(PRODUCED,)], name="t")
        assert table_content_hash(a) != table_content_hash(b)


class TestCreateOpen:
    def test_open_missing_raises(self, tmp_path):
        with pytest.raises(StoreNotFound):
            LakeStore.open(tmp_path / "nope")

    def test_create_twice_requires_exist_ok(self, tmp_path):
        LakeStore.create(tmp_path / "s")
        with pytest.raises(StoreError, match="already exists"):
            LakeStore.create(tmp_path / "s")
        assert LakeStore.create(tmp_path / "s", exist_ok=True).lake_version == 0

    def test_sketch_config_mismatch_raises_clear_error(self, tmp_path, lake):
        custom = SketchConfig(minhash_seed=99)
        store = LakeStore.create(tmp_path / "s", sketch_config=custom)
        store.ingest(lake)
        with pytest.raises(SketchConfigMismatch, match="seed"):
            LakeStore.open(tmp_path / "s")
        # Matching config (or an explicit opt-out) opens fine.
        assert LakeStore.open(tmp_path / "s", sketch_config=custom).sketch_config == custom
        assert LakeStore.open(tmp_path / "s", check_sketch=False).sketch_config == custom

    def test_foreign_manifest_rejected(self, tmp_path):
        target = tmp_path / "s"
        target.mkdir()
        (target / "manifest.json").write_text(json.dumps({"format": "other"}))
        with pytest.raises(StoreError, match="manifest"):
            LakeStore.open(target)


class TestIncrementalIngest:
    def test_first_ingest_adds_everything(self, tmp_path, lake):
        store = LakeStore.create(tmp_path / "s")
        report = store.ingest(lake)
        assert isinstance(report, IngestReport)
        assert sorted(report.added) == ["T2", "T3"]
        assert report.lake_version == 1 and report.changed

    def test_unchanged_reingest_rewrites_nothing(self, store, lake):
        segment_files = {f: f.stat().st_mtime_ns for f in store.path.rglob("*.seg.*")}
        report = store.ingest(lake)
        assert sorted(report.unchanged) == ["T2", "T3"]
        assert not report.changed
        assert store.lake_version == 1  # version only moves on content change
        after = {f: f.stat().st_mtime_ns for f in store.path.rglob("*.seg.*")}
        assert after == segment_files  # byte-for-byte untouched files

    def test_replacing_one_table_rewrites_only_that_table(self, store, lake):
        mtimes = {f.name: f.stat().st_mtime_ns for f in store.path.rglob("*.seg.*")}
        replacement = Table(  # T3 with its last row dropped: real new content
            lake["T3"].columns,
            list(lake["T3"].rows[:-1]),
            name="T3",
        )
        changed = DataLake([lake["T2"], replacement])
        report = store.ingest(changed)
        assert report.updated == ("T3",) and report.unchanged == ("T2",)
        assert store.lake_version == 2
        after = {f.name: f.stat().st_mtime_ns for f in store.path.rglob("*.seg.*")}
        unchanged_files = [n for n in after if after[n] == mtimes.get(n)]
        assert len(unchanged_files) == 1  # T2's segment untouched

    def test_removing_a_table_prunes_its_files(self, store, lake):
        report = store.ingest(DataLake([lake["T2"]]))
        assert report.removed == ("T3",)
        assert store.table_names == ["T2"]
        assert len(list(store.path.rglob("*.seg.*"))) == 1

    def test_ingest_warms_unchanged_inmemory_tables(self, store, lake):
        fresh = DataLake(
            [covid_unionable_table(), covid_joinable_table()]
        )  # new objects, cold caches
        store.ingest(fresh)
        # Unchanged tables adopted the stored snapshot: fully warm, no scan.
        stats = fresh["T2"].stats.column("City")
        assert stats.scan_count == 0
        assert stats.distinct  # served from the snapshot

    def test_remove_api(self, store):
        store.remove("T2")
        assert "T2" not in store
        with pytest.raises(KeyError):
            store.remove("T2")


class TestWarmReadPath:
    def test_open_is_lazy(self, tmp_path, store):
        warm = LakeStore.open(store.path).lake()
        assert warm.names == ["T2", "T3"]
        assert warm.total_rows() == 7  # manifest-served, no segment read
        assert warm.loaded_names == []
        _ = warm.stats.scan_counts()  # stats hydrate without cell data
        assert warm.loaded_names == []
        assert warm["T2"].num_rows == 3
        assert warm.loaded_names == ["T2"]

    def test_round_trip_preserves_arrays_and_stats(self, store, lake):
        warm = LakeStore.open(store.path).lake()
        for name, original in lake.items():
            stored = warm[name]
            assert stored.column_arrays == original.column_arrays
            for column in original.columns:
                ours, theirs = stored.stats.column(column), original.stats.column(column)
                assert ours.distinct == theirs.distinct
                assert ours.tokens == theirs.tokens
                assert ours.dtype == theirs.dtype
                assert ours.null_count == theirs.null_count
                assert ours.numeric_fraction == theirs.numeric_fraction

    def test_lazy_single_column_load(self, store, lake):
        opened = LakeStore.open(store.path)
        assert opened.load_column("T3", "City") == lake["T3"].column_array("City")
        with pytest.raises(KeyError, match="no column"):
            opened.load_column("T3", "nope")
        with pytest.raises(KeyError, match="no table"):
            opened.load_column("nope", "City")

    def test_stored_lake_is_read_only(self, store):
        warm = store.lake()
        with pytest.raises(TypeError, match="read-only"):
            warm.add(Table(["c"], [(1,)], name="new"))

    def test_hydrated_values_derive_without_scan(self, store):
        from repro.table import is_null

        stats = store.table_stats("T3").column("Death Rate")
        values = stats.values  # pages the column in, filters nulls
        expected = [v for v in store.load_column("T3", "Death Rate") if not is_null(v)]
        assert values == expected
        assert stats.scan_count == 0


class TestPersistedIndexes:
    def test_from_store_serves_without_scans(self, store, lake):
        LakeIndex(store.lake(), Dialite(DataLake()).discoverers.components()).build().save_to_store(store)

        warm_store = LakeStore.open(store.path)
        warm_lake = warm_store.lake()
        index = LakeIndex.from_store(warm_store, lake=warm_lake)
        assert index.is_built
        results = index.search_merged(covid_query_table(), k=3, query_column="City")
        assert {r.table_name for r in results} == {"T2", "T3"}
        assert all(n == 0 for n in warm_lake.stats.scan_counts().values())

    def test_from_store_without_indexes_raises(self, store):
        with pytest.raises(StoreError, match="no persisted discoverer indexes"):
            LakeIndex.from_store(store)

    def test_ingest_invalidates_stale_indexes(self, store, lake):
        LakeIndex(store.lake(), Dialite(DataLake()).discoverers.components()).build().save_to_store(store)
        assert len(store.load_indexes()) == 3
        smaller = DataLake([lake["T2"]])
        store.ingest(smaller)
        assert store.load_indexes() == {}  # version moved on; indexes dropped
        assert not list(store.path.glob("indexes/*.pkl"))

    def test_unfitted_discoverer_rejected(self, store):
        from repro.discovery import JosieJoinSearch

        with pytest.raises(StoreError, match="not fitted"):
            store.save_indexes([JosieJoinSearch()])

    def test_missing_roster_member_is_fitted_warm(self, store):
        from repro.discovery import JosieJoinSearch

        index = LakeIndex.from_store(store, discoverers=[JosieJoinSearch()])
        assert index.is_built
        results = index.search(covid_query_table(), k=3, query_column="City")
        assert results["josie"]


class TestDialiteWarmStart:
    def test_open_fit_discover_zero_scans(self, store):
        LakeIndex(store.lake(), Dialite(DataLake()).discoverers.components()).build().save_to_store(store)

        pipeline = Dialite.open(store.path).fit()
        outcome = pipeline.discover(covid_query_table(), k=5, query_column="City")
        assert {r.table_name for r in outcome.merged} == {"T2", "T3"}
        counts = pipeline.lake.stats.scan_counts()
        assert counts and all(n == 0 for n in counts.values())
        # Integration works off the lazily materialized tables.
        integrated = pipeline.integrate(outcome)
        assert integrated.num_rows == 7

    def test_warm_results_match_cold_results(self, store, lake):
        LakeIndex(store.lake(), Dialite(DataLake()).discoverers.components()).build().save_to_store(store)
        warm = Dialite.open(store.path).fit()
        cold = Dialite(DataLake([covid_unionable_table(), covid_joinable_table()])).fit()
        query = covid_query_table()
        warm_merged = warm.discover(query, k=5, query_column="City").merged
        cold_merged = cold.discover(query.with_name("query"), k=5, query_column="City").merged
        assert [(r.table_name, r.score) for r in warm_merged] == [
            (r.table_name, r.score) for r in cold_merged
        ]

    def test_datalake_open_classmethod(self, store):
        lake = DataLake.open(store.path)
        assert sorted(lake) == ["T2", "T3"]
        assert lake["T2"].stats.column("City").scan_count == 0


class TestCrashSafety:
    """Updates are content-addressed: new files first, manifest commit
    second, stale-file cleanup last -- a crash never strands a manifest
    pointing into rewritten bytes."""

    def test_update_writes_new_segment_path(self, store, lake):
        old_segment = store.path / store._manifest["tables"]["T3"]["segment"]
        replacement = Table(lake["T3"].columns, list(lake["T3"].rows[:-1]), name="T3")
        store.ingest(DataLake([lake["T2"], replacement]))
        new_segment = store.path / store._manifest["tables"]["T3"]["segment"]
        assert new_segment != old_segment  # content-addressed stem
        assert new_segment.exists() and not old_segment.exists()

    def test_load_indexes_tolerates_orphaned_entry(self, store):
        LakeIndex(
            store.lake(), Dialite(DataLake()).discoverers.components()
        ).build().save_to_store(store)
        for file in store.path.glob("indexes/*.pkl"):
            file.unlink()  # simulate a crash window / manual tampering
        assert store.load_indexes() == {}


class TestCocoaRebind:
    """COCOA's pickle drops the lake (it would duplicate every cell);
    LakeIndex.load / from_store re-attach it."""

    def test_pickle_excludes_cell_data_and_from_store_rebinds(self, store, lake):
        from repro.discovery.cocoa import CocoaJoinSearch

        LakeIndex(store.lake(), [CocoaJoinSearch()]).build().save_to_store(store)
        import pickle as _pickle

        with next(store.path.glob("indexes/cocoa-*.pkl")).open("rb") as handle:
            raw = _pickle.load(handle)
        assert raw._lake == {}  # no second copy of the lake's cells on disk

        warm_lake = LakeStore.open(store.path).lake()
        index = LakeIndex.from_store(store.path, lake=warm_lake)
        query = Table(
            ["City", "Rate"],
            [(c, float(i)) for i, c in enumerate(lake["T3"].column_values("City"))],
            name="cocoa_query",
        )
        results = index.search(query, k=3, query_column="City")
        assert [r.table_name for r in results["cocoa"]] == ["T3"]

    def test_unrebound_cocoa_fails_loudly(self, lake):
        import pickle

        from repro.discovery.cocoa import CocoaJoinSearch

        fitted = CocoaJoinSearch().fit(lake)
        clone = pickle.loads(pickle.dumps(fitted))
        query = Table(["City", "x"], [("Berlin", 1.0)], name="q")
        with pytest.raises(RuntimeError, match="rebind_lake"):
            clone.search(query, k=3, query_column="City")
        clone.rebind_lake(lake)
        assert clone.search(query, k=3, query_column="City") is not None


class TestVersionWatch:
    """The serving layer's cheap on-disk version poll + reader safety
    under a concurrent writer (ISSUE 5 satellites)."""

    def test_current_version_tracks_disk_without_reopen(self, store, lake):
        reader = LakeStore.open(store.path)
        assert reader.current_version() == reader.lake_version == 1
        writer = LakeStore.open(store.path)
        writer.ingest(
            {"extra": Table(["City"], [("Oslo",)], name="extra")}, prune=False
        )
        # The reader handle's in-memory manifest is a stable snapshot...
        assert reader.lake_version == 1
        # ...while the poll sees the committed on-disk version.
        assert reader.current_version() == 2

    def test_version_beacon_file_written_and_fallback(self, store):
        beacon = store.path / "version.json"
        assert json.loads(beacon.read_text())["lake_version"] == 1
        # Stores written before the beacon existed fall back to the
        # manifest (and a corrupt beacon is ignored, not fatal).
        beacon.unlink()
        assert store.current_version() == 1
        beacon.write_text("not json")
        assert store.current_version() == 1

    def test_reopen_returns_fresh_handle_same_config(self, store):
        fresh = store.reopen()
        assert fresh is not store
        assert fresh.lake_version == store.lake_version
        assert fresh.sketch_config == store.sketch_config

    def test_reader_never_sees_torn_manifest_during_ingest(self, tmp_path, lake):
        """A reader polling/opening while a writer ingests repeatedly must
        only ever observe complete manifests and monotonic versions (the
        atomic tmp+replace commit contract)."""
        import threading

        path = tmp_path / "race.store"
        store = LakeStore.create(path)
        store.ingest(lake)
        stop = threading.Event()
        failures = []

        def reader():
            last = 0
            while not stop.is_set():
                try:
                    version = LakeStore.open(path).current_version()
                    opened = LakeStore.open(path)
                    assert set(opened.table_names) >= {"T2", "T3"}
                    if version < last:
                        failures.append(f"version went backwards: {last}->{version}")
                    last = version
                except Exception as error:  # noqa: BLE001
                    failures.append(repr(error))
                    return

        threads = [threading.Thread(target=reader) for _ in range(3)]
        for thread in threads:
            thread.start()
        writer = LakeStore.open(path)
        for round_number in range(20):
            writer.ingest(
                {
                    "churn": Table(
                        ["City", "round"], [("Berlin", round_number)], name="churn"
                    )
                },
                prune=False,
            )
        stop.set()
        for thread in threads:
            thread.join(timeout=10)
        assert not failures
        assert writer.lake_version == 21  # 20 churn rewrites after the seed


class TestStatsCacheBound:
    def test_lru_capacity_bounds_hydrated_stats(self, store, lake):
        bounded = LakeStore.open(store.path, stats_cache_capacity=1)
        t2_stats = bounded.table_stats("T2")
        t3_stats = bounded.table_stats("T3")  # evicts T2's snapshot
        assert len(bounded._stats_cache) == 1
        assert bounded._stats_cache.evictions == 1
        # The still-cached T3 object is served as-is...
        assert bounded.table_stats("T3") is t3_stats
        # ...and re-requesting evicted T2 re-hydrates a fresh snapshot.
        assert bounded.table_stats("T2") is not t2_stats
        # Evicted-and-rehydrated stats still serve without raw scans.
        assert bounded.table_stats("T2").column("City").distinct
        assert bounded.table_stats("T2").total_scans == 0

    def test_unbounded_default_keeps_everything(self, store):
        store.table_stats("T2")
        store.table_stats("T3")
        assert len(store._stats_cache) == 2
        assert store._stats_cache.evictions == 0

    def test_lru_cache_primitive(self):
        from repro.store.lru import LRUCache

        clock = [0.0]
        cache = LRUCache(capacity=2, ttl=5.0, clock=lambda: clock[0])
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refreshes recency
        cache.put("c", 3)  # evicts b (least recently used)
        assert cache.get("b") is None and cache.get("a") == 1
        assert cache.evictions == 1
        clock[0] = 6.0
        assert cache.get("a") is None  # TTL lapsed
        assert cache.expirations == 1
        with pytest.raises(ValueError):
            LRUCache(capacity=0)


class TestSegmentFormats:
    """v1 (JSONL) and v2 (binary columnar) segments coexist; ``migrate``
    rewrites between them without touching stats, hashes or versions."""

    def test_ingest_default_is_v2(self, store):
        assert store.default_segment_format == "v2"
        counts = store.segment_format_counts()
        assert counts.get("v2") == 2 and not counts.get("v1")

    def test_explicit_v1_store_still_writes_jsonl(self, tmp_path, lake):
        store = LakeStore.create(tmp_path / "s", segment_format="v1")
        store.ingest(lake)
        assert list((tmp_path / "s" / "segments").glob("*.seg.jsonl"))
        assert not list((tmp_path / "s" / "segments").glob("*.seg.bin"))
        assert LakeStore.open(tmp_path / "s").load_table("T2").num_rows

    @pytest.mark.parametrize("target", ["v1", "v2"])
    def test_migrate_round_trip_preserves_content(self, tmp_path, lake, target):
        source = "v2" if target == "v1" else "v1"
        store = LakeStore.create(tmp_path / "s", segment_format=source)
        store.ingest(lake)
        version = store.lake_version
        before = {name: store.load_table(name) for name in store.table_names}
        hashes = {
            name: store.info()["tables"][name]["content_hash"]
            for name in store.table_names
        }

        migrated = store.migrate(segment_format=target)
        assert sorted(migrated) == sorted(lake)
        assert store.lake_version == version  # content did not change
        assert store.default_segment_format == target
        counts = store.segment_format_counts()
        assert counts.get(target) == 2 and not counts.get(source)

        reopened = LakeStore.open(tmp_path / "s")
        for name, table in before.items():
            after = reopened.load_table(name)
            assert after.rows == table.rows
            assert after.columns == table.columns
            assert (
                reopened.info()["tables"][name]["content_hash"] == hashes[name]
            )
        # The old-format segment files are gone; only the target remains.
        extension = "jsonl" if target == "v1" else "bin"
        other = "bin" if target == "v1" else "jsonl"
        segments = tmp_path / "s" / "segments"
        assert list(segments.glob(f"*.seg.{extension}"))
        assert not list(segments.glob(f"*.seg.{other}"))

    def test_migrate_is_idempotent(self, store):
        assert store.migrate(segment_format="v2") == []
        assert store.default_segment_format == "v2"

    def test_persisted_indexes_survive_migration(self, tmp_path, lake):
        store_dir = tmp_path / "s"
        store = LakeStore.create(store_dir, segment_format="v1")
        store.ingest(lake)
        roster = Dialite(DataLake()).discoverers.components()
        LakeIndex(store.lake(), roster).build().save_to_store(store)

        LakeStore.open(store_dir).migrate(segment_format="v2")

        # The saved indexes were not invalidated (content is unchanged) and
        # keep serving without a single raw-cell scan.
        warm_store = LakeStore.open(store_dir)
        warm_lake = warm_store.lake()
        index = LakeIndex.from_store(warm_store, lake=warm_lake)
        assert index.is_built
        results = index.search_merged(
            covid_query_table(), k=3, query_column="City"
        )
        assert {r.table_name for r in results} == {"T2", "T3"}
        assert all(n == 0 for n in warm_lake.stats.scan_counts().values())
