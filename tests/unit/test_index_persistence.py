"""Unit tests for offline index persistence (LakeIndex.save / load)."""

from __future__ import annotations

import pytest

from repro.datalake import DataLake, LakeIndex
from repro.discovery import (
    JosieJoinSearch,
    LSHEnsembleJoinSearch,
    SantosUnionSearch,
)


@pytest.fixture
def lake(covid_unionable, covid_joinable):
    return DataLake([covid_unionable, covid_joinable])


class TestPersistence:
    def test_round_trip_preserves_results(self, lake, covid_query, tmp_path):
        index = LakeIndex(
            lake, [SantosUnionSearch(), LSHEnsembleJoinSearch(), JosieJoinSearch()]
        ).build()
        before = index.search_merged(covid_query, k=3, query_column="City")

        path = tmp_path / "indexes" / "lake.idx"
        index.save(path)
        loaded = LakeIndex.load(path)

        assert loaded.is_built
        after = loaded.search_merged(covid_query, k=3, query_column="City")
        assert [(r.table_name, r.score) for r in after] == [
            (r.table_name, r.score) for r in before
        ]

    def test_save_builds_if_needed(self, lake, tmp_path):
        index = LakeIndex(lake, [JosieJoinSearch()])
        assert not index.is_built
        index.save(tmp_path / "auto.idx")
        assert index.is_built

    def test_load_rejects_foreign_pickle(self, tmp_path):
        import pickle

        path = tmp_path / "junk.idx"
        with path.open("wb") as handle:
            pickle.dump({"not": "an index"}, handle)
        with pytest.raises(TypeError, match="LakeIndex"):
            LakeIndex.load(path)

    def test_loaded_index_timings_preserved(self, lake, tmp_path):
        index = LakeIndex(lake, [JosieJoinSearch()]).build()
        index.save(tmp_path / "t.idx")
        loaded = LakeIndex.load(tmp_path / "t.idx")
        assert set(loaded.build_seconds) == {"josie"}
