"""Unit tests for the concurrent serving layer (repro.service).

The load-bearing guarantees pinned here:

* cache correctness under concurrency -- a threaded stress mix of
  discover / integrate / ingest produces only responses that are
  byte-identical to a sequential oracle pipeline opened at the exact
  lake version each response is stamped with (zero staleness);
* admission control -- overload is an explicit :class:`ServiceOverloaded`
  rejection, deadlines surface :class:`DeadlineExceeded` for both the
  waiting caller and queued work a worker reaches too late;
* micro-batching -- concurrent compatible discover requests coalesce
  through ``discover_many`` without changing any payload;
* hot-swap reload -- in-process and foreign ingests move the serving
  version, the swapped-in generation hydrates warm
  (``engine.build_count == 0``), and in-flight work is never dropped.
"""

from __future__ import annotations

import json
import threading
import time

import pytest

from repro.core.pipeline import Dialite
from repro.datalake import DataLake
from repro.datalake.fixtures import (
    covid_joinable_table,
    covid_query_table,
    covid_unionable_table,
)
from repro.datalake.indexer import LakeIndex
from repro.integration.alite import AliteFD
from repro.service import (
    DeadlineExceeded,
    LakeService,
    ServiceClosed,
    ServiceError,
    ServiceOverloaded,
    oracle_discover_payload,
)
from repro.service.service import _table_payload
from repro.store import LakeStore
from repro.table.table import Table


def canonical(payload: dict) -> str:
    return json.dumps(payload, sort_keys=True)


def build_store(tmp_path, extra=()):
    lake = DataLake([covid_unionable_table(), covid_joinable_table(), *extra])
    store = LakeStore.create(tmp_path / "lake.store")
    store.ingest(lake)
    roster = Dialite(DataLake()).discoverers.components()
    LakeIndex.from_store(store, roster, lake=store.lake()).save_to_store(store)
    return tmp_path / "lake.store"


@pytest.fixture
def store_path(tmp_path):
    return build_store(tmp_path)


@pytest.fixture
def service(store_path):
    svc = LakeService(
        store=store_path, workers=2, batch_window=0.0, reload_check_interval=0.0
    )
    yield svc
    svc.close()


def oracle_integrate_payload(store_path, query, k=10, column=None):
    """The integrate payload a fresh pipeline at the store's current
    version serves (mirrors the service handler's canonicalization)."""
    pipeline = Dialite.open(store_path).fit()
    outcome = pipeline.discover(
        LakeService._service_query(query), k=k, query_column=column
    )
    result = pipeline.integrate(outcome)
    return {
        "integration_set": [t.name for t in outcome.integration_set[1:]],
        "table": _table_payload(result.to_display_table()),
    }


class TestBasics:
    def test_discover_matches_oracle_and_caches(self, store_path, service):
        query = covid_query_table()
        first = service.discover(query, k=5, query_column="City")
        oracle = oracle_discover_payload(
            Dialite.open(store_path).fit(), query, k=5, query_column="City"
        )
        assert canonical(first.payload) == canonical(oracle)
        assert first.lake_version == 1 and not first.cached

        again = service.discover(query, k=5, query_column="City")
        assert again.cached and canonical(again.payload) == canonical(first.payload)
        snapshot = service.stats_snapshot()
        assert snapshot["hits"] == 1 and snapshot["misses"] == 1

    def test_same_content_different_name_shares_cache_entry(self, service):
        query = covid_query_table()
        service.discover(query, k=5, query_column="City")
        renamed = query.with_name("another_caller_name")
        response = service.discover(renamed, k=5, query_column="City")
        assert response.cached

    def test_different_options_do_not_share_entries(self, service):
        query = covid_query_table()
        service.discover(query, k=5, query_column="City")
        assert not service.discover(query, k=3, query_column="City").cached
        assert not service.discover(query, k=5).cached

    def test_integrate_and_align(self, store_path, service):
        query = covid_query_table()
        response = service.integrate(query=query, k=5, query_column="City")
        oracle = oracle_integrate_payload(store_path, query, k=5, column="City")
        assert canonical(response.payload) == canonical(oracle)
        assert service.integrate(query=query, k=5, query_column="City").cached

        aligned = service.align([covid_query_table(), covid_joinable_table()])
        assert aligned.payload["num_ids"] >= 1
        assert any(".City" in ref for ref in aligned.payload["assignments"])

    def test_dialite_serve_wraps_pipeline(self):
        lake = DataLake([covid_unionable_table(), covid_joinable_table()])
        with Dialite(lake).fit().serve(workers=1, batch_window=0.0) as svc:
            response = svc.discover(covid_query_table(), k=3, query_column="City")
            assert response.lake_version == 0  # storeless sessions serve v0
            assert not svc.reload_if_stale()
            with pytest.raises(ServiceError):
                svc.ingest([covid_query_table()])

    def test_unknown_op_and_closed_service(self, service):
        with pytest.raises(ServiceError):
            service.request("no_such_op", {})
        service.close()
        with pytest.raises(ServiceClosed):
            service.discover(covid_query_table(), k=3)

    def test_generic_request_path_accepts_list_discoverers(self, service):
        # The documented generic entry point may pass JSON-shaped params
        # (lists, not tuples); the cache key must normalize them.
        response = service.request(
            "discover",
            {"query": covid_query_table(), "k": 3, "column": "City",
             "discoverers": ["josie"]},
        )
        assert all(r["discoverer"] == "josie" for r in response.payload["results"])
        again = service.discover(
            covid_query_table(), k=3, query_column="City", discoverers=("josie",)
        )
        assert again.cached  # list and tuple spellings share one entry

    def test_custom_handler(self, service):
        service.add_handler(
            "echo", lambda gen, params: {"version": gen.version, **params}
        )
        response = service.request("echo", {"x": 1})
        assert response.payload == {"version": 1, "x": 1}
        assert not response.cached  # custom ops have no canonical key

    def test_latency_quantiles_reported(self, service):
        query = covid_query_table()
        for _ in range(3):
            service.discover(query, k=5, query_column="City")
        latency = service.stats_snapshot()["latency"]["discover"]
        assert latency["count"] == 3
        assert latency["p50_ms"] <= latency["p95_ms"] <= latency["max_ms"]


class TestVersioning:
    def test_in_process_ingest_swaps_warm_generation(self, service):
        query = covid_query_table()
        before = service.discover(query, k=5, query_column="City")
        report = service.ingest(
            [Table(["City", "Mayor"], [("Berlin", "A"), ("Boston", "B")], name="mayors")]
        )
        assert report["added"] == ["mayors"] and report["lake_version"] == 2
        assert service.version == 2

        after = service.discover(query, k=5, query_column="City")
        assert after.lake_version == 2 and not after.cached
        assert "mayors" in [r["table"] for r in after.payload["results"]]
        assert before.lake_version == 1  # old response keeps its stamp

        engine = service.pipeline.index.engine
        assert engine.build_count == 0 and engine.loaded_from_store

    def test_foreign_ingest_detected_by_version_poll(self, store_path, service):
        query = covid_query_table()
        service.discover(query, k=5, query_column="City")
        # Another process's incremental ingest: a separate store handle.
        writer = LakeStore.open(store_path)
        writer.ingest(
            {"extra": Table(["City", "Zone"], [("Berlin", "EU")], name="extra")},
            prune=False,
        )
        assert service.reload_if_stale(force=True)
        response = service.discover(query, k=5, query_column="City")
        assert response.lake_version == 2 and not response.cached

    def test_reload_never_mutates_serving_generation_state(self, service):
        """The generation rebuild refits clone_unfitted() twins; fit-time
        KB synthesis must land on the twin's copied knowledge base, never
        the one the still-serving SANTOS instance reads concurrently."""
        import pickle

        old_santos = service.pipeline.discoverers.get("santos")
        kb_before = pickle.dumps(old_santos.kb)
        service.ingest(
            [Table(["City", "Landmark"], [("Berlin", "Gate"), ("Boston", "Harbor")],
                   name="landmarks")]
        )
        new_santos = service.pipeline.discoverers.get("santos")
        assert new_santos is not old_santos
        assert new_santos.kb is not old_santos.kb
        assert pickle.dumps(old_santos.kb) == kb_before, (
            "builder refit mutated the serving generation's knowledge base"
        )

    def test_cached_entries_are_version_scoped(self, service):
        query = covid_query_table()
        service.discover(query, k=5, query_column="City")
        service.ingest([Table(["City"], [("Oslo",)], name="cities")])
        assert not service.discover(query, k=5, query_column="City").cached
        assert service.discover(query, k=5, query_column="City").cached


class TestOverloadAndDeadlines:
    @pytest.fixture
    def blocked_service(self, store_path):
        svc = LakeService(
            store=store_path, workers=1, queue_depth=2,
            batch_window=0.0, reload_check_interval=0.0,
        )
        gate = threading.Event()
        svc.add_handler("block", lambda gen, params: {"ok": gate.wait(10)})
        yield svc, gate
        gate.set()
        svc.close()

    def test_overload_rejection(self, blocked_service):
        svc, gate = blocked_service
        started, errors = [], []

        def submit():
            started.append(True)
            try:
                svc.request("block", {})
            except Exception as error:  # noqa: BLE001
                errors.append(error)

        threads = [threading.Thread(target=submit) for _ in range(2)]
        for thread in threads:
            thread.start()
        deadline = time.monotonic() + 5
        while svc.inflight < 2 and time.monotonic() < deadline:
            time.sleep(0.01)
        with pytest.raises(ServiceOverloaded):
            svc.request("block", {})
        assert svc.stats_snapshot()["rejected_overload"] == 1
        gate.set()
        for thread in threads:
            thread.join(timeout=5)
        assert not errors

    def test_caller_deadline(self, blocked_service):
        svc, gate = blocked_service
        occupier = threading.Thread(target=lambda: svc.request("block", {}))
        occupier.start()
        deadline = time.monotonic() + 5
        while svc.inflight < 1 and time.monotonic() < deadline:
            time.sleep(0.01)
        with pytest.raises(DeadlineExceeded):
            svc.request("block", {}, deadline=0.05)
        assert svc.stats_snapshot()["rejected_deadline"] >= 1
        gate.set()
        occupier.join(timeout=5)


class TestBatching:
    def test_identical_concurrent_requests_share_one_execution(self, store_path):
        """Six callers, one content: whether the sharing happens through
        the batch dedupe or the result cache, at most the leader (and one
        batch) actually executes -- everyone gets the oracle payload."""
        svc = LakeService(
            store=store_path, workers=2, batch_window=0.15, batch_max=16,
            reload_check_interval=0.0,
        )
        try:
            query = covid_query_table()
            oracle = canonical(oracle_discover_payload(
                Dialite.open(store_path).fit(), query, k=5, query_column="City"
            ))
            responses = []
            lock = threading.Lock()

            def run():
                response = svc.discover(query, k=5, query_column="City")
                with lock:
                    responses.append(response)

            threads = [threading.Thread(target=run) for _ in range(6)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=10)
            assert len(responses) == 6
            assert all(canonical(r.payload) == oracle for r in responses)
            # The engine's per-discoverer query counters are the ground
            # truth for executions (batch members fan out one execution's
            # payload; cache hits run none): at most the dispatch leader
            # plus one batch may actually have searched.
            executions = svc.pipeline.index.engine.stats()["queries"]
            assert executions and max(executions.values()) <= 2, (
                f"identical concurrent requests must share work via the "
                f"batch dedupe or the cache, not execute per caller: "
                f"{executions}"
            )
        finally:
            svc.close()

    def test_batched_generic_requests_may_omit_optional_params(self, store_path):
        """The generic request() path may send only {"query": ...}; a
        batch of such requests must apply the same defaults as the
        single-execution path instead of KeyError-ing the whole batch."""
        svc = LakeService(
            store=store_path, workers=1, batch_window=0.25, batch_max=16,
            reload_check_interval=0.0,
        )
        try:
            queries = [
                Table(["City", "Round"], [("Berlin", i), ("Boston", i)],
                      name=f"bare_{i}")
                for i in range(4)
            ]
            responses, errors = {}, []
            lock = threading.Lock()

            def run(q):
                try:
                    response = svc.request("discover", {"query": q})
                    with lock:
                        responses[q.name] = response
                except Exception as error:  # noqa: BLE001
                    with lock:
                        errors.append(error)

            threads = [threading.Thread(target=run, args=(q,)) for q in queries]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=10)
            assert not errors
            oracle_pipeline = Dialite.open(store_path).fit()
            for q in queries:
                assert canonical(responses[q.name].payload) == canonical(
                    oracle_discover_payload(oracle_pipeline, q)
                )
        finally:
            svc.close()

    def test_distinct_queries_coalesce_through_discover_many(self, store_path):
        """Distinct-content requests queued behind one busy worker must
        coalesce into a micro-batch (counted in ServiceStats) and still
        serve byte-identical oracle payloads."""
        svc = LakeService(
            store=store_path, workers=1, batch_window=0.25, batch_max=16,
            reload_check_interval=0.0,
        )
        try:
            queries = [
                covid_query_table(),
                Table(["City", "Death Rate"], [("Berlin", 147), ("Boston", 335)],
                      name="numeric_q"),
            ] + [
                Table(["Country", "City", "Round"],
                      [("Germany", "Berlin", i), ("Spain", "Barcelona", i)],
                      name=f"distinct_{i}")
                for i in range(4)
            ]
            oracle_pipeline = Dialite.open(store_path).fit()
            oracles = {
                q.name: canonical(oracle_discover_payload(
                    oracle_pipeline, q, k=4, query_column="City"
                ))
                for q in queries
            }
            responses = {}
            lock = threading.Lock()

            def run(q):
                response = svc.discover(q, k=4, query_column="City")
                with lock:
                    responses[q.name] = response

            threads = [threading.Thread(target=run, args=(q,)) for q in queries]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=10)
            for q in queries:
                assert canonical(responses[q.name].payload) == oracles[q.name]
            snapshot = svc.stats_snapshot()
            assert snapshot["batches"] >= 1
            assert snapshot["batched_requests"] >= 2
        finally:
            svc.close()


class TestConcurrencyStress:
    """The satellite's threaded stress: N workers, mixed discover /
    integrate / one mid-run ingest; every response must match the
    sequential oracle of the exact version it is stamped with."""

    def test_version_consistent_byte_identical_responses(self, store_path):
        queries = [
            covid_query_table(),
            Table(["City", "Death Rate"], [("Berlin", 147), ("Barcelona", 275)],
                  name="stress_q1"),
            Table(["Country", "City"], [("Spain", "Barcelona"), ("USA", "Boston")],
                  name="stress_q2"),
        ]
        plant = Table(
            ["City", "Total Cases"], [("Berlin", "2M"), ("Manchester", "0.9M")],
            name="stress_plant",
        )
        svc = LakeService(
            store=store_path, workers=4, batch_window=0.002,
            reload_check_interval=0.01,
        )
        try:
            results = []
            errors = []
            lock = threading.Lock()
            ingested = threading.Event()

            def clients(worker_id):
                try:
                    for round_number in range(6):
                        query = queries[(worker_id + round_number) % len(queries)]
                        if worker_id == 0 and round_number == 3:
                            svc.ingest([plant])
                            ingested.set()
                        if worker_id % 2 == 0:
                            response = svc.discover(query, k=4, query_column="City")
                            kind = "discover"
                        else:
                            response = svc.integrate(
                                query=query, k=4, query_column="City"
                            )
                            kind = "integrate"
                        with lock:
                            results.append((kind, query.name, response))
                except Exception as error:  # noqa: BLE001
                    with lock:
                        errors.append(error)

            threads = [
                threading.Thread(target=clients, args=(i,)) for i in range(8)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=60)
            assert not errors
            assert ingested.is_set()
            versions = {response.lake_version for _, _, response in results}
            assert versions == {1, 2}, "both generations must have served"

            # Sequential oracles, one pipeline per observed version: the
            # v1 oracle runs against a store rebuilt without the plant.
            oracle_payloads = {}
            v1_store = build_store(store_path.parent / "oracle_v1")
            v1_pipeline = Dialite.open(v1_store).fit()
            v2_pipeline = Dialite.open(store_path).fit()
            for version, pipeline in ((1, v1_pipeline), (2, v2_pipeline)):
                for query in queries:
                    oracle_payloads[(version, "discover", query.name)] = canonical(
                        oracle_discover_payload(
                            pipeline, query, k=4, query_column="City"
                        )
                    )
                    outcome = pipeline.discover(
                        LakeService._service_query(query), k=4, query_column="City"
                    )
                    integrated = pipeline.integrate(outcome)
                    oracle_payloads[(version, "integrate", query.name)] = canonical({
                        "integration_set": [
                            t.name for t in outcome.integration_set[1:]
                        ],
                        "table": _table_payload(integrated.to_display_table()),
                    })

            for kind, query_name, response in results:
                expected = oracle_payloads[(response.lake_version, kind, query_name)]
                assert canonical(response.payload) == expected, (
                    f"stale/divergent {kind} response for {query_name} "
                    f"at v{response.lake_version}"
                )
            assert svc.stats_snapshot()["errors"] == 0
        finally:
            svc.close()


class TestServiceModeBounds:
    def test_fd_interner_domain_capacity_resets_between_calls(self):
        fd = AliteFD(domain_capacity=8)
        tables = [
            Table(["A", "B"], [(f"a{i}", f"b{i}") for i in range(6)], name="t1"),
            Table(["B", "C"], [(f"b{i}", f"c{i}") for i in range(6)], name="t2"),
        ]
        first = fd.integrate(tables, name="one")
        grown = fd.interner.domain
        assert grown > 8
        second = fd.integrate(tables, name="two")
        # The reset started a fresh domain of exactly this call's values,
        # and results are unchanged (they never depend on accretion).
        assert fd.interner.domain == grown
        assert first.rows == second.rows

    def test_unbounded_by_default(self):
        fd = AliteFD()
        tables = [Table(["A"], [("x",), ("y",)], name="t")]
        fd.integrate(tables, name="one")
        domain = fd.interner.domain
        fd.integrate(
            [Table(["A"], [("z",), ("w",)], name="t")], name="two"
        )
        assert fd.interner.domain > domain  # accretes, never resets


class TestServerLifecycle:
    def test_close_without_serving_does_not_hang(self, store_path):
        from repro.service import LakeServer

        svc = LakeService(store=store_path, workers=1, batch_window=0.0)
        server = LakeServer(svc, port=0)
        closer = threading.Thread(target=server.close)
        closer.start()
        closer.join(timeout=5)
        assert not closer.is_alive(), "close() on a never-served LakeServer hung"
        assert svc._closed


class TestObservability:
    """ISSUE 7: tracing + metrics threaded through the serving layer."""

    def test_percentile_nearest_rank(self):
        from repro.service.service import _percentile

        # Nearest-rank, explicitly: rank = ceil(q * n), 1-indexed.  The
        # old int(round(...)) used banker's rounding, so e.g. p50 of a
        # 2-element list picked index round(0.5*2)-1 = 0 on some sizes
        # and 1 on others; these pins make the rule unambiguous.
        assert _percentile([1.0, 2.0], 0.5) == 1.0       # ceil(1.0) = rank 1
        assert _percentile([1.0, 2.0, 3.0, 4.0], 0.5) == 2.0
        assert _percentile([1.0, 2.0, 3.0], 0.5) == 2.0  # ceil(1.5) = rank 2
        assert _percentile([1.0, 2.0, 3.0, 4.0], 0.95) == 4.0
        assert _percentile([5.0], 0.99) == 5.0
        assert _percentile([], 0.5) == 0.0
        values = [float(v) for v in range(1, 101)]
        assert _percentile(values, 0.5) == 50.0
        assert _percentile(values, 0.95) == 95.0

    def test_stats_snapshot_shape_unchanged(self, service):
        service.discover(covid_query_table(), k=2)
        service.discover(covid_query_table(), k=2)
        snapshot = service.stats_snapshot()
        for key in (
            "requests", "hits", "misses", "errors", "rejected_overload",
            "rejected_deadline", "batches", "batched_requests", "reloads",
            "ingests", "queue_depth", "latency",
        ):
            assert key in snapshot, key
        assert snapshot["requests"] == 2
        assert snapshot["hits"] == 1 and snapshot["misses"] == 1
        discover_latency = snapshot["latency"]["discover"]
        assert set(discover_latency) == {"count", "p50_ms", "p95_ms", "max_ms"}
        assert discover_latency["count"] == 2
        assert discover_latency["p50_ms"] <= discover_latency["p95_ms"]
        assert discover_latency["p95_ms"] <= discover_latency["max_ms"] + 1e-9

    def test_traced_discover_returns_span_tree(self, service):
        response = service.discover(covid_query_table(), k=2, trace=True)
        assert response.trace is not None
        tree = response.trace
        assert tree["name"] == "service.discover"

        def names(node):
            yield node["name"]
            for child in node.get("children", []):
                yield from names(child)

        flat = list(names(tree))
        # Admission -> cache -> queue -> execute -> engine -> discoverers.
        for expected in (
            "service.cache", "service.queue_wait", "service.execute",
            "pipeline.discover", "discover.santos", "discover.candidates",
            "discover.score",
        ):
            assert expected in flat, (expected, flat)
        # Traced requests are excluded from micro-batching, and the
        # untraced twin is unaffected (and serveable from cache).
        untraced = service.discover(covid_query_table(), k=2)
        assert untraced.trace is None

    def test_traced_response_not_cached_with_trace(self, service):
        first = service.discover(covid_query_table(), k=2, trace=True)
        second = service.discover(covid_query_table(), k=2)
        assert second.cached and second.trace is None
        assert canonical(first.payload) == canonical(second.payload)

    def test_trace_sink_writes_jsonl(self, store_path, tmp_path):
        sink = tmp_path / "traces.jsonl"
        svc = LakeService(
            store=store_path, workers=1, batch_window=0.0, trace_path=sink
        )
        try:
            svc.discover(covid_query_table(), k=2)
            svc.discover(covid_query_table(), k=2)
        finally:
            svc.close()
        lines = sink.read_text(encoding="utf-8").splitlines()
        assert len(lines) == 2
        for line in lines:
            document = json.loads(line)
            assert document["name"] == "service.discover"
            assert "wall_ms" in document

    def test_metrics_snapshot_merges_service_and_global(self, service):
        service.discover(covid_query_table(), k=2)
        snapshot = service.metrics_snapshot()
        assert "counters" in snapshot and "histograms" in snapshot
        assert snapshot["counters"]["service.requests"] >= 1
        latency = snapshot["histograms"]["service.latency.discover"]
        assert latency["count"] >= 1

    def test_metrics_wire_op(self, store_path):
        from repro.service import LakeServer, ServiceClient

        svc = LakeService(store=store_path, workers=1, batch_window=0.0)
        server = LakeServer(svc, port=0)
        server.start()
        try:
            client = ServiceClient(server.address)
            client.discover(covid_query_table(), k=2)
            payload = client.metrics()
            assert payload["counters"]["service.requests"] >= 1
            traced = client.discover(covid_query_table(), k=2, trace=True)
            # Distributed propagation: the wire client owns the root span
            # and the server's tree grafts under it, stamped with the id
            # the client minted.
            tree = traced["trace"]
            assert tree["name"] == "client.discover"
            assert tree["trace_id"]
            child_names = [child["name"] for child in tree["children"]]
            assert "client.connect" in child_names
            assert "client.serialize" in child_names
            assert "service.discover" in child_names
        finally:
            server.close()


class TestTelemetry:
    """ISSUE 10: the production telemetry plane around the service."""

    def test_trace_sink_size_rotation_keeps_n(self, store_path, tmp_path):
        """trace_path_max_bytes=1 forces a rotation before every append,
        so five requests through keep=2 leave exactly the live sink plus
        two backups holding the three newest trees."""
        sink_dir = tmp_path / "obs"
        sink_dir.mkdir()
        sink = sink_dir / "traces.jsonl"
        svc = LakeService(
            store=store_path, workers=1, batch_window=0.0,
            trace_path=sink, trace_path_max_bytes=1, trace_path_keep=2,
        )
        try:
            for _ in range(5):
                svc.discover(covid_query_table(), k=2)
        finally:
            svc.close()
        names = sorted(p.name for p in sink_dir.iterdir())
        assert names == ["traces.jsonl", "traces.jsonl.1", "traces.jsonl.2"]
        for name in names:
            [line] = (sink_dir / name).read_text(encoding="utf-8").splitlines()
            document = json.loads(line)
            assert document["name"] == "service.discover"
            assert document["trace_id"]

    def test_trace_sink_unbounded_by_default(self, store_path, tmp_path):
        sink_dir = tmp_path / "obs"
        sink_dir.mkdir()
        sink = sink_dir / "traces.jsonl"
        svc = LakeService(
            store=store_path, workers=1, batch_window=0.0, trace_path=sink
        )
        try:
            for _ in range(3):
                svc.discover(covid_query_table(), k=2)
        finally:
            svc.close()
        assert sorted(p.name for p in sink_dir.iterdir()) == ["traces.jsonl"]
        assert len(sink.read_text(encoding="utf-8").splitlines()) == 3

    def test_traced_requests_bypass_batching_and_say_so(self, store_path):
        svc = LakeService(
            store=store_path, workers=1, batch_window=0.05, batch_max=8,
            reload_check_interval=0.0,
        )
        try:
            traced = svc.discover(covid_query_table(), k=2, trace=True)
            assert traced.trace_batching_bypassed
            assert traced.to_json()["trace_batching_bypassed"] is True
            # The untraced twin batches normally and its wire document
            # stays byte-compatible (no new key when nothing bypassed).
            untraced = svc.discover(covid_query_table(), k=2)
            assert not untraced.trace_batching_bypassed
            assert "trace_batching_bypassed" not in untraced.to_json()
            # A traced cache hit never reached the batcher: not annotated.
            hit = svc.discover(covid_query_table(), k=2, trace=True)
            assert hit.cached and not hit.trace_batching_bypassed
        finally:
            svc.close()

    def test_health_snapshot_epoch_and_slo(self, service):
        before = service.health_snapshot()
        assert before["status"] == "ok"
        assert before["lake_epoch"] == 1
        slo = before["slo"]
        assert slo["status"] == "ok" and slo["firing"] == []
        assert {"availability", "latency_p99", "degraded_rate"} <= set(
            slo["objectives"]
        )
        service.ingest([Table(["City"], [("Oslo",)], name="epoch_bump")])
        after = service.health_snapshot()
        assert after["lake_version"] == 2
        assert after["lake_epoch"] == 2  # every generation swap bumps it

    def test_slo_degrades_health_on_error_burn(self, store_path):
        svc = LakeService(
            store=store_path, workers=1, batch_window=0.0,
            reload_check_interval=0.0,
        )
        try:
            svc.add_handler("boom", lambda gen, params: 1 / 0)
            for _ in range(8):
                with pytest.raises(Exception):
                    svc.request("boom", {})
            health = svc.health_snapshot()
            assert health["status"] == "degraded"
            firing = {f["objective"] for f in health["slo"]["firing"]}
            assert "availability" in firing
        finally:
            svc.close()

    def test_postmortem_on_error(self, store_path, tmp_path):
        sink = tmp_path / "postmortem.jsonl"
        svc = LakeService(
            store=store_path, workers=1, batch_window=0.0,
            reload_check_interval=0.0, postmortem_path=sink,
        )
        try:
            svc.add_handler("boom", lambda gen, params: 1 / 0)
            svc.discover(covid_query_table(), k=2)  # healthy ring context
            with pytest.raises(Exception):
                svc.request("boom", {})
        finally:
            svc.close()
        [doc] = [json.loads(l) for l in sink.read_text(encoding="utf-8").splitlines()]
        assert doc["kind"] == "postmortem" and doc["reason"] == "error"
        assert doc["summary"]["op"] == "boom"
        assert doc["summary"]["error"] == "ZeroDivisionError"
        assert doc["trace"], "postmortem must carry the tripping span tree"
        assert doc["trace"]["trace_id"] == doc["trace_id"]
        assert [entry["op"] for entry in doc["ring"]] == ["discover"]
        assert svc.recorder.postmortem_count == 1

    def test_postmortem_on_deadline(self, store_path, tmp_path):
        sink = tmp_path / "postmortem.jsonl"
        svc = LakeService(
            store=store_path, workers=1, queue_depth=4, batch_window=0.0,
            reload_check_interval=0.0, postmortem_path=sink,
        )
        gate = threading.Event()
        try:
            svc.add_handler("block", lambda gen, params: {"ok": gate.wait(10)})
            occupier = threading.Thread(target=lambda: svc.request("block", {}))
            occupier.start()
            deadline = time.monotonic() + 5
            while svc.inflight < 1 and time.monotonic() < deadline:
                time.sleep(0.01)
            with pytest.raises(DeadlineExceeded):
                svc.request("block", {}, deadline=0.05)
            gate.set()
            occupier.join(timeout=5)
        finally:
            gate.set()
            svc.close()
        docs = [json.loads(l) for l in sink.read_text(encoding="utf-8").splitlines()]
        assert any(doc["reason"] == "deadline" for doc in docs)

    def test_latency_threshold_trips_recorder(self, store_path, tmp_path):
        sink = tmp_path / "postmortem.jsonl"
        svc = LakeService(
            store=store_path, workers=1, batch_window=0.0,
            reload_check_interval=0.0, postmortem_path=sink,
            latency_threshold_ms=0.0,  # everything is "slow": always trips
        )
        try:
            svc.discover(covid_query_table(), k=2)
        finally:
            svc.close()
        [doc] = [json.loads(l) for l in sink.read_text(encoding="utf-8").splitlines()]
        assert doc["reason"] == "latency"
        assert doc["summary"]["latency_ms"] >= 0.0

    def test_exporter_flushes_on_close(self, store_path, tmp_path):
        sink = tmp_path / "telemetry.jsonl"
        svc = LakeService(
            store=store_path, workers=1, batch_window=0.0,
            reload_check_interval=0.0,
            export_path=sink, export_interval_s=3600.0,  # only the close flush
        )
        try:
            svc.discover(covid_query_table(), k=2, trace=True)
            svc.discover(covid_query_table(), k=2)
        finally:
            svc.close()
        docs = [json.loads(l) for l in sink.read_text(encoding="utf-8").splitlines()]
        metrics_docs = [d for d in docs if d["kind"] == "metrics"]
        trace_docs = [d for d in docs if d["kind"] == "trace"]
        assert metrics_docs and trace_docs
        assert metrics_docs[0]["identity"]["role"] == "service"
        assert metrics_docs[0]["metrics"]["counters"]["service.requests"] >= 2
        assert trace_docs[0]["trace"]["trace_id"]
        assert trace_docs[0]["summary"]["op"] == "discover"

    def test_metrics_text_wire_op(self, store_path):
        from repro.obs.export import parse_prometheus_text
        from repro.service import LakeServer, ServiceClient

        svc = LakeService(store=store_path, workers=1, batch_window=0.0)
        server = LakeServer(svc, port=0)
        server.start()
        try:
            client = ServiceClient(server.address)
            client.discover(covid_query_table(), k=2)
            text = client.metrics_text()
            parsed = parse_prometheus_text(text)
            assert parsed["repro_service_requests"] >= 1
            assert "# TYPE repro_service_requests counter" in text
            # The JSON metrics op and the text rendering agree.
            assert (
                parsed["repro_service_requests"]
                == client.metrics()["counters"]["service.requests"]
            )
        finally:
            server.close()
