"""Unit tests for the interned FD kernel primitives (repro.integration.intern)."""

from __future__ import annotations

import pickle

from repro.integration import joinable, merge_tuples, subsumes
from repro.integration.intern import (
    NULL_CODE,
    IntTuple,
    ValueInterner,
    int_connected_components,
    int_dedupe,
    int_joinable,
    int_merge,
    int_subsumes,
    intern_call_input,
    intern_tuples,
    mask_of,
    solve_interned,
    unintern_tuple,
)
from repro.integration.parallel import connected_components
from repro.integration.tuples import WorkTuple, cell_key
from repro.table import MISSING, PRODUCED


def wt(*cells, tids=("t1",)):
    return WorkTuple(cells=tuple(cells), tids=frozenset(tids))


def interned(*cells, tids=("t1",), interner=None):
    interner = interner if interner is not None else ValueInterner()
    return intern_tuples([wt(*cells, tids=tids)], interner)[0], interner


class TestValueInterner:
    def test_nulls_of_both_kinds_collapse_to_zero(self):
        interner = ValueInterner()
        assert interner.code(MISSING) == NULL_CODE
        assert interner.code(PRODUCED) == NULL_CODE

    def test_codes_are_stable_and_value_keyed(self):
        interner = ValueInterner()
        a = interner.code("a")
        assert interner.code("a") == a
        assert interner.code("b") != a

    def test_int_and_equal_float_share_a_code_bool_does_not(self):
        interner = ValueInterner()
        one = interner.code(1)
        assert interner.code(1.0) == one
        assert interner.code(True) != one

    def test_representative_cell_is_first_interned(self):
        interner = ValueInterner()
        code = interner.code(1)
        interner.code(1.0)
        assert interner.cell(code) == 1
        assert isinstance(interner.cell(code), int)

    def test_sort_ranks_are_order_isomorphic_to_cell_keys(self):
        interner = ValueInterner()
        cells = ["z", "a", 3, 1.5, True, "m"]
        codes = [interner.code(c) for c in cells]
        ranks = interner.sort_ranks()
        for i, code_i in enumerate(codes):
            for j, code_j in enumerate(codes):
                assert (ranks[code_i] < ranks[code_j]) == (
                    cell_key(cells[i]) < cell_key(cells[j])
                )

    def test_sort_ranks_cache_tracks_domain_growth(self):
        interner = ValueInterner()
        interner.code("a")
        first = interner.sort_ranks()
        assert interner.sort_ranks() is first  # cached
        interner.code("b")
        assert len(interner.sort_ranks()) == interner.domain


class TestIntTuple:
    def test_mask_marks_non_null_positions(self):
        work, _ = interned("a", MISSING, "b", PRODUCED)
        assert work.mask == 0b101
        assert mask_of(work.codes) == work.mask

    def test_pickle_round_trip(self):
        work, _ = interned("a", MISSING, tids=("t3", "t7"))
        clone = pickle.loads(pickle.dumps(work))
        assert clone.codes == work.codes
        assert clone.mask == work.mask
        assert clone.tids == work.tids

    def test_unintern_restores_representative_cells(self):
        interner = ValueInterner()
        [work] = intern_tuples([wt("a", MISSING, 1)], interner)
        restored = unintern_tuple(work, interner)
        assert restored.cells == ("a", PRODUCED, 1)  # kinds re-derived later
        assert restored.tids == work.tids


class TestPredicateParity:
    """int_* predicates agree with the object-level predicates."""

    CASES = [
        (("a", "b", PRODUCED), ("a", PRODUCED, "c")),
        (("a", "b"), ("a", "x")),
        (("a", PRODUCED), (PRODUCED, "b")),
        ((MISSING,), (MISSING,)),
        ((1,), (1.0,)),
        ((True,), (1,)),
        ((True, "x"), (True, "x")),
        (("a", "b", "c"), ("a", "b", MISSING)),
    ]

    def test_joinable_parity(self):
        for cells_a, cells_b in self.CASES:
            interner = ValueInterner()
            a, b = intern_tuples(
                [wt(*cells_a, tids=("t1",)), wt(*cells_b, tids=("t2",))], interner
            )
            assert int_joinable(a, b) == joinable(cells_a, cells_b), (cells_a, cells_b)

    def test_subsumes_parity(self):
        for cells_a, cells_b in self.CASES:
            interner = ValueInterner()
            a, b = intern_tuples(
                [wt(*cells_a, tids=("t1",)), wt(*cells_b, tids=("t2",))], interner
            )
            assert int_subsumes(a, b) == subsumes(cells_a, cells_b), (cells_a, cells_b)

    def test_merge_parity(self):
        interner = ValueInterner()
        a, b = intern_tuples(
            [wt("a", PRODUCED, tids=("t1",)), wt("a", "b", tids=("t2",))], interner
        )
        merged = int_merge(a, b)
        object_merged = merge_tuples(wt("a", PRODUCED), wt("a", "b", tids=("t2",)))
        assert merged.codes == interner.codes(object_merged.cells)
        assert merged.tids == frozenset({"t1", "t2"})
        assert merged.mask == 0b11

    def test_bool_no_longer_joins_equal_int(self):
        # The object predicates now agree with values_equal/cell_key:
        # bool stays distinct from int in data context.
        assert not joinable((True,), (1,))
        assert not subsumes((True,), (1,))
        assert joinable((1,), (1.0,))


class TestComponentsAndSolve:
    def test_int_components_match_object_components(self):
        tuples = [
            wt("a", PRODUCED, tids=("t1",)),
            wt("a", "b", tids=("t2",)),
            wt(PRODUCED, "z", tids=("t3",)),
            wt(PRODUCED, PRODUCED, tids=("t4",)),
        ]
        object_components, object_null = connected_components(tuples)
        interner = ValueInterner()
        ints = intern_tuples(tuples, interner)
        components, all_null = int_connected_components(ints, interner.domain)
        assert sorted(len(c) for c in components) == sorted(
            len(c) for c in object_components
        )
        assert len(all_null) == len(object_null) == 1
        assert all_null[0].tids == frozenset({"t4"})

    def test_dedupe_folds_to_minimal_witness(self):
        interner = ValueInterner()
        ints = intern_tuples(
            [
                wt("a", "b", tids=("t2", "t3")),
                wt("a", "b", tids=("t1",)),
            ],
            interner,
        )
        [unique] = int_dedupe(ints)
        assert unique.tids == frozenset({"t1"})

    def test_solve_interned_records_stats(self):
        tuples = [
            wt("k1", "x", PRODUCED, tids=("t1",)),
            wt("k1", PRODUCED, "y", tids=("t2",)),
            wt("k2", "z", PRODUCED, tids=("t3",)),
        ]
        stats: dict = {}
        final = solve_interned(tuples, ValueInterner(), stats)
        assert {tuple(w.cells) for w in final} == {
            ("k1", "x", "y"),
            ("k2", "z", PRODUCED),
        }
        assert stats["components"] == 2
        assert stats["input_tuples"] == 3
        assert stats["output_tuples"] == 2
        assert stats["domain"] >= 6
        for key in ("intern_seconds", "partition_seconds", "closure_seconds",
                    "subsume_seconds"):
            assert stats[key] >= 0.0

    def test_solve_interned_degenerate_all_null(self):
        tuples = [wt(MISSING, MISSING, tids=("t1",)), wt(MISSING, MISSING, tids=("t2",))]
        final = solve_interned(tuples, ValueInterner())
        assert len(final) == 1
        assert final[0].tids == frozenset({"t1"})


class TestPerCallRepresentatives:
    def test_shared_interner_spellings_do_not_leak_across_calls(self):
        # One long-lived AliteFD integrates a table spelling a value 1.0,
        # then an unrelated table spelling it 1: the second result must
        # render the *second call's* spelling, not the domain's first.
        from repro.integration import AliteFD
        from repro.table import Table

        fd = AliteFD()
        fd.integrate([Table(["x", "y"], [(1.0, "p")], name="A")])
        result = fd.integrate([Table(["x", "y"], [(1, "q")], name="B")])
        cell = result.rows[0][result.column_index("x")]
        assert cell == 1 and isinstance(cell, int) and not isinstance(cell, bool)

    def test_unintern_prefers_per_call_spelling(self):
        interner = ValueInterner()
        interner.code(1.0)  # domain-first spelling from an earlier call
        [work], cells_by_code = intern_call_input([wt(1, "z")], interner)
        restored = unintern_tuple(work, interner, cells_by_code)
        assert isinstance(restored.cells[0], int)

    def test_parallel_results_carry_input_tuples_for_explain(self):
        from repro.integration import ParallelFD
        from repro.integration.explain import fact_lineage
        from repro.table import Table

        tables = [
            Table(["k", "a"], [("k1", "x")], name="A"),
            Table(["k", "b"], [("k1", "y")], name="B"),
        ]
        result = ParallelFD(max_workers=1).integrate(tables)
        assert result.input_tuples
        lineage = fact_lineage(result, "f1")
        assert [entry["attribute"] for entry in lineage] == ["k", "a", "b"]
