"""Unit tests for the observability layer (repro.obs).

The contracts pinned here:

* **histogram quantiles vs an exact oracle** -- on random streams, the
  fixed-bucket nearest-rank estimate brackets the exact nearest-rank
  value from a sorted list: ``oracle <= estimate <= the oracle's bucket
  upper bound`` (and the estimate never exceeds the observed max);
* **exact totals under contention** -- counters and histograms hammered
  from many threads lose nothing (per-instrument locks, not best-effort);
* **span trees cross worker-pool boundaries** -- ``activate(tracer,
  parent=...)`` re-anchors a worker thread so its spans land under the
  submitting request's root, exactly how the service pool threads its
  tracer through the queue;
* **no-op recorder equivalence** -- code under ``trace.span(...)``
  behaves identically with and without an ambient tracer (same return
  values, no observable state), so instrumentation can ship enabled-off;
* **mergeable snapshots** -- counters sum, gauges last-win, histogram
  buckets sum and quantiles recompute;
* **span-derived kernel stats** -- ``fd_stats_from_span`` reproduces the
  historical ``--explain`` stats keys byte-for-byte, so the explain
  renderers can be thin views over trace data;
* **distributed trace ids** -- a tracer mints a 16-hex id or adopts one
  passed across a process boundary, ``to_dict`` stamps it on the root,
  and ``attach_tree`` grafts a worker's finished tree so scatter-gather
  requests render as one tree;
* **the trace renderer** -- ``format_trace`` (the ``repro trace`` /
  ``--trace`` output) shows the trace id on the root line, orders a
  scatter fan-out slowest-shard first, and surfaces error annotations.
"""

from __future__ import annotations

import json
import math
import random
import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.obs import metrics, trace
from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS_MS,
    Histogram,
    MetricsRegistry,
    merge_snapshots,
)
from repro.obs.trace import (
    NOOP_SPAN,
    Tracer,
    activate,
    format_trace,
    new_trace_id,
)


def nearest_rank(sorted_values: list[float], q: float) -> float:
    """The exact nearest-rank quantile the histogram approximates."""
    n = len(sorted_values)
    rank = min(n, max(1, math.ceil(q * n)))
    return sorted_values[rank - 1]


class TestHistogramQuantiles:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    @pytest.mark.parametrize("q", [0.5, 0.95, 0.99])
    def test_bracketed_by_oracle_bucket(self, seed, q):
        rng = random.Random(seed)
        hist = Histogram(DEFAULT_LATENCY_BUCKETS_MS)
        values = [rng.expovariate(1 / 20.0) for _ in range(500)]
        for value in values:
            hist.observe(value)
        values.sort()
        oracle = nearest_rank(values, q)
        estimate = hist.quantile(q)
        upper_bounds = [b for b in DEFAULT_LATENCY_BUCKETS_MS if b >= oracle]
        oracle_bucket_top = upper_bounds[0] if upper_bounds else max(values)
        assert oracle <= estimate <= max(oracle_bucket_top, oracle)
        assert estimate <= max(values)

    def test_quantiles_monotone_and_snapshot_shape(self):
        hist = Histogram(DEFAULT_LATENCY_BUCKETS_MS)
        rng = random.Random(42)
        for _ in range(200):
            hist.observe_ms(rng.uniform(0.01, 2000.0))
        snap = hist.snapshot()
        assert snap["count"] == 200
        assert snap["p50"] <= snap["p95"] <= snap["p99"] <= snap["max"]
        assert snap["min"] <= snap["p50"]
        assert sum(snap["buckets"].values()) == 200
        assert "+inf" in snap["buckets"]

    def test_empty_histogram(self):
        hist = Histogram((1.0, 10.0))
        assert hist.quantile(0.5) == 0.0
        assert hist.snapshot()["count"] == 0


class TestConcurrency:
    def test_counter_totals_exact(self):
        registry = MetricsRegistry()
        threads, per_thread = 8, 5000

        def hammer():
            counter = registry.counter("hits")
            for _ in range(per_thread):
                counter.inc()

        workers = [threading.Thread(target=hammer) for _ in range(threads)]
        for w in workers:
            w.start()
        for w in workers:
            w.join()
        assert registry.counter("hits").value == threads * per_thread

    def test_histogram_totals_exact(self):
        registry = MetricsRegistry()
        threads, per_thread = 8, 2000

        def hammer(tid):
            hist = registry.histogram("lat", DEFAULT_LATENCY_BUCKETS_MS)
            for i in range(per_thread):
                hist.observe((tid * per_thread + i) % 97 + 0.5)

        workers = [threading.Thread(target=hammer, args=(t,)) for t in range(threads)]
        for w in workers:
            w.start()
        for w in workers:
            w.join()
        snap = registry.histogram("lat", DEFAULT_LATENCY_BUCKETS_MS).snapshot()
        assert snap["count"] == threads * per_thread
        assert sum(snap["buckets"].values()) == threads * per_thread


class TestSpanTrees:
    def test_nesting_and_counters(self):
        tracer = Tracer()
        with tracer.span("root", k=3):
            with tracer.span("child.a") as a:
                a.add(rows=10)
                a.add(rows=5)
            with tracer.span("child.b"):
                pass
        doc = tracer.to_dict()
        assert doc["name"] == "root"
        assert doc["counters"] == {"k": 3}
        assert [c["name"] for c in doc["children"]] == ["child.a", "child.b"]
        assert doc["children"][0]["counters"] == {"rows": 15}
        assert doc["wall_ms"] >= max(c["wall_ms"] for c in doc["children"])

    def test_worker_pool_boundary(self):
        """Spans opened on pool threads land under the submitting root,
        the same hand-off the service uses for queued requests."""
        tracer = Tracer()
        with tracer.span("request"):
            with ThreadPoolExecutor(max_workers=2) as pool:
                def work(i):
                    with activate(tracer, parent=tracer.root):
                        with tracer.span(f"worker.{i}"):
                            return i
                assert sorted(pool.map(work, range(4))) == [0, 1, 2, 3]
        doc = tracer.to_dict()
        names = sorted(c["name"] for c in doc["children"])
        assert names == [f"worker.{i}" for i in range(4)]

    def test_ambient_span_helper(self):
        tracer = Tracer()
        with activate(tracer):
            with trace.span("outer"):
                with trace.span("inner", n=1):
                    pass
        doc = tracer.to_dict()
        assert doc["name"] == "outer"
        assert doc["children"][0]["name"] == "inner"

    def test_error_annotation(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("boom"):
                raise ValueError("x")
        assert tracer.to_dict()["counters"]["error"] == "ValueError"

    def test_record_attaches_premeasured_child(self):
        tracer = Tracer()
        with tracer.span("root"):
            tracer.record("hot.loop", wall_s=0.25, items=100)
        child = tracer.to_dict()["children"][0]
        assert child["name"] == "hot.loop"
        assert child["wall_ms"] == 250.0
        assert child["counters"] == {"items": 100}

    def test_format_trace_renders_tree(self):
        tracer = Tracer()
        with tracer.span("root"):
            with tracer.span("leaf", n=2):
                pass
        rendered = format_trace(tracer.to_dict())
        assert "root" in rendered and "leaf" in rendered
        assert "└─" in rendered and "[n=2]" in rendered
        assert format_trace({}) == "(empty trace)"
        assert json.loads(json.dumps(tracer.to_dict()))  # JSON-safe


class TestTraceIds:
    def test_minted_id_is_16_hex(self):
        minted = new_trace_id()
        assert len(minted) == 16
        int(minted, 16)  # raises if not hex
        assert new_trace_id() != minted

    def test_adoption_vs_minting(self):
        assert Tracer(trace_id="deadbeefcafe0123").trace_id == "deadbeefcafe0123"
        tracer = Tracer()
        assert len(tracer.trace_id) == 16

    def test_to_dict_stamps_root_only(self):
        tracer = Tracer(trace_id="feedface00000001")
        with tracer.span("root"):
            with tracer.span("child"):
                pass
        doc = tracer.to_dict()
        assert doc["trace_id"] == "feedface00000001"
        assert "trace_id" not in doc["children"][0]

    def test_attach_tree_grafts_worker_tree(self):
        """The process-boundary hand-off: a worker's finished to_dict
        tree re-attaches under the driver's scatter span verbatim."""
        worker = Tracer(trace_id="aa00aa00aa00aa00")
        with worker.span("shard[1]", tables=12, trace_id=worker.trace_id):
            with worker.span("probe"):
                pass
        shipped = worker.to_dict()  # crosses the pickle boundary as a dict

        driver = Tracer(trace_id="aa00aa00aa00aa00")
        with driver.span("discover") as scatter:
            driver.attach_tree(shipped, parent=scatter)
        doc = driver.to_dict()
        grafted = doc["children"][0]
        assert grafted["name"] == "shard[1]"
        assert grafted["counters"]["tables"] == 12
        assert grafted["counters"]["trace_id"] == "aa00aa00aa00aa00"
        assert [c["name"] for c in grafted["children"]] == ["probe"]
        assert grafted["wall_ms"] == shipped["wall_ms"]  # verbatim, not re-timed


def scatter_tree() -> dict:
    """A hand-built sharded discover tree in Span.to_dict shape: four
    shard children with distinct self times plus one error-annotated
    span, mirroring what a traced ``discover --service`` returns."""
    def node(name, self_ms, counters=None, children=()):
        children = list(children)
        wall = self_ms + sum(c["wall_ms"] for c in children)
        return {
            "name": name,
            "wall_ms": wall,
            "cpu_ms": wall,
            "self_ms": self_ms,
            "counters": dict(counters or {}),
            "children": children,
        }

    shards = [
        node("shard[0]", 12.0, {"trace_id": "0123456789abcdef"}),
        node("shard[1]", 48.0, {"trace_id": "0123456789abcdef"}),
        node(
            "shard[2]",
            3.0,
            {"trace_id": "0123456789abcdef", "error": "WorkerCrash"},
        ),
        node("shard[3]", 21.0, {"trace_id": "0123456789abcdef"}),
    ]
    scatter = node("discover.scatter", 1.0, {"shards": 4}, shards)
    root = node(
        "service.discover", 2.0, {"k": 5}, [scatter]
    )
    root["trace_id"] = "0123456789abcdef"
    return root


class TestTraceRenderer:
    def test_root_line_carries_trace_id(self):
        rendered = format_trace(scatter_tree())
        first_line = rendered.splitlines()[0]
        assert first_line.startswith("service.discover")
        assert "(trace 0123456789abcdef)" in first_line
        # Only the root advertises the id; child lines stay compact.
        assert sum("(trace " in line for line in rendered.splitlines()) == 1

    def test_scatter_children_sorted_slowest_first(self):
        rendered = format_trace(scatter_tree())
        order = [
            line.split("shard[")[1][0]
            for line in rendered.splitlines()
            if "shard[" in line
        ]
        assert order == ["1", "3", "0", "2"]  # by self_ms descending

    def test_error_annotation_rendered(self):
        rendered = format_trace(scatter_tree())
        [crashed] = [line for line in rendered.splitlines() if "shard[2]" in line]
        assert "error=WorkerCrash" in crashed

    def test_non_scatter_children_keep_call_order(self):
        tracer = Tracer()
        with tracer.span("root"):
            with tracer.span("b_first"):
                pass
            with tracer.span("a_second"):
                pass
        rendered = format_trace(tracer.to_dict()).splitlines()
        assert rendered[1].find("b_first") > 0
        assert rendered[2].find("a_second") > 0


class TestNoopEquivalence:
    def test_no_ambient_tracer_is_noop(self):
        assert trace.current_tracer() is None
        span = trace.span("anything", rows=1)
        assert span is NOOP_SPAN
        with trace.span("outer") as outer:
            assert outer is NOOP_SPAN
            outer.add(rows=5)  # silently dropped, never raises
        trace.record("hot.loop", wall_s=1.0, items=3)  # also a no-op

    def test_instrumented_function_identical_results(self):
        def compute(n):
            total = 0
            with trace.span("compute", n=n) as span:
                for i in range(n):
                    total += i * i
                span.add(total=total)
            return total

        disabled = compute(50)
        tracer = Tracer()
        with activate(tracer):
            enabled = compute(50)
        assert disabled == enabled
        assert tracer.to_dict()["counters"]["total"] == enabled

    def test_activation_restores_previous_state(self):
        tracer = Tracer()
        with activate(tracer):
            assert trace.current_tracer() is tracer
        assert trace.current_tracer() is None


class TestSnapshots:
    def test_merge(self):
        a = MetricsRegistry()
        b = MetricsRegistry()
        a.counter("hits").inc(3)
        b.counter("hits").inc(4)
        b.counter("only_b").inc()
        a.gauge("depth").set(2)
        b.gauge("depth").set(9)
        for v in (1.0, 2.0):
            a.histogram("lat", (1.0, 10.0)).observe(v)
        for v in (20.0, 30.0, 40.0):
            b.histogram("lat", (1.0, 10.0)).observe(v)
        merged = merge_snapshots(a.snapshot(), b.snapshot())
        assert merged["counters"]["hits"] == 7
        assert merged["counters"]["only_b"] == 1
        assert merged["gauges"]["depth"] == 9  # last-wins
        lat = merged["histograms"]["lat"]
        assert lat["count"] == 5
        assert lat["max"] == 40.0
        assert sum(lat["buckets"].values()) == 5

    def test_global_registry_reset(self):
        metrics.reset_global_registry()
        metrics.counter("x").inc()
        assert metrics.global_registry().snapshot()["counters"]["x"] == 1
        metrics.reset_global_registry()
        assert "x" not in metrics.global_registry().snapshot()["counters"]


class TestSpanDerivedKernelStats:
    def test_explain_stats_keys_unchanged(self):
        """The interned FD kernel's --explain payload, now derived from
        the span tree, keeps its historical keys exactly."""
        from repro.integration.alite import AliteFD
        from repro.table.table import Table

        tables = [
            Table(["City", "Pop"], [("Oslo", "1"), ("Paris", "2")], name="a"),
            Table(["City", "Area"], [("Oslo", "10"), ("Rome", "30")], name="b"),
        ]
        integrator = AliteFD()
        integrator.integrate(tables)
        stats = integrator.last_stats
        assert sorted(stats) == [
            "all_null_tuples",
            "closure_seconds",
            "components",
            "domain",
            "input_tuples",
            "intern_seconds",
            "largest_component",
            "output_tuples",
            "partition_seconds",
            "subsume_seconds",
        ]
        assert stats["input_tuples"] == 4

    def test_traced_integrate_exposes_phase_children(self):
        from repro.integration.alite import AliteFD
        from repro.table.table import Table

        tables = [
            Table(["City", "Pop"], [("Oslo", "1"), ("Paris", "2")], name="a"),
            Table(["City", "Area"], [("Oslo", "10"), ("Rome", "30")], name="b"),
        ]
        tracer = Tracer()
        with activate(tracer):
            AliteFD().integrate(tables)
        doc = tracer.to_dict()

        def find(node, name):
            if node["name"] == name:
                return node
            for child in node.get("children", []):
                hit = find(child, name)
                if hit is not None:
                    return hit
            return None

        fd = find(doc, "integrate.fd")
        assert fd is not None
        child_names = {c["name"] for c in fd["children"]}
        assert {"integrate.intern", "integrate.partition", "integrate.closure"} <= child_names
        assert fd["counters"]["input_tuples"] == 4
