"""Binary cell codec fidelity audit (ISSUE 6 satellite).

The v2 segment dictionary rides on :func:`encode_cells_binary` /
:func:`decode_cells_binary`, which has two decode paths -- a plain loop
below ``_VECTOR_MIN_CELLS`` cells and a numpy group-decode above it.
Both must reproduce every cell **bit-for-bit**: NaN keeps its payload,
``-0.0`` keeps its sign, ints beyond 2**53 don't round through a
double, ``True`` never collapses into ``1``, and the two null kinds
come back as the same singletons.  Corruption must raise
:class:`BinaryCodecError`, never decode into plausible garbage.
"""

from __future__ import annotations

import math
import struct

import pytest

from repro import accel
from repro.store.codec import (
    _VECTOR_MIN_CELLS,
    BinaryCodecError,
    decode_cells_binary,
    encode_cells_binary,
)
from repro.table import MISSING, PRODUCED


@pytest.fixture(params=["loop", "numpy"])
def backend(request):
    """Force each decode backend in turn; restore the ambient one."""
    if request.param == "numpy" and not accel.HAVE_NUMPY:
        pytest.skip("numpy not installed")
    previous = accel.set_numpy_enabled(request.param == "numpy")
    yield request.param
    accel.set_numpy_enabled(previous)


def pad_to_vector_width(cells):
    """Enough filler that the numpy path (>= _VECTOR_MIN_CELLS) engages."""
    filler = ["pad"] * max(0, _VECTOR_MIN_CELLS - len(cells))
    return list(cells) + filler


def roundtrip(cells):
    return decode_cells_binary(encode_cells_binary(cells), len(cells))


def bits(cell):
    """Equality key under which NaN == NaN and -0.0 != 0.0."""
    if type(cell) is float:
        return ("float", struct.pack("<d", cell))
    return (type(cell).__name__, cell)


FLOATS = [
    float("nan"),
    float("inf"),
    float("-inf"),
    -0.0,
    0.0,
    5e-324,  # smallest subnormal
    1.7976931348623157e308,  # largest finite
    0.1,
    -1.5,
]

INTS = [
    0,
    1,
    -1,
    2**53,
    2**53 + 1,  # not representable as a double
    -(2**53) - 1,
    2**80,
    -(2**80),
    2**400,
]

STRINGS = ["", "plain", "héllo", "日本語", "a" * 1000, "mixed-ascii-日本"]

EVERYTHING = (
    FLOATS + INTS + STRINGS + [True, False, MISSING, PRODUCED]
)


class TestFidelity:
    def test_floats_bit_identical(self, backend):
        for padded in (FLOATS, pad_to_vector_width(FLOATS)):
            decoded = roundtrip(padded)
            for cell, back in zip(padded, decoded):
                assert bits(back) == bits(cell)

    def test_nan_payload_and_negative_zero(self, backend):
        decoded = roundtrip(pad_to_vector_width([float("nan"), -0.0]))
        assert math.isnan(decoded[0])
        assert struct.pack("<d", decoded[1]) == struct.pack("<d", -0.0)
        assert math.copysign(1.0, decoded[1]) == -1.0

    def test_large_ints_exact(self, backend):
        for padded in (INTS, pad_to_vector_width(INTS)):
            decoded = roundtrip(padded)
            for cell, back in zip(INTS, decoded):
                assert type(back) is int and back == cell

    def test_bools_stay_bools(self, backend):
        decoded = roundtrip(pad_to_vector_width([True, False, 1, 0]))
        assert decoded[0] is True
        assert decoded[1] is False
        assert type(decoded[2]) is int and decoded[2] == 1
        assert type(decoded[3]) is int and decoded[3] == 0

    def test_null_singletons(self, backend):
        decoded = roundtrip(pad_to_vector_width([MISSING, PRODUCED]))
        assert decoded[0] is MISSING
        assert decoded[1] is PRODUCED

    def test_strings_including_non_ascii(self, backend):
        for padded in (STRINGS, pad_to_vector_width(STRINGS)):
            assert roundtrip(padded)[: len(STRINGS)] == STRINGS

    def test_everything_mixed(self, backend):
        for cells in (EVERYTHING, pad_to_vector_width(EVERYTHING)):
            decoded = roundtrip(cells)
            assert [bits(c) for c in decoded] == [bits(c) for c in cells]

    def test_empty(self, backend):
        assert roundtrip([]) == []

    def test_backends_agree(self):
        if not accel.HAVE_NUMPY:
            pytest.skip("numpy not installed")
        cells = pad_to_vector_width(EVERYTHING)
        buffer = encode_cells_binary(cells)
        previous = accel.set_numpy_enabled(True)
        try:
            vectorized = decode_cells_binary(buffer, len(cells))
            accel.set_numpy_enabled(False)
            looped = decode_cells_binary(buffer, len(cells))
        finally:
            accel.set_numpy_enabled(previous)
        assert [bits(c) for c in vectorized] == [bits(c) for c in looped]


class TestCorruption:
    def corpus(self):
        """Small (loop path) and padded (numpy path) encodings."""
        small = ["abcd", 7, 1.5, True, MISSING]
        return [small, pad_to_vector_width(small)]

    def test_truncated(self, backend):
        for cells in self.corpus():
            buffer = encode_cells_binary(cells)
            for cut in (len(buffer) - 1, len(cells) * 5 - 1, 0):
                if cut < 0 or cut >= len(buffer):
                    continue
                with pytest.raises(BinaryCodecError):
                    decode_cells_binary(buffer[:cut], len(cells))

    def test_trailing_garbage(self, backend):
        for cells in self.corpus():
            buffer = encode_cells_binary(cells)
            with pytest.raises(BinaryCodecError, match="trailing"):
                decode_cells_binary(buffer + b"\x00", len(cells))

    def test_unknown_tag(self, backend):
        for cells in self.corpus():
            buffer = bytearray(encode_cells_binary(cells))
            buffer[0] = 0x7F
            with pytest.raises(BinaryCodecError, match="unknown binary cell tag"):
                decode_cells_binary(bytes(buffer), len(cells))

    def test_fixed_tag_length_mismatch(self, backend):
        for cells in self.corpus():
            position = cells.index(1.5)
            buffer = bytearray(encode_cells_binary(cells))
            # The float's u32 length field lives at count + 4 * position.
            offset = len(cells) + 4 * position
            buffer[offset : offset + 4] = struct.pack("<I", 7)
            with pytest.raises(BinaryCodecError, match="declares payload length"):
                decode_cells_binary(bytes(buffer), len(cells))

    def test_invalid_utf8(self, backend):
        for cells in self.corpus():
            buffer = bytearray(encode_cells_binary(cells))
            # String payloads start right after the tag + length blocks.
            buffer[len(cells) * 5] = 0xFF
            with pytest.raises(BinaryCodecError, match="UTF-8"):
                decode_cells_binary(bytes(buffer), len(cells))
