"""Unit tests for incremental Full Disjunction (AliteFD.integrate_incremental)."""

from __future__ import annotations

import pytest

from repro.integration import AliteFD, OuterJoinIntegrator, normalized_key
from repro.table import MISSING, Table


def values(result):
    return sorted(normalized_key(row) for row in result.rows)


class TestIncrementalFD:
    def test_prefix_equality_on_paper_tables(self, vaccine_tables):
        fd = AliteFD()
        rolling = fd.integrate([vaccine_tables[0]])
        for i, table in enumerate(vaccine_tables[1:], start=2):
            rolling = fd.integrate_incremental(rolling, table)
            batch = fd.integrate(vaccine_tables[:i])
            assert values(rolling) == values(batch)
            assert sorted(map(sorted, rolling.provenance)) == sorted(
                map(sorted, batch.provenance)
            )

    def test_subsumed_tuple_can_still_merge_later(self):
        # t2 = (JnJ, ±) is subsumed after integrating the first two tables,
        # but a third table can revive it: incremental must not lose it.
        a = Table(["Vaccine", "Approver"], [("Pfizer", "FDA"), ("JnJ", MISSING)], name="A")
        b = Table(["Vaccine", "Country"], [("JnJ", "USA")], name="B")
        c = Table(["Vaccine", "Trial"], [("JnJ", "phase-3")], name="C")
        fd = AliteFD()
        two = fd.integrate([a, b])
        three_incremental = fd.integrate_incremental(two, c)
        three_batch = fd.integrate([a, b, c])
        assert values(three_incremental) == values(three_batch)

    def test_new_columns_are_appended(self, vaccine_tables):
        fd = AliteFD()
        base = fd.integrate(vaccine_tables[:2])
        extended = fd.integrate_incremental(base, vaccine_tables[2])
        assert set(extended.columns) == {"Vaccine", "Approver", "Country"}

    def test_tid_numbering_continues(self, vaccine_tables):
        fd = AliteFD()
        base = fd.integrate(vaccine_tables[:2])  # t1..t4
        extended = fd.integrate_incremental(base, vaccine_tables[2])
        assert extended.tid_sources["t5"] == ("T6", 0)
        assert extended.tid_sources["t6"] == ("T6", 1)

    def test_null_kinds_still_canonical(self, vaccine_tables):
        fd = AliteFD()
        rolling = fd.integrate([vaccine_tables[0]])
        for table in vaccine_tables[1:]:
            rolling = fd.integrate_incremental(rolling, table)
        batch = fd.integrate(vaccine_tables)
        assert rolling.equals(batch, ignore_row_order=True)  # incl. null kinds

    def test_requires_alite_produced_input(self, vaccine_tables):
        oj = OuterJoinIntegrator().integrate(vaccine_tables)
        stripped = type(oj)(
            oj.columns, oj.rows, oj.provenance, oj.tid_sources, algorithm="outer_join"
        )
        with pytest.raises(ValueError, match="input tuples"):
            AliteFD().integrate_incremental(stripped, vaccine_tables[0].with_name("X"))

    def test_incremental_from_single_table(self, covid_query):
        fd = AliteFD()
        base = fd.integrate([covid_query])
        more = Table(["City", "Mayor"], [("Berlin", "K. Wegner")], name="mayors")
        extended = fd.integrate_incremental(base, more)
        assert extended.find_fact(City="Berlin", Mayor="K. Wegner") is not None
