"""Unit tests for the pipeline core (registry, results, Dialite)."""

from __future__ import annotations

import pytest

from repro import Dialite, DataLake
from repro.core.registry import DuplicateComponentError, Registry
from repro.discovery import inner_join_similarity
from repro.integration import Integrator
from repro.table import Table


class TestRegistry:
    def test_register_get_roundtrip(self):
        registry: Registry[int] = Registry("thing")
        registry.register("one", 1)
        assert registry.get("one") == 1
        assert "one" in registry and len(registry) == 1

    def test_duplicate_rejected_unless_replace(self):
        registry: Registry[int] = Registry("thing")
        registry.register("x", 1)
        with pytest.raises(DuplicateComponentError):
            registry.register("x", 2)
        registry.register("x", 2, replace=True)
        assert registry.get("x") == 2

    def test_missing_lists_available(self):
        registry: Registry[int] = Registry("thing")
        registry.register("a", 1)
        with pytest.raises(KeyError, match="registered: \\['a'\\]"):
            registry.get("b")

    def test_unregister(self):
        registry: Registry[int] = Registry("thing")
        registry.register("a", 1)
        assert registry.unregister("a") == 1
        with pytest.raises(KeyError):
            registry.unregister("a")

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            Registry("thing").register("", 1)


@pytest.fixture
def pipeline(covid_unionable, covid_joinable):
    return Dialite(DataLake([covid_unionable, covid_joinable])).fit()


class TestDialiteDiscovery:
    def test_discover_builds_integration_set(self, pipeline, covid_query):
        outcome = pipeline.discover(covid_query, k=3, query_column="City")
        assert outcome.integration_set[0].name == "T1"
        assert set(outcome.discovered_names) == {"T2", "T3"}

    def test_query_name_collision_rejected(self, pipeline, covid_unionable):
        with pytest.raises(ValueError, match="collides"):
            pipeline.discover(covid_unionable)

    def test_select_subset(self, pipeline, covid_query):
        outcome = pipeline.discover(covid_query, k=3, query_column="City")
        chosen = outcome.select(["T3"])
        assert [t.name for t in chosen] == ["T1", "T3"]
        with pytest.raises(KeyError):
            outcome.select(["nope"])

    def test_summary_table(self, pipeline, covid_query):
        outcome = pipeline.discover(covid_query, k=3)
        summary = outcome.summary()
        assert summary.columns == ("table", "score", "best_discoverer", "reason")


class TestDialiteIntegration:
    def test_integrate_outcome_directly(self, pipeline, covid_query):
        outcome = pipeline.discover(covid_query, k=3, query_column="City")
        integrated = pipeline.integrate(outcome)
        assert integrated.num_rows == 7  # Figure 3

    def test_integrator_by_name(self, pipeline, covid_query):
        outcome = pipeline.discover(covid_query, k=3, query_column="City")
        oj = pipeline.integrate(outcome, integrator="outer_join")
        assert oj.algorithm == "outer_join"

    def test_unknown_integrator(self, pipeline, covid_tables):
        with pytest.raises(KeyError):
            pipeline.integrate(covid_tables, integrator="nope")

    def test_prealigned_skip_alignment(self, pipeline, small_integration_set):
        integrated = pipeline.integrate(small_integration_set, align=False)
        assert "Key" in integrated.columns

    def test_default_integrator_validated_eagerly(self, covid_unionable):
        with pytest.raises(KeyError):
            Dialite(DataLake([covid_unionable]), default_integrator="bogus")


class TestDialiteAnalyze:
    def test_analyze_by_name(self, pipeline, covid_query):
        outcome = pipeline.discover(covid_query, k=3, query_column="City")
        integrated = pipeline.integrate(outcome)
        described = pipeline.analyze(integrated, "describe")
        assert described["rows"] == 7

    def test_run_end_to_end_with_analyses(self, pipeline, covid_query):
        result = pipeline.run(
            covid_query,
            k=3,
            query_column="City",
            analyses={"describe": {}},
        )
        assert result.integrated.num_rows == 7
        assert result.analyses["describe"]["rows"] == 7
        assert "T2" in result.integration_set_names


class TestDialiteExtensibility:
    def test_add_similarity_function_fig4(self, pipeline, covid_query):
        pipeline.add_discoverer(inner_join_similarity, name="inner_join_sim")
        outcome = pipeline.discover(
            covid_query, k=3, discoverer_names=["inner_join_sim"]
        )
        assert outcome.per_discoverer["inner_join_sim"]
        assert outcome.per_discoverer["inner_join_sim"][0].table_name == "T3"

    def test_add_custom_integrator_fig6(self, pipeline, covid_tables):
        class FirstTableOnly(Integrator):
            name = "first_only"

            def _integrate(self, tables, name):
                from repro.integration import UnionIntegrator

                return UnionIntegrator().integrate(tables[:1], name=name)

        pipeline.add_integrator(FirstTableOnly())
        result = pipeline.integrate(covid_tables, integrator="first_only")
        assert result.num_rows == 3

    def test_add_custom_app(self, pipeline, covid_query):
        from repro.analysis import AnalysisApp

        class RowCounter(AnalysisApp):
            name = "row_counter"

            def run(self, table, **options):
                return table.num_rows

        pipeline.add_app(RowCounter())
        assert pipeline.analyze(covid_query, "row_counter") == 3

    def test_generate_query_passthrough(self, pipeline):
        table = pipeline.generate_query("covid cases", rows=4, seed=2)
        assert table.num_rows == 4

    def test_lake_accepts_plain_sequences(self, covid_unionable):
        pipeline = Dialite([covid_unionable])
        assert "T2" in pipeline.lake
        pipeline2 = Dialite({"T2": covid_unionable})
        assert "T2" in pipeline2.lake


class TestAllDiscoverersConstructor:
    def test_six_engines_registered(self, covid_unionable):
        pipeline = Dialite.with_all_discoverers(DataLake([covid_unionable]))
        assert set(pipeline.discoverers.names) == {
            "santos", "lsh_ensemble", "josie", "starmie", "tus", "cocoa",
        }

    def test_discovery_works_across_all(self, covid_unionable, covid_joinable, covid_query):
        pipeline = Dialite.with_all_discoverers(
            DataLake([covid_unionable, covid_joinable])
        ).fit()
        outcome = pipeline.discover(covid_query, k=3, query_column="City")
        assert set(outcome.per_discoverer) == set(pipeline.discoverers.names)
        assert "T2" in outcome.discovered_names
