"""Unit tests for the extended relational operators and the HLL sketch."""

from __future__ import annotations

import pytest

from repro.sketch import HyperLogLog
from repro.table import MISSING, PRODUCED, Table, ops


@pytest.fixture
def left():
    return Table(["k", "a"], [("x", 1), ("y", 2), (MISSING, 3)], name="L")


@pytest.fixture
def right():
    return Table(["k", "b"], [("x", 10), ("w", 12)], name="R")


class TestSemiAntiJoin:
    def test_semi_join_keeps_matching(self, left, right):
        result = ops.semi_join(left, right)
        assert result.columns == ("k", "a")
        assert result.column("k") == ["x"]

    def test_anti_join_keeps_unmatched_and_null_keys(self, left, right):
        result = ops.anti_join(left, right)
        assert result.column("a") == [2, 3]  # y row + null-key row

    def test_semi_plus_anti_partition_left(self, left, right):
        semi = ops.semi_join(left, right)
        anti = ops.anti_join(left, right)
        assert semi.num_rows + anti.num_rows == left.num_rows

    def test_no_shared_columns_raises(self, left):
        other = Table(["z"], [("q",)], name="o")
        with pytest.raises(ValueError, match="no shared columns"):
            ops.semi_join(left, other)


class TestAddDropColumns:
    def test_add_column_computes_from_row(self, left):
        result = ops.add_column(left, "a2", lambda row: row["a"] * 2 if row["a"] else row["a"])
        assert result.column("a2") == [2, 4, 6]

    def test_add_column_position(self, left):
        result = ops.add_column(left, "first", lambda row: 0, position=0)
        assert result.columns[0] == "first"

    def test_add_existing_rejected(self, left):
        with pytest.raises(ValueError, match="already"):
            ops.add_column(left, "a", lambda row: 0)

    def test_drop_columns(self, left):
        result = ops.drop_columns(left, ["a"])
        assert result.columns == ("k",)

    def test_drop_unknown_rejected(self, left):
        with pytest.raises(KeyError):
            ops.drop_columns(left, ["zz"])

    def test_drop_all_rejected(self, left):
        with pytest.raises(ValueError, match="every column"):
            ops.drop_columns(left, ["k", "a"])


class TestValueCounts:
    def test_counts_sorted_desc(self):
        table = Table(["c"], [("a",), ("b",), ("a",), (MISSING,)])
        counts = ops.value_counts(table, "c")
        assert counts.rows[0] == ("a", 2)
        assert counts.num_rows == 3

    def test_null_kinds_counted_separately(self):
        table = Table(["c"], [(MISSING,), (PRODUCED,), (MISSING,)])
        counts = ops.value_counts(table, "c")
        assert {(repr(v), n) for v, n in counts.rows} == {("±", 2), ("⊥", 1)}


class TestSample:
    def test_deterministic(self):
        table = Table(["x"], [(i,) for i in range(100)])
        assert ops.sample(table, 10, seed=4).equals(ops.sample(table, 10, seed=4))

    def test_sample_larger_than_table_is_identity(self, left):
        assert ops.sample(left, 100).equals(left)

    def test_negative_rejected(self, left):
        with pytest.raises(ValueError):
            ops.sample(left, -1)


class TestPivot:
    @pytest.fixture
    def long_table(self):
        return Table(
            ["city", "metric", "value"],
            [
                ("Berlin", "cases", 10),
                ("Berlin", "deaths", 1),
                ("Boston", "cases", 20),
                ("Boston", "cases", 30),
            ],
            name="long",
        )

    def test_wide_shape(self, long_table):
        wide = ops.pivot(long_table, "city", "metric", "value")
        assert wide.columns == ("city", "cases", "deaths")
        assert wide.num_rows == 2

    def test_aggregation_applied(self, long_table):
        wide = ops.pivot(long_table, "city", "metric", "value", agg="mean")
        boston = dict(zip(wide.columns, wide.rows[1]))
        assert boston["cases"] == 25

    def test_missing_combination_is_produced_null(self, long_table):
        wide = ops.pivot(long_table, "city", "metric", "value")
        boston = dict(zip(wide.columns, wide.rows[1]))
        assert boston["deaths"] is PRODUCED

    def test_custom_agg(self, long_table):
        wide = ops.pivot(long_table, "city", "metric", "value", agg=len)
        boston = dict(zip(wide.columns, wide.rows[1]))
        assert boston["cases"] == 2


class TestHyperLogLog:
    def test_small_counts_near_exact(self):
        hll = HyperLogLog(precision=12).update(f"v{i}" for i in range(100))
        assert abs(len(hll) - 100) <= 3  # linear-counting regime

    def test_large_counts_within_error(self):
        n = 50_000
        hll = HyperLogLog(precision=12).update(f"v{i}" for i in range(n))
        assert abs(hll.cardinality() - n) / n < 3 * hll.relative_error

    def test_duplicates_do_not_inflate(self):
        hll = HyperLogLog()
        for _ in range(5):
            hll.update(f"v{i}" for i in range(500))
        assert abs(len(hll) - 500) <= 25

    def test_merge_equals_union(self):
        a = HyperLogLog(precision=10).update(f"a{i}" for i in range(1000))
        b = HyperLogLog(precision=10).update(f"b{i}" for i in range(1000))
        merged = a.merge(b)
        assert abs(merged.cardinality() - 2000) / 2000 < 3 * merged.relative_error

    def test_merge_precision_mismatch(self):
        with pytest.raises(ValueError):
            HyperLogLog(10).merge(HyperLogLog(11))

    def test_precision_bounds(self):
        with pytest.raises(ValueError):
            HyperLogLog(precision=3)
        with pytest.raises(ValueError):
            HyperLogLog(precision=19)
