"""Unit tests for the Starmie/TUS/COCOA-style discoverers."""

from __future__ import annotations

import pytest

from repro.discovery import (
    CocoaConfig,
    CocoaJoinSearch,
    StarmieUnionSearch,
    TusUnionSearch,
)
from repro.table import MISSING, Table


@pytest.fixture
def lake(covid_unionable, covid_joinable):
    people = Table(
        ["First Name", "Last Name"],
        [("Alice", "Smith"), ("Bob", "Chen"), ("Maria", "Garcia")],
        name="people",
    )
    return {"T2": covid_unionable, "T3": covid_joinable, "people": people}


class TestStarmie:
    def test_ranks_unionable_over_unrelated(self, covid_query, lake):
        discoverer = StarmieUnionSearch().fit(lake)
        results = discoverer.search(covid_query, k=3)
        scores = {r.table_name: r.score for r in results}
        assert scores.get("T2", 0) > scores.get("people", 0)

    def test_reason_names_column_matches(self, covid_query, lake):
        discoverer = StarmieUnionSearch().fit(lake)
        top = discoverer.search(covid_query, k=1)[0]
        assert "~" in top.reason

    def test_one_to_one_matching(self):
        # Two identical query columns cannot both claim one candidate column
        # at full weight: score is bounded by the candidate's column count.
        query = Table(["a", "b"], [("x", "x"), ("y", "y")], name="q")
        candidate = Table(["c"], [("x",), ("y",)], name="cand")
        discoverer = StarmieUnionSearch().fit({"cand": candidate})
        results = discoverer.search(query, k=1)
        assert results and results[0].score <= 0.55  # 1 of 2 columns matched

    def test_empty_table_skipped(self, covid_query):
        empty = Table(["x"], [(MISSING,)], name="empty")
        discoverer = StarmieUnionSearch().fit({"empty": empty})
        assert discoverer.search(covid_query, k=3) == []


class TestTus:
    def test_ranks_unionable_first(self, covid_query, lake):
        discoverer = TusUnionSearch().fit(lake)
        results = discoverer.search(covid_query, k=3)
        assert results[0].table_name == "T2"

    def test_numeric_text_gate(self):
        numbers = Table(["v"], [(1.5,), (2.5,), (3.5,)], name="numbers")
        words = Table(["v"], [("Berlin",), ("Boston",), ("Rome",)], name="words")
        discoverer = TusUnionSearch().fit({"numbers": numbers})
        results = discoverer.search(words, k=1)
        assert not results or results[0].score < 0.15

    def test_alignment_reported(self, covid_query, lake):
        discoverer = TusUnionSearch().fit(lake)
        top = discoverer.search(covid_query, k=1)[0]
        assert "aligned:" in top.reason

    def test_type_channel_bridges_disjoint_values(self):
        # Disjoint country values still union through the KB types.
        a = Table(["Country"], [("Germany",), ("Spain",), ("France",)], name="a")
        b = Table(["Nation"], [("Canada",), ("Mexico",), ("Japan",)], name="b")
        discoverer = TusUnionSearch().fit({"b": b})
        results = discoverer.search(a, k=1)
        assert results and results[0].score >= 0.5


class TestCocoa:
    @pytest.fixture
    def numeric_lake(self):
        # Candidate whose attribute correlates perfectly with the query's
        # target, and one whose attribute is anti-ordered noise.
        cities = ["Berlin", "Boston", "Rome", "Paris", "Tokyo", "Oslo"]
        correlated = Table(
            ["City", "Cases"],
            [(city, (i + 1) * 100) for i, city in enumerate(cities)],
            name="correlated",
        )
        flat = Table(
            ["City", "Zip"],
            [(city, 99999) for city in cities],
            name="flat",
        )
        return {"correlated": correlated, "flat": flat}

    @pytest.fixture
    def numeric_query(self):
        cities = ["Berlin", "Boston", "Rome", "Paris", "Tokyo", "Oslo"]
        return Table(
            ["City", "Rate"],
            [(city, (i + 1) * 2.5) for i, city in enumerate(cities)],
            name="q",
        )

    def test_correlated_table_wins(self, numeric_query, numeric_lake):
        discoverer = CocoaJoinSearch().fit(numeric_lake)
        results = discoverer.search(numeric_query, k=2, query_column="City")
        assert results[0].table_name == "correlated"
        assert results[0].score > 0.9
        assert "spearman" in results[0].reason

    def test_no_numeric_target_returns_nothing(self, numeric_lake):
        text_only = Table(["City", "Note"], [("Berlin", "x"), ("Boston", "y")], name="q")
        discoverer = CocoaJoinSearch().fit(numeric_lake)
        assert discoverer.search(text_only, k=2, query_column="City") == []

    def test_explicit_target_column(self, numeric_query, numeric_lake):
        discoverer = CocoaJoinSearch(target_column="Rate").fit(numeric_lake)
        results = discoverer.search(numeric_query, k=1, query_column="City")
        assert results

    def test_min_overlap_filter(self, numeric_query, numeric_lake):
        config = CocoaConfig(min_key_overlap=100)
        discoverer = CocoaJoinSearch(config=config).fit(numeric_lake)
        assert discoverer.search(numeric_query, k=2, query_column="City") == []

    def test_registered_in_pipeline(self, numeric_query, numeric_lake):
        from repro import Dialite

        pipeline = Dialite(numeric_lake, discoverers=[CocoaJoinSearch()]).fit()
        outcome = pipeline.discover(numeric_query, k=2, query_column="City")
        assert "correlated" in outcome.discovered_names
