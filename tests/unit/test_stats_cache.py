"""The lake-wide column-stats cache: sharing, scan counting, invalidation.

The PR-level guarantee under test: a full DIALITE run (profile + fit every
discoverer + discover + align + integrate) performs each lake column's raw
scan, sketch and distinct computation **exactly once**, observable through
the scan counter on :class:`repro.datalake.stats.LakeStats`.
"""

from __future__ import annotations

import pytest

from repro.core.pipeline import Dialite
from repro.datalake import DataLake, LakeStats, profile_lake, profile_table
from repro.datalake.fixtures import covid_joinable_table, covid_query_table, covid_unionable_table
from repro.sketch.minhash import MinHasher
from repro.table import MISSING, Table


@pytest.fixture
def lake():
    return DataLake([covid_unionable_table(), covid_joinable_table()])


class TestColumnStats:
    def test_one_pass_fills_everything(self):
        table = Table(
            ["City", "Rate"],
            [("Berlin", 63), ("Boston", MISSING), ("Berlin", 62)],
            name="T",
        )
        stats = table.stats.column("Rate")
        assert stats.scan_count == 0  # lazy until first use
        assert stats.values == [63, 62]
        assert stats.null_count == 1 and stats.missing_count == 1
        assert stats.distinct == {63, 62}
        assert stats.dtype == "int"
        assert stats.numeric_fraction == 1.0
        # All of that cost exactly one pass over the raw column.
        assert stats.scan_count == 1
        # Derived products don't re-scan.
        assert "63" in stats.tokens
        assert len(stats.hll(12)) == 2
        assert stats.minhash(MinHasher(16, seed=3)).size == len(stats.tokens)
        assert stats.scan_count == 1

    def test_dtype_matches_schema_inference(self):
        table = Table(
            ["i", "f", "s", "b", "m", "e"],
            [
                (1, 1.5, "x", True, 1, MISSING),
                (2, 2, "y", False, "z", MISSING),
            ],
            name="T",
        )
        for spec in table.schema:
            assert table.stats.column(spec.name).dtype == spec.dtype

    def test_sketches_memoized_per_parameters(self):
        table = Table(["c"], [("a",), ("b",)], name="T")
        stats = table.stats.column("c")
        assert stats.hll(12) is stats.hll(12)
        assert stats.hll(8) is not stats.hll(12)
        hasher = MinHasher(32, seed=1)
        assert stats.minhash(hasher) is stats.minhash(MinHasher(32, seed=1))

    def test_cached_views_are_read_only_but_list_like(self):
        table = Table(["c"], [(1,), (2,)], name="T")
        view = table.column("c")
        assert view == [1, 2] and view[1:] == [2]  # still list semantics
        with pytest.raises(TypeError, match="read-only"):
            view.sort()
        with pytest.raises(TypeError, match="read-only"):
            table.column_values("c").append(3)
        assert list(view) == [1, 2]  # explicit copy stays mutable
        import pickle

        assert pickle.loads(pickle.dumps(view)) == [1, 2]

    def test_new_table_starts_cold(self):
        table = Table(["c"], [(1,), (2,)], name="T")
        assert table.distinct_values("c") == {1, 2}
        derived = table.with_name("T2")
        # Identity-keyed invalidation: a derived table is a new cache.
        assert derived.stats.column("c").scan_count == 0


class TestLakeStats:
    def test_scan_counts_cover_every_column(self, lake):
        counts = lake.stats.warm().scan_counts()
        expected = {
            (name, column) for name, t in lake.items() for column in t.columns
        }
        assert set(counts) == expected
        assert all(count == 1 for count in counts.values())

    def test_warm_is_idempotent(self, lake):
        stats = lake.stats
        stats.warm()
        stats.warm()
        assert stats.total_scans() == sum(
            t.num_columns for t in lake.values()
        )

    def test_view_reads_through(self, lake):
        view = LakeStats(lake)
        assert view.column("T2", "City").distinct == lake["T2"].distinct_values("City")
        assert view.table("T3") is lake["T3"].stats


class TestProfilerSharesTheCache:
    def test_profile_does_not_rescan_after_warm(self, lake):
        lake.stats.warm()
        profile = profile_lake(lake)
        assert profile.num_rows == sum(t.num_columns for t in lake.values())
        assert all(count == 1 for count in lake.stats.scan_counts().values())

    def test_profile_hll_is_the_indexed_sketch(self, lake):
        table = lake["T2"]
        profile_table(table)
        stats = table.stats.column("City")
        # The profiler's distinct estimate came from the cached sketch.
        assert 12 in stats._hll
        assert len(stats.hll(12)) == len(stats.distinct)


class TestFullRunScansOnce:
    def test_discover_integrate_scans_each_lake_column_exactly_once(self, lake):
        pipeline = Dialite.with_all_discoverers(lake).fit()
        query = covid_query_table()
        outcome = pipeline.discover(query, k=5, query_column="City")
        integrated = pipeline.integrate(outcome)
        assert integrated.num_rows > 0
        counts = pipeline.lake.stats.scan_counts()
        assert counts, "scan ledger should not be empty"
        over_scanned = {key: n for key, n in counts.items() if n != 1}
        assert not over_scanned, f"columns scanned != once: {over_scanned}"
        # The query's own columns are likewise scanned exactly once across
        # all six discoverers and the aligner.
        assert all(n == 1 for n in query.stats.scan_counts.values())

    def test_discover_many_amortizes_query_stats(self, lake):
        pipeline = Dialite.with_all_discoverers(lake).fit()
        queries = [
            covid_query_table().with_name("q1"),
            covid_query_table().with_name("q2"),
        ]
        outcomes = pipeline.discover_many(queries, k=3, query_column="City")
        assert [o.query.name for o in outcomes] == ["q1", "q2"]
        for query in queries:
            assert all(n == 1 for n in query.stats.scan_counts.values())
        assert all(n == 1 for n in pipeline.lake.stats.scan_counts().values())

    def test_discover_many_rejects_duplicate_names(self, lake):
        pipeline = Dialite(lake).fit()
        query = covid_query_table()
        with pytest.raises(ValueError, match="unique names"):
            pipeline.discover_many([query, query])

    def test_fanout_search_profiles_query_once(self, lake):
        """ISSUE 3 satellite pin: a direct ``LakeIndex.search`` fan-out over
        all six discoverers profiles the query table exactly once -- the
        scoped warm-up in ``search`` -- and every discoverer's retrieval
        and scoring phases read that one pass's products."""
        from repro.datalake import LakeIndex

        pipeline = Dialite.with_all_discoverers(lake)
        index = LakeIndex(pipeline.lake, pipeline.discoverers.components()).build()
        query = covid_query_table()
        per_discoverer = index.search(query, k=5, query_column="City")
        assert len(per_discoverer) == 6
        assert all(n == 1 for n in query.stats.scan_counts.values()), (
            query.stats.scan_counts
        )
        # A second fan-out re-reads the same cache: still exactly one pass.
        index.search(query, k=5, query_column="City")
        assert all(n == 1 for n in query.stats.scan_counts.values())
        # And the shared engine's retrieval structures never re-scan the
        # lake either: one pass per lake column, total.
        assert all(n == 1 for n in pipeline.lake.stats.scan_counts().values())

    def test_synthetic_lake_full_run_scans_once(self, small_synth_lake):
        """The ISSUE acceptance scenario: the synthetic lake end to end."""
        pipeline = Dialite.with_all_discoverers(small_synth_lake.lake).fit()
        outcome = pipeline.discover(
            small_synth_lake.query, k=5, query_column="City"
        )
        integrated = pipeline.integrate(outcome)
        assert integrated.num_rows > 0
        counts = pipeline.lake.stats.scan_counts()
        over_scanned = {key: n for key, n in counts.items() if n != 1}
        assert not over_scanned, f"columns scanned != once: {over_scanned}"
        assert all(
            n == 1 for n in small_synth_lake.query.stats.scan_counts.values()
        )
