"""Unit tests for the telemetry plane (repro.obs.export/recorder/slo).

The contracts pinned here:

* **rotate_file keep-N** -- the shared rotation primitive shifts
  ``path -> path.1 -> ... -> path.keep`` dropping the oldest, never
  rotates below the size threshold, and is disabled outright when
  ``max_bytes`` is None or non-positive;
* **Prometheus round trip** -- ``prometheus_text`` output parses back
  value-for-value (counters, gauges, histogram sum/count and cumulative
  buckets with a ``+Inf`` terminal equal to the count), with metric
  names sanitised to the exposition charset;
* **exporter envelope** -- a ``TelemetryExporter`` flush writes one
  ``kind=metrics`` document per registry plus one ``kind=trace`` per
  queued tree, identity attached; the bounded trace queue drops oldest
  and reports the drop count once; ``close()`` performs a final flush;
* **flight recorder** -- the ring is bounded, ``trip_reason`` applies
  the deadline > error > degraded > latency precedence, postmortems are
  only written when a path is configured (``wants_trace``), and each
  dump carries the tripping request's tree plus the ring *before* it;
* **SLO burn rates** -- with an injected clock, the monitor fires only
  when the burn is elevated in every window with at least MIN_EVENTS
  each, escalates warn -> degraded at PAGE_BURN, and recovers once the
  bad bucket ages out of the windows.
"""

from __future__ import annotations

import json

import pytest

from repro.obs.export import (
    TelemetryExporter,
    metrics_document,
    parse_prometheus_text,
    prometheus_text,
    rotate_file,
    snapshot_identity,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.recorder import FlightRecorder, trip_reason
from repro.obs.slo import (
    DEFAULT_OBJECTIVES,
    MIN_EVENTS,
    Objective,
    SLOMonitor,
)


class TestRotateFile:
    def test_keep_n_shift_drops_oldest(self, tmp_path):
        sink = tmp_path / "sink.jsonl"
        for generation in range(5):
            sink.write_text(f"gen{generation}" + "x" * 64, encoding="utf-8")
            assert rotate_file(sink, max_bytes=16, keep=3)
        names = sorted(p.name for p in tmp_path.iterdir())
        assert names == ["sink.jsonl.1", "sink.jsonl.2", "sink.jsonl.3"]
        # Newest backup is the most recent generation; the oldest fell off.
        assert (tmp_path / "sink.jsonl.1").read_text(encoding="utf-8").startswith("gen4")
        assert (tmp_path / "sink.jsonl.3").read_text(encoding="utf-8").startswith("gen2")

    def test_below_threshold_is_noop(self, tmp_path):
        sink = tmp_path / "sink.jsonl"
        sink.write_text("tiny", encoding="utf-8")
        assert not rotate_file(sink, max_bytes=1024, keep=3)
        assert sink.read_text(encoding="utf-8") == "tiny"

    def test_disabled_and_missing(self, tmp_path):
        sink = tmp_path / "sink.jsonl"
        sink.write_text("x" * 100, encoding="utf-8")
        assert not rotate_file(sink, max_bytes=None)
        assert not rotate_file(sink, max_bytes=0)
        assert not rotate_file(tmp_path / "absent.jsonl", max_bytes=1)


class TestPrometheusRoundTrip:
    def test_values_survive(self):
        registry = MetricsRegistry()
        registry.counter("service.requests").inc(12)
        registry.gauge("queue.depth").set(3.5)
        hist = registry.histogram("lat", (1.0, 10.0, 100.0))
        for value in (0.5, 5.0, 50.0, 500.0):
            hist.observe(value)
        snapshot = registry.snapshot()
        parsed = parse_prometheus_text(prometheus_text(snapshot))
        assert parsed["repro_service_requests"] == 12
        assert parsed["repro_queue_depth"] == 3.5
        assert parsed["repro_lat_count"] == 4
        assert parsed["repro_lat_sum"] == pytest.approx(555.5)
        buckets = parsed["repro_lat_bucket"]
        assert buckets['le="1"'] == 1
        assert buckets['le="10"'] == 2
        assert buckets['le="100"'] == 3
        assert buckets['le="+Inf"'] == 4  # terminal bucket == count

    def test_names_sanitised_to_exposition_charset(self):
        registry = MetricsRegistry()
        registry.counter("shard.scatter-failures").inc()
        text = prometheus_text(registry.snapshot())
        assert "repro_shard_scatter_failures 1" in text

    def test_empty_snapshot_renders_empty(self):
        assert prometheus_text({"counters": {}, "gauges": {}, "histograms": {}}) == ""

    def test_parser_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_prometheus_text("this is not exposition format")


class TestEnvelopes:
    def test_identity_and_document_shape(self):
        identity = snapshot_identity("shard-worker", shard="lake/shard_2")
        assert identity["role"] == "shard-worker"
        assert identity["shard"] == "lake/shard_2"
        assert isinstance(identity["pid"], int)
        doc = metrics_document({"counters": {"x": 1}}, identity, ts=123.0)
        assert doc == {
            "kind": "metrics",
            "ts": 123.0,
            "identity": identity,
            "metrics": {"counters": {"x": 1}},
        }


class TestTelemetryExporter:
    def test_flush_writes_metrics_and_traces(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("hits").inc(9)
        sink = tmp_path / "telemetry.jsonl"
        exporter = TelemetryExporter(
            sink,
            interval_s=3600.0,
            identity=snapshot_identity("test"),
            registries=[registry.snapshot],
        )
        exporter.offer_trace(
            {"name": "client.discover", "wall_ms": 2.0, "trace_id": "t1"},
            summary={"op": "discover"},
        )
        assert exporter.flush() == 2
        docs = [
            json.loads(line)
            for line in sink.read_text(encoding="utf-8").splitlines()
        ]
        kinds = [doc["kind"] for doc in docs]
        assert kinds == ["metrics", "trace"]
        assert docs[0]["metrics"]["counters"]["hits"] == 9
        assert docs[0]["identity"]["role"] == "test"
        assert docs[1]["trace"]["trace_id"] == "t1"
        assert docs[1]["summary"] == {"op": "discover"}
        exporter.close()

    def test_bounded_queue_reports_drops_once(self, tmp_path):
        sink = tmp_path / "telemetry.jsonl"
        exporter = TelemetryExporter(
            sink, interval_s=3600.0, registries=[], max_queued_traces=2
        )
        for i in range(5):
            exporter.offer_trace({"name": f"t{i}", "wall_ms": 1.0})
        exporter.flush()
        docs = [
            json.loads(line)
            for line in sink.read_text(encoding="utf-8").splitlines()
        ]
        traces = [doc for doc in docs if doc["kind"] == "trace"]
        dropped = [doc for doc in docs if doc["kind"] == "dropped_traces"]
        assert [t["trace"]["name"] for t in traces] == ["t3", "t4"]  # newest kept
        assert len(dropped) == 1 and dropped[0]["count"] == 3
        # The drop counter resets: a clean follow-up flush has no report.
        exporter.offer_trace({"name": "t5", "wall_ms": 1.0})
        exporter.flush()
        docs = [
            json.loads(line)
            for line in sink.read_text(encoding="utf-8").splitlines()
        ]
        assert sum(1 for doc in docs if doc["kind"] == "dropped_traces") == 1
        exporter.close()

    def test_close_performs_final_flush(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("final").inc()
        sink = tmp_path / "telemetry.jsonl"
        exporter = TelemetryExporter(
            sink, interval_s=3600.0, registries=[registry.snapshot]
        ).start()
        exporter.close()
        docs = [
            json.loads(line)
            for line in sink.read_text(encoding="utf-8").splitlines()
        ]
        assert any(doc["metrics"]["counters"].get("final") == 1 for doc in docs)

    def test_empty_flush_writes_nothing(self, tmp_path):
        sink = tmp_path / "telemetry.jsonl"
        exporter = TelemetryExporter(sink, interval_s=3600.0, registries=[])
        assert exporter.flush() == 0
        assert not sink.exists()


class TestTripReason:
    def test_precedence(self):
        assert trip_reason({"error": "DeadlineExceeded"}, None) == "deadline"
        assert trip_reason(
            {"error": "ValueError", "degraded_shards": [1]}, None
        ) == "error"
        assert trip_reason({"degraded_shards": [2], "latency_ms": 99.0}, 1.0) == "degraded"
        assert trip_reason({"latency_ms": 250.0}, 200.0) == "latency"

    def test_healthy_request_is_none(self):
        assert trip_reason({"latency_ms": 5.0}, None) is None
        assert trip_reason({"latency_ms": 5.0}, 200.0) is None
        assert trip_reason({"degraded_shards": []}, None) is None


class TestFlightRecorder:
    def test_ring_is_bounded_oldest_first(self):
        recorder = FlightRecorder(capacity=3)
        for i in range(5):
            recorder.observe({"op": "discover", "seq": i})
        assert [entry["seq"] for entry in recorder.recent()] == [2, 3, 4]
        assert [entry["seq"] for entry in recorder.recent(2)] == [3, 4]

    def test_no_postmortem_without_path(self):
        recorder = FlightRecorder(capacity=4)
        assert not recorder.wants_trace
        assert recorder.observe({"op": "discover", "error": "ValueError"}) is None
        assert recorder.postmortem_count == 0

    def test_postmortem_document(self, tmp_path):
        sink = tmp_path / "postmortem.jsonl"
        recorder = FlightRecorder(capacity=8, postmortem_path=sink)
        assert recorder.wants_trace
        recorder.observe({"op": "discover", "seq": 0})
        recorder.observe({"op": "discover", "seq": 1})
        reason = recorder.observe(
            {"op": "discover", "seq": 2, "degraded_shards": [1], "trace_id": "abc"},
            tree={"name": "service.discover", "wall_ms": 3.0, "trace_id": "abc"},
        )
        assert reason == "degraded"
        assert recorder.postmortem_count == 1
        doc = json.loads(sink.read_text(encoding="utf-8").splitlines()[0])
        assert doc["kind"] == "postmortem"
        assert doc["reason"] == "degraded"
        assert doc["trace_id"] == "abc"
        assert doc["trace"]["name"] == "service.discover"
        # The ring is the context *before* the tripping request.
        assert [entry["seq"] for entry in doc["ring"]] == [0, 1]

    def test_latency_trigger(self, tmp_path):
        sink = tmp_path / "postmortem.jsonl"
        recorder = FlightRecorder(
            capacity=8, postmortem_path=sink, latency_threshold_ms=100.0
        )
        assert recorder.observe({"op": "discover", "latency_ms": 50.0}) is None
        assert recorder.observe({"op": "discover", "latency_ms": 150.0}) == "latency"
        assert recorder.postmortem_count == 1


def make_clock(start: float = 1000.0):
    state = {"now": start}

    def clock():
        return state["now"]

    def advance(seconds: float):
        state["now"] += seconds

    return clock, advance


class TestSLOMonitor:
    def test_quiet_service_is_ok(self):
        clock, _ = make_clock()
        monitor = SLOMonitor(clock=clock)
        for _ in range(20):
            monitor.observe(ok=True, latency_ms=5.0, degraded=False)
        evaluation = monitor.evaluate()
        assert evaluation["status"] == "ok"
        assert evaluation["firing"] == []
        assert set(evaluation["objectives"]) == {o.name for o in DEFAULT_OBJECTIVES}

    def test_min_events_gates_firing(self):
        clock, _ = make_clock()
        monitor = SLOMonitor(clock=clock)
        for _ in range(MIN_EVENTS - 1):
            monitor.observe(ok=False, latency_ms=5.0, degraded=True)
        assert monitor.evaluate()["firing"] == []
        monitor.observe(ok=False, latency_ms=5.0, degraded=True)
        firing = {f["objective"] for f in monitor.evaluate()["firing"]}
        assert {"availability", "degraded_rate"} <= firing

    def test_warn_vs_page_severity(self):
        clock, _ = make_clock()
        # target 0.9 -> budget 0.1: 50% bad burns 5x (warn), 100% burns 10x (page).
        objective = Objective(name="avail", kind="availability", target=0.9)
        monitor = SLOMonitor(objectives=(objective,), clock=clock)
        for i in range(10):
            monitor.observe(ok=i % 2 == 0, latency_ms=1.0, degraded=False)
        [entry] = monitor.evaluate()["firing"]
        assert entry["severity"] == "warn"
        assert monitor.evaluate()["status"] == "warn"

        paging = SLOMonitor(objectives=(objective,), clock=clock)
        for _ in range(10):
            paging.observe(ok=False, latency_ms=1.0, degraded=False)
        [entry] = paging.evaluate()["firing"]
        assert entry["severity"] == "degraded"
        assert paging.evaluate()["status"] == "degraded"

    def test_burn_rate_math(self):
        clock, _ = make_clock()
        monitor = SLOMonitor(clock=clock)
        for i in range(10):
            monitor.observe(ok=True, latency_ms=1.0, degraded=i < 5)
        burns = monitor.evaluate()["objectives"]["degraded_rate"]["burn"]
        # 50% degraded against a 0.1% budget -> burn 500 in both windows.
        assert burns["60s"] == pytest.approx(500.0)
        assert burns["600s"] == pytest.approx(500.0)

    def test_requires_every_window_elevated(self):
        clock, advance = make_clock()
        monitor = SLOMonitor(clock=clock)
        for _ in range(10):
            monitor.observe(ok=True, latency_ms=1.0, degraded=True)
        assert monitor.evaluate()["status"] == "degraded"
        # Two minutes later the short window holds only fresh good
        # traffic: the long window still burns, but firing needs both.
        advance(120.0)
        for _ in range(10):
            monitor.observe(ok=True, latency_ms=1.0, degraded=False)
        evaluation = monitor.evaluate()
        assert evaluation["firing"] == []
        assert evaluation["objectives"]["degraded_rate"]["burn"]["600s"] > 0

    def test_recovers_after_windows_age_out(self):
        clock, advance = make_clock()
        monitor = SLOMonitor(clock=clock)
        for _ in range(10):
            monitor.observe(ok=False, latency_ms=9000.0, degraded=True)
        assert monitor.evaluate()["status"] == "degraded"
        advance(601.0)
        evaluation = monitor.evaluate()
        assert evaluation["status"] == "ok"
        assert evaluation["objectives"]["availability"]["burn"] == {
            "60s": 0.0,
            "600s": 0.0,
        }

    def test_latency_objective_uses_threshold(self):
        clock, _ = make_clock()
        monitor = SLOMonitor(clock=clock)
        for _ in range(10):
            monitor.observe(ok=True, latency_ms=6000.0, degraded=False)
        firing = {f["objective"] for f in monitor.evaluate()["firing"]}
        assert firing == {"latency_p99"}
        doc = monitor.evaluate()["objectives"]["latency_p99"]
        assert doc["latency_threshold_ms"] == 5000.0
