"""Unit tests for the knowledge base (repro.discovery.kb)."""

from __future__ import annotations

import pytest

from repro.discovery.kb import KnowledgeBase, seed_knowledge_base
from repro.table import Table


class TestTypesAndHierarchy:
    def test_add_type_with_unknown_parent(self):
        kb = KnowledgeBase()
        with pytest.raises(KeyError):
            kb.add_type("city", parent="place")

    def test_ancestors_chain(self):
        kb = KnowledgeBase()
        kb.add_type("place")
        kb.add_type("country", parent="place")
        assert kb.ancestors("country") == ("place",)
        assert kb.ancestors("place") == ()

    def test_types_of_includes_ancestors(self):
        kb = KnowledgeBase()
        kb.add_type("place")
        kb.add_type("city", parent="place")
        kb.add_entity("Berlin", "city")
        assert kb.types_of("berlin") == frozenset({"city", "place"})
        assert kb.types_of("Berlin", with_ancestors=False) == frozenset({"city"})

    def test_types_of_non_strings(self):
        kb = seed_knowledge_base()
        assert kb.types_of(42) == frozenset()
        assert kb.types_of(None) == frozenset()


class TestAliases:
    def test_alias_group_shares_type_and_canonical(self):
        kb = KnowledgeBase()
        kb.add_alias_group(["United States", "USA", "US"], type_name="country")
        assert "country" in kb.types_of("usa")
        assert kb.same_entity("USA", "United States")
        assert kb.canonical_of("US") == "united states"

    def test_unknown_surface_is_its_own_canonical(self):
        kb = KnowledgeBase()
        assert kb.canonical_of("Atlantis") == "atlantis"

    def test_empty_surface_ignored(self):
        kb = KnowledgeBase()
        kb.add_entity("  ", "thing")
        assert kb.num_entities == 0


class TestRelations:
    def test_relations_bidirectional_lookup(self):
        kb = KnowledgeBase()
        kb.add_relation("city", "country", "located_in")
        assert "located_in" in kb.relations_between("city", "country")
        assert "located_in" in kb.relations_between("country", "city")
        assert kb.relations_between("city", "sport") == frozenset()


class TestSeedKb:
    def test_paper_entities_present(self):
        kb = seed_knowledge_base()
        assert "city" in kb.types_of("Berlin")
        assert "country" in kb.types_of("Germany")
        assert "vaccine" in kb.types_of("JnJ")
        assert "agency" in kb.types_of("FDA")
        assert kb.same_entity("J&J", "JnJ")
        assert kb.same_entity("USA", "United States")

    def test_paper_relations_present(self):
        kb = seed_knowledge_base()
        assert "located_in" in kb.relations_between("city", "country")
        assert "approved_by" in kb.relations_between("vaccine", "agency")


class TestSynthesis:
    def test_overlapping_columns_mint_one_type(self):
        kb = KnowledgeBase()
        t1 = Table(["c"], [("alpha",), ("beta",), ("gamma",)], name="t1")
        t2 = Table(["k"], [("alpha",), ("beta",), ("delta",)], name="t2")
        t3 = Table(["z"], [("unrelated",), ("tokens",)], name="t3")
        created = kb.synthesize_from_tables({"t1": t1, "t2": t2, "t3": t3}, min_jaccard=0.4)
        assert created == 1
        types_alpha = kb.types_of("alpha")
        assert any(t.startswith("syn:") for t in types_alpha)
        assert kb.types_of("unrelated") == frozenset()

    def test_synthetic_relation_from_co_occurrence(self):
        kb = KnowledgeBase()
        t1 = Table(["a", "b"], [("x1", "y1"), ("x2", "y2")], name="t1")
        t2 = Table(["a2", "b2"], [("x1", "y1"), ("x2", "y2")], name="t2")
        kb.synthesize_from_tables({"t1": t1, "t2": t2}, min_jaccard=0.5)
        type_x = next(iter(kb.types_of("x1")))
        type_y = next(iter(kb.types_of("y1")))
        assert kb.relations_between(type_x, type_y)
