"""Unit tests for CSV I/O (repro.table.io)."""

from __future__ import annotations

from repro.table import MISSING, PRODUCED, Table, read_csv, read_lake_dir, write_csv


class TestReadCsv:
    def test_round_trip_types(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("city,pop,open\nBerlin,3.6,true\nBoston,,false\n", encoding="utf-8")
        t = read_csv(path)
        assert t.name == "t"
        assert t.columns == ("city", "pop", "open")
        assert t.rows[0] == ("Berlin", 3.6, True)
        assert t.rows[1][1] is MISSING

    def test_missing_tokens(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("a\nNA\nnull\n-\n±\n", encoding="utf-8")
        t = read_csv(path)
        assert all(cell is MISSING for cell in t.column("a"))

    def test_ragged_rows_padded_and_truncated(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("a,b\n1\n1,2,3\n", encoding="utf-8")
        t = read_csv(path)
        assert t.rows[0] == (1, MISSING)
        assert t.rows[1] == (1, 2)

    def test_duplicate_headers_deduped(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("a,a,\n1,2,3\n", encoding="utf-8")
        t = read_csv(path)
        assert t.columns == ("a", "a_2", "column")

    def test_empty_file(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("", encoding="utf-8")
        t = read_csv(path)
        assert t.num_rows == 0 and t.num_columns == 0

    def test_no_type_inference_mode(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("a\n42\n", encoding="utf-8")
        t = read_csv(path, infer_types=False)
        assert t.rows[0][0] == "42"


class TestWriteCsv:
    def test_null_markers_round_trip(self, tmp_path):
        t = Table(["a", "b"], [(MISSING, PRODUCED), (1, "x")], name="t")
        path = tmp_path / "out" / "t.csv"
        write_csv(t, path)
        back = read_csv(path)
        # Both markers parse back as nulls; ± is a default missing token.
        assert back.rows[0][0] is MISSING
        text = path.read_text(encoding="utf-8")
        assert "±" in text and "⊥" in text

    def test_floats_rendered_compactly(self, tmp_path):
        t = Table(["x"], [(1.5,)])
        path = tmp_path / "t.csv"
        write_csv(t, path)
        assert "1.5" in path.read_text(encoding="utf-8")


class TestReadLakeDir:
    def test_sorted_load(self, tmp_path):
        (tmp_path / "b.csv").write_text("x\n1\n", encoding="utf-8")
        (tmp_path / "a.csv").write_text("y\n2\n", encoding="utf-8")
        tables = read_lake_dir(tmp_path)
        assert [t.name for t in tables] == ["a", "b"]


class TestDelimiterSniffing:
    def test_semicolon_sniffed(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("a;b\n1;2\n", encoding="utf-8")
        t = read_csv(path)
        assert t.columns == ("a", "b")
        assert t.rows[0] == (1, 2)

    def test_tab_sniffed(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("a\tb\n1\t2\n", encoding="utf-8")
        assert read_csv(path).columns == ("a", "b")

    def test_explicit_delimiter_wins(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("a;b\n1;2\n", encoding="utf-8")
        t = read_csv(path, delimiter=",")
        assert t.num_columns == 1  # the line is one comma-field

    def test_comma_default_preserved(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("a,b\n1,2\n", encoding="utf-8")
        assert read_csv(path).columns == ("a", "b")
