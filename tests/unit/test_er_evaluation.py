"""Unit tests for ER evaluation metrics and the synthetic ER workload."""

from __future__ import annotations

import pytest

from repro.er import (
    cluster_metrics,
    gold_pairs_from_clusters,
    make_er_workload,
    pair_metrics,
)
from repro.integration import prepare_integration_input


class TestPairMetrics:
    def test_perfect(self):
        metrics = pair_metrics([("a", "b")], [("b", "a")])  # order-insensitive
        assert metrics.precision == 1.0 and metrics.recall == 1.0 and metrics.f1 == 1.0

    def test_mixed(self):
        metrics = pair_metrics([("a", "b"), ("c", "d")], [("a", "b"), ("e", "f")])
        assert metrics.true_positive == 1
        assert metrics.precision == 0.5
        assert metrics.recall == 0.5
        assert metrics.f1 == 0.5

    def test_empty_both_sides(self):
        # Vacuously perfect: predicting no pairs when there are none.
        metrics = pair_metrics([], [])
        assert metrics.precision == 1.0 and metrics.recall == 1.0
        assert metrics.f1 == 1.0

    def test_gold_pairs_from_clusters(self):
        pairs = gold_pairs_from_clusters([["a", "b", "c"], ["d"]])
        assert pairs == {("a", "b"), ("a", "c"), ("b", "c")}

    def test_cluster_metrics(self):
        metrics = cluster_metrics([["a", "b"], ["c"]], [["a", "b", "c"]])
        assert metrics.recall == pytest.approx(1 / 3)
        assert metrics.precision == 1.0


class TestWorkload:
    def test_shape_and_determinism(self):
        a = make_er_workload(num_entities=5, seed=3)
        b = make_er_workload(num_entities=5, seed=3)
        assert len(a.tables) == 3
        assert len(a.gold_clusters) == 5
        for x, y in zip(a.tables, b.tables):
            assert x.equals(y)

    def test_gold_tids_match_integration_numbering(self):
        workload = make_er_workload(num_entities=4, seed=1)
        _, work, sources = prepare_integration_input(workload.tables)
        all_tids = {tid for cluster in workload.gold_clusters for tid in cluster}
        assert all_tids == set(sources)
        # Each gold cluster has one row per table.
        for cluster in workload.gold_clusters:
            tables = {sources[tid][0] for tid in cluster}
            assert tables == {"approvals", "agencies", "origins"}

    def test_entity_count_bounded_by_vocabulary(self):
        with pytest.raises(ValueError, match="vocabulary"):
            make_er_workload(num_entities=100)

    def test_null_rate_zero_has_no_nulls(self):
        workload = make_er_workload(num_entities=4, seed=0, null_rate=0.0)
        assert all(t.null_count() == 0 for t in workload.tables)

    def test_null_rate_injects_nulls(self):
        workload = make_er_workload(num_entities=8, seed=0, null_rate=0.9)
        assert sum(t.null_count() for t in workload.tables) > 0
