"""Unit tests for the fault-tolerance layer (repro.faults + its call sites).

What is pinned here:

* the injection plane's semantics -- arming, ``nth``/``times`` trigger
  windows, recording, reset -- and that unknown points are loud errors
  (silent typos would un-test the chaos suite);
* :class:`RetryPolicy`: bounded exponential growth, jitter bounds, the
  server's ``retry_after`` hint flooring a delay;
* the retrying :class:`ServiceClient`: transparent recovery from dropped
  connections, :class:`ServiceUnavailable` when drops outlast the
  budget, **no** retry of the non-idempotent ``ingest`` op, and the
  overload hint crossing the wire;
* shard-worker supervision end to end over a real process pool: one
  worker kill is invisible (respawn + retry, byte-identical answer), a
  kill that also takes the retry degrades the answer -- annotated with
  ``degraded_shards``, reported by ``health``, and **never cached**.
"""

from __future__ import annotations

import json
import socket

import pytest

from repro.core.pipeline import Dialite
from repro.datalake import DataLake
from repro.datalake.fixtures import (
    covid_joinable_table,
    covid_query_table,
    covid_unionable_table,
)
from repro.datalake.indexer import LakeIndex
from repro.faults import FaultInjected, RetryPolicy, inject
from repro.service import (
    LakeServer,
    LakeService,
    ServiceClient,
    ServiceOverloaded,
    ServiceUnavailable,
)
from repro.shard import ShardedLakeStore
from repro.store import LakeStore
from repro.table.table import Table


@pytest.fixture(autouse=True)
def _clean_faults():
    inject.reset()
    yield
    inject.reset()


# ----------------------------------------------------------------------
# The injection plane itself
# ----------------------------------------------------------------------
class TestInject:
    def test_unarmed_fire_is_free(self):
        inject.fire("store.write_manifest")  # no error, no bookkeeping

    def test_unknown_point_is_loud(self):
        with pytest.raises(ValueError):
            inject.crash_after("store.no_such_point")
        with inject.record():
            # fire() validates names whenever the plane is enabled, so a
            # typo'd call site cannot hide behind the fast path forever.
            with pytest.raises(ValueError):
                inject.fire("store.no_such_point")

    def test_crash_after_nth_and_times(self):
        inject.crash_after("store.write_segment", nth=2)
        inject.fire("store.write_segment")  # first fire passes
        with pytest.raises(FaultInjected) as err:
            inject.fire("store.write_segment")
        assert err.value.point == "store.write_segment"
        inject.fire("store.write_segment")  # spent: armed once only

    def test_fail_at_custom_error_and_times(self):
        inject.fail_at("client.connect", ConnectionError("boom"), times=2)
        for _ in range(2):
            with pytest.raises(ConnectionError):
                inject.fire("client.connect")
        inject.fire("client.connect")  # window exhausted

    def test_record_counts_fires(self):
        with inject.record() as counts:
            inject.fire("store.write_manifest")
            inject.fire("store.write_manifest")
            inject.fire("store.write_version")
        assert counts["store.write_manifest"] == 2
        assert counts["store.write_version"] == 1

    def test_reset_disarms(self):
        inject.crash_after("store.write_manifest")
        inject.reset()
        inject.fire("store.write_manifest")
        assert not inject.active()

    def test_worker_kill_consumed_once_per_shard(self):
        inject.kill_worker(1, times=1)
        assert not inject.take_worker_kill(0)
        assert inject.take_worker_kill(1)
        assert not inject.take_worker_kill(1)  # consumed


class TestRetryPolicy:
    def test_bounded_exponential_with_jitter(self):
        policy = RetryPolicy(
            attempts=5, base_delay=0.1, multiplier=2.0, max_delay=0.5, jitter=0.25
        )
        for attempt, base in enumerate([0.1, 0.2, 0.4, 0.5]):
            for _ in range(20):
                delay = policy.delay(attempt)
                assert base <= delay <= 0.5 * 1.25 + 1e-9

    def test_floor_from_server_hint(self):
        policy = RetryPolicy(attempts=3, base_delay=0.01, jitter=0.0, max_delay=2.0)
        assert policy.delay(0) == pytest.approx(0.01)
        assert policy.delay(0, floor=0.75) >= 0.75

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay=-1.0)


# ----------------------------------------------------------------------
# Client resilience over a live (unsharded) server
# ----------------------------------------------------------------------
def build_store(tmp_path):
    lake = DataLake([covid_unionable_table(), covid_joinable_table()])
    store = LakeStore.create(tmp_path / "lake.store")
    store.ingest(lake)
    roster = Dialite(DataLake()).discoverers.components()
    LakeIndex.from_store(store, roster, lake=store.lake()).save_to_store(store)
    return tmp_path / "lake.store"


@pytest.fixture
def server(tmp_path):
    service = LakeService(
        store=build_store(tmp_path),
        workers=2,
        batch_window=0.0,
        reload_check_interval=0.0,
    )
    server = LakeServer(service)
    server.start()
    yield server
    server.close()


def fast_client(server, **kwargs):
    host, port = server.address
    kwargs.setdefault(
        "retry", RetryPolicy(attempts=4, base_delay=0.01, max_delay=0.05)
    )
    return ServiceClient(f"{host}:{port}", timeout=30.0, **kwargs)


class TestClientResilience:
    def test_retries_through_dropped_connections(self, server):
        client = fast_client(server)
        inject.drop_connection(times=2)
        response = client.discover(covid_query_table(), k=3, column="City")
        assert response["ok"] and response["payload"]["results"]

    def test_unavailable_when_drops_outlast_budget(self, server):
        client = fast_client(server, retry=RetryPolicy(attempts=2, base_delay=0.01))
        inject.drop_connection(times=5)
        with pytest.raises(ServiceUnavailable):
            client.ping()

    def test_ingest_is_never_retried(self, server):
        client = fast_client(server)
        inject.drop_connection(times=1)
        with pytest.raises(ServiceUnavailable):
            client.ingest([Table(["A"], [("x",)], name="fresh")])
        # One armed drop, one attempt: the fault is spent, proving the
        # client did not burn retries on a non-idempotent op.
        assert not inject.active()
        # The read path retries fine afterwards.
        assert client.ping()

    def test_dead_endpoint_is_unavailable_not_oserror(self, tmp_path):
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()  # nobody listening here now
        client = ServiceClient(
            ("127.0.0.1", port),
            timeout=0.2,
            retry=RetryPolicy(attempts=2, base_delay=0.01),
        )
        with pytest.raises(ServiceUnavailable):
            client.ping()

    def test_overload_hint_crosses_the_wire(self, server):
        server.service.queue_depth = 0
        client = fast_client(server, retry=None)
        with pytest.raises(ServiceOverloaded) as err:
            client.discover(covid_query_table(), k=3)
        assert err.value.retry_after == LakeService.overload_retry_after

    def test_overload_retried_with_hint_floor(self, server):
        server.service.queue_depth = 0
        client = fast_client(server)
        with pytest.raises(ServiceOverloaded):
            client.discover(covid_query_table(), k=3)
        # All attempts consumed (the server stays at depth 0), each
        # floored at the hint; restoring capacity heals the client.
        server.service.queue_depth = 64
        assert client.discover(covid_query_table(), k=3)["ok"]

    def test_health_op(self, server):
        client = fast_client(server)
        health = client.health()
        assert health["status"] == "ok"
        assert health["lake_version"] == server.service.version
        assert health["degraded_shards"] == []
        assert "shards" not in health  # unsharded lake

    def test_server_handle_fault_becomes_error_response(self, server):
        client = fast_client(server, retry=None)
        inject.fail_at("server.handle", ServiceUnavailable("injected"), times=1)
        with pytest.raises(ServiceUnavailable):
            client.ping()
        assert client.ping()


# ----------------------------------------------------------------------
# Shard-worker supervision over a real process pool
# ----------------------------------------------------------------------
def tiny_sharded_store(tmp_path, num_shards=3):
    tables = {}
    for i in range(9):
        rows = [(f"city{i}_{j}", f"state{j % 3}", i * j) for j in range(6)]
        tables[f"t{i:02d}"] = Table(["City", "State", "Pop"], rows, name=f"t{i:02d}")
    store = ShardedLakeStore.create(tmp_path / "lake", num_shards=num_shards)
    store.ingest(tables)
    return tmp_path / "lake"


@pytest.fixture(scope="class")
def sharded_service(tmp_path_factory):
    path = tiny_sharded_store(tmp_path_factory.mktemp("chaos"))
    service = LakeService(
        store=path, workers=2, batch_window=0.0, reload_check_interval=0.0
    )
    yield service
    service.close()


def fresh_query(tag):
    return Table(
        ["City", "State"],
        [(f"city{tag}_2", "state1"), (f"city{tag}_4", "state2")],
        name=f"q{tag}",
    )


class TestSupervision:
    def test_single_kill_is_transparent(self, sharded_service):
        query = fresh_query(3)
        baseline = sharded_service.discover(query, k=5)
        respawns_before = sharded_service.pipeline.index.worker_respawns
        inject.kill_worker(1, times=1)
        # Fresh content so the cache cannot absorb the scatter.
        survived = sharded_service.discover(fresh_query(4), k=5)
        assert "degraded_shards" not in survived.payload
        healthy_again = sharded_service.discover(query, k=5)
        assert json.dumps(healthy_again.payload, sort_keys=True) == json.dumps(
            baseline.payload, sort_keys=True
        )
        assert sharded_service.pipeline.index.worker_respawns > respawns_before

    def test_double_kill_degrades_and_never_caches(self, sharded_service):
        query = fresh_query(5)
        inject.kill_worker(1, times=2)  # original submit AND the retry
        degraded = sharded_service.discover(query, k=5)
        assert degraded.payload["degraded_shards"] == [1]
        assert not degraded.cached
        assert sharded_service.stats.degraded >= 1

        health = sharded_service.health_snapshot()
        assert health["status"] == "degraded"
        assert health["degraded_shards"] == [1]
        assert health["worker_respawns"] >= 2
        assert [s["alive"] for s in health["shards"]].count(True) == len(
            health["shards"]
        )

        inject.reset()
        # The degraded payload was not cached: the same request now
        # recomputes against the respawned worker and comes back whole.
        recovered = sharded_service.discover(query, k=5)
        assert not recovered.cached
        assert "degraded_shards" not in recovered.payload
        # Shard-level health is whole again.  Overall status may still be
        # warn/degraded for a while: the SLO monitor's rolling windows
        # legitimately remember the injected failure (PR 10), so a non-ok
        # status must be explained by a firing objective, not shard loss.
        health = sharded_service.health_snapshot()
        assert health["degraded_shards"] == []
        assert all(shard["alive"] for shard in health.get("shards", []))
        if health["status"] != "ok":
            assert health["slo"]["firing"]
        # ... and the healthy recompute is cacheable as usual.
        assert sharded_service.discover(query, k=5).cached
