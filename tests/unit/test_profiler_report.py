"""Unit tests for the lake profiler and the markdown run report."""

from __future__ import annotations

import pytest

from repro import Dialite, DataLake
from repro.analysis import pipeline_report, table_to_markdown
from repro.datalake import profile_lake, profile_table
from repro.table import MISSING, Table


class TestProfiler:
    @pytest.fixture
    def table(self):
        return Table(
            ["city", "pop"],
            [("Berlin", 3.6), ("Berlin", 3.6), ("Boston", MISSING)],
            name="cities",
        )

    def test_profile_table_columns(self, table):
        profile = profile_table(table)
        assert profile.columns == (
            "table", "column", "dtype", "rows", "non_null", "distinct_est",
            "numeric_frac", "examples",
        )
        city_row = dict(zip(profile.columns, profile.rows[0]))
        assert city_row["rows"] == 3
        assert city_row["non_null"] == 3
        assert city_row["distinct_est"] == 2
        assert "Berlin" in city_row["examples"]

    def test_null_and_numeric_accounting(self, table):
        profile = profile_table(table)
        pop_row = dict(zip(profile.columns, profile.rows[1]))
        assert pop_row["non_null"] == 2
        assert pop_row["numeric_frac"] == 1.0

    def test_profile_lake_stacks(self, table):
        lake = DataLake([table, table.with_name("copy")])
        profile = profile_lake(lake)
        assert profile.num_rows == 4
        assert set(profile.column("table")) == {"cities", "copy"}


class TestMarkdown:
    def test_table_to_markdown_escapes_pipes(self):
        table = Table(["a"], [("x|y",)])
        markdown = table_to_markdown(table)
        assert "x\\|y" in markdown
        assert markdown.splitlines()[1] == "|---|"

    def test_truncation_noted(self):
        table = Table(["a"], [(i,) for i in range(30)])
        markdown = table_to_markdown(table, max_rows=5)
        assert "25 more rows" in markdown


class TestPipelineReport:
    def test_full_report_sections(self, covid_unionable, covid_joinable, covid_query):
        pipeline = Dialite(DataLake([covid_unionable, covid_joinable])).fit()
        result = pipeline.run(
            covid_query, k=3, query_column="City", analyses={"describe": {}}
        )
        report = pipeline_report(result)
        assert report.startswith("# DIALITE run report")
        assert "## Discovery" in report
        assert "## Integration" in report
        assert "### describe" in report
        assert "`T2`" in report and "`T3`" in report
        assert "7 facts" in report
        assert "±" in report or "⊥" in report
