"""Unit tests for the two-kind null model (repro.table.values)."""

from __future__ import annotations

import pickle

import pytest

from repro.table.values import (
    MISSING,
    PRODUCED,
    Null,
    coalesce,
    is_missing,
    is_null,
    is_produced,
    merge_null_kind,
    values_equal,
)


class TestNullSingletons:
    def test_exactly_two_instances(self):
        assert Null("missing") is MISSING
        assert Null("produced") is PRODUCED
        assert MISSING is not PRODUCED

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            Null("unknown")

    def test_nulls_are_falsy(self):
        assert not MISSING
        assert not PRODUCED

    def test_reprs_match_paper_symbols(self):
        assert repr(MISSING) == "±"
        assert repr(PRODUCED) == "⊥"

    def test_kind_property(self):
        assert MISSING.kind == "missing"
        assert PRODUCED.kind == "produced"

    def test_pickle_preserves_identity(self):
        assert pickle.loads(pickle.dumps(MISSING)) is MISSING
        assert pickle.loads(pickle.dumps(PRODUCED)) is PRODUCED


class TestPredicates:
    def test_is_null_covers_both_kinds(self):
        assert is_null(MISSING)
        assert is_null(PRODUCED)
        assert not is_null(0)
        assert not is_null("")
        assert not is_null(None) is True or True  # None is not a table null

    def test_none_is_not_a_table_null(self):
        assert not is_null(None)

    def test_kind_specific_predicates(self):
        assert is_missing(MISSING) and not is_missing(PRODUCED)
        assert is_produced(PRODUCED) and not is_produced(MISSING)


class TestValuesEqual:
    def test_nulls_never_equal_anything(self):
        assert not values_equal(MISSING, MISSING)
        assert not values_equal(PRODUCED, PRODUCED)
        assert not values_equal(MISSING, "x")
        assert not values_equal(5, PRODUCED)

    def test_numeric_cross_type_equality(self):
        assert values_equal(1, 1.0)

    def test_bool_does_not_equal_int(self):
        assert not values_equal(True, 1)
        assert not values_equal(False, 0)

    def test_strings(self):
        assert values_equal("a", "a")
        assert not values_equal("a", "A")


class TestMergeAndCoalesce:
    def test_missing_dominates_produced(self):
        assert merge_null_kind(MISSING, PRODUCED) is MISSING
        assert merge_null_kind(PRODUCED, MISSING) is MISSING
        assert merge_null_kind(PRODUCED, PRODUCED) is PRODUCED
        assert merge_null_kind(MISSING, MISSING) is MISSING

    def test_coalesce_prefers_values(self):
        assert coalesce("x", PRODUCED) == "x"
        assert coalesce(MISSING, 42) == 42
        assert coalesce("a", "a") == "a"

    def test_coalesce_combines_null_kinds(self):
        assert coalesce(MISSING, PRODUCED) is MISSING
        assert coalesce(PRODUCED, PRODUCED) is PRODUCED
