"""Unit tests for the integration layer (repro.integration)."""

from __future__ import annotations

import pytest

from repro.integration import (
    AliteFD,
    InnerJoinIntegrator,
    NestedLoopFD,
    OracleFD,
    OuterJoinIntegrator,
    ParallelFD,
    UnionIntegrator,
    connected_components,
    dedupe_tuples,
    joinable,
    merge_tuples,
    normalized_key,
    order_sensitivity,
    prepare_integration_input,
    remove_subsumed,
    subsumes,
)
from repro.integration.tuples import WorkTuple
from repro.table import MISSING, PRODUCED, Table


def wt(*cells, tids=("t1",)):
    return WorkTuple(cells=tuple(cells), tids=frozenset(tids))


class TestJoinable:
    def test_agreeing_overlap(self):
        assert joinable(("a", "b", PRODUCED), ("a", PRODUCED, "c"))

    def test_conflict_blocks(self):
        assert not joinable(("a", "b"), ("a", "x"))

    def test_no_overlap_blocks(self):
        assert not joinable(("a", PRODUCED), (PRODUCED, "b"))

    def test_nulls_of_any_kind_do_not_join(self):
        assert not joinable((MISSING,), (MISSING,))
        assert not joinable((PRODUCED,), (MISSING,))

    def test_numeric_equality(self):
        assert joinable((1,), (1.0,))


class TestMergeAndSubsume:
    def test_merge_prefers_values_and_unions_tids(self):
        merged = merge_tuples(
            wt("a", PRODUCED, tids=("t1",)), wt("a", "b", tids=("t2",))
        )
        assert merged.cells == ("a", "b")
        assert merged.tids == frozenset({"t1", "t2"})

    def test_merge_null_kind_missing_wins(self):
        merged = merge_tuples(
            wt("a", MISSING, tids=("t1",)), wt("a", PRODUCED, tids=("t2",))
        )
        assert merged.cells[1] is MISSING

    def test_subsumes(self):
        assert subsumes(("a", "b"), ("a", PRODUCED))
        assert subsumes(("a", "b"), ("a", "b"))
        assert not subsumes(("a", PRODUCED), ("a", "b"))
        assert not subsumes(("a", "x"), ("a", "b"))

    def test_normalized_key_collapses_null_kind(self):
        assert normalized_key(("a", MISSING)) == normalized_key(("a", PRODUCED))
        assert normalized_key((1,)) == normalized_key((1.0,))
        assert normalized_key(("1",)) != normalized_key((1,))


class TestDedupeAndSubsumption:
    def test_dedupe_picks_canonical_witness(self):
        # Equal-cardinality witnesses: the lexicographically smaller TID
        # list wins, independent of input order.
        forward = dedupe_tuples([wt("a", tids=("t1",)), wt("a", tids=("t2",))])
        backward = dedupe_tuples([wt("a", tids=("t2",)), wt("a", tids=("t1",))])
        assert len(forward) == 1
        assert forward[0].tids == backward[0].tids == frozenset({"t1"})

    def test_dedupe_keeps_minimal_support(self):
        unique = dedupe_tuples(
            [wt("a", tids=("t1",)), wt("a", tids=("t1", "t2"))]
        )
        assert unique[0].tids == frozenset({"t1"})

    def test_remove_subsumed(self):
        kept = remove_subsumed([wt("a", "b"), wt("a", PRODUCED, tids=("t9",))])
        assert len(kept) == 1
        assert kept[0].cells == ("a", "b")

    def test_all_null_tuple_dropped_when_others_exist(self):
        kept = remove_subsumed([wt(PRODUCED, PRODUCED), wt("a", PRODUCED)])
        assert len(kept) == 1

    def test_lone_all_null_tuple_survives(self):
        kept = remove_subsumed([wt(MISSING, MISSING)])
        assert len(kept) == 1

    def test_incomparable_tuples_all_kept(self):
        kept = remove_subsumed([wt("a", PRODUCED), wt(PRODUCED, "b")])
        assert len(kept) == 2


class TestPrepareInput:
    def test_tid_numbering_across_tables(self, vaccine_tables):
        header, work, sources = prepare_integration_input(vaccine_tables)
        assert len(work) == 6
        assert sources["t1"] == ("T4", 0)
        assert sources["t6"] == ("T6", 1)
        assert set(header) == {"Vaccine", "Approver", "Country"}

    def test_own_column_nulls_become_missing(self):
        t = Table(["a", "b"], [(PRODUCED, "x")], name="t")
        u = Table(["c"], [("y",)], name="u")
        _, work, _ = prepare_integration_input([t, u])
        # t's own null column -> MISSING; padding for c -> PRODUCED.
        assert work[0].cells[0] is MISSING
        assert work[0].cells[2] is PRODUCED

    def test_empty_set_rejected(self):
        with pytest.raises(ValueError):
            prepare_integration_input([])


class TestFDAlgorithms:
    @pytest.fixture(params=[AliteFD, NestedLoopFD, ParallelFD, OracleFD])
    def algorithm(self, request):
        return request.param()

    def test_duplicate_table_names_rejected(self, algorithm, covid_query):
        with pytest.raises(ValueError, match="unique"):
            algorithm.integrate([covid_query, covid_query])

    def test_single_table_is_identity_modulo_subsumption(self, algorithm, covid_query):
        result = algorithm.integrate([covid_query])
        assert result.num_rows == covid_query.num_rows
        assert set(result.columns) == set(covid_query.columns)

    def test_all_algorithms_agree(self, algorithm, small_integration_set):
        expected = AliteFD().integrate(small_integration_set)
        if isinstance(algorithm, OracleFD):
            pytest.skip("oracle is exponential; covered by property tests")
        result = algorithm.integrate(small_integration_set)
        # Values must agree exactly; null KINDS are compared normalized
        # because they derive from the provenance witness, and a fact with
        # several equally-minimal witnesses may legitimately pick different
        # ones in different algorithms.
        expected_rows = sorted(normalized_key(row) for row in expected.rows)
        result_rows = sorted(normalized_key(row) for row in result.rows)
        assert result_rows == expected_rows

    def test_algorithms_deterministic_across_invocations(self, small_integration_set):
        first = AliteFD().integrate(small_integration_set)
        second = AliteFD().integrate(small_integration_set)
        assert first.equals(second)
        assert first.provenance == second.provenance

    def test_fd_associativity_table_order_irrelevant(self, vaccine_tables):
        from repro.table import ops

        forward = AliteFD().integrate(vaccine_tables)
        t4, t5, t6 = vaccine_tables
        backward = AliteFD().integrate([t6, t4, t5])
        # Column order follows table order (outer union); the relation
        # itself must be identical once projected to a common order.
        reordered = ops.project(backward, list(forward.columns))
        assert Table(forward.columns, forward.rows).equals(reordered, ignore_row_order=True)

    def test_disjoint_tables_stack_without_merging(self):
        a = Table(["x", "y"], [("1", "2")], name="a")
        b = Table(["x", "y"], [("3", "4")], name="b")
        result = AliteFD().integrate([a, b])
        assert result.num_rows == 2


class TestParallelFD:
    def test_connected_components_split(self):
        tuples = [wt("a", PRODUCED), wt("a", "b"), wt(PRODUCED, "z")]
        components, all_null = connected_components(tuples)
        assert len(components) == 2
        assert not all_null

    def test_all_null_separated(self):
        tuples = [wt(PRODUCED, PRODUCED), wt("a", PRODUCED)]
        components, all_null = connected_components(tuples)
        assert len(components) == 1
        assert len(all_null) == 1

    def test_multiprocess_matches_sequential(self, small_integration_set):
        sequential = ParallelFD(max_workers=1).integrate(small_integration_set)
        parallel = ParallelFD(max_workers=2, min_parallel_components=1).integrate(
            small_integration_set
        )
        assert parallel.equals(sequential, ignore_row_order=True)

    def test_degenerate_all_null_input(self):
        t = Table(["a"], [(MISSING,), (MISSING,)], name="t")
        result = ParallelFD().integrate([t])
        assert result.num_rows == 1


class TestJoinIntegrators:
    def test_outer_join_order_sensitivity_helper(self, vaccine_tables):
        results = list(order_sensitivity(vaccine_tables, max_orders=6))
        assert len(results) == 6
        row_counts = {table.num_rows for _, table in results}
        assert len(row_counts) >= 1  # counts may coincide; content differs below
        from repro.analysis import order_variability

        report = order_variability([table for _, table in results])
        assert report["distinct_outputs"] > 1

    def test_inner_join_drops_unmatched(self, vaccine_tables):
        result = InnerJoinIntegrator().integrate(vaccine_tables)
        # Only the Pfizer chain survives a full inner-join fold.
        assert result.num_rows <= 2

    def test_union_integrator_stacks_all(self, vaccine_tables):
        result = UnionIntegrator().integrate(vaccine_tables)
        assert result.num_rows == 6
        assert all(len(tids) == 1 for tids in result.provenance)

    def test_outer_join_no_shared_columns_degrades_to_padding(self):
        a = Table(["x"], [("1",)], name="a")
        b = Table(["y"], [("2",)], name="b")
        result = OuterJoinIntegrator().integrate([a, b])
        assert result.num_rows == 2
        assert result.columns == ("x", "y")


class TestIntegratedTable:
    def test_display_table_has_oid_and_tids(self, vaccine_tables):
        result = AliteFD().integrate(vaccine_tables)
        display = result.to_display_table()
        assert display.columns[:2] == ("OID", "TIDs")
        assert display.column("OID") == ["f1", "f2", "f3"]

    def test_provenance_alignment_enforced(self):
        from repro.integration.tuples import IntegratedTable

        with pytest.raises(ValueError, match="provenance"):
            IntegratedTable(["a"], [("x",)], provenance=[], tid_sources={})

    def test_find_fact_missing_returns_none(self, vaccine_tables):
        result = AliteFD().integrate(vaccine_tables)
        assert result.find_fact(Vaccine="Sputnik V") is None


class TestLazyIterator:
    def test_stream_equals_batch(self, small_integration_set):
        from repro.integration import iter_fd

        batch = AliteFD().integrate(small_integration_set)
        streamed = [fact for _, fact in iter_fd(small_integration_set)]
        assert sorted(normalized_key(w.cells) for w in streamed) == sorted(
            normalized_key(row) for row in batch.rows
        )

    def test_header_constant_across_yields(self, vaccine_tables):
        from repro.integration import iter_fd

        headers = {header for header, _ in iter_fd(vaccine_tables)}
        assert len(headers) == 1

    def test_preview_truncates(self, small_integration_set):
        from repro.integration import fd_preview

        preview = fd_preview(small_integration_set, n=5)
        assert preview.num_rows == 5

    def test_preview_on_tiny_input_yields_all(self, vaccine_tables):
        from repro.integration import fd_preview

        preview = fd_preview(vaccine_tables, n=100)
        assert preview.num_rows == 3  # Figure 8(b)

    def test_all_null_degenerate(self):
        from repro.integration import iter_fd

        t = Table(["a"], [(MISSING,), (MISSING,)], name="t")
        facts = list(iter_fd([t]))
        assert len(facts) == 1
