"""Unit tests for entity resolution (repro.er)."""

from __future__ import annotations

import pytest

from repro.er import (
    AttributeEquivalenceBlocker,
    EntityResolver,
    FeatureGenerator,
    FullBlocker,
    Gazetteer,
    LogisticRegressionMatcher,
    Record,
    RuleMatcher,
    TokenBlocker,
    canonicalize_cluster,
    cluster_matches,
    default_gazetteer,
    records_from_table,
)
from repro.table import MISSING, PRODUCED, Table


@pytest.fixture
def records():
    return [
        Record.from_mapping("r1", {"name": "J&J", "country": "United States"}),
        Record.from_mapping("r2", {"name": "JnJ", "country": "USA"}),
        Record.from_mapping("r3", {"name": "Pfizer", "country": "United States"}),
        Record.from_mapping("r4", {"name": MISSING, "country": "Germany"}),
    ]


class TestRecords:
    def test_records_from_table_ids_match_oids(self, covid_query):
        records = records_from_table(covid_query)
        assert [r.record_id for r in records] == ["f1", "f2", "f3"]
        assert records[0].get("City") == "Berlin"

    def test_non_null_attributes(self):
        record = Record.from_mapping("x", {"a": 1, "b": MISSING})
        assert record.non_null_attributes() == ("a",)


class TestBlocking:
    def test_full_blocker_quadratic(self, records):
        pairs = FullBlocker().candidate_pairs(records)
        assert len(pairs) == 6

    def test_attribute_equivalence(self, records):
        pairs = AttributeEquivalenceBlocker("country").candidate_pairs(records)
        assert ("r1", "r3") in pairs
        assert ("r1", "r2") not in pairs  # "USA" != "United States" literally

    def test_attribute_equivalence_skips_nulls(self, records):
        pairs = AttributeEquivalenceBlocker("name").candidate_pairs(records)
        assert not any("r4" in pair for pair in pairs)

    def test_token_blocker_shares_tokens(self, records):
        pairs = TokenBlocker(["country"]).candidate_pairs(records)
        assert ("r1", "r3") in pairs

    def test_token_blocker_stop_tokens(self):
        # A token present in every record is ignored.
        many = [
            Record.from_mapping(f"r{i}", {"x": f"common thing{i}"}) for i in range(10)
        ]
        pairs = TokenBlocker(["x"], max_token_frequency=0.3).candidate_pairs(many)
        assert pairs == set()


class TestFeatures:
    def test_gazetteer_alias_hit(self):
        generator = FeatureGenerator(gazetteer=default_gazetteer())
        a = Record.from_mapping("a", {"c": "USA"})
        b = Record.from_mapping("b", {"c": "United States"})
        features = generator.features(a, b)
        assert features.comparable()["c"] == 1.0

    def test_null_attributes_not_comparable(self):
        generator = FeatureGenerator()
        a = Record.from_mapping("a", {"x": MISSING, "y": "v"})
        b = Record.from_mapping("b", {"x": "w", "y": PRODUCED})
        features = generator.features(a, b)
        assert features.comparable() == {}
        assert features.mean() == 0.0

    def test_numeric_similarity_tolerance(self):
        generator = FeatureGenerator()
        a = Record.from_mapping("a", {"v": 100.0})
        close = Record.from_mapping("b", {"v": 102.0})
        far = Record.from_mapping("c", {"v": 500.0})
        assert generator.features(a, close).comparable()["v"] > 0.5
        assert generator.features(a, far).comparable()["v"] == 0.0

    def test_quantity_strings_compared_numerically(self):
        generator = FeatureGenerator()
        a = Record.from_mapping("a", {"v": "1.4M"})
        b = Record.from_mapping("b", {"v": 1_400_000})
        assert generator.features(a, b).comparable()["v"] == 1.0

    def test_custom_gazetteer(self):
        gazetteer = Gazetteer([("Big Apple", "New York City")])
        assert gazetteer.same("big apple", "New York City")
        assert not gazetteer.same("big apple", "Boston")


class TestMatchers:
    def test_rule_matcher_needs_two_strong_signals(self):
        generator = FeatureGenerator(gazetteer=default_gazetteer())
        one = generator.features(
            Record.from_mapping("a", {"x": "JnJ", "y": MISSING}),
            Record.from_mapping("b", {"x": "JnJ", "y": PRODUCED}),
        )
        two = generator.features(
            Record.from_mapping("a", {"x": "JnJ", "y": "USA"}),
            Record.from_mapping("b", {"x": "J&J", "y": "United States"}),
        )
        matcher = RuleMatcher()
        assert not matcher.is_match(one)
        assert matcher.is_match(two)

    def test_rule_matcher_conflict_veto(self):
        generator = FeatureGenerator(gazetteer=default_gazetteer())
        pair = generator.features(
            Record.from_mapping("a", {"x": "JnJ", "y": "USA", "z": "totally"}),
            Record.from_mapping("b", {"x": "JnJ", "y": "USA", "z": "different"}),
        )
        assert not RuleMatcher().is_match(pair)

    def test_logreg_learns_separator(self):
        generator = FeatureGenerator(gazetteer=default_gazetteer())
        positives = [
            (Record.from_mapping(f"p{i}a", {"x": "Alpha", "y": "USA"}),
             Record.from_mapping(f"p{i}b", {"x": "Alpha", "y": "United States"}))
            for i in range(10)
        ]
        negatives = [
            (Record.from_mapping(f"n{i}a", {"x": "Alpha", "y": "USA"}),
             Record.from_mapping(f"n{i}b", {"x": "Omega9", "y": "Germany"}))
            for i in range(10)
        ]
        pairs = [generator.features(a, b) for a, b in positives + negatives]
        labels = [True] * 10 + [False] * 10
        matcher = LogisticRegressionMatcher(attributes=["x", "y"]).fit(pairs, labels)
        assert matcher.is_match(pairs[0])
        assert not matcher.is_match(pairs[-1])
        assert 0.0 <= matcher.predict_proba(pairs[0]) <= 1.0

    def test_logreg_requires_fit(self):
        matcher = LogisticRegressionMatcher(attributes=["x"])
        generator = FeatureGenerator()
        pair = generator.features(
            Record.from_mapping("a", {"x": "v"}), Record.from_mapping("b", {"x": "v"})
        )
        with pytest.raises(RuntimeError):
            matcher.is_match(pair)

    def test_logreg_fit_validations(self):
        matcher = LogisticRegressionMatcher(attributes=["x"])
        with pytest.raises(ValueError):
            matcher.fit([], [])


class TestClustering:
    def test_transitive_closure(self):
        clusters = cluster_matches(["a", "b", "c", "d"], [("a", "b"), ("b", "c")])
        assert ["a", "b", "c"] in clusters
        assert ["d"] in clusters

    def test_unknown_pair_rejected(self):
        with pytest.raises(KeyError):
            cluster_matches(["a"], [("a", "zz")])

    def test_numeric_aware_ordering(self):
        clusters = cluster_matches([f"f{i}" for i in range(1, 12)], [])
        assert clusters[0] == ["f1"]
        assert clusters[-1] == ["f11"]

    def test_canonicalize_prefers_majority_and_longest(self):
        records = [
            Record.from_mapping("a", {"n": "USA"}),
            Record.from_mapping("b", {"n": "United States"}),
            Record.from_mapping("c", {"n": MISSING}),
        ]
        entity = canonicalize_cluster(records, default_gazetteer())
        assert entity["n"] == "United States"

    def test_canonicalize_all_null_keeps_kind(self):
        records = [
            Record.from_mapping("a", {"n": MISSING}),
            Record.from_mapping("b", {"n": PRODUCED}),
        ]
        entity = canonicalize_cluster(records)
        assert entity["n"] is MISSING


class TestResolver:
    def test_resolve_table_end_to_end(self, records):
        result = EntityResolver().resolve_records(records)
        assert result.same_entity("r1", "r2")
        assert not result.same_entity("r1", "r3")
        assert result.num_entities == 3

    def test_duplicate_record_ids_rejected(self):
        twice = [
            Record.from_mapping("x", {"a": 1}),
            Record.from_mapping("x", {"a": 2}),
        ]
        with pytest.raises(ValueError, match="unique"):
            EntityResolver().resolve_records(twice)

    def test_entities_table_shape(self, records):
        result = EntityResolver().resolve_records(records)
        assert result.entities.num_rows == result.num_entities
        assert set(result.entities.columns) == {"name", "country"}

    def test_cluster_of_unknown_id(self, records):
        result = EntityResolver().resolve_records(records)
        with pytest.raises(KeyError):
            result.cluster_of("zz")
