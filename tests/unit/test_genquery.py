"""Unit tests for prompt-driven query-table generation (repro.genquery)."""

from __future__ import annotations

import pytest

from repro.genquery import (
    available_topics,
    generate_query_table,
    match_template,
    parse_shape_from_prompt,
    template_for,
)


class TestRouting:
    def test_covid_prompt(self):
        assert match_template("generate a table about covid-19 cases").topic == "covid"

    def test_vaccine_prompt(self):
        assert match_template("vaccine approval data").topic == "vaccines"

    def test_people_prompt(self):
        assert match_template("an employee directory").topic == "people"

    def test_unknown_prompt_falls_back_to_first(self):
        assert match_template("xyzzy").topic == "covid"

    def test_template_for_alias(self):
        assert template_for("restaurant ratings").topic == "restaurants"


class TestShapeParsing:
    def test_rows_and_columns_extracted(self):
        assert parse_shape_from_prompt("5 rows and 4 columns") == (5, 4)
        assert parse_shape_from_prompt("3 cols") == (None, 3)
        assert parse_shape_from_prompt("just covid") == (None, None)


class TestGeneration:
    def test_fig5_shape(self):
        # The paper's Fig. 5: covid query table, 5 columns, 5 rows.
        table = generate_query_table(
            "generate a table about covid-19 cases with 5 rows and 5 columns"
        )
        assert table.shape == (5, 5)
        assert "City" in table.columns

    def test_deterministic_for_seed(self):
        a = generate_query_table("covid", rows=4, seed=11)
        b = generate_query_table("covid", rows=4, seed=11)
        assert a.equals(b)

    def test_different_seeds_differ(self):
        a = generate_query_table("covid", rows=6, seed=1)
        b = generate_query_table("covid", rows=6, seed=2)
        assert not a.equals(b)

    def test_extra_columns_padded(self):
        table = generate_query_table("covid", rows=2, columns=7)
        assert table.num_columns == 7
        assert "Attribute 1" in table.columns

    def test_keyed_column_no_duplicates(self):
        table = generate_query_table("covid", rows=8, seed=3)
        cities = table.column("City")
        assert len(set(cities)) == len(cities)

    def test_invalid_shape(self):
        with pytest.raises(ValueError):
            generate_query_table("covid", rows=0)

    def test_topics_listed(self):
        topics = available_topics()
        assert "covid" in topics and len(topics) >= 5
