"""Unit tests for the shared candidate-generation engine (repro.candidates)."""

from __future__ import annotations

import pytest

from repro.candidates import (
    CandidateEngine,
    CandidateSet,
    CandidateSpec,
    ColumnRegistry,
    EngineError,
    PostingIndex,
)
from repro.datalake import DataLake
from repro.store import LakeStore
from repro.table import Table


@pytest.fixture
def lake():
    return DataLake(
        [
            Table(["City", "Rate"], [("Berlin", 1), ("Boston", 2)], name="T1"),
            Table(["City", "Pop"], [("Berlin", 3), ("Rome", 4)], name="T2"),
            Table(["Name"], [("Alice",), ("Bob",)], name="T3"),
        ]
    )


@pytest.fixture
def engine(lake):
    return CandidateEngine(lake)


@pytest.fixture
def query():
    return Table(["City", "Score"], [("Berlin", 0.5), ("Rome", 0.7)], name="q")


class TestCandidateSpec:
    def test_unknown_channel_rejected(self):
        with pytest.raises(ValueError, match="unknown candidate channels"):
            CandidateSpec(channels=("telepathy",))

    def test_needs_a_channel(self):
        with pytest.raises(ValueError, match="at least one channel"):
            CandidateSpec(channels=())

    def test_budget_must_be_positive(self):
        with pytest.raises(ValueError, match="budget"):
            CandidateSpec(channels=("tokens",), budget=0)

    def test_floor_semantics(self):
        assert CandidateSpec(channels=("tokens",), min_candidates=3).floor(k=7) == 3
        assert CandidateSpec(channels=("tokens",), min_candidates_is_k=True).floor(k=7) == 7

    def test_exhaustive_flag(self):
        assert CandidateSpec(channels=("exhaustive",)).exhaustive
        assert not CandidateSpec(channels=("tokens",)).exhaustive


class TestPostingIndex:
    def test_probe_counts_are_exact_overlaps(self):
        index = PostingIndex.build([(0, {"a", "b"}), (1, {"b", "c"}), (2, {"x"})])
        hits = index.probe({"a", "b", "c"})
        assert hits == {0: 2, 1: 2}
        assert index.document_frequency("b") == 2
        assert index.num_tokens == 4 and index.num_entries == 5

    def test_build_requires_dense_keys(self):
        with pytest.raises(ValueError, match="dense keys"):
            PostingIndex.build([(1, {"a"})])

    def test_records_round_trip(self):
        index = PostingIndex.build([(0, {"a"}), (1, {"a", "b"})])
        records = list(index.to_records("token"))
        sizes = next(r for r in records if r["kind"] == "token_sizes")["s"]
        tokens = [r for r in records if r["kind"] == "token"]
        restored = PostingIndex.from_records(sizes, tokens)
        assert restored.postings == index.postings
        assert restored.sizes == index.sizes


class TestRegistry:
    def test_owner_resolution_and_table_grouping(self, engine):
        registry = engine.registry
        owners = {registry.owner(key) for key in range(len(registry))}
        assert ("T1", "City") in owners and ("T3", "Name") in owners
        assert set(registry.tables) == {"T1", "T2", "T3"}
        t2_keys = list(registry.keys_of(["T2"]))
        assert all(registry.owner(k)[0] == "T2" for k in t2_keys)

    def test_json_round_trip(self, engine):
        registry = engine.registry
        restored = ColumnRegistry.from_json(registry.to_json())
        assert restored.owners == registry.owners
        assert restored.token_sizes == registry.token_sizes


class TestGenericRetrieval:
    def test_token_channel_retrieves_sharing_tables(self, engine, query):
        spec = CandidateSpec(channels=("tokens",))
        candidates = engine.retrieve("d", spec, query, k=5, query_column="City")
        assert set(candidates) == {"T1", "T2"}  # share Berlin / Rome tokens
        assert "T3" not in candidates
        assert candidates.evidence_for("tokens:City")

    def test_intent_only_respected(self, engine, query):
        spec = CandidateSpec(channels=("tokens",), intent_only=False)
        both = engine.retrieve("d", spec, query, k=5, query_column="City")
        assert set(both.report.channels) == {"tokens"}
        assert both.report.probes >= 2  # City and Score both probed

    def test_budget_truncates_by_evidence(self, engine):
        query = Table(["City"], [("Berlin",), ("Boston",)], name="q")
        spec = CandidateSpec(channels=("tokens",), budget=1)
        candidates = engine.retrieve("d", spec, query, k=5)
        assert candidates.truncated
        assert list(candidates) == ["T1"]  # 2 shared tokens beats T2's 1

    def test_engine_default_budget_applies(self, engine):
        query = Table(["City"], [("Berlin",), ("Boston",)], name="q")
        engine.default_budget = 1
        candidates = engine.retrieve("d", CandidateSpec(channels=("tokens",)), query, k=5)
        assert candidates.truncated and len(candidates) == 1

    def test_budget_below_floor_does_not_fall_back(self, engine, query):
        """A budget smaller than the fallback floor must cap scoring at
        the budget -- never invert into a whole-lake scan.  The floor is
        judged on the pre-truncation retrieved count."""
        spec = CandidateSpec(channels=("tokens",), min_candidates=2, budget=1)
        candidates = engine.retrieve("d", spec, query, k=5, query_column="City")
        assert not candidates.fallback
        assert candidates.truncated
        assert len(candidates) == 1  # budget honored, lake is 3 tables
        report = candidates.report
        assert report.retrieved == 2 and report.scored == 1

    def test_min_candidates_falls_back_to_whole_lake(self, engine, query):
        spec = CandidateSpec(channels=("tokens",), min_candidates=3)
        candidates = engine.retrieve("d", spec, query, k=5, query_column="City")
        assert candidates.fallback
        assert set(candidates) == {"T1", "T2", "T3"}
        # Retrieval evidence survives the fallback.
        assert candidates.evidence_for("tokens:City")

    def test_exhaustive_spec_returns_all_without_evidence(self, engine, query):
        candidates = engine.retrieve("d", CandidateSpec(), query, k=5)
        assert set(candidates) == {"T1", "T2", "T3"}
        assert candidates.evidence is None
        with pytest.raises(KeyError, match="no retrieval evidence"):
            candidates.evidence_for("tokens:City")

    def test_force_exhaustive_overrides_any_spec(self, engine, query):
        engine.force_exhaustive = True
        candidates = engine.retrieve(
            "d", CandidateSpec(channels=("tokens",)), query, k=5
        )
        assert candidates.evidence is None
        assert candidates.report.exhaustive

    def test_sketch_channel_needs_custom_probes(self, engine, query):
        with pytest.raises(EngineError, match="discoverer-provided probes"):
            engine.retrieve("d", CandidateSpec(channels=("sketch",)), query, k=5)

    def test_empty_query_retrieves_nothing(self, engine):
        empty = Table(["City"], [], name="empty")
        candidates = engine.retrieve(
            "d", CandidateSpec(channels=("tokens",)), empty, k=0 + 1
        )
        assert len(candidates) == 0 and not candidates.fallback


class TestLabelChannel:
    def test_publish_and_retrieve(self, engine):
        engine.publish_labels("d:type", {"city": {"T1", "T2"}, "name": {"T3"}})
        spec = CandidateSpec(channels=("labels",))
        candidates = engine.label_candidates("d", spec, {"d:type": ["city"]}, k=5)
        assert set(candidates) == {"T1", "T2"}
        assert engine.label_namespaces == ["d:type"]

    def test_unpublished_namespace_is_empty(self, engine):
        spec = CandidateSpec(channels=("labels",))
        candidates = engine.label_candidates("d", spec, {"nope": ["x"]}, k=0 + 1)
        assert len(candidates) == 0


class TestAccounting:
    def test_reports_and_explain(self, engine, query):
        engine.retrieve("d1", CandidateSpec(channels=("tokens",)), query, k=5)
        engine.retrieve("d2", CandidateSpec(), query, k=5)
        explain = engine.explain()
        assert explain["d1"]["retrieved"] == 2 and not explain["d1"]["exhaustive"]
        assert explain["d2"]["exhaustive"] and explain["d2"]["scored"] == 3
        assert engine.stats()["queries"] == {"d1": 1, "d2": 1}

    def test_stats_reflect_materialized_channels(self, engine, query):
        stats = engine.stats()
        assert stats["token_postings"] is None  # lazy until first probe
        engine.retrieve("d", CandidateSpec(channels=("tokens",)), query, k=5)
        stats = engine.stats()
        assert stats["token_postings"]["tokens"] > 0
        assert stats["columns"] == 5
        assert stats["build_count"] == 1


class TestCandidateSet:
    def test_container_protocol(self):
        cs = CandidateSet(tables=("a", "b"), evidence={})
        assert "a" in cs and "c" not in cs
        assert list(cs) == ["a", "b"] and len(cs) == 2


class TestEnginePersistence:
    def test_records_round_trip(self, lake, engine, query):
        engine.warm(("tokens", "values"))
        records = [dict(r) for r in engine.to_records(("tokens", "values"))]
        restored = CandidateEngine.from_records(lake, records)
        assert restored.loaded_from_store and restored.build_count == 0
        assert restored.token_postings.postings == engine.token_postings.postings
        assert restored.value_postings.postings == engine.value_postings.postings
        assert restored.registry.owners == engine.registry.owners
        spec = CandidateSpec(channels=("tokens",))
        a = engine.retrieve("d", spec, query, k=5, query_column="City")
        b = restored.retrieve("d", spec, query, k=5, query_column="City")
        assert a.tables == b.tables and a.evidence == b.evidence
        assert restored.build_count == 0  # probing hydrated channels rebuilds nothing

    def test_store_save_load_and_version_pinning(self, lake, engine, tmp_path):
        store = LakeStore.create(tmp_path / "lake.store")
        store.ingest(lake)
        engine.warm(("tokens",))
        store.save_engine(engine, channels=("tokens",))
        loaded = store.load_engine(lake=lake)
        assert loaded is not None and loaded.loaded_from_store
        assert loaded.token_postings.postings == engine.token_postings.postings
        # A content-changing ingest invalidates the artifact (never stale).
        smaller = {name: lake[name] for name in ["T1", "T2"]}
        store.ingest(smaller)
        assert store.load_engine(lake=smaller) is None
        assert not (tmp_path / "lake.store" / "postings" / "engine.post.jsonl").exists()

    def test_missing_artifact_returns_none(self, lake, tmp_path):
        store = LakeStore.create(tmp_path / "lake.store")
        store.ingest(lake)
        assert store.load_engine(lake=lake) is None
