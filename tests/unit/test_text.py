"""Unit tests for the text kernels (repro.text)."""

from __future__ import annotations

import pytest

from repro.table.values import MISSING
from repro.text import (
    TfIdfWeights,
    acronym_score,
    cell_tokens,
    char_ngrams,
    column_token_set,
    containment,
    cosine_sets,
    dice,
    jaccard,
    jaro,
    jaro_winkler,
    levenshtein,
    levenshtein_similarity,
    monge_elkan,
    name_similarity,
    numeric_fraction,
    overlap,
    parse_quantity,
    to_float,
    weighted_jaccard,
    word_ngrams,
    word_tokens,
)


class TestTokenizers:
    def test_word_tokens_split_punctuation(self):
        assert word_tokens("J&J vaccine") == ["j", "j", "vaccine"]
        assert word_tokens("New-Delhi 2021") == ["new", "delhi", "2021"]

    def test_char_ngrams_padded(self):
        assert char_ngrams("ab", 3) == ["#ab", "ab#"]
        assert char_ngrams("", 3) == []

    def test_char_ngrams_unpadded_short_string(self):
        assert char_ngrams("ab", 3, pad=False) == ["ab"]

    def test_word_ngrams(self):
        assert word_ngrams("a b c", 2) == ["a_b", "b_c"]
        assert word_ngrams("solo", 2) == ["solo"]
        assert word_ngrams("", 2) == []

    def test_cell_tokens(self):
        assert cell_tokens(MISSING) == []
        assert cell_tokens(True) == ["true"]
        assert cell_tokens(1.5) == ["1.5"]
        assert cell_tokens(1400000.0) == ["1.4e+06"]
        assert cell_tokens("Mexico City") == ["mexico", "city"]

    def test_column_token_set(self):
        assert column_token_set(["a b", "b c", MISSING]) == {"a", "b", "c"}


class TestSetSimilarity:
    def test_jaccard(self):
        assert jaccard({1, 2}, {2, 3}) == pytest.approx(1 / 3)
        assert jaccard(set(), set()) == 1.0
        assert jaccard({1}, set()) == 0.0

    def test_overlap(self):
        assert overlap({1, 2, 3}, {2, 3, 4}) == 2

    def test_containment_asymmetric(self):
        small, big = {1, 2}, {1, 2, 3, 4}
        assert containment(small, big) == 1.0
        assert containment(big, small) == 0.5
        assert containment(set(), big) == 0.0

    def test_dice_and_cosine(self):
        assert dice({1, 2}, {2, 3}) == pytest.approx(0.5)
        assert cosine_sets({1, 2}, {2, 3}) == pytest.approx(0.5)

    def test_weighted_jaccard(self):
        a = {"x": 2.0, "y": 1.0}
        b = {"x": 1.0, "z": 1.0}
        assert weighted_jaccard(a, b) == pytest.approx(1.0 / 4.0)
        assert weighted_jaccard({}, {}) == 1.0


class TestEditDistances:
    def test_levenshtein_basics(self):
        assert levenshtein("kitten", "sitting") == 3
        assert levenshtein("", "abc") == 3
        assert levenshtein("same", "same") == 0

    def test_levenshtein_similarity(self):
        assert levenshtein_similarity("", "") == 1.0
        assert levenshtein_similarity("ab", "ab") == 1.0
        assert 0 < levenshtein_similarity("ab", "ax") < 1

    def test_jaro_known_value(self):
        # Classic example: MARTHA / MARHTA = 0.944...
        assert jaro("martha", "marhta") == pytest.approx(0.9444, abs=1e-3)

    def test_jaro_winkler_boosts_prefix(self):
        assert jaro_winkler("prefixed", "prefixes") > jaro("prefixed", "prefixes")

    def test_jaro_edge_cases(self):
        assert jaro("", "x") == 0.0
        assert jaro("x", "x") == 1.0

    def test_monge_elkan_token_reorder(self):
        assert monge_elkan("United States", "States United") == pytest.approx(1.0)

    def test_acronym_score(self):
        assert acronym_score("US", "United States") == 1.0
        assert acronym_score("FDA", "Food and Drug Administration") == 1.0
        assert acronym_score("XYZ", "United States") == 0.0
        assert acronym_score("USA", "United States") == 0.0  # no third word

    def test_name_similarity_aliases(self):
        assert name_similarity("JnJ", "J&J") >= 0.7
        assert name_similarity("FDA", "Food and Drug Administration") == 1.0
        assert name_similarity("pfizer", "Pfizer") == 1.0
        assert name_similarity("Pfizer", "Moderna") < 0.7


class TestQuantities:
    def test_percent(self):
        assert parse_quantity("63%") == 63.0

    def test_magnitudes(self):
        assert parse_quantity("1.4M") == 1_400_000.0
        assert parse_quantity("263k") == 263_000.0
        assert parse_quantity("2B") == 2e9
        assert parse_quantity("1.5 million") == 1_500_000.0

    def test_separators_and_currency(self):
        assert parse_quantity("1,234,567") == 1_234_567.0
        assert parse_quantity("$1,200") == 1200.0
        assert parse_quantity("-5.5") == -5.5

    def test_non_quantities(self):
        assert parse_quantity("Berlin") is None
        assert parse_quantity("1.2.3") is None
        assert parse_quantity("") is None

    def test_to_float(self):
        assert to_float(3) == 3.0
        assert to_float(True) == 1.0
        assert to_float("42%") == 42.0
        assert to_float(MISSING) is None
        assert to_float("text") is None

    def test_numeric_fraction(self):
        assert numeric_fraction(["1", "2", "x", MISSING]) == 0.5
        assert numeric_fraction([]) == 0.0


class TestTfIdf:
    def test_rare_tokens_weigh_more(self):
        weights = TfIdfWeights()
        weights.add_document({"common", "rare"})
        weights.add_document({"common"})
        weights.add_document({"common"})
        assert weights.idf("rare") > weights.idf("common")

    def test_weighted_containment(self):
        weights = TfIdfWeights()
        weights.add_document({"a", "b"})
        weights.add_document({"a"})
        # query fully contained -> 1.0 regardless of weights.
        assert weights.weighted_containment({"a", "b"}, {"a", "b", "c"}) == 1.0
        partial = weights.weighted_containment({"a", "b"}, {"b"})
        assert 0.0 < partial < 1.0
        # The contained token (b) is the rarer one, so score > 0.5.
        assert partial > 0.5

    def test_empty_query(self):
        assert TfIdfWeights().weighted_containment(set(), {"a"}) == 0.0
