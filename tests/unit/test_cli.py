"""Unit tests for the command-line interface (repro.cli)."""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.datalake import DataLake
from repro.datalake.fixtures import (
    covid_joinable_table,
    covid_query_table,
    covid_unionable_table,
)
from repro.table import read_csv, write_csv


@pytest.fixture
def lake_dir(tmp_path):
    DataLake([covid_unionable_table(), covid_joinable_table()]).save_to(tmp_path / "lake")
    return tmp_path / "lake"


@pytest.fixture
def query_csv(tmp_path):
    path = tmp_path / "query.csv"
    write_csv(covid_query_table(), path)
    return path


class TestLakeInfo:
    def test_lists_tables(self, lake_dir, capsys):
        assert main(["lake-info", "--lake", str(lake_dir)]) == 0
        out = capsys.readouterr().out
        assert "T2" in out and "T3" in out and "7 rows total" in out


class TestProfile:
    def test_profiles_every_column(self, lake_dir, capsys):
        assert main(["profile", "--lake", str(lake_dir)]) == 0
        out = capsys.readouterr().out
        assert "distinct_est" in out
        assert "Vaccination Rate" in out and "Death Rate" in out

    def test_single_table(self, lake_dir, capsys):
        assert main(["profile", "--lake", str(lake_dir), "--table", "T3"]) == 0
        out = capsys.readouterr().out
        assert "T3" in out and "T2" not in out


class TestGenerate:
    def test_prints_and_writes(self, tmp_path, capsys):
        out_file = tmp_path / "generated.csv"
        code = main(
            [
                "generate",
                "--prompt", "covid cases",
                "--rows", "4",
                "--out", str(out_file),
            ]
        )
        assert code == 0
        assert "City" in capsys.readouterr().out
        assert read_csv(out_file).num_rows == 4


class TestDiscover:
    def test_discovers_both_tables(self, lake_dir, query_csv, capsys):
        code = main(
            [
                "discover",
                "--lake", str(lake_dir),
                "--query", str(query_csv),
                "--column", "City",
                "-k", "3",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "T2" in out and "T3" in out

    def test_discoverer_subset(self, lake_dir, query_csv, capsys):
        code = main(
            [
                "discover",
                "--lake", str(lake_dir),
                "--query", str(query_csv),
                "--discoverers", "josie",
            ]
        )
        assert code == 0
        assert "josie" in capsys.readouterr().out

    def test_missing_lake_rejected(self, query_csv):
        with pytest.raises(SystemExit):
            main(["discover", "--query", str(query_csv)])


class TestIntegrate:
    def test_pipeline_integration_writes_csv(self, lake_dir, query_csv, tmp_path, capsys):
        out_file = tmp_path / "integrated.csv"
        code = main(
            [
                "integrate",
                "--lake", str(lake_dir),
                "--query", str(query_csv),
                "--column", "City",
                "--out", str(out_file),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "integration set: query, T2, T3" in out
        written = read_csv(out_file)
        assert written.num_rows == 7  # Figure 3
        assert "OID" in written.columns

    def test_given_integration_set(self, tmp_path, capsys):
        from repro.datalake.fixtures import vaccine_integration_set

        paths = []
        for table in vaccine_integration_set():
            path = tmp_path / f"{table.name}.csv"
            write_csv(table, path)
            paths.append(str(path))
        code = main(["integrate", "--tables", *paths, "--integrator", "alite_fd"])
        assert code == 0
        out = capsys.readouterr().out
        assert "J&J" in out and "FDA" in out

    def test_unknown_integrator_fails(self, tmp_path, lake_dir, query_csv):
        with pytest.raises(KeyError):
            main(
                [
                    "integrate",
                    "--lake", str(lake_dir),
                    "--query", str(query_csv),
                    "--integrator", "bogus",
                ]
            )


class TestAnalyze:
    @pytest.fixture
    def table_csv(self, tmp_path):
        path = tmp_path / "t.csv"
        write_csv(covid_query_table(), path)
        return path

    def test_describe(self, table_csv, capsys):
        assert main(["analyze", "--table", str(table_csv)]) == 0
        out = capsys.readouterr().out
        assert "rows: 3" in out

    def test_correlation_with_options(self, tmp_path, capsys):
        from repro.table import Table

        path = tmp_path / "nums.csv"
        write_csv(Table(["a", "b"], [(1, 2), (2, 4), (3, 6)]), path)
        code = main(
            [
                "analyze",
                "--table", str(path),
                "--app", "correlation",
                "--option", "columns=a,b",
            ]
        )
        assert code == 0
        assert "correlation: 1.0" in capsys.readouterr().out

    def test_bad_option_syntax(self, table_csv):
        with pytest.raises(SystemExit, match="key=value"):
            main(["analyze", "--table", str(table_csv), "--option", "oops"])


class TestReport:
    def test_report_written(self, lake_dir, query_csv, tmp_path, capsys):
        out_file = tmp_path / "run.md"
        code = main(
            [
                "report",
                "--lake", str(lake_dir),
                "--query", str(query_csv),
                "--column", "City",
                "-k", "3",
                "--out", str(out_file),
            ]
        )
        assert code == 0
        content = out_file.read_text(encoding="utf-8")
        assert content.startswith("# DIALITE run: query")
        assert "## Integration" in content
        assert "### describe" in content


class TestDiscoverBatch:
    """The --queries batch mode: one lake index build, many queries."""

    def test_batch_discovers_per_query(self, lake_dir, tmp_path, capsys):
        paths = []
        for i in (1, 2):
            path = tmp_path / f"q{i}.csv"
            write_csv(covid_query_table().with_name(f"q{i}"), path)
            paths.append(str(path))
        code = main(
            [
                "discover",
                "--lake", str(lake_dir),
                "--queries", *paths,
                "--column", "City",
                "-k", "3",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "query: q1" in out and "query: q2" in out
        assert out.count("T2") >= 2 and out.count("T3") >= 2

    def test_query_and_queries_mutually_exclusive(self, lake_dir, query_csv):
        with pytest.raises(SystemExit, match="not both"):
            main(
                [
                    "discover",
                    "--lake", str(lake_dir),
                    "--query", str(query_csv),
                    "--queries", str(query_csv),
                ]
            )

    def test_requires_some_query(self, lake_dir):
        with pytest.raises(SystemExit, match="--query or --queries"):
            main(["discover", "--lake", str(lake_dir)])


class TestIndexCommands:
    """index build -> info -> warm discover round trip on a tmpdir lake."""

    def test_build_info_discover_round_trip(self, lake_dir, query_csv, tmp_path, capsys):
        store_dir = tmp_path / "lake.store"
        assert main(["index", "build", "--lake", str(lake_dir), "--store", str(store_dir)]) == 0
        out = capsys.readouterr().out
        assert "+2" in out and "fitted indexes" in out

        assert main(["index", "info", "--store", str(store_dir)]) == 0
        out = capsys.readouterr().out
        assert "lake version 1" in out
        assert "T2" in out and "T3" in out
        assert "josie" in out and "lsh_ensemble" in out and "santos" in out
        assert "current" in out

        code = main(
            [
                "discover",
                "--store", str(store_dir),
                "--query", str(query_csv),
                "--column", "City",
                "-k", "3",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "T2" in out and "T3" in out

    def test_update_is_incremental(self, lake_dir, tmp_path, capsys):
        store_dir = tmp_path / "lake.store"
        assert main(["index", "build", "--lake", str(lake_dir), "--store", str(store_dir)]) == 0
        capsys.readouterr()
        # Nothing changed: update re-ingests nothing and keeps the indexes.
        assert main(["index", "update", "--lake", str(lake_dir), "--store", str(store_dir)]) == 0
        out = capsys.readouterr().out
        assert "=2" in out and "unchanged" in out
        # Add one table: only the delta is ingested, indexes refit.
        from repro.datalake.fixtures import covid_query_table as extra

        write_csv(extra().with_name("T9"), lake_dir / "T9.csv")
        assert main(["index", "update", "--lake", str(lake_dir), "--store", str(store_dir)]) == 0
        out = capsys.readouterr().out
        assert "+1" in out and "=2" in out and "fitted indexes" in out

    def test_update_requires_existing_store(self, lake_dir, tmp_path):
        from repro.store import StoreNotFound

        with pytest.raises(StoreNotFound):
            main(["index", "update", "--lake", str(lake_dir), "--store", str(tmp_path / "none")])

    def test_integrate_from_store(self, lake_dir, query_csv, tmp_path, capsys):
        store_dir = tmp_path / "lake.store"
        assert main(["index", "build", "--lake", str(lake_dir), "--store", str(store_dir)]) == 0
        capsys.readouterr()
        code = main(
            [
                "integrate",
                "--store", str(store_dir),
                "--query", str(query_csv),
                "--column", "City",
            ]
        )
        assert code == 0
        assert "integration set: query, T2, T3" in capsys.readouterr().out


class TestCandidateEngineCli:
    """ISSUE 3 surface: --candidate-budget, discover --explain, and the
    posting/band/budget lines of ``index info``."""

    def test_discover_explain_reports_retrieval(self, lake_dir, query_csv, capsys):
        code = main(
            [
                "discover",
                "--lake", str(lake_dir),
                "--query", str(query_csv),
                "--column", "City",
                "--explain",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "retrieval (candidates before scoring):" in out
        assert "josie:" in out and "tables scored" in out
        assert "via tokens" in out and "via sketch" in out and "via labels" in out
        assert "engine:" in out and "budget=unbudgeted" in out

    def test_candidate_budget_threads_to_engine(self, lake_dir, query_csv, capsys):
        code = main(
            [
                "discover",
                "--lake", str(lake_dir),
                "--query", str(query_csv),
                "--column", "City",
                "--candidate-budget", "1",
                "--explain",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "budget=1" in out

    def test_index_info_reports_postings_and_specs(self, lake_dir, tmp_path, capsys):
        store_dir = tmp_path / "lake.store"
        assert main(["index", "build", "--lake", str(lake_dir), "--store", str(store_dir)]) == 0
        capsys.readouterr()
        assert main(["index", "info", "--store", str(store_dir)]) == 0
        out = capsys.readouterr().out
        assert "persisted postings (current):" in out
        assert "tokens" in out and "entries" in out
        assert "LSH bands" in out
        assert "josie: channels=tokens, budget=unbudgeted" in out
        assert "lsh_ensemble: channels=sketch" in out
        assert "santos: channels=labels" in out

    def test_warm_discover_uses_persisted_postings(self, lake_dir, query_csv, tmp_path, capsys):
        store_dir = tmp_path / "lake.store"
        assert main(["index", "build", "--lake", str(lake_dir), "--store", str(store_dir)]) == 0
        capsys.readouterr()
        code = main(
            [
                "discover",
                "--store", str(store_dir),
                "--query", str(query_csv),
                "--column", "City",
                "--explain",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "postings loaded from store: True" in out


class TestServe:
    """The serving surface: `repro serve`, `--service` routing, and the
    `index info` live-service beacon."""

    @pytest.fixture
    def served(self, lake_dir, tmp_path):
        import threading
        import time

        store_dir = tmp_path / "lake.store"
        assert main(["index", "build", "--lake", str(lake_dir), "--store", str(store_dir)]) == 0
        port_file = tmp_path / "port.txt"
        thread = threading.Thread(
            target=main,
            args=(
                [
                    "serve", "--store", str(store_dir),
                    "--port", "0", "--workers", "2",
                    "--batch-window", "0.002",
                    "--port-file", str(port_file),
                ],
            ),
            daemon=True,
        )
        thread.start()
        deadline = time.monotonic() + 10
        while not port_file.exists() and time.monotonic() < deadline:
            time.sleep(0.02)
        assert port_file.exists(), "serve never wrote its port file"
        host, port, version = port_file.read_text().split()
        yield store_dir, f"{host}:{port}", thread
        from repro.service import ServiceClient

        try:
            ServiceClient(f"{host}:{port}").shutdown()
        except Exception:
            pass
        thread.join(timeout=10)

    def test_discover_routes_through_service(self, served, query_csv, capsys):
        store_dir, address, _ = served
        capsys.readouterr()
        assert main(
            ["discover", "--service", address, "--query", str(query_csv),
             "--column", "City", "-k", "5"]
        ) == 0
        out = capsys.readouterr().out
        assert "T2" in out and "T3" in out and "lake v1" in out
        # A second identical call is served from the shared result cache.
        assert main(
            ["discover", "--service", address, "--query", str(query_csv),
             "--column", "City", "-k", "5"]
        ) == 0
        assert "served from cache" in capsys.readouterr().out

    def test_integrate_routes_through_service(self, served, query_csv, tmp_path, capsys):
        store_dir, address, _ = served
        out_file = tmp_path / "served_integrated.csv"
        capsys.readouterr()
        assert main(
            ["integrate", "--service", address, "--query", str(query_csv),
             "--column", "City", "--out", str(out_file)]
        ) == 0
        out = capsys.readouterr().out
        assert "integration set: " in out and out_file.exists()
        restored = read_csv(out_file)
        assert "OID" in restored.columns and restored.num_rows >= 7

    def test_index_info_reports_live_service(self, served, capsys):
        store_dir, address, _ = served
        capsys.readouterr()
        assert main(["index", "info", "--store", str(store_dir)]) == 0
        out = capsys.readouterr().out
        assert f"live service: {address} serving lake v1 (current)" in out

    def test_index_info_without_service(self, lake_dir, tmp_path, capsys):
        store_dir = tmp_path / "cold.store"
        assert main(["index", "build", "--lake", str(lake_dir), "--store", str(store_dir)]) == 0
        capsys.readouterr()
        assert main(["index", "info", "--store", str(store_dir)]) == 0
        assert "live service: none" in capsys.readouterr().out

    def test_index_info_detects_dead_pid_beacon(self, lake_dir, tmp_path, capsys):
        """ISSUE 8 satellite pin: a beacon left behind by an uncleanly
        exited server is reported as "not serving" via the PID liveness
        check, instead of waiting out the connect/ping timeout."""
        import json
        import subprocess
        import sys
        import time

        store_dir = tmp_path / "stale.store"
        assert main(["index", "build", "--lake", str(lake_dir), "--store", str(store_dir)]) == 0
        child = subprocess.Popen([sys.executable, "-c", "pass"])
        child.wait()  # a real PID that is now certainly dead (reaped here)
        (store_dir / "service.json").write_text(
            json.dumps({"host": "127.0.0.1", "port": 1, "pid": child.pid}),
            encoding="utf-8",
        )
        capsys.readouterr()
        start = time.perf_counter()
        assert main(["index", "info", "--store", str(store_dir)]) == 0
        elapsed = time.perf_counter() - start
        out = capsys.readouterr().out
        assert f"process {child.pid} is gone" in out
        assert "live service: none" in out
        assert elapsed < 1.0, "dead-PID beacon must not wait out the ping timeout"

    def test_discover_requires_some_backend(self, query_csv):
        with pytest.raises(SystemExit, match="--lake, --store or --service"):
            main(["discover", "--query", str(query_csv)])


class TestObs:
    """ISSUE 10 surface: `repro obs export` (Prometheus/JSON pull) and
    `repro obs top` (one-shot health/SLO frame) against a live server."""

    @pytest.fixture
    def live_server(self, lake_dir, tmp_path, capsys):
        from repro.datalake.fixtures import covid_query_table
        from repro.service import LakeServer, LakeService

        store_dir = tmp_path / "lake.store"
        assert main(["index", "build", "--lake", str(lake_dir), "--store", str(store_dir)]) == 0
        capsys.readouterr()
        service = LakeService(store=store_dir, workers=1, batch_window=0.0)
        server = LakeServer(service, port=0)
        server.start()
        service.discover(covid_query_table(), k=2)  # something to report
        host, port = server.address
        yield f"{host}:{port}"
        server.close()

    def test_export_prometheus_to_stdout(self, live_server, capsys):
        assert main(["obs", "export", live_server]) == 0
        out = capsys.readouterr().out
        assert "# TYPE repro_service_requests counter" in out
        assert "repro_service_requests 1" in out
        assert "repro_service_latency_discover_bucket" in out

    def test_export_json_to_file(self, live_server, tmp_path, capsys):
        import json

        out_file = tmp_path / "metrics.json"
        code = main(
            ["obs", "export", live_server, "--format", "json",
             "--out", str(out_file)]
        )
        assert code == 0
        assert f"written: {out_file}" in capsys.readouterr().out
        document = json.loads(out_file.read_text(encoding="utf-8"))
        assert document["counters"]["service.requests"] >= 1

    def test_top_one_frame(self, live_server, capsys):
        assert main(["obs", "top", live_server, "--iterations", "1"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("status: ok")
        assert "lake v1 epoch 1" in out
        assert "slo availability (target 0.999)" in out
        assert "slo degraded_rate" in out
        assert "burn 60s=0x  600s=0x" in out


class TestStoreMigrate:
    """store migrate flips segment formats in place; index info reports
    the store's format mix before and after."""

    def test_migrate_round_trip_via_cli(self, lake_dir, query_csv, tmp_path, capsys):
        store_dir = tmp_path / "lake.store"
        assert main(["index", "build", "--lake", str(lake_dir), "--store", str(store_dir)]) == 0
        capsys.readouterr()

        assert main(["index", "info", "--store", str(store_dir)]) == 0
        assert "segment format: v2" in capsys.readouterr().out

        assert main(["store", "migrate", "--store", str(store_dir), "--format", "v1"]) == 0
        out = capsys.readouterr().out
        assert "migrated 2 of 2 table segments to v1" in out
        assert "lake version 1 unchanged" in out

        assert main(["index", "info", "--store", str(store_dir)]) == 0
        assert "segment format: v1" in capsys.readouterr().out

        # Migrating to the format already in place rewrites nothing.
        assert main(["store", "migrate", "--store", str(store_dir), "--format", "v1"]) == 0
        assert "migrated 0 of 2" in capsys.readouterr().out

        # The migrated store still serves a warm discover.
        code = main(
            [
                "discover",
                "--store", str(store_dir),
                "--query", str(query_csv),
                "--column", "City",
                "-k", "3",
            ]
        )
        assert code == 0
        assert "T2" in capsys.readouterr().out
