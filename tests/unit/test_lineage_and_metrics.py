"""Unit tests for fact lineage, discovery ranking metrics, sorted-
neighborhood blocking, and histograms."""

from __future__ import annotations

import pytest

from repro.discovery import (
    JosieJoinSearch,
    average_precision,
    evaluate_discoverer,
    evaluate_ranking,
    precision_at_k,
    recall_at_k,
)
from repro.er import Record, SortedNeighborhoodBlocker, blocking_quality
from repro.integration import AliteFD, UnionIntegrator, explain_fact, fact_lineage
from repro.analysis import histogram
from repro.table import MISSING, Table


class TestFactLineage:
    @pytest.fixture
    def integrated(self, vaccine_tables):
        return AliteFD().integrate(vaccine_tables)

    def test_merged_fact_attributes_attributed(self, integrated):
        # f2 = {t3, t5} = (J&J, FDA, United States): Vaccine from t5 (T6),
        # Approver from t3 (T5), Country from both.
        lineage = {entry["attribute"]: entry for entry in fact_lineage(integrated, "f2")}
        assert lineage["Vaccine"]["tids"] == ["t5"]
        assert lineage["Approver"]["tids"] == ["t3"]
        assert lineage["Country"]["tids"] == ["t3", "t5"]
        assert lineage["Vaccine"]["sources"] == [("T6", 0)]

    def test_null_attribute_has_no_supporters(self, integrated):
        lineage = {entry["attribute"]: entry for entry in fact_lineage(integrated, "f3")}
        assert lineage["Approver"]["tids"] == []

    def test_explain_renders_origins(self, integrated):
        explanation = explain_fact(integrated, "f2")
        assert explanation.columns == ("attribute", "value", "origin")
        text = explanation.to_pretty()
        assert "T5[0]" in text and "T6[0]" in text

    def test_bad_oid_rejected(self, integrated):
        with pytest.raises(KeyError):
            fact_lineage(integrated, "f99")
        with pytest.raises(ValueError):
            fact_lineage(integrated, "x1")

    def test_requires_input_tuples(self, vaccine_tables):
        union = UnionIntegrator().integrate(vaccine_tables)
        with pytest.raises(ValueError, match="input tuples"):
            fact_lineage(union, "f1")


class TestRankingMetrics:
    def test_precision_recall_at_k(self):
        ranked = ["a", "x", "b", "y"]
        relevant = ["a", "b", "c"]
        assert precision_at_k(ranked, relevant, 2) == 0.5
        assert recall_at_k(ranked, relevant, 3) == pytest.approx(2 / 3)
        assert recall_at_k([], relevant, 5) == 0.0
        assert precision_at_k([], relevant, 5) == 1.0

    def test_average_precision_perfect_and_worst(self):
        assert average_precision(["a", "b", "z"], ["a", "b"]) == 1.0
        assert average_precision(["z", "y"], ["a"]) == 0.0
        assert average_precision(["z", "a"], ["a"]) == 0.5

    def test_k_validation(self):
        with pytest.raises(ValueError):
            precision_at_k(["a"], ["a"], 0)

    def test_evaluate_ranking_report_table(self):
        report = evaluate_ranking(["a", "b"], ["a"], ks=(1, 2), name="mine")
        table = report.to_table()
        assert table.column("k") == [1, 2]
        assert report.precision[1] == 1.0

    def test_evaluate_discoverer_end_to_end(self, covid_query, covid_joinable, covid_unionable):
        lake = {"T2": covid_unionable, "T3": covid_joinable}
        report = evaluate_discoverer(
            JosieJoinSearch(), lake, covid_query, relevant=["T3"], ks=(1,),
            query_column="City",
        )
        assert report.discoverer == "josie"
        assert report.recall[1] in (0.0, 1.0)


class TestSortedNeighborhood:
    @pytest.fixture
    def records(self):
        return [
            Record.from_mapping("r1", {"name": "Anna"}),
            Record.from_mapping("r2", {"name": "Annaa"}),
            Record.from_mapping("r3", {"name": "Zeke"}),
            Record.from_mapping("r4", {"name": "Zekee"}),
        ]

    def test_window_pairs_neighbors(self, records):
        pairs = SortedNeighborhoodBlocker(window=2).candidate_pairs(records)
        assert ("r1", "r2") in pairs
        assert ("r3", "r4") in pairs
        assert ("r1", "r3") not in pairs

    def test_larger_window_supersets_smaller(self, records):
        small = SortedNeighborhoodBlocker(window=2).candidate_pairs(records)
        large = SortedNeighborhoodBlocker(window=4).candidate_pairs(records)
        assert small <= large

    def test_window_validation(self):
        with pytest.raises(ValueError):
            SortedNeighborhoodBlocker(window=1)

    def test_blocking_quality_metrics(self, records):
        candidates = SortedNeighborhoodBlocker(window=2).candidate_pairs(records)
        gold = {("r1", "r2"), ("r3", "r4")}
        quality = blocking_quality(candidates, gold, num_records=4)
        assert quality["pair_completeness"] == 1.0
        assert quality["reduction_ratio"] == 0.5  # 3 of 6 pairs emitted


class TestHistogram:
    def test_bins_cover_and_count(self):
        table = Table(["v"], [(i,) for i in range(100)])
        result = histogram(table, "v", bins=10)
        assert result.num_rows == 10
        assert sum(result.column("count")) == 100

    def test_quantity_strings_binned(self):
        table = Table(["v"], [("10%",), ("20%",), ("90%",), (MISSING,)])
        result = histogram(table, "v", bins=2)
        assert sum(result.column("count")) == 3

    def test_constant_column_single_bin(self):
        table = Table(["v"], [(5,), (5,)])
        result = histogram(table, "v")
        assert result.num_rows == 1
        assert result.rows[0] == (5, 5, 2)

    def test_validations(self):
        table = Table(["v"], [("text",)])
        with pytest.raises(ValueError, match="numeric"):
            histogram(table, "v")
        with pytest.raises(ValueError, match="bins"):
            histogram(Table(["v"], [(1,)]), "v", bins=0)


class TestLinkTables:
    def test_cross_table_linkage(self):
        from repro.er import EntityResolver
        from repro.table import Table

        left = Table(["Vaccine", "Country"], [("J&J", "USA"), ("Pfizer", "Germany")], name="L")
        right = Table(["Vaccine", "Country"], [("JnJ", "United States"), ("Moderna", "France")], name="R")
        links = EntityResolver().link_tables(left, right)
        assert ("L1", "R1", 1.0) in [(a, b, round(s, 2)) for a, b, s in links]
        assert all(a.startswith("L") and b.startswith("R") for a, b, _ in links)

    def test_within_table_pairs_excluded(self):
        from repro.er import EntityResolver
        from repro.table import Table

        left = Table(["Name"], [("Acme", ), ("Acme Corp",)], name="L")
        right = Table(["Name"], [("Globex",)], name="R")
        links = EntityResolver().link_tables(left, right)
        assert not any({a[0], b[0]} == {"L"} for a, b, _ in links)


class TestOutliers:
    def test_detects_extreme_value(self):
        from repro.analysis import outliers
        from repro.table import Table

        rows = [(float(i),) for i in range(20)] + [(1e6,)]
        result = outliers(Table(["v"], rows), "v", z_threshold=3.0)
        assert result.num_rows == 1
        assert result.rows[0][0] == 1e6

    def test_constant_column_no_outliers(self):
        from repro.analysis import outliers
        from repro.table import Table

        result = outliers(Table(["v"], [(5,)] * 10), "v")
        assert result.num_rows == 0

    def test_too_few_values(self):
        from repro.analysis import outliers
        from repro.table import Table

        result = outliers(Table(["v"], [(1,), (2,)]), "v")
        assert result.num_rows == 0


class TestPipelineExplain:
    def test_explain_via_pipeline(self, vaccine_tables):
        from repro import Dialite

        pipeline = Dialite()
        integrated = pipeline.integrate(vaccine_tables, align=False)
        explanation = pipeline.explain(integrated, "f2")
        assert "T5[0]" in explanation.to_pretty()
