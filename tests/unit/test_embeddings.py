"""Unit tests for the hashed embedding substrate (repro.embeddings)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.embeddings import (
    ColumnEmbedder,
    ColumnEmbedderConfig,
    HashedVectorSpace,
    signed_slot,
    stable_hash,
    token_vector,
)
from repro.table.values import MISSING


class TestStableHash:
    def test_deterministic_across_calls(self):
        assert stable_hash("berlin") == stable_hash("berlin")

    def test_salt_changes_hash(self):
        assert stable_hash("berlin", salt="a") != stable_hash("berlin", salt="b")

    def test_distinct_tokens_rarely_collide(self):
        hashes = {stable_hash(f"token{i}") for i in range(10_000)}
        assert len(hashes) == 10_000

    def test_signed_slot_in_range(self):
        for token in ("a", "b", "c", "long token here"):
            index, sign = signed_slot(token, dim=64)
            assert 0 <= index < 64
            assert sign in (1.0, -1.0)


class TestHashedVectorSpace:
    def test_token_vector_one_hot(self):
        vector = token_vector("x", dim=32)
        assert np.count_nonzero(vector) == 1

    def test_embeddings_normalized(self):
        space = HashedVectorSpace(dim=64)
        vector = space.embed_tokens(["a", "b", "c"])
        assert np.linalg.norm(vector) == pytest.approx(1.0)

    def test_empty_tokens_zero_vector(self):
        space = HashedVectorSpace(dim=64)
        assert np.linalg.norm(space.embed_tokens([])) == 0.0
        assert HashedVectorSpace.cosine(space.embed_tokens([]), space.embed_tokens(["a"])) == 0.0

    def test_weighted_map_equivalent_to_repeats(self):
        space = HashedVectorSpace(dim=64)
        weighted = space.embed_tokens({"a": 2.0, "b": 1.0})
        repeated = space.embed_tokens(["a", "a", "b"])
        assert np.allclose(weighted, repeated)

    def test_similar_sets_embed_nearby(self):
        space = HashedVectorSpace(dim=256)
        base = [f"t{i}" for i in range(50)]
        near = space.embed_tokens(base[:45] + ["x1", "x2", "x3", "x4", "x5"])
        far = space.embed_tokens([f"u{i}" for i in range(50)])
        anchor = space.embed_tokens(base)
        assert HashedVectorSpace.cosine(anchor, near) > 0.7
        assert abs(HashedVectorSpace.cosine(anchor, far)) < 0.3

    def test_dim_validation(self):
        with pytest.raises(ValueError):
            HashedVectorSpace(dim=0)


class TestColumnEmbedder:
    def test_profile_statistics(self):
        embedder = ColumnEmbedder()
        profile = embedder.profile("Rate", ["63%", "78%", MISSING, "82%"])
        assert profile.non_null == 3  # the null is excluded
        profile = embedder.profile("Rate", ["63%", "78%", "82%"])
        assert profile.numeric_fraction == 1.0
        assert profile.distinct_ratio == 1.0
        assert profile.header_tokens == ("rate",)

    def test_header_weight_config(self):
        light = ColumnEmbedder(ColumnEmbedderConfig(header_weight=0.0))
        heavy = ColumnEmbedder(ColumnEmbedderConfig(header_weight=1.0))
        values_a = ["Toronto", "Boston"]
        values_b = ["Berlin", "Barcelona"]
        cosine_light = HashedVectorSpace.cosine(
            light.embed("City", values_a), light.embed("City", values_b)
        )
        cosine_heavy = HashedVectorSpace.cosine(
            heavy.embed("City", values_a), heavy.embed("City", values_b)
        )
        assert cosine_heavy > cosine_light  # shared header dominates

    def test_similarity_helper(self):
        embedder = ColumnEmbedder()
        a = embedder.profile("c", ["x", "y"])
        b = embedder.profile("c", ["x", "y"])
        assert ColumnEmbedder.similarity(a, b) == pytest.approx(1.0)

    def test_sampling_cap_stabilizes(self):
        embedder = ColumnEmbedder(ColumnEmbedderConfig(max_values=10))
        small = embedder.embed("c", [f"v{i}" for i in range(10)])
        big = embedder.embed("c", [f"v{i}" for i in range(10)] + ["ignored"] * 5)
        # The cap means extra values beyond the sample do not perturb much.
        assert HashedVectorSpace.cosine(small, big) == pytest.approx(1.0)
