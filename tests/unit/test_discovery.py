"""Unit tests for the discovery layer (base API, SANTOS, LSH Ensemble,
JOSIE, user-defined)."""

from __future__ import annotations

import pytest

from repro.discovery import (
    DiscoveryResult,
    FunctionDiscoverer,
    JosieJoinSearch,
    LSHEnsembleJoinSearch,
    SantosUnionSearch,
    exact_topk_overlap,
    inner_join_similarity,
    merge_result_sets,
    value_overlap_similarity,
)
from repro.discovery.josie import build_token_postings
from repro.table import MISSING, Table


@pytest.fixture
def tiny_lake(covid_unionable, covid_joinable):
    people = Table(
        ["First Name", "Last Name"],
        [("Alice", "Smith"), ("Bob", "Chen"), ("Maria", "Garcia")],
        name="people",
    )
    return {"T2": covid_unionable, "T3": covid_joinable, "people": people}


class TestDiscovererContract:
    def test_search_before_fit_raises(self, covid_query):
        with pytest.raises(RuntimeError, match="before fit"):
            SantosUnionSearch().search(covid_query)

    def test_k_must_be_positive(self, covid_query, tiny_lake):
        discoverer = SantosUnionSearch().fit(tiny_lake)
        with pytest.raises(ValueError):
            discoverer.search(covid_query, k=0)

    def test_negative_score_rejected(self):
        with pytest.raises(ValueError):
            DiscoveryResult(table_name="x", score=-1.0, discoverer="d")

    def test_results_sorted_and_truncated(self, covid_query, tiny_lake):
        discoverer = SantosUnionSearch().fit(tiny_lake)
        results = discoverer.search(covid_query, k=1)
        assert len(results) <= 1


class TestSantos:
    def test_finds_unionable_table_first(self, covid_query, tiny_lake):
        discoverer = SantosUnionSearch().fit(tiny_lake)
        results = discoverer.search(covid_query, k=3, query_column="City")
        assert results
        assert results[0].table_name == "T2"

    def test_people_table_scores_lower(self, covid_query, tiny_lake):
        discoverer = SantosUnionSearch().fit(tiny_lake)
        scores = {r.table_name: r.score for r in discoverer.search(covid_query, k=5)}
        assert scores.get("people", 0.0) < scores["T2"]

    def test_annotation_has_located_in_relationship(self, covid_query, tiny_lake):
        discoverer = SantosUnionSearch().fit(tiny_lake)
        annotation = discoverer.annotate(covid_query)
        assert "located_in" in annotation.relationships
        assert "city" in annotation.column_types["City"]
        assert "country" in annotation.column_types["Country"]

    def test_reason_mentions_evidence(self, covid_query, tiny_lake):
        discoverer = SantosUnionSearch().fit(tiny_lake)
        top = discoverer.search(covid_query, k=1, query_column="City")[0]
        assert top.reason


class TestLSHEnsembleSearch:
    def test_finds_joinable_table(self, covid_query, tiny_lake):
        discoverer = LSHEnsembleJoinSearch().fit(tiny_lake)
        results = discoverer.search(covid_query, k=3, query_column="City")
        names = [r.table_name for r in results]
        assert "T3" in names

    def test_unknown_query_column_rejected(self, covid_query, tiny_lake):
        discoverer = LSHEnsembleJoinSearch().fit(tiny_lake)
        with pytest.raises(KeyError):
            discoverer.search(covid_query, query_column="Nope")

    def test_no_query_column_probes_all(self, covid_query, tiny_lake):
        discoverer = LSHEnsembleJoinSearch().fit(tiny_lake)
        results = discoverer.search(covid_query, k=5)
        assert results  # City column still drives matches


class TestJosie:
    def test_exact_overlap_ranking(self, covid_query, tiny_lake):
        discoverer = JosieJoinSearch().fit(tiny_lake)
        results = discoverer.search(covid_query, k=3, query_column="City")
        assert results[0].table_name in ("T2", "T3")
        # Scores are exact intersection sizes (integers).
        assert all(float(r.score).is_integer() for r in results)

    def test_exact_topk_overlap_function(self):
        index, sizes = build_token_postings(
            [("a", {"x", "y", "z"}), ("b", {"x"}), ("c", {"q"})]
        )
        top = exact_topk_overlap({"x", "y"}, index, sizes, k=2)
        assert top[0] == ("a", 2)
        assert top[1] == ("b", 1)

    def test_exact_topk_respects_min_overlap(self):
        index, sizes = build_token_postings([("a", {"x"}), ("b", {"y"})])
        top = exact_topk_overlap({"x", "y"}, index, sizes, k=5, min_overlap=2)
        assert top == []

    def test_k_validation(self):
        with pytest.raises(ValueError):
            exact_topk_overlap({"x"}, {}, {}, k=0)

    def test_early_termination_matches_naive(self):
        # Adversarial: many small sets, one big winner; early termination
        # must still produce the exact ranking.
        sets = [(f"s{i}", {f"tok{i}"}) for i in range(50)]
        sets.append(("win", {f"q{i}" for i in range(20)}))
        index, sizes = build_token_postings(sets)
        query = {f"q{i}" for i in range(20)} | {"tok0"}
        top = exact_topk_overlap(query, index, sizes, k=2)
        assert top[0] == ("win", 20)
        assert top[1] == ("s0", 1)


class TestUserDefined:
    def test_function_discoverer_wraps_similarity(self, covid_query, tiny_lake):
        discoverer = FunctionDiscoverer(value_overlap_similarity, name="overlap").fit(tiny_lake)
        results = discoverer.search(covid_query, k=3)
        assert results
        assert all(r.discoverer == "overlap" for r in results)

    def test_inner_join_similarity_fig4(self, covid_query, covid_joinable):
        score = inner_join_similarity(covid_query, covid_joinable)
        assert score == pytest.approx(2 / 3)  # Berlin + Barcelona join

    def test_inner_join_similarity_no_shared_columns(self, covid_query):
        other = Table(["Z"], [("1",)], name="z")
        assert inner_join_similarity(covid_query, other) == 0.0

    def test_value_overlap_empty(self):
        a = Table(["x"], [(1,)], name="a")
        b = Table(["y"], [(2,)], name="b")
        assert value_overlap_similarity(a, b) == 0.0


class TestMergeResultSets:
    def test_union_keeps_best_raw_score_and_reports_finders(self):
        a = [DiscoveryResult("t", 0.5, "d1"), DiscoveryResult("u", 0.9, "d1")]
        b = [DiscoveryResult("t", 0.8, "d2")]
        merged = merge_result_sets([a, b], normalize=False)
        by_name = {r.table_name: r for r in merged}
        assert by_name["t"].score == 0.8
        assert "d1" in by_name["t"].reason and "d2" in by_name["t"].reason
        assert merged[0].table_name == "u"  # sorted by score

    def test_normalization_makes_scales_comparable(self):
        # JOSIE-style raw counts must not drown [0, 1] semantic scores.
        josie = [DiscoveryResult("j", 9.0, "josie"), DiscoveryResult("d", 3.0, "josie")]
        santos = [DiscoveryResult("s", 0.9, "santos"), DiscoveryResult("d2", 0.3, "santos")]
        merged = merge_result_sets([josie, santos])
        by_name = {r.table_name: r.score for r in merged}
        assert by_name["j"] == 1.0 and by_name["s"] == 1.0
        assert by_name["d"] == pytest.approx(1 / 3)

    def test_empty(self):
        assert merge_result_sets([]) == []

    def test_deterministic_tie_breaking(self):
        """ISSUE 3 satellite pin: merged order is (score desc, table asc,
        discoverer asc), and on a score tie the alphabetically first
        discoverer is credited -- independent of input order, so persisted
        integration sets are byte-reproducible across runs."""
        a = [DiscoveryResult("t", 1.0, "zeta"), DiscoveryResult("b", 1.0, "zeta")]
        b = [DiscoveryResult("t", 1.0, "alpha"), DiscoveryResult("a", 1.0, "alpha")]
        forward = merge_result_sets([a, b], normalize=False)
        backward = merge_result_sets([b, a], normalize=False)
        assert [(r.table_name, r.score, r.discoverer) for r in forward] == [
            (r.table_name, r.score, r.discoverer) for r in backward
        ]
        assert [r.table_name for r in forward] == ["a", "b", "t"]
        by_name = {r.table_name: r for r in forward}
        assert by_name["t"].discoverer == "alpha"  # tie -> lexicographic winner

    def test_same_pair_from_two_sources_keeps_max_score(self):
        """ISSUE 8 satellite pin: the sharded reducer may present the same
        (table, discoverer) pair in several result sets -- two shards each
        returning their local score for one table.  Dedup keeps the max
        score for the pair, lists the discoverer once in the reason line,
        and the merged order stays the (score desc, table asc, discoverer
        asc) total order regardless of which shard's copy arrives first."""
        shard_a = [
            DiscoveryResult("t", 0.4, "josie"),
            DiscoveryResult("u", 0.9, "josie"),
        ]
        shard_b = [
            DiscoveryResult("t", 0.7, "josie"),
            DiscoveryResult("t", 0.7, "santos"),
        ]
        forward = merge_result_sets([shard_a, shard_b], normalize=False)
        backward = merge_result_sets([shard_b, shard_a], normalize=False)
        key = lambda rs: [(r.table_name, r.score, r.discoverer, r.reason) for r in rs]
        assert key(forward) == key(backward)
        by_name = {r.table_name: r for r in forward}
        assert by_name["t"].score == 0.7  # max across sources, not first-seen
        assert by_name["t"].discoverer == "josie"  # 0.7 tie -> lexicographic
        # Each discoverer is credited once even though josie reported twice.
        assert by_name["t"].reason == "found by: josie, santos"
        assert [r.table_name for r in forward] == ["u", "t"]

    def test_equal_repeat_never_displaces_credited_entry(self):
        # A lower-or-equal repeat of the same pair is a no-op: strict >
        # on score, and the discoverer-name tie-break compares equal.
        first = [DiscoveryResult("t", 0.5, "josie", reason="r1")]
        repeat = [DiscoveryResult("t", 0.5, "josie", reason="r2")]
        merged = merge_result_sets([first, repeat], normalize=False)
        assert len(merged) == 1
        assert merged[0].score == 0.5
        assert merged[0].reason == "found by: josie"
