"""Unit tests for the analysis layer (repro.analysis)."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.stats

from repro.analysis import (
    AggregationApp,
    CorrelationApp,
    DescribeApp,
    EntityResolutionApp,
    IntegrationReport,
    column_correlation,
    compare_integrations,
    correlation_matrix,
    describe,
    extreme,
    fact_coverage,
    group_summary,
    information_dominates,
    null_profile,
    order_variability,
    pearson,
    spearman,
    top_k,
)
from repro.integration import AliteFD, OuterJoinIntegrator, order_sensitivity
from repro.table import MISSING, PRODUCED, Table


class TestCorrelationKernels:
    def test_pearson_matches_scipy(self):
        rng = np.random.default_rng(0)
        xs = rng.normal(size=50).tolist()
        ys = (np.array(xs) * 2 + rng.normal(size=50) * 0.5).tolist()
        ours = pearson(xs, ys)
        theirs = scipy.stats.pearsonr(xs, ys).statistic
        assert ours == pytest.approx(theirs, abs=1e-12)

    def test_spearman_matches_scipy_with_ties(self):
        xs = [1.0, 2.0, 2.0, 3.0, 5.0, 5.0, 7.0]
        ys = [2.0, 1.0, 4.0, 3.0, 6.0, 6.0, 7.0]
        ours = spearman(xs, ys)
        theirs = scipy.stats.spearmanr(xs, ys).statistic
        assert ours == pytest.approx(theirs, abs=1e-12)

    def test_degenerate_variance_returns_zero(self):
        assert pearson([1.0, 1.0, 1.0], [1.0, 2.0, 3.0]) == 0.0

    def test_validations(self):
        with pytest.raises(ValueError):
            pearson([1.0], [1.0])
        with pytest.raises(ValueError):
            pearson([1.0, 2.0], [1.0])


class TestColumnCorrelation:
    @pytest.fixture
    def table(self):
        return Table(
            ["rate", "deaths"],
            [("63%", 147), ("82%", 275), ("62%", 335), (MISSING, 500), ("90%", PRODUCED)],
            name="t",
        )

    def test_pairwise_complete_parsing(self, table):
        coefficient, support = column_correlation(table, "rate", "deaths")
        assert support == 3  # null rows dropped pairwise

    def test_spearman_method(self, table):
        coefficient, support = column_correlation(table, "rate", "deaths", "spearman")
        assert -1.0 <= coefficient <= 1.0 and support == 3

    def test_unknown_method(self, table):
        with pytest.raises(ValueError, match="method"):
            column_correlation(table, "rate", "deaths", "kendall")

    def test_matrix_shape_and_diagonal(self, table):
        matrix = correlation_matrix(table)
        assert matrix.columns == ("column", "rate", "deaths")
        assert matrix.rows[0][1] == 1.0


class TestAggregates:
    @pytest.fixture
    def table(self):
        return Table(
            ["city", "rate"],
            [("Boston", "62%"), ("Toronto", "83%"), ("Berlin", "63%"), ("Oslo", MISSING)],
            name="t",
        )

    def test_extreme(self, table):
        assert extreme(table, "rate", "city", "min") == ("Boston", 62.0)
        assert extreme(table, "rate", "city", "max") == ("Toronto", 83.0)

    def test_extreme_validations(self, table):
        with pytest.raises(ValueError, match="mode"):
            extreme(table, "rate", "city", "median")
        empty = Table(["city", "rate"], [("X", "text")])
        with pytest.raises(ValueError, match="numeric"):
            extreme(empty, "rate", "city", "min")

    def test_top_k(self, table):
        best = top_k(table, "rate", k=2)
        assert best.column("city") == ["Toronto", "Berlin"]

    def test_group_summary_parses_quantities(self):
        t = Table(["g", "v"], [("a", "1k"), ("a", "3k"), ("b", "2k")])
        summary = group_summary(t, ["g"], "v")
        rows = {r[0]: r for r in summary.rows}
        assert rows["a"][summary.column_index("mean")] == 2000.0


class TestStats:
    def test_null_profile_by_kind(self):
        t = Table(["a", "b"], [(MISSING, PRODUCED), (1, PRODUCED)])
        profile = null_profile(t)
        assert profile.missing == 1
        assert profile.produced == 2
        assert profile.completeness == pytest.approx(0.25)

    def test_describe_columns(self):
        t = Table(["n", "s"], [(1, "x"), (3, "y"), (MISSING, "x")])
        summary = describe(t)
        row = dict(zip(summary.columns, summary.rows[0]))
        assert row["non_null"] == 2
        assert row["min"] == 1.0 and row["max"] == 3.0

    def test_fact_coverage(self):
        coverage = fact_coverage([frozenset({"t1"}), frozenset({"t1", "t2", "t3"})])
        assert coverage["merged_tuples"] == 1
        assert coverage["max_sources"] == 3
        assert coverage["mean_sources"] == 2.0
        assert fact_coverage([])["tuples"] == 0


class TestQuality:
    def test_fd_dominates_outer_join(self, vaccine_tables):
        fd = AliteFD().integrate(vaccine_tables)
        oj = OuterJoinIntegrator().integrate(vaccine_tables)
        assert information_dominates(fd, oj)
        assert not information_dominates(oj, fd)

    def test_compare_integrations_table(self, vaccine_tables):
        fd = AliteFD().integrate(vaccine_tables)
        oj = OuterJoinIntegrator().integrate(vaccine_tables)
        report = compare_integrations([fd, oj])
        by_algo = {r[0]: dict(zip(report.columns, r)) for r in report.rows}
        assert by_algo["alite_fd"]["tuples"] == 3
        assert by_algo["outer_join"]["tuples"] == 5
        assert by_algo["alite_fd"]["completeness"] > by_algo["outer_join"]["completeness"]

    def test_integration_report_fields(self, vaccine_tables):
        fd = AliteFD().integrate(vaccine_tables)
        report = IntegrationReport.from_integrated(fd)
        assert report.algorithm == "alite_fd"
        assert report.merged_tuples == 2  # f8 and f13

    def test_order_variability_fd_vs_outer_join(self, vaccine_tables):
        oj_results = [t for _, t in order_sensitivity(vaccine_tables, max_orders=6)]
        report = order_variability(oj_results)
        assert report["orders_tried"] == 6
        assert report["distinct_outputs"] > 1
        from itertools import permutations

        fd_results = [AliteFD().integrate(list(p)) for p in permutations(vaccine_tables)]
        fd_report = order_variability(fd_results)
        assert fd_report["distinct_outputs"] == 1


class TestApps:
    def test_describe_app(self, covid_query):
        result = DescribeApp().run(covid_query)
        assert result["rows"] == 3
        assert result["completeness"] == 1.0

    def test_aggregation_app(self, covid_query):
        result = AggregationApp().run(
            covid_query, value_column="Vaccination Rate", label_column="City"
        )
        assert result["lowest"][0] == "Berlin"

    def test_correlation_app_pair(self, covid_query):
        t = Table(["a", "b"], [(1, 2), (2, 4), (3, 6)])
        result = CorrelationApp().run(t, columns=["a", "b"])
        assert result["correlation"] == pytest.approx(1.0)

    def test_correlation_app_matrix(self):
        t = Table(["a", "b"], [(1, 2), (2, 4), (3, 7)])
        matrix = CorrelationApp().run(t)
        assert matrix.num_rows == 2

    def test_er_app(self, vaccine_tables):
        fd = AliteFD().integrate(vaccine_tables)
        result = EntityResolutionApp().run(fd)
        assert result.num_entities == 2


class TestNewApps:
    def test_histogram_app(self):
        from repro.analysis import HistogramApp

        t = Table(["v"], [(i,) for i in range(20)])
        result = HistogramApp().run(t, column="v", bins=4)
        assert result.num_rows == 4
        assert sum(result.column("count")) == 20

    def test_pivot_app(self):
        from repro.analysis import PivotApp

        t = Table(["g", "m", "v"], [("a", "x", 1), ("a", "y", 2), ("b", "x", 3)])
        wide = PivotApp().run(t, index="g", columns="m", values="v")
        assert wide.columns == ("g", "x", "y")

    def test_apps_registered_in_pipeline(self):
        from repro import Dialite

        pipeline = Dialite()
        assert "histogram" in pipeline.apps and "pivot" in pipeline.apps
