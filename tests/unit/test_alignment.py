"""Unit tests for holistic schema matching (repro.alignment)."""

from __future__ import annotations

import pytest

from repro.alignment import (
    ColumnRef,
    HolisticAligner,
    MatcherWeights,
    cluster_columns,
    column_pair_score,
    featurize_tables,
)
from repro.discovery.kb import seed_knowledge_base
from repro.table import MISSING, Table


@pytest.fixture
def kb():
    return seed_knowledge_base()


class TestFeaturize:
    def test_unique_table_names_required(self, covid_query):
        with pytest.raises(ValueError, match="unique"):
            featurize_tables([covid_query, covid_query])

    def test_profiles_capture_statistics(self, covid_query, kb):
        columns = featurize_tables([covid_query], kb=kb)
        by_name = {c.ref.column: c for c in columns}
        rate = by_name["Vaccination Rate"]
        assert rate.profile.numeric_fraction == 1.0  # "63%" parses
        city = by_name["City"]
        assert "city" in city.type_weights
        assert city.values == frozenset({"berlin", "manchester", "barcelona"})


class TestPairScore:
    def test_same_values_same_header_high(self, kb):
        a = Table(["City"], [("Berlin",), ("Boston",)], name="a")
        b = Table(["City"], [("Berlin",), ("Toronto",)], name="b")
        columns = featurize_tables([a, b], kb=kb)
        assert column_pair_score(columns[0], columns[1]) > 0.7

    def test_semantic_match_with_disjoint_values(self, kb):
        # Country columns with zero value overlap still align via KB types.
        a = Table(["Country"], [("Germany",), ("Spain",)], name="a")
        b = Table(["Nation"], [("Canada",), ("Mexico",)], name="b")
        columns = featurize_tables([a, b], kb=kb)
        assert column_pair_score(columns[0], columns[1]) >= 0.2

    def test_numeric_text_gate(self, kb):
        a = Table(["x"], [(1.5,), (2.5,), (3.5,)], name="a")
        b = Table(["x"], [("Berlin",), ("Boston",), ("Barcelona",)], name="b")
        columns = featurize_tables([a, b], kb=kb)
        gated = column_pair_score(columns[0], columns[1])
        ungated = column_pair_score(
            columns[0], columns[1], MatcherWeights(numeric_gate=1.0)
        )
        assert gated < ungated

    def test_unrelated_columns_score_low(self, kb):
        a = Table(["Vaccine"], [("Pfizer",), ("Moderna",)], name="a")
        b = Table(["Sport"], [("Tennis",), ("Golf",)], name="b")
        columns = featurize_tables([a, b], kb=kb)
        assert column_pair_score(columns[0], columns[1]) < 0.3


class TestClustering:
    def test_same_table_constraint(self, kb):
        # Two near-identical columns inside ONE table must not merge, even
        # though their pairwise score is high.
        t = Table(["a", "b"], [("x", "x"), ("y", "y")], name="t")
        u = Table(["c"], [("x",), ("y",)], name="u")
        columns = featurize_tables([t, u], kb=kb)
        clusters = cluster_columns(columns, threshold=0.2)
        for cluster in clusters:
            tables = [ref.table for ref in cluster]
            assert len(tables) == len(set(tables))

    def test_deterministic(self, covid_tables):
        columns = featurize_tables(covid_tables, kb=seed_knowledge_base())
        assert cluster_columns(columns) == cluster_columns(columns)


class TestAligner:
    def test_empty_set_rejected(self):
        with pytest.raises(ValueError):
            HolisticAligner().align([])

    def test_apply_renames_to_shared_ids(self, covid_tables):
        alignment = HolisticAligner().align(covid_tables)
        renamed = alignment.apply(covid_tables)
        t1, t2, t3 = renamed
        shared_12 = set(t1.columns) & set(t2.columns)
        assert len(shared_12) == 3
        shared_13 = set(t1.columns) & set(t3.columns)
        assert len(shared_13) == 1  # City only

    def test_apply_unknown_table_rejected(self, covid_tables, covid_query):
        alignment = HolisticAligner().align(covid_tables)
        stranger = covid_query.with_name("stranger")
        with pytest.raises(KeyError):
            alignment.apply([stranger])

    def test_ids_unique_per_cluster(self, covid_tables):
        alignment = HolisticAligner().align(covid_tables)
        ids = [alignment.integration_id(r.table, r.column) for c in alignment.clusters for r in c]
        # Every member of one cluster shares one ID; distinct clusters differ.
        assert alignment.num_ids == len(alignment.clusters)
        assert set(ids) == set(alignment.assignments.values())

    def test_id_name_collision_gets_suffix(self):
        # Two semantically different "Name" clusters must get distinct IDs.
        a = Table(["Name"], [("Pfizer",), ("Moderna",), ("Novavax",)], name="a")
        b = Table(["Name"], [("pfizer",), ("moderna",), ("novavax",)], name="b")
        c = Table(["Name"], [(1.25,), (2.5,), (9.75,)], name="c")
        alignment = HolisticAligner().align([a, b, c])
        ids = set(alignment.assignments.values())
        assert len(ids) == alignment.num_ids
        assert alignment.integration_id("a", "Name") == alignment.integration_id("b", "Name")
        assert alignment.integration_id("c", "Name") != alignment.integration_id("a", "Name")

    def test_matched_pairs_helper(self, covid_tables):
        alignment = HolisticAligner().align(covid_tables)
        pairs = alignment.matched_pairs()
        assert (
            ColumnRef("T1", "City"),
            ColumnRef("T2", "City"),
        ) in pairs or (
            ColumnRef("T2", "City"),
            ColumnRef("T1", "City"),
        ) in pairs

    def test_kb_ablation_still_aligns_by_header(self, covid_tables):
        alignment = HolisticAligner(kb=None).align(covid_tables)
        assert alignment.integration_id("T1", "City") == alignment.integration_id("T3", "City")

    def test_handles_all_null_columns(self):
        a = Table(["x", "y"], [("v", MISSING), ("w", MISSING)], name="a")
        b = Table(["x"], [("v",), ("w",)], name="b")
        alignment = HolisticAligner().align([a, b])
        assert alignment.integration_id("a", "x") == alignment.integration_id("b", "x")
