"""Unit tests for relational operators (repro.table.ops)."""

from __future__ import annotations

import pytest

from repro.table import MISSING, PRODUCED, Table, ops


@pytest.fixture
def left():
    return Table(["k", "a"], [("x", 1), ("y", 2), ("z", 3), (MISSING, 4)], name="L")


@pytest.fixture
def right():
    return Table(["k", "b"], [("x", 10), ("x", 11), ("w", 12)], name="R")


class TestUnaryOps:
    def test_project_reorders(self, left):
        t = ops.project(left, ["a", "k"])
        assert t.columns == ("a", "k")
        assert t.rows[0] == (1, "x")

    def test_select(self, left):
        t = ops.select(left, lambda row: isinstance(row["a"], int) and row["a"] > 1)
        assert t.num_rows == 3

    def test_distinct_respects_null_kind(self):
        t = Table(["x"], [(MISSING,), (PRODUCED,), (MISSING,)])
        assert ops.distinct(t).num_rows == 2

    def test_sort_nulls_last(self):
        t = Table(["x"], [(MISSING,), (2,), (1,)])
        sorted_t = ops.sort_by(t, ["x"])
        assert sorted_t.column("x")[-1] is MISSING
        assert sorted_t.column("x")[:2] == [1, 2]

    def test_limit(self, left):
        assert ops.limit(left, 2).num_rows == 2


class TestUnions:
    def test_union_all_requires_same_header(self, left, right):
        with pytest.raises(ValueError, match="header mismatch"):
            ops.union_all([left, right])

    def test_union_all_concatenates(self, left):
        assert ops.union_all([left, left]).num_rows == 8

    def test_union_all_empty_input(self):
        with pytest.raises(ValueError):
            ops.union_all([])

    def test_outer_union_pads_with_produced(self, left, right):
        t = ops.outer_union([left, right])
        assert t.columns == ("k", "a", "b")
        assert t.rows[0] == ("x", 1, PRODUCED)
        assert t.rows[4] == ("x", PRODUCED, 10)

    def test_outer_union_column_order_first_appearance(self):
        a = Table(["x", "y"], [], name="a")
        b = Table(["z", "x"], [], name="b")
        assert ops.outer_union([a, b]).columns == ("x", "y", "z")


class TestJoins:
    def test_inner_join_basic(self, left, right):
        t = ops.inner_join(left, right)
        assert t.columns == ("k", "a", "b")
        assert t.num_rows == 2  # x matches twice

    def test_null_keys_never_match(self, left):
        other = Table(["k", "c"], [(MISSING, 9)], name="O")
        assert ops.inner_join(left, other).num_rows == 0

    def test_left_outer_join_pads(self, left, right):
        t = ops.left_outer_join(left, right)
        assert t.num_rows == 5  # x twice + y, z, null-key row
        padded = [r for r in t.rows if r[2] is PRODUCED]
        assert len(padded) == 3

    def test_full_outer_join_keeps_right(self, left, right):
        t = ops.full_outer_join(left, right)
        w_rows = [r for r in t.rows if r[0] == "w"]
        assert w_rows == [("w", PRODUCED, 12)]

    def test_join_without_shared_columns_raises(self):
        a = Table(["x"], [], name="a")
        b = Table(["y"], [], name="b")
        with pytest.raises(ValueError, match="no shared columns"):
            ops.inner_join(a, b)

    def test_explicit_on_validated(self, left, right):
        with pytest.raises(KeyError):
            ops.inner_join(left, right, on=["nope"])

    def test_numeric_cross_type_join(self):
        a = Table(["k", "v"], [(1, "a")], name="a")
        b = Table(["k", "w"], [(1.0, "b")], name="b")
        assert ops.inner_join(a, b).num_rows == 1

    def test_outer_join_not_associative(self):
        # The motivating deficiency: changing fold order changes the result.
        t4 = Table(["Vaccine", "Approver"], [("Pfizer", "FDA"), ("JnJ", MISSING)], name="T4")
        t5 = Table(["Country", "Approver"], [("US", "FDA"), ("USA", MISSING)], name="T5")
        t6 = Table(["Vaccine", "Country"], [("J&J", "US"), ("JnJ", "USA")], name="T6")
        order_a = ops.full_outer_join(ops.full_outer_join(t4, t5), t6)
        order_b = ops.full_outer_join(ops.full_outer_join(t4, t6), t5)
        rows_a = {tuple(map(repr, r)) for r in order_a.rows}
        rows_b = {
            tuple(map(repr, (row[order_b.column_index(c)] for c in order_a.columns)))
            for row in order_b.rows
        }
        assert rows_a != rows_b


class TestAggregate:
    @pytest.fixture
    def sales(self):
        return Table(
            ["region", "amount"],
            [("east", 10), ("east", 20), ("west", 5), ("west", MISSING)],
            name="sales",
        )

    def test_group_aggregate(self, sales):
        t = ops.aggregate(
            sales,
            group_by=["region"],
            aggregations={"total": ("amount", "sum"), "n": ("amount", "count")},
        )
        rows = {r[0]: (r[1], r[2]) for r in t.rows}
        assert rows == {"east": (30, 2), "west": (5, 1)}

    def test_global_aggregate(self, sales):
        t = ops.aggregate(sales, group_by=[], aggregations={"m": ("amount", "mean")})
        assert t.num_rows == 1
        assert t.rows[0][0] == pytest.approx(35 / 3)

    def test_custom_callable(self, sales):
        t = ops.aggregate(
            sales, group_by=["region"], aggregations={"r": ("amount", lambda vs: len(vs) * 100)}
        )
        assert t.column("r") == [200, 100]

    def test_empty_group_aggregates_to_produced(self):
        t = Table(["g", "v"], [("a", MISSING)])
        agg = ops.aggregate(t, ["g"], {"s": ("v", "sum")})
        assert agg.rows[0][1] is PRODUCED

    def test_min_max_mixed_types_fall_back_to_string_order(self):
        t = Table(["g", "v"], [("a", 1), ("a", "zz")])
        agg = ops.aggregate(t, ["g"], {"lo": ("v", "min"), "hi": ("v", "max")})
        assert agg.rows[0][1:] == (1, "zz")
