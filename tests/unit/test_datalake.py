"""Unit tests for the data-lake substrate (catalog, indexer, synth)."""

from __future__ import annotations

import pytest

from repro.datalake import (
    DataLake,
    LakeIndex,
    SyntheticLakeBuilder,
    build_integration_set,
    perturb_string,
)
from repro.discovery import JosieJoinSearch, SantosUnionSearch
from repro.table import MISSING, Table


class TestDataLake:
    def test_mapping_protocol(self, covid_unionable, covid_joinable):
        lake = DataLake([covid_unionable, covid_joinable])
        assert len(lake) == 2
        assert set(lake) == {"T2", "T3"}
        assert lake["T2"].num_rows == 3

    def test_duplicate_names_rejected(self, covid_unionable):
        lake = DataLake([covid_unionable])
        with pytest.raises(ValueError, match="already in lake"):
            lake.add(covid_unionable)

    def test_missing_table_error_message(self):
        with pytest.raises(KeyError, match="0 tables"):
            DataLake()["nope"]

    def test_round_trip_through_directory(self, tmp_path, covid_unionable):
        lake = DataLake([covid_unionable])
        lake.save_to(tmp_path)
        loaded = DataLake.from_dir(tmp_path)
        assert loaded["T2"].columns == covid_unionable.columns
        assert loaded["T2"].rows[1][2] is MISSING  # Mexico City's ± survives

    def test_from_dir_missing(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            DataLake.from_dir(tmp_path / "absent")

    def test_subset_order_preserved(self, covid_unionable, covid_joinable):
        lake = DataLake([covid_unionable, covid_joinable])
        subset = lake.subset(["T3", "T2"])
        assert [t.name for t in subset] == ["T3", "T2"]

    def test_total_rows(self, covid_unionable, covid_joinable):
        assert DataLake([covid_unionable, covid_joinable]).total_rows() == 7


class TestLakeIndex:
    def test_build_records_timings(self, covid_unionable, covid_joinable):
        lake = DataLake([covid_unionable, covid_joinable])
        index = LakeIndex(lake, [SantosUnionSearch(), JosieJoinSearch()]).build()
        assert set(index.build_seconds) == {"santos", "josie"}
        assert all(t >= 0 for t in index.build_seconds.values())

    def test_duplicate_discoverer_names_rejected(self, covid_unionable):
        lake = DataLake([covid_unionable])
        with pytest.raises(ValueError, match="unique"):
            LakeIndex(lake, [JosieJoinSearch(), JosieJoinSearch()])

    def test_search_filters_by_name(self, covid_unionable, covid_query):
        lake = DataLake([covid_unionable])
        index = LakeIndex(lake, [SantosUnionSearch(), JosieJoinSearch()])
        results = index.search(covid_query, k=2, discoverer_names=["josie"])
        assert set(results) == {"josie"}
        with pytest.raises(KeyError, match="unknown"):
            index.search(covid_query, discoverer_names=["nope"])

    def test_search_merged_union(self, covid_unionable, covid_joinable, covid_query):
        lake = DataLake([covid_unionable, covid_joinable])
        index = LakeIndex(lake, [SantosUnionSearch(), JosieJoinSearch()])
        merged = index.search_merged(covid_query, k=3)
        assert {r.table_name for r in merged} == {"T2", "T3"}


class TestSyntheticLake:
    def test_ground_truth_partition(self, small_synth_lake):
        truth = small_synth_lake.truth
        lake_names = set(small_synth_lake.lake)
        assert truth.unionable | truth.joinable | truth.distractors == lake_names
        assert not (truth.unionable & truth.joinable)

    def test_deterministic_per_seed(self):
        a = SyntheticLakeBuilder(seed=5).build(1, 1, 1)
        b = SyntheticLakeBuilder(seed=5).build(1, 1, 1)
        assert a.query.equals(b.query)
        for name in a.lake:
            assert a.lake[name].equals(b.lake[name])

    def test_joinable_tables_share_query_cities(self, small_synth_lake):
        query_cities = set(small_synth_lake.query.column("City"))
        for name in small_synth_lake.truth.joinable:
            table = small_synth_lake.lake[name]
            city_col = next(
                c for c in table.columns
                if c in ("City", "Municipality", "Town", "city_name", "Urban Area")
            )
            overlap = query_cities & set(table.column_values(city_col))
            assert overlap

    def test_null_injection(self):
        lake = SyntheticLakeBuilder(seed=1, null_rate=0.5).build(2, 2, 0)
        total_nulls = sum(t.null_count() for t in lake.lake.tables())
        assert total_nulls > 0


class TestIntegrationSetGenerator:
    def test_shared_key_column(self, small_integration_set):
        for table in small_integration_set:
            assert table.columns[0] == "Key"

    def test_value_consistency_across_fragments(self, small_integration_set):
        # Same (key, attribute) must carry the same value in every fragment.
        seen: dict[tuple[str, str], object] = {}
        for table in small_integration_set:
            for row in table.iter_dicts():
                key = row["Key"]
                for column, value in row.items():
                    if column == "Key" or value is MISSING:
                        continue
                    assert seen.setdefault((key, column), value) == value

    def test_deterministic(self):
        a = build_integration_set(num_tables=3, seed=9)
        b = build_integration_set(num_tables=3, seed=9)
        for x, y in zip(a, b):
            assert x.equals(y)


class TestPerturb:
    def test_rate_zero_is_identity(self):
        import random

        assert perturb_string("Berlin", random.Random(0), 0.0) == "Berlin"

    def test_rate_one_changes_something_eventually(self):
        import random

        rng = random.Random(0)
        outputs = {perturb_string("Berlin", rng, 1.0) for _ in range(20)}
        assert any(o != "Berlin" for o in outputs)


class TestBusinessTheme:
    def test_business_lake_builds_with_truth(self):
        synth = SyntheticLakeBuilder(seed=4, theme="business").build(2, 2, 2)
        assert "Company" in synth.query.columns
        assert len(synth.truth.unionable) == 2
        assert len(synth.truth.joinable) == 2

    def test_business_joinable_shares_companies(self):
        synth = SyntheticLakeBuilder(seed=4, theme="business", typo_rate=0.0).build(1, 2, 0)
        query_companies = set(synth.query.column("Company"))
        for name in synth.truth.joinable:
            table = synth.lake[name]
            assert query_companies & set(table.column_values("Company"))

    def test_unknown_theme_rejected(self):
        import pytest as _pytest

        with _pytest.raises(ValueError, match="theme"):
            SyntheticLakeBuilder(theme="sports")

    def test_business_discovery_end_to_end(self):
        from repro import Dialite

        synth = SyntheticLakeBuilder(seed=9, theme="business").build(2, 2, 3)
        pipeline = Dialite(synth.lake).fit()
        outcome = pipeline.discover(synth.query.with_name("Q"), k=4, query_column="Company")
        assert set(outcome.discovered_names) & synth.truth.relevant()


class TestEmptyLakeRobustness:
    def test_pipeline_on_empty_lake(self, covid_query):
        from repro import Dialite, DataLake

        pipeline = Dialite(DataLake()).fit()
        outcome = pipeline.discover(covid_query, k=5)
        assert outcome.merged == []
        assert [t.name for t in outcome.integration_set] == ["T1"]
        integrated = pipeline.integrate(outcome)
        assert integrated.num_rows == covid_query.num_rows
