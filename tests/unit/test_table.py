"""Unit tests for the table engine (repro.table.table / schema / infer)."""

from __future__ import annotations

import pytest

from repro.table import (
    MISSING,
    PRODUCED,
    ColumnSpec,
    Schema,
    Table,
    infer_dtype,
    parse_cell,
)


class TestConstruction:
    def test_basic_shape(self):
        t = Table(["a", "b"], [(1, 2), (3, 4)], name="t")
        assert t.shape == (2, 2)
        assert t.columns == ("a", "b")
        assert t.name == "t"

    def test_ragged_rows_rejected(self):
        with pytest.raises(ValueError, match="row 1"):
            Table(["a", "b"], [(1, 2), (3,)])

    def test_duplicate_columns_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            Table(["a", "a"], [])

    def test_from_dict(self):
        t = Table.from_dict({"x": [1, 2], "y": ["a", "b"]})
        assert t.column("x") == [1, 2]
        assert t.column("y") == ["a", "b"]

    def test_from_dict_ragged_rejected(self):
        with pytest.raises(ValueError, match="unequal"):
            Table.from_dict({"x": [1], "y": [1, 2]})

    def test_empty(self):
        t = Table.empty(["a"])
        assert t.num_rows == 0
        assert t.num_columns == 1


class TestAccessors:
    @pytest.fixture
    def table(self):
        return Table(
            ["city", "pop"],
            [("Berlin", 3.6), ("Boston", MISSING), ("Berlin", 0.7)],
            name="cities",
        )

    def test_column_index_error_lists_columns(self, table):
        with pytest.raises(KeyError, match="city"):
            table.column_index("nope")

    def test_column_values_skips_nulls(self, table):
        assert table.column_values("pop") == [3.6, 0.7]

    def test_distinct_values(self, table):
        assert table.distinct_values("city") == {"Berlin", "Boston"}

    def test_cell(self, table):
        assert table.cell(1, "city") == "Boston"

    def test_iter_dicts(self, table):
        first = next(table.iter_dicts())
        assert first == {"city": "Berlin", "pop": 3.6}

    def test_null_count_and_completeness(self, table):
        assert table.null_count() == 1
        assert table.completeness() == pytest.approx(5 / 6)


class TestTransforms:
    def test_renamed(self):
        t = Table(["a", "b"], [(1, 2)]).renamed({"a": "x"})
        assert t.columns == ("x", "b")

    def test_renamed_unknown_column(self):
        with pytest.raises(KeyError):
            Table(["a"], []).renamed({"zz": "x"})

    def test_map_column(self):
        t = Table(["a"], [(1,), (2,)]).map_column("a", lambda v: v * 10)
        assert t.column("a") == [10, 20]

    def test_fill_missing_converts_produced(self):
        t = Table(["a"], [(PRODUCED,)]).fill_missing()
        assert t.rows[0][0] is MISSING

    def test_head(self):
        t = Table(["a"], [(i,) for i in range(10)]).head(3)
        assert t.num_rows == 3


class TestEquality:
    def test_null_kind_matters(self):
        a = Table(["x"], [(MISSING,)])
        b = Table(["x"], [(PRODUCED,)])
        assert not a.equals(b)

    def test_ignore_row_order(self):
        a = Table(["x"], [(1,), (2,)])
        b = Table(["x"], [(2,), (1,)])
        assert not a.equals(b)
        assert a.equals(b, ignore_row_order=True)

    def test_tables_are_not_hashable(self):
        with pytest.raises(TypeError):
            hash(Table(["x"], []))


class TestInference:
    def test_parse_cell_types(self):
        assert parse_cell("42") == 42
        assert parse_cell("4.5") == 4.5
        assert parse_cell("true") is True
        assert parse_cell("No") is False
        assert parse_cell(" text ") == "text"
        assert parse_cell("") is MISSING
        assert parse_cell("N/A") is MISSING
        assert parse_cell("±") is MISSING

    def test_infer_dtype(self):
        assert infer_dtype([1, 2, MISSING]) == "int"
        assert infer_dtype([1.0, 2]) == "float"
        assert infer_dtype(["a", "b"]) == "string"
        assert infer_dtype([True]) == "bool"
        assert infer_dtype([1, "a"]) == "any"
        assert infer_dtype([MISSING, PRODUCED]) == "empty"
        assert infer_dtype([]) == "empty"

    def test_schema_property_cached(self):
        t = Table(["n", "s"], [(1, "x")])
        assert t.schema["n"].dtype == "int"
        assert t.schema is t.schema


class TestSchema:
    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            Schema([ColumnSpec("a"), ColumnSpec("a")])

    def test_bad_dtype_rejected(self):
        with pytest.raises(ValueError, match="dtype"):
            ColumnSpec("a", "whatever")

    def test_renamed_and_project(self):
        schema = Schema([ColumnSpec("a", "int"), ColumnSpec("b", "string")])
        renamed = schema.renamed({"a": "x"})
        assert renamed.names == ("x", "b")
        assert renamed["x"].dtype == "int"
        projected = schema.project(["b"])
        assert projected.names == ("b",)

    def test_is_numeric(self):
        assert ColumnSpec("a", "float").is_numeric()
        assert not ColumnSpec("a", "string").is_numeric()


class TestUid:
    """Monotonic table identities: the stats-cache key that, unlike
    ``id(table)``, can never be recycled by the garbage collector."""

    def test_uids_are_unique_and_monotonic(self):
        tables = [Table(["c"], [(i,)], name=f"t{i}") for i in range(5)]
        uids = [t.uid for t in tables]
        assert uids == sorted(uids)
        assert len(set(uids)) == 5

    def test_derived_tables_get_fresh_uids(self):
        table = Table(["c"], [(1,)], name="t")
        assert table.with_name("u").uid != table.uid
        assert table.head(1).uid != table.uid

    def test_gc_never_recycles_a_uid(self):
        import gc

        seen = set()
        for i in range(50):  # old id()s get recycled here; uids must not
            table = Table(["c"], [(i,)], name="t")
            assert table.uid not in seen
            seen.add(table.uid)
            del table
            gc.collect()

    def test_stats_keyed_by_owner_uid(self):
        table = Table(["c"], [(1,)], name="t")
        assert table.stats.table_uid == table.uid

    def test_unpickled_table_gets_local_uid(self):
        import pickle

        table = Table(["c"], [(1,), (2,)], name="t")
        table.distinct_values("c")  # warm the stats cache before pickling
        clone = pickle.loads(pickle.dumps(table))
        assert clone.uid != table.uid
        assert clone.stats.table_uid == clone.uid
        assert clone.distinct_values("c") == {1, 2}
