"""Unit tests for MinHash / LSH / LSH Ensemble (repro.sketch)."""

from __future__ import annotations

import pytest

from repro.sketch import (
    BandedLSHIndex,
    LSHEnsemble,
    MinHasher,
    collision_probability,
    containment_from_jaccard,
    optimal_param,
)


class TestMinHash:
    def test_identical_sets_estimate_one(self):
        hasher = MinHasher(128)
        a = hasher.signature({"x", "y", "z"})
        b = hasher.signature({"x", "y", "z"})
        assert a.jaccard(b) == 1.0

    def test_disjoint_sets_estimate_near_zero(self):
        hasher = MinHasher(256)
        a = hasher.signature({f"a{i}" for i in range(50)})
        b = hasher.signature({f"b{i}" for i in range(50)})
        assert a.jaccard(b) < 0.05

    def test_estimate_within_three_sigma(self):
        hasher = MinHasher(256)
        big1 = {f"t{i}" for i in range(600)}
        big2 = {f"t{i}" for i in range(300, 900)}
        true_jaccard = 300 / 900
        estimate = hasher.signature(big1).jaccard(hasher.signature(big2))
        sigma = (true_jaccard * (1 - true_jaccard) / 256) ** 0.5
        assert abs(estimate - true_jaccard) < 3 * sigma + 0.02

    def test_signatures_deterministic_across_hashers(self):
        import numpy as np

        a = MinHasher(64, seed=5).signature({"p", "q"})
        b = MinHasher(64, seed=5).signature({"p", "q"})
        assert np.array_equal(a.values, b.values)

    def test_mismatched_signatures_rejected(self):
        a = MinHasher(64).signature({"x"})
        b = MinHasher(32).signature({"x"})
        with pytest.raises(ValueError):
            a.jaccard(b)

    def test_empty_set_signature(self):
        hasher = MinHasher(64)
        empty = hasher.signature(set())
        assert empty.size == 0
        assert empty.containment_in(hasher.signature({"x"})) == 0.0

    def test_invalid_num_perm(self):
        with pytest.raises(ValueError):
            MinHasher(0)

    def test_containment_conversion_exact(self):
        # j = 1/3 with |A| = |B| = 2 -> intersection 1 -> containment 0.5
        assert containment_from_jaccard(1 / 3, 2, 2) == pytest.approx(0.5)
        assert containment_from_jaccard(1.0, 5, 5) == 1.0
        assert containment_from_jaccard(0.5, 0, 10) == 0.0


class TestBandedLSH:
    def test_collision_probability_monotone(self):
        lows = collision_probability(0.2, b=16, r=8)
        highs = collision_probability(0.9, b=16, r=8)
        assert lows < highs

    def test_optimal_param_respects_budget(self):
        b, r = optimal_param(0.5, num_perm=128, allowed_r=(1, 2, 4, 8, 16, 32))
        assert b * r <= 128

    def test_high_threshold_prefers_wide_bands(self):
        _, r_low = optimal_param(0.1, 128, allowed_r=(1, 2, 4, 8, 16, 32))
        _, r_high = optimal_param(0.95, 128, allowed_r=(1, 2, 4, 8, 16, 32))
        assert r_high > r_low

    def test_index_finds_similar(self):
        hasher = MinHasher(128)
        index = BandedLSHIndex(128, r=4)
        base = {f"x{i}" for i in range(100)}
        index.insert("near", hasher.signature(base | {"extra"}))
        index.insert("far", hasher.signature({f"y{i}" for i in range(100)}))
        hits = index.query(hasher.signature(base))
        assert "near" in hits
        assert "far" not in hits

    def test_prefix_bands_subset(self):
        hasher = MinHasher(64)
        index = BandedLSHIndex(64, r=2)
        sig = hasher.signature({"a", "b", "c"})
        index.insert("k", sig)
        assert index.query(sig, bands=1) <= index.query(sig)

    def test_invalid_r_rejected(self):
        with pytest.raises(ValueError):
            BandedLSHIndex(64, r=0)
        with pytest.raises(ValueError):
            BandedLSHIndex(64, r=65)


class TestLSHEnsemble:
    def test_containment_search_finds_superset(self):
        ensemble = LSHEnsemble(num_perm=128, num_partitions=4)
        query = {f"q{i}" for i in range(40)}
        entries = [("super", query | {f"s{i}" for i in range(100)})]
        entries += [
            (f"noise{j}", {f"n{j}_{i}" for i in range(40)}) for j in range(10)
        ]
        ensemble.index(entries)
        matches = ensemble.query(query, threshold=0.7)
        assert matches and matches[0].key == "super"
        assert matches[0].containment > 0.8
        assert all(m.key != "noise0" for m in matches)

    def test_partition_count_respected(self):
        ensemble = LSHEnsemble(num_perm=64, num_partitions=3)
        ensemble.index([(f"k{i}", {f"t{i}_{j}" for j in range(i + 2)}) for i in range(9)])
        assert len(ensemble) == 9

    def test_results_sorted_and_truncated(self):
        ensemble = LSHEnsemble(num_perm=128, num_partitions=2)
        query = {f"q{i}" for i in range(30)}
        ensemble.index(
            [
                ("full", set(query)),
                ("half", {f"q{i}" for i in range(15)} | {f"z{i}" for i in range(15)}),
            ]
        )
        matches = ensemble.query(query, threshold=0.2, k=1)
        assert len(matches) == 1
        assert matches[0].key == "full"

    def test_empty_query(self):
        ensemble = LSHEnsemble()
        ensemble.index([("k", {"a"})])
        assert ensemble.query(set(), threshold=0.5) == []

    def test_bad_threshold(self):
        with pytest.raises(ValueError):
            LSHEnsemble().query({"a"}, threshold=1.5)

    def test_incremental_insert(self):
        ensemble = LSHEnsemble(num_perm=64, num_partitions=2)
        ensemble.insert("solo", {"a", "b", "c"})
        matches = ensemble.query({"a", "b", "c"}, threshold=0.9)
        assert [m.key for m in matches] == ["solo"]
