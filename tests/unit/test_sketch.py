"""Unit tests for MinHash / LSH / LSH Ensemble (repro.sketch)."""

from __future__ import annotations

import pytest

from repro.sketch import (
    BandedLSHIndex,
    LSHEnsemble,
    MinHasher,
    collision_probability,
    containment_from_jaccard,
    optimal_param,
)


class TestMinHash:
    def test_identical_sets_estimate_one(self):
        hasher = MinHasher(128)
        a = hasher.signature({"x", "y", "z"})
        b = hasher.signature({"x", "y", "z"})
        assert a.jaccard(b) == 1.0

    def test_disjoint_sets_estimate_near_zero(self):
        hasher = MinHasher(256)
        a = hasher.signature({f"a{i}" for i in range(50)})
        b = hasher.signature({f"b{i}" for i in range(50)})
        assert a.jaccard(b) < 0.05

    def test_estimate_within_three_sigma(self):
        hasher = MinHasher(256)
        big1 = {f"t{i}" for i in range(600)}
        big2 = {f"t{i}" for i in range(300, 900)}
        true_jaccard = 300 / 900
        estimate = hasher.signature(big1).jaccard(hasher.signature(big2))
        sigma = (true_jaccard * (1 - true_jaccard) / 256) ** 0.5
        assert abs(estimate - true_jaccard) < 3 * sigma + 0.02

    def test_signatures_deterministic_across_hashers(self):
        import numpy as np

        a = MinHasher(64, seed=5).signature({"p", "q"})
        b = MinHasher(64, seed=5).signature({"p", "q"})
        assert np.array_equal(a.values, b.values)

    def test_mismatched_signatures_rejected(self):
        a = MinHasher(64).signature({"x"})
        b = MinHasher(32).signature({"x"})
        with pytest.raises(ValueError):
            a.jaccard(b)

    def test_empty_set_signature(self):
        hasher = MinHasher(64)
        empty = hasher.signature(set())
        assert empty.size == 0
        assert empty.containment_in(hasher.signature({"x"})) == 0.0

    def test_invalid_num_perm(self):
        with pytest.raises(ValueError):
            MinHasher(0)

    def test_containment_conversion_exact(self):
        # j = 1/3 with |A| = |B| = 2 -> intersection 1 -> containment 0.5
        assert containment_from_jaccard(1 / 3, 2, 2) == pytest.approx(0.5)
        assert containment_from_jaccard(1.0, 5, 5) == 1.0
        assert containment_from_jaccard(0.5, 0, 10) == 0.0


class TestBandedLSH:
    def test_collision_probability_monotone(self):
        lows = collision_probability(0.2, b=16, r=8)
        highs = collision_probability(0.9, b=16, r=8)
        assert lows < highs

    def test_optimal_param_respects_budget(self):
        b, r = optimal_param(0.5, num_perm=128, allowed_r=(1, 2, 4, 8, 16, 32))
        assert b * r <= 128

    def test_high_threshold_prefers_wide_bands(self):
        _, r_low = optimal_param(0.1, 128, allowed_r=(1, 2, 4, 8, 16, 32))
        _, r_high = optimal_param(0.95, 128, allowed_r=(1, 2, 4, 8, 16, 32))
        assert r_high > r_low

    def test_index_finds_similar(self):
        hasher = MinHasher(128)
        index = BandedLSHIndex(128, r=4)
        base = {f"x{i}" for i in range(100)}
        index.insert("near", hasher.signature(base | {"extra"}))
        index.insert("far", hasher.signature({f"y{i}" for i in range(100)}))
        hits = index.query(hasher.signature(base))
        assert "near" in hits
        assert "far" not in hits

    def test_prefix_bands_subset(self):
        hasher = MinHasher(64)
        index = BandedLSHIndex(64, r=2)
        sig = hasher.signature({"a", "b", "c"})
        index.insert("k", sig)
        assert index.query(sig, bands=1) <= index.query(sig)

    def test_invalid_r_rejected(self):
        with pytest.raises(ValueError):
            BandedLSHIndex(64, r=0)
        with pytest.raises(ValueError):
            BandedLSHIndex(64, r=65)


class TestLSHEnsemble:
    def test_containment_search_finds_superset(self):
        ensemble = LSHEnsemble(num_perm=128, num_partitions=4)
        query = {f"q{i}" for i in range(40)}
        entries = [("super", query | {f"s{i}" for i in range(100)})]
        entries += [
            (f"noise{j}", {f"n{j}_{i}" for i in range(40)}) for j in range(10)
        ]
        ensemble.index(entries)
        matches = ensemble.query(query, threshold=0.7)
        assert matches and matches[0].key == "super"
        assert matches[0].containment > 0.8
        assert all(m.key != "noise0" for m in matches)

    def test_partition_count_respected(self):
        ensemble = LSHEnsemble(num_perm=64, num_partitions=3)
        ensemble.index([(f"k{i}", {f"t{i}_{j}" for j in range(i + 2)}) for i in range(9)])
        assert len(ensemble) == 9

    def test_results_sorted_and_truncated(self):
        ensemble = LSHEnsemble(num_perm=128, num_partitions=2)
        query = {f"q{i}" for i in range(30)}
        ensemble.index(
            [
                ("full", set(query)),
                ("half", {f"q{i}" for i in range(15)} | {f"z{i}" for i in range(15)}),
            ]
        )
        matches = ensemble.query(query, threshold=0.2, k=1)
        assert len(matches) == 1
        assert matches[0].key == "full"

    def test_empty_query(self):
        ensemble = LSHEnsemble()
        ensemble.index([("k", {"a"})])
        assert ensemble.query(set(), threshold=0.5) == []

    def test_bad_threshold(self):
        with pytest.raises(ValueError):
            LSHEnsemble().query({"a"}, threshold=1.5)

    def test_incremental_insert(self):
        ensemble = LSHEnsemble(num_perm=64, num_partitions=2)
        ensemble.insert("solo", {"a", "b", "c"})
        matches = ensemble.query({"a", "b", "c"}, threshold=0.9)
        assert [m.key for m in matches] == ["solo"]


class TestSketchSerialization:
    """to_bytes/from_bytes round trips and cross-process determinism --
    the contract the persistent lake store's snapshots rely on."""

    def test_minhash_round_trip_byte_identical(self):
        hasher = MinHasher(64, seed=5)
        signature = hasher.signature({"a", "b", "c", "dd"})
        payload = signature.to_bytes()
        restored = type(signature).from_bytes(payload)
        assert restored.to_bytes() == payload
        assert restored.size == signature.size
        assert restored.jaccard(signature) == 1.0

    def test_minhash_rejects_truncated_payload(self):
        hasher = MinHasher(16)
        payload = hasher.signature({"a"}).to_bytes()
        with pytest.raises(ValueError):
            type(hasher.signature({"a"})).from_bytes(payload[:-3])

    def test_minhash_merge_is_union_signature(self):
        hasher = MinHasher(128, seed=2)
        left = hasher.signature({f"a{i}" for i in range(30)})
        right = hasher.signature({f"b{i}" for i in range(30)})
        union = hasher.signature({f"a{i}" for i in range(30)} | {f"b{i}" for i in range(30)})
        merged = left.merge(right)
        assert merged.jaccard(union) == 1.0  # identical minima

    def test_minhash_merge_deterministic_and_commutative(self):
        hasher = MinHasher(64, seed=9)
        a = hasher.signature({"x", "y", "z"})
        b = hasher.signature({"y", "q"})
        assert a.merge(b).to_bytes() == b.merge(a).to_bytes()
        # And stable across fresh hashers (i.e. across processes).
        again = MinHasher(64, seed=9)
        assert (
            again.signature({"x", "y", "z"}).merge(again.signature({"y", "q"})).to_bytes()
            == a.merge(b).to_bytes()
        )

    def test_minhash_merge_rejects_mismatched_width(self):
        with pytest.raises(ValueError, match="different MinHashers"):
            MinHasher(16).signature({"a"}).merge(MinHasher(32).signature({"a"}))

    def test_hll_round_trip_byte_identical(self):
        from repro.sketch import HyperLogLog

        sketch = HyperLogLog(precision=10).update(f"v{i}" for i in range(500))
        payload = sketch.to_bytes()
        restored = HyperLogLog.from_bytes(payload)
        assert restored.to_bytes() == payload
        assert restored.cardinality() == sketch.cardinality()

    def test_hll_rejects_corrupt_payload(self):
        from repro.sketch import HyperLogLog

        with pytest.raises(ValueError):
            HyperLogLog.from_bytes(b"")
        with pytest.raises(ValueError):
            HyperLogLog.from_bytes(HyperLogLog(8).to_bytes()[:-1])

    def test_hll_merge_order_independent(self):
        from repro.sketch import HyperLogLog

        a = HyperLogLog(8).update(f"a{i}" for i in range(100))
        b = HyperLogLog(8).update(f"b{i}" for i in range(100))
        assert a.merge(b).to_bytes() == b.merge(a).to_bytes()
