"""Integration: end-to-end telemetry over a live 4-shard TCP server.

The ISSUE 10 acceptance pin: one traced ``discover --service`` request
against a 4-shard lake produces a SINGLE span tree -- client spans
(connect/serialize/wait), server admission/queue/execute spans, and all
four shard workers' trees (crossing the process-pool boundary), every
shard stamped with the trace id the client minted.

Also covered here, because they need the same live sharded server:

* the flight recorder captures an injected degraded request with its
  full tree and the matching trace id;
* ``health`` reports per-shard ``last_respawn_age_s`` after supervision
  replaced a killed worker, plus the SLO view;
* the ``repro trace`` renderer (format_trace) renders the merged tree
  with the trace id on the root line and the scatter fan-out ordered
  slowest-first.
"""

from __future__ import annotations

import json

import pytest

from repro.faults import inject
from repro.obs.trace import format_trace
from repro.service import LakeServer, LakeService, ServiceClient
from repro.shard import ShardedLakeStore
from repro.table.table import Table

NUM_SHARDS = 4


@pytest.fixture(autouse=True)
def _clean_faults():
    inject.reset()
    yield
    inject.reset()


def build_sharded_store(root):
    tables = {}
    for i in range(12):
        rows = [(f"city{i}_{j}", f"state{j % 3}", i * 10 + j) for j in range(6)]
        tables[f"t{i:02d}"] = Table(["City", "State", "Pop"], rows, name=f"t{i:02d}")
    store = ShardedLakeStore.create(root / "lake", num_shards=NUM_SHARDS)
    store.ingest(tables)
    return root / "lake"


def query_table(tag: str) -> Table:
    """Unique *content* per tag: the result cache is content-keyed, so a
    tag-only name change would serve every later query from cache and
    never scatter."""
    rows = [(f"city{i}_{j}", f"state{j % 3}") for i, j in ((1, 0), (2, 1), (3, 2))]
    rows.append((f"q_{tag}", "state0"))
    return Table(["City", "State"], rows, name=f"q_{tag}")


@pytest.fixture(scope="module")
def served(tmp_path_factory):
    base = tmp_path_factory.mktemp("telemetry")
    store_path = build_sharded_store(base)
    postmortem_path = base / "postmortem.jsonl"
    service = LakeService(
        store=store_path,
        workers=2,
        batch_window=0.0,
        reload_check_interval=0.0,
        postmortem_path=postmortem_path,
    )
    server = LakeServer(service, port=0)
    server.start()
    yield service, server, postmortem_path
    server.close()


def find_all(node: dict, name: str) -> list[dict]:
    hits = [node] if node.get("name") == name else []
    for child in node.get("children", []):
        hits.extend(find_all(child, name))
    return hits


def find_one(node: dict, name: str) -> dict:
    hits = find_all(node, name)
    assert len(hits) == 1, f"expected exactly one {name!r} span, got {len(hits)}"
    return hits[0]


class TestDistributedTrace:
    def test_traced_discover_is_one_tree_across_processes(self, served):
        """The acceptance criterion: client + server + all 4 shard
        workers in one tree under one trace id."""
        _, server, _ = served
        client = ServiceClient(server.address)
        response = client.discover(query_table("tree"), k=3, trace=True)
        tree = response["trace"]

        # Root: the wire client minted the id and owns the root span.
        assert tree["name"] == "client.discover"
        trace_id = tree["trace_id"]
        assert len(trace_id) == 16
        int(trace_id, 16)

        # Client-side phases under the root.
        child_names = [child["name"] for child in tree["children"]]
        for expected in ("client.connect", "client.serialize", "client.wait"):
            assert expected in child_names, (expected, child_names)

        # The server's tree grafted under the same root: admission,
        # queue and execution spans in their documented nesting.
        service_root = find_one(tree, "service.discover")
        for stage in ("service.cache", "service.queue_wait", "service.execute"):
            assert find_all(service_root, stage), stage

        # The scatter fans out to exactly one span per shard worker,
        # each carrying the root's trace id across the process boundary.
        scatter = find_one(service_root, "discover.scatter")
        shard_spans = [
            child for child in scatter["children"]
            if child["name"].startswith("shard[")
        ]
        assert sorted(span["name"] for span in shard_spans) == [
            f"shard[{i}]" for i in range(NUM_SHARDS)
        ]
        for span in shard_spans:
            assert span["counters"].get("trace_id") == trace_id, span["name"]
            assert span["wall_ms"] >= 0.0

    def test_renderer_on_the_live_scatter_tree(self, served):
        """Satellite (d): `repro trace`'s format_trace on a real sharded
        tree -- root line advertises the trace id, scatter children are
        ordered by self time descending."""
        _, server, _ = served
        client = ServiceClient(server.address)
        response = client.discover(query_table("render"), k=3, trace=True)
        tree = response["trace"]
        rendered = format_trace(tree)
        lines = rendered.splitlines()
        assert lines[0].startswith("client.discover")
        assert f"(trace {tree['trace_id']})" in lines[0]
        shard_lines = [line for line in lines if "shard[" in line]
        assert len(shard_lines) == NUM_SHARDS
        rendered_self_ms = []
        scatter = find_one(tree, "discover.scatter")
        by_name = {c["name"]: c for c in scatter["children"]}
        for line in shard_lines:
            name = "shard[" + line.split("shard[")[1][0] + "]"
            rendered_self_ms.append(float(by_name[name]["self_ms"]))
        assert rendered_self_ms == sorted(rendered_self_ms, reverse=True)

    def test_traced_response_annotates_batching_bypass(self, tmp_path):
        """Satellite (b), over the wire: a batching-enabled service tells
        traced callers their request skipped the micro-batcher."""
        store_path = build_sharded_store(tmp_path)
        service = LakeService(
            store=store_path, workers=2, batch_window=0.02, batch_max=8,
            reload_check_interval=0.0,
        )
        server = LakeServer(service, port=0)
        server.start()
        try:
            client = ServiceClient(server.address)
            traced = client.discover(query_table("bypass"), k=3, trace=True)
            assert traced.get("trace_batching_bypassed") is True
            untraced = client.discover(query_table("bypass2"), k=3)
            assert "trace_batching_bypassed" not in untraced
        finally:
            server.close()


class TestFlightRecorderLive:
    def test_degraded_request_captured_with_tree(self, served):
        """chaos-gate twin: kill one shard's worker on submit AND the
        supervised retry so the response is served degraded, then check
        the postmortem JSONL got the full story."""
        service, server, postmortem_path = served
        client = ServiceClient(server.address)
        before = service.recorder.postmortem_count
        inject.kill_worker(1, times=2)
        response = client.discover(query_table("degraded"), k=3, trace=True)
        inject.reset()
        assert response["payload"]["degraded_shards"] == [1]
        assert service.recorder.postmortem_count == before + 1

        docs = [
            json.loads(line)
            for line in postmortem_path.read_text(encoding="utf-8").splitlines()
        ]
        doc = docs[-1]
        assert doc["kind"] == "postmortem"
        assert doc["reason"] == "degraded"
        assert doc["summary"]["degraded_shards"] == [1]
        assert doc["trace"], "postmortem must include the span tree"
        assert doc["trace"]["trace_id"] == doc["trace_id"]
        # The dumped tree is the server's own: it reaches down to the
        # scatter and the shards that did answer.
        assert find_all(doc["trace"], "discover.scatter")

    def test_health_reports_respawn_age_and_slo(self, served):
        """Satellite (c): after the degraded test's kill, supervision
        respawned shard 1's worker -- health shows a fresh respawn age
        there, liveness everywhere, and the SLO monitor's view."""
        _, server, _ = served
        client = ServiceClient(server.address)
        health = client.health()
        assert health["lake_epoch"] >= 1
        shards = {entry["shard"]: entry for entry in health["shards"]}
        assert len(shards) == NUM_SHARDS
        assert all(entry["alive"] for entry in shards.values())
        respawned = [
            entry for entry in shards.values()
            if entry["last_respawn_age_s"] is not None
        ]
        assert respawned, "the killed shard must report a respawn age"
        assert all(entry["last_respawn_age_s"] >= 0.0 for entry in respawned)
        slo = health["slo"]
        assert "degraded_rate" in slo["objectives"]
        assert slo["objectives"]["degraded_rate"]["burn"].keys() == {"60s", "600s"}
