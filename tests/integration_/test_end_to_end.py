"""Cross-module integration tests: the full pipeline over synthetic lakes,
CSV round trips, and the paper's workflow reproduced through the public API."""

from __future__ import annotations

import pytest

from repro import Dialite, DataLake
from repro.analysis import IntegrationReport, information_dominates
from repro.datalake import SyntheticLakeBuilder
from repro.er import EntityResolver
from repro.genquery import generate_query_table
from repro.integration import AliteFD
from repro.table import read_csv


class TestPipelineOverSyntheticLake:
    @pytest.fixture(scope="class")
    def pipeline_and_lake(self):
        synth = SyntheticLakeBuilder(seed=11).build(
            num_unionable=3, num_joinable=3, num_distractors=6
        )
        pipeline = Dialite(synth.lake).fit()
        return pipeline, synth

    def test_discovery_ranks_ground_truth_over_distractors(self, pipeline_and_lake):
        pipeline, synth = pipeline_and_lake
        query = synth.query.with_name("Q")
        outcome = pipeline.discover(query, k=6, query_column="City")
        top = set(outcome.discovered_names[:6])
        relevant = synth.truth.relevant()
        assert len(top & relevant) >= 4  # most of the top-6 is truly related

    def test_santos_favors_unionable_lshe_favors_joinable(self, pipeline_and_lake):
        pipeline, synth = pipeline_and_lake
        query = synth.query.with_name("Q")
        outcome = pipeline.discover(query, k=3, query_column="City")
        santos_top = {r.table_name for r in outcome.per_discoverer["santos"]}
        lshe_top = {r.table_name for r in outcome.per_discoverer["lsh_ensemble"]}
        assert santos_top & synth.truth.unionable
        assert lshe_top & synth.truth.joinable

    def test_full_run_produces_analyzable_table(self, pipeline_and_lake):
        pipeline, synth = pipeline_and_lake
        query = synth.query.with_name("Q")
        result = pipeline.run(
            query, k=4, query_column="City", analyses={"describe": {}}
        )
        assert result.integrated.num_rows > 0
        assert result.analyses["describe"]["rows"] == result.integrated.num_rows

    def test_fd_dominates_outer_join_on_synthetic_data(self, pipeline_and_lake):
        pipeline, synth = pipeline_and_lake
        query = synth.query.with_name("Q")
        outcome = pipeline.discover(query, k=4, query_column="City")
        aligned = pipeline.align(outcome.integration_set).apply(outcome.integration_set)
        fd = pipeline.integrate(aligned, align=False)
        oj = pipeline.integrate(aligned, integrator="outer_join", align=False)
        assert information_dominates(fd, oj)
        fd_report = IntegrationReport.from_integrated(fd)
        oj_report = IntegrationReport.from_integrated(oj)
        assert fd_report.merged_tuples >= oj_report.merged_tuples


class TestCsvWorkflow:
    def test_lake_from_directory_pipeline(self, tmp_path, covid_tables):
        # Persist T2/T3 as a lake directory, reload, run the whole paper
        # workflow through files -- the demo's actual deployment shape.
        lake = DataLake(covid_tables[1:])
        lake.save_to(tmp_path / "lake")
        reloaded = DataLake.from_dir(tmp_path / "lake")
        pipeline = Dialite(reloaded).fit()
        query = covid_tables[0]
        outcome = pipeline.discover(query, k=3, query_column="City")
        integrated = pipeline.integrate(outcome)
        assert integrated.num_rows == 7

    def test_integrated_table_persists_null_kinds(self, tmp_path, covid_tables):
        from repro.alignment import HolisticAligner
        from repro.table import write_csv

        aligned = HolisticAligner().align(covid_tables).apply(covid_tables)
        fd = AliteFD().integrate(aligned)
        path = tmp_path / "result.csv"
        write_csv(fd, path)
        text = path.read_text(encoding="utf-8")
        assert "±" in text and "⊥" in text
        back = read_csv(path)
        assert back.num_rows == 7


class TestGeneratedQueryPipeline:
    def test_generated_query_drives_discovery(self):
        synth = SyntheticLakeBuilder(seed=3).build(2, 2, 2)
        pipeline = Dialite(synth.lake).fit()
        query = generate_query_table(
            "a table about covid vaccination", rows=6, seed=1, name="gptq"
        )
        outcome = pipeline.discover(query, k=4, query_column="City")
        assert outcome.integration_set[0].name == "gptq"
        integrated = pipeline.integrate(outcome)
        assert integrated.num_rows > 0


class TestERDownstreamOnIntegrated:
    def test_er_merges_alias_rows_after_integration(self, vaccine_tables):
        fd = AliteFD().integrate(vaccine_tables)
        result = EntityResolver().resolve_table(fd)
        assert result.num_entities < fd.num_rows
