"""Exactness tests against the paper's figures (experiments E1-E4).

These are the reproduction's anchor: every figure in the DIALITE paper whose
content is checkable is checked cell-by-cell here, including null kinds
(missing ``±`` vs produced ``⊥``) and tuple provenance.
"""

from __future__ import annotations

import pytest

from repro.alignment import HolisticAligner
from repro.analysis import column_correlation, extreme
from repro.er import EntityResolver
from repro.integration import AliteFD, OuterJoinIntegrator
from repro.table.values import MISSING, PRODUCED


@pytest.fixture
def covid_fd(covid_tables):
    alignment = HolisticAligner().align(covid_tables)
    aligned = alignment.apply(covid_tables)
    return AliteFD().integrate(aligned)


class TestFigure3CovidIntegration:
    """FD(T1, T2, T3) must equal Figure 3 exactly: 7 facts f1-f7."""

    def test_alignment_produces_five_integration_ids(self, covid_tables):
        alignment = HolisticAligner().align(covid_tables)
        assert alignment.num_ids == 5
        # City columns of all three tables align.
        assert (
            alignment.integration_id("T1", "City")
            == alignment.integration_id("T2", "City")
            == alignment.integration_id("T3", "City")
        )
        # Country and rate align across T1/T2 only.
        assert alignment.integration_id("T1", "Country") == alignment.integration_id(
            "T2", "Country"
        )
        assert alignment.integration_id("T1", "Vaccination Rate") == alignment.integration_id(
            "T2", "Vaccination Rate"
        )

    def test_seven_output_facts(self, covid_fd):
        assert covid_fd.num_rows == 7

    def test_merged_facts_and_provenance(self, covid_fd):
        # f1 = {t1, t7}: Berlin row joined across T1 and T3.
        assert covid_fd.find_fact(City="Berlin") == frozenset({"t1", "t7"})
        assert covid_fd.find_fact(City="Barcelona") == frozenset({"t3", "t8"})
        assert covid_fd.find_fact(City="Boston") == frozenset({"t6", "t9"})

    def test_unmerged_facts_keep_single_provenance(self, covid_fd):
        assert covid_fd.find_fact(City="Manchester") == frozenset({"t2"})
        assert covid_fd.find_fact(City="Toronto") == frozenset({"t4"})
        assert covid_fd.find_fact(City="Mexico City") == frozenset({"t5"})
        assert covid_fd.find_fact(City="New Delhi") == frozenset({"t10"})

    def test_berlin_fact_values(self, covid_fd):
        row = dict(zip(covid_fd.columns, covid_fd.rows[0]))
        assert row["Country"] == "Germany"
        assert row["City"] == "Berlin"
        assert row["Vaccination Rate"] == "63%"
        assert row["Total Cases"] == "1.4M"
        assert row["Death Rate"] == 147

    def test_null_kinds_match_figure(self, covid_fd):
        # f5 (Mexico City): vaccination rate was missing in the INPUT (±),
        # cases/death were produced by integration (⊥).
        i = next(
            i for i, r in enumerate(covid_fd.rows) if r[covid_fd.column_index("City")] == "Mexico City"
        )
        row = dict(zip(covid_fd.columns, covid_fd.rows[i]))
        assert row["Vaccination Rate"] is MISSING
        assert row["Total Cases"] is PRODUCED
        assert row["Death Rate"] is PRODUCED
        # f7 (New Delhi): country and rate never existed in T3 -> produced.
        j = next(
            i for i, r in enumerate(covid_fd.rows) if r[covid_fd.column_index("City")] == "New Delhi"
        )
        row = dict(zip(covid_fd.columns, covid_fd.rows[j]))
        assert row["Country"] is PRODUCED
        assert row["Vaccination Rate"] is PRODUCED


class TestExample3Analysis:
    """The aggregation/correlation insights of Example 3."""

    def test_boston_lowest_toronto_highest(self, covid_fd):
        assert extreme(covid_fd, "Vaccination Rate", "City", "min") == ("Boston", 62.0)
        assert extreme(covid_fd, "Vaccination Rate", "City", "max") == ("Toronto", 83.0)

    def test_vaccination_death_correlation_is_0_16(self, covid_fd):
        coefficient, support = column_correlation(covid_fd, "Vaccination Rate", "Death Rate")
        assert support == 3
        assert coefficient == pytest.approx(0.16, abs=0.005)

    def test_cases_vaccination_correlation_is_0_9(self, covid_fd):
        coefficient, support = column_correlation(covid_fd, "Total Cases", "Vaccination Rate")
        assert support == 3
        assert coefficient == pytest.approx(0.9, abs=0.005)


class TestFigure8VaccineIntegration:
    """Outer join vs FD over T4, T5, T6 (Figures 8(a) and 8(b))."""

    def test_outer_join_five_tuples(self, vaccine_tables):
        result = OuterJoinIntegrator().integrate(vaccine_tables)
        assert result.num_rows == 5
        # f8 = {t11, t13} -- the only join that happens.
        assert result.find_fact(Vaccine="Pfizer") == frozenset({"t1", "t3"})

    def test_outer_join_loses_jnj_approver(self, vaccine_tables):
        result = OuterJoinIntegrator().integrate(vaccine_tables)
        approver = result.column_index("Approver")
        vaccine = result.column_index("Vaccine")
        for row in result.rows:
            if row[vaccine] in ("JnJ", "J&J"):
                assert row[approver] in (MISSING, PRODUCED)

    def test_fd_three_tuples(self, vaccine_tables):
        result = AliteFD().integrate(vaccine_tables)
        assert result.num_rows == 3

    def test_fd_recovers_jnj_approver_f13(self, vaccine_tables):
        # f13 = {t13, t15}: J&J's approver (FDA) is recovered through the
        # country connection -- the paper's headline FD win.
        result = AliteFD().integrate(vaccine_tables)
        assert result.find_fact(Vaccine="J&J", Approver="FDA") == frozenset({"t3", "t5"})

    def test_fd_f12_keeps_minimal_provenance(self, vaccine_tables):
        # f12 = {t16} only: t12 and t14 are subsumed away.
        result = AliteFD().integrate(vaccine_tables)
        assert result.find_fact(Vaccine="JnJ") == frozenset({"t6"})

    def test_fd_f12_approver_is_produced_null(self, vaccine_tables):
        result = AliteFD().integrate(vaccine_tables)
        i = next(
            i
            for i, r in enumerate(result.rows)
            if r[result.column_index("Vaccine")] == "JnJ"
        )
        assert result.rows[i][result.column_index("Approver")] is PRODUCED


class TestFigure8EntityResolution:
    """ER over both integration results (Figures 8(c) and 8(d))."""

    def test_er_over_fd_resolves_to_two_entities(self, vaccine_tables):
        fd = AliteFD().integrate(vaccine_tables)
        result = EntityResolver().resolve_table(fd)
        assert result.num_entities == 2
        vaccines = set(result.entities.column("Vaccine"))
        assert "Pfizer" in vaccines

    def test_er_over_fd_knows_jnj_approver(self, vaccine_tables):
        fd = AliteFD().integrate(vaccine_tables)
        entities = EntityResolver().resolve_table(fd).entities
        approver = entities.column_index("Approver")
        vaccine = entities.column_index("Vaccine")
        jnj_rows = [r for r in entities.rows if r[vaccine] in ("J&J", "JnJ", "Johnson & Johnson")]
        assert jnj_rows and all(r[approver] == "FDA" for r in jnj_rows)

    def test_er_over_outer_join_four_entities(self, vaccine_tables):
        oj = OuterJoinIntegrator().integrate(vaccine_tables)
        result = EntityResolver().resolve_table(oj)
        assert result.num_entities == 4

    def test_er_over_outer_join_cannot_resolve_fragments(self, vaccine_tables):
        # f9 = (JnJ, ±, ⊥) and f10 = (⊥, ±, USA) share no comparable
        # attribute -- ER must keep them apart (the paper's point).
        oj = OuterJoinIntegrator().integrate(vaccine_tables)
        result = EntityResolver().resolve_table(oj)
        f9 = next(f"f{i+1}" for i, r in enumerate(oj.rows) if oj.provenance[i] == frozenset({"t2"}))
        f10 = next(f"f{i+1}" for i, r in enumerate(oj.rows) if oj.provenance[i] == frozenset({"t4"}))
        assert not result.same_entity(f9, f10)

    def test_er_over_outer_join_never_learns_jnj_approver(self, vaccine_tables):
        oj = OuterJoinIntegrator().integrate(vaccine_tables)
        entities = EntityResolver().resolve_table(oj).entities
        approver = entities.column_index("Approver")
        vaccine = entities.column_index("Vaccine")
        for row in entities.rows:
            if row[vaccine] in ("J&J", "JnJ", "Johnson & Johnson"):
                assert row[approver] != "FDA"
