"""Extensibility scenarios from Sec. 3.2: user-defined discovery (Fig. 4),
query generation (Fig. 5) and user-defined integration (Fig. 6), exercised
end-to-end exactly as the demo describes them."""

from __future__ import annotations

import pytest

from repro import Dialite, DataLake
from repro.analysis import AnalysisApp
from repro.core.registry import DuplicateComponentError
from repro.integration import Integrator, OuterJoinIntegrator
from repro.table import Table, ops


@pytest.fixture
def pipeline(covid_unionable, covid_joinable):
    return Dialite(DataLake([covid_unionable, covid_joinable])).fit()


class TestFig4UserDefinedDiscovery:
    def test_similarity_function_becomes_discoverer(self, pipeline, covid_query):
        # The figure's snippet: similarity = |inner join| / |query|.
        def inner_join_size(df1: Table, df2: Table) -> float:
            shared = [c for c in df1.columns if df2.has_column(c)]
            if not shared or df1.num_rows == 0:
                return 0.0
            return ops.inner_join(df1, df2, on=shared).num_rows / df1.num_rows

        pipeline.add_discoverer(inner_join_size, name="my_join_search")
        assert "my_join_search" in pipeline.discoverers
        outcome = pipeline.discover(
            covid_query, k=2, discoverer_names=["my_join_search"]
        )
        assert outcome.per_discoverer["my_join_search"][0].table_name == "T3"

    def test_duplicate_name_requires_replace(self, pipeline):
        pipeline.add_discoverer(lambda a, b: 0.5, name="dup")
        with pytest.raises(DuplicateComponentError):
            pipeline.add_discoverer(lambda a, b: 0.7, name="dup")
        pipeline.add_discoverer(lambda a, b: 0.7, name="dup", replace=True)

    def test_new_discoverer_is_fitted_automatically(self, pipeline, covid_query):
        pipeline.add_discoverer(lambda a, b: 1.0, name="always")
        outcome = pipeline.discover(covid_query, k=5, discoverer_names=["always"])
        assert len(outcome.per_discoverer["always"]) == 2  # whole lake


class TestFig5QueryGeneration:
    def test_prompt_to_pipeline(self, pipeline):
        query = pipeline.generate_query(
            "generate a query table about COVID-19 cases that has 5 columns and 5 rows"
        )
        assert query.shape == (5, 5)
        outcome = pipeline.discover(query, k=2, query_column="City")
        assert outcome.integration_set  # query always present


class TestFig6UserDefinedIntegration:
    def test_outer_join_operator_plugged_in(self, pipeline, covid_tables):
        # The demo registers outer join as the alternative operator and
        # compares it with ALITE over the same aligned set.
        aligned = pipeline.align(covid_tables).apply(covid_tables)
        fd = pipeline.integrate(aligned, align=False)
        oj = pipeline.integrate(aligned, integrator="outer_join", align=False)
        assert fd.num_rows == 7
        assert oj.num_rows >= 7  # outer join cannot connect more than FD
        assert oj.algorithm == "outer_join"

    def test_custom_operator_class(self, pipeline, covid_tables):
        class KeepFirstRows(Integrator):
            """A deliberately lossy operator: first row of each table."""

            name = "keep_first"

            def _integrate(self, tables, name):
                heads = [t.head(1) for t in tables]
                return OuterJoinIntegrator().integrate(heads, name=name)

        pipeline.add_integrator(KeepFirstRows())
        result = pipeline.integrate(covid_tables, integrator="keep_first")
        assert result.algorithm == "outer_join"  # delegates internally
        assert result.num_rows <= 3


class TestCustomAnalysisApp:
    def test_user_app_registered_and_run(self, pipeline, covid_query):
        class NullShare(AnalysisApp):
            name = "null_share"

            def run(self, table, **options):
                return table.null_count() / max(1, table.num_rows * table.num_columns)

        pipeline.add_app(NullShare())
        assert pipeline.analyze(covid_query, "null_share") == 0.0
