"""Smoke tests: every shipped example must run end to end.

Examples are the first thing a new user executes; a release where they
crash is broken regardless of test status.  Each script runs in-process
(runpy) with stdout captured; assertions check the banner facts each
example prints.
"""

from __future__ import annotations

import runpy
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"


def run_example(name: str, capsys) -> str:
    runpy.run_path(str(EXAMPLES_DIR / name), run_name="__main__")
    return capsys.readouterr().out


class TestExamplesRun:
    def test_quickstart(self, capsys):
        out = run_example("quickstart.py", capsys)
        assert "Lowest vaccination rate:  Boston" in out
        assert "Highest vaccination rate: Toronto" in out

    def test_covid_analysis_reproduces_paper_numbers(self, capsys):
        out = run_example("covid_analysis.py", capsys)
        assert "corr(vaccination, death rate) = 0.16" in out
        assert "corr(cases, vaccination)      = 0.90" in out
        assert "f7" in out  # all seven Figure 3 facts printed

    def test_vaccine_er_comparison(self, capsys):
        out = run_example("vaccine_er_comparison.py", capsys)
        assert "ER over outer join -> 4 entities" in out
        assert "ER over FD -> 2 entities" in out

    def test_extensibility(self, capsys):
        out = run_example("extensibility.py", capsys)
        assert "inner_join_search" in out
        assert "FD merge rate" in out

    def test_datalake_discovery(self, capsys):
        out = run_example("datalake_discovery.py", capsys)
        assert "Offline index build times" in out
        assert "merged union" in out

    def test_incremental_integration(self, capsys):
        out = run_example("incremental_integration.py", capsys)
        assert "Incremental result equals batch FD: True" in out

    def test_serve_demo(self, capsys):
        out = run_example("serve_demo.py", capsys)
        assert "first cached=False, second cached=True" in out
        assert "re-query at v2 (cached=False)" in out
        assert "1 reloads" in out
        assert "server shut down cleanly" in out

    def test_every_example_has_a_smoke_test(self):
        scripts = {path.name for path in EXAMPLES_DIR.glob("*.py")}
        covered = {
            "quickstart.py",
            "covid_analysis.py",
            "vaccine_er_comparison.py",
            "extensibility.py",
            "datalake_discovery.py",
            "incremental_integration.py",
            "serve_demo.py",
        }
        assert scripts == covered, "new example needs a smoke test here"
