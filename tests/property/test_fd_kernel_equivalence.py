"""Property suite: the interned FD kernel is indistinguishable from the
legacy object kernel.

``LegacyAliteFD`` is the pre-PR-4 object-level ALITE implementation, kept
verbatim; the interned kernel (integer-coded tuples, masked predicates,
packed postings, partition-first solving) must reproduce it **exactly** on
arbitrary inputs: identical cells, identical null kinds (``±`` vs ``⊥``),
identical provenance sets, identical row order -- for batch ``AliteFD``,
for ``ParallelFD`` (sequential and process-pool), and for
``integrate_incremental`` at every prefix.

The value alphabet deliberately mixes strings, ints, an equal float
(``1 == 1.0`` -- one interned code), a bool (``True != 1`` in data
context -- distinct codes) and nulls, so the interner's key collapsing and
the predicates' bool/int discipline are both exercised.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.integration import (
    AliteFD,
    LegacyAliteFD,
    OracleFD,
    ParallelFD,
    normalized_key,
)
from repro.table import MISSING, Table
from repro.table.values import is_missing, is_null

# 1 and 1.0 must land on one interned code; True must stay distinct from
# both.  None becomes a missing null.
values = st.sampled_from(["a", "b", 1, 1.0, 2, True, None])


def tables_strategy(max_tables: int = 3, max_rows: int = 3):
    """Random integration sets over shared column names x, y, z."""

    @st.composite
    def build(draw):
        num_tables = draw(st.integers(1, max_tables))
        all_columns = ["x", "y", "z"]
        tables = []
        for t in range(num_tables):
            width = draw(st.integers(2, 3))
            columns = all_columns[:width]
            num_rows = draw(st.integers(1, max_rows))
            rows = []
            for _ in range(num_rows):
                rows.append(
                    tuple(
                        MISSING if cell is None else cell
                        for cell in draw(
                            st.lists(values, min_size=width, max_size=width)
                        )
                    )
                )
            tables.append(Table(columns, rows, name=f"T{t}"))
        return tables

    return build()


def null_kind_grid(result):
    return [tuple((is_null(c), is_missing(c)) for c in row) for row in result.rows]


def assert_same_result(reference, candidate):
    """Cells (by ``==`` *and* by normalized key, so ``True`` vs ``1``
    confusion cannot hide behind Python's bool==int), null kinds,
    provenance, and row order must all match."""
    assert tuple(candidate.columns) == tuple(reference.columns)
    assert list(candidate.rows) == list(reference.rows)
    assert [normalized_key(r) for r in candidate.rows] == [
        normalized_key(r) for r in reference.rows
    ]
    assert null_kind_grid(candidate) == null_kind_grid(reference)
    assert candidate.provenance == reference.provenance


class TestInternedEqualsLegacy:
    @settings(max_examples=80, deadline=None)
    @given(tables_strategy())
    def test_alite_interned_equals_legacy(self, tables):
        assert_same_result(
            LegacyAliteFD().integrate(tables), AliteFD().integrate(tables)
        )

    @settings(max_examples=50, deadline=None)
    @given(tables_strategy())
    def test_parallel_sequential_equals_legacy(self, tables):
        assert_same_result(
            LegacyAliteFD().integrate(tables),
            ParallelFD(max_workers=1).integrate(tables),
        )

    @settings(max_examples=10, deadline=None)
    @given(tables_strategy())
    def test_parallel_pool_equals_legacy(self, tables):
        # The process-pool path: interned components cross a pickle
        # boundary and come back bit-identical.
        assert_same_result(
            LegacyAliteFD().integrate(tables),
            ParallelFD(max_workers=2, min_parallel_components=1).integrate(tables),
        )

    @settings(max_examples=40, deadline=None)
    @given(tables_strategy())
    def test_interned_equals_oracle_values(self, tables):
        oracle = OracleFD().integrate(tables)
        interned = AliteFD().integrate(tables)
        assert sorted(normalized_key(r) for r in interned.rows) == sorted(
            normalized_key(r) for r in oracle.rows
        )


class TestIncrementalEquivalence:
    @settings(max_examples=30, deadline=None)
    @given(tables_strategy(max_tables=3, max_rows=2))
    def test_incremental_equals_batch_and_legacy_at_every_prefix(self, tables):
        interned_fd = AliteFD()  # one instance: the domain accretes across prefixes
        legacy_fd = LegacyAliteFD()
        rolling = interned_fd.integrate([tables[0]])
        legacy_rolling = legacy_fd.integrate([tables[0]])
        assert_same_result(legacy_rolling, rolling)
        for i, table in enumerate(tables[1:], start=2):
            rolling = interned_fd.integrate_incremental(rolling, table)
            legacy_rolling = legacy_fd.integrate_incremental(legacy_rolling, table)
            assert_same_result(legacy_rolling, rolling)
            assert_same_result(AliteFD().integrate(tables[:i]), rolling)


class TestInternerReuse:
    @settings(max_examples=30, deadline=None)
    @given(tables_strategy(), tables_strategy())
    def test_shared_interner_never_changes_results(self, first, second):
        # One long-lived AliteFD (e.g. the pipeline-registered instance)
        # interning two unrelated integrations must equal fresh instances:
        # the kernel orders by value rank, not by code-assignment history.
        shared = AliteFD()
        renamed = [t.with_name(f"S{i}") for i, t in enumerate(second)]
        result_first = shared.integrate(first)
        result_second = shared.integrate(renamed)
        assert_same_result(AliteFD().integrate(first), result_first)
        assert_same_result(AliteFD().integrate(renamed), result_second)
