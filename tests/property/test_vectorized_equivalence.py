"""Vectorized kernels pinned against their pure-Python oracles.

ISSUE 6 acceptance property: the numpy twins introduced for the three
hottest kernels -- the posting-intersection probe
(:meth:`PostingIndex.probe` vs :meth:`PostingIndex._probe_py`), bitmask
subsumption (``interned_remove_subsumed_np`` vs ``..._py``) and the
complementation-closure partner scan (``interned_closure_np`` vs
``..._py``) -- return **identical** results on arbitrary inputs, below
and above the size thresholds where the dispatchers switch over.

Same discipline as ``test_fd_kernel_equivalence``: the pure kernel is
the specification; the vectorized path must be indistinguishable.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import accel
from repro.candidates.postings import PostingIndex
from repro.integration.intern import (
    IntTuple,
    interned_closure_py,
    interned_remove_subsumed_py,
    mask_of,
)

pytestmark = pytest.mark.skipif(
    not accel.HAVE_NUMPY, reason="vectorized twins need numpy"
)


def _vectorized():
    from repro.integration.vectorized import (
        interned_closure_np,
        interned_remove_subsumed_np,
    )

    return interned_closure_np, interned_remove_subsumed_np


def canon(tuples):
    return [(t.codes, t.mask, frozenset(t.tids)) for t in tuples]


# ----------------------------------------------------------------------
# Interned working sets: codes in [0, domain), 0 == null; small domains
# force dense overlap so subsumption / complementation actually fire.
# ----------------------------------------------------------------------
@st.composite
def working_sets(draw):
    domain = draw(st.integers(2, 5))
    width = draw(st.integers(1, 4))
    count = draw(st.integers(0, 24))
    tuples = []
    for i in range(count):
        codes = tuple(
            draw(st.integers(0, domain - 1)) for _ in range(width)
        )
        tuples.append(IntTuple(codes, mask_of(codes), frozenset({f"t{i}"})))
    return domain, tuples


@settings(max_examples=60, deadline=None)
@given(working_sets())
def test_remove_subsumed_np_matches_py(case):
    domain, tuples = case
    _, remove_np = _vectorized()
    assert canon(remove_np(tuples, domain)) == canon(
        interned_remove_subsumed_py(tuples, domain)
    )


@settings(max_examples=60, deadline=None)
@given(working_sets(), st.randoms(use_true_random=False))
def test_closure_np_matches_py(case, rng):
    domain, tuples = case
    closure_np, _ = _vectorized()
    # A rank permutation over the code alphabet, as the interner provides.
    ranks = list(range(domain))
    rng.shuffle(ranks)
    assert canon(closure_np(tuples, domain, ranks)) == canon(
        interned_closure_py(tuples, domain, ranks)
    )


# ----------------------------------------------------------------------
# Posting probe: random dense-keyed domains over a small token alphabet,
# probed with hits, misses and duplicate tokens.
# ----------------------------------------------------------------------
TOKENS = [f"tok{i}" for i in range(12)]


@st.composite
def indexed_probes(draw):
    num_columns = draw(st.integers(0, 10))
    domains = [
        (key, draw(st.sets(st.sampled_from(TOKENS), max_size=8)))
        for key in range(num_columns)
    ]
    probe = draw(
        st.lists(
            st.sampled_from(TOKENS + ["absent", "also-absent"]), max_size=12
        )
    )
    return domains, probe


@settings(max_examples=60, deadline=None)
@given(indexed_probes())
def test_probe_np_matches_py(case):
    domains, probe = case
    index = PostingIndex.build(domains)
    vectorized = index.probe(probe)
    oracle = index._probe_py(probe)
    # Key order is unspecified across the two paths; the mapping is not.
    assert vectorized == oracle
    # Probing again hits the per-token array cache: still identical.
    assert index.probe(probe) == oracle


def test_probe_large_fanout_exact():
    """Above the bincount switchover (>= 64 matched entries) the counts
    stay exact overlap sizes."""
    domains = [(key, {f"tok{key % 12}", "shared"}) for key in range(100)]
    index = PostingIndex.build(domains)
    probe = ["shared", "tok0", "tok1", "absent"]
    assert index.probe(probe) == index._probe_py(probe)


@settings(max_examples=30, deadline=None)
@given(working_sets())
def test_dispatchers_agree_with_oracles(case):
    """The public dispatching entry points themselves (whatever path the
    size heuristics pick) match the pure kernels."""
    from repro.integration.intern import (
        interned_closure,
        interned_remove_subsumed,
    )

    domain, tuples = case
    ranks = list(range(domain))
    assert canon(interned_remove_subsumed(tuples, domain)) == canon(
        interned_remove_subsumed_py(tuples, domain)
    )
    assert canon(interned_closure(tuples, domain, ranks)) == canon(
        interned_closure_py(tuples, domain, ranks)
    )
