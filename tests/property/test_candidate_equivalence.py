"""Full-scan vs candidate-engine equivalence, per discoverer.

The refactor's central guarantee, split by each spec's declared soundness:

* **Identical top-k** -- JOSIE (token postings are a superset of
  overlap >= 1), SANTOS (a positive score needs a shared published
  label), COCOA (scoring needs key overlap, every key is posted),
  Starmie and FunctionDiscoverer (honest exhaustive): engine-backed
  search == forcing the engine exhaustive, result for result.
* **Subset with equal scores** -- TUS: its value pruning is part of the
  original design (type-only matches with disjoint values are only
  reconsidered through the below-k exhaustive fallback), so the full
  scan may *add* tables; every table the engine path returns scores
  identically.
* **Subset with bounded scores** -- LSH Ensemble: banded retrieval can
  miss a table's best column while a lesser one collides, so per-table
  scores are bounded by the exhaustive scan's.

Randomized lakes come from seeded generators driven by Hypothesis, plus
explicit edge cases: empty queries (columns but no rows) and all-null
columns.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datalake import DataLake
from repro.discovery import (
    CocoaJoinSearch,
    FunctionDiscoverer,
    JosieJoinSearch,
    LSHEnsembleJoinSearch,
    SantosUnionSearch,
    StarmieUnionSearch,
    TusUnionSearch,
    value_overlap_similarity,
)
from repro.table import MISSING, Table

VOCAB = [
    "berlin", "boston", "rome", "paris", "tokyo", "oslo", "lima", "cairo",
    "delhi", "quito", "accra", "hanoi",
]


def make_lake(seed: int) -> DataLake:
    rng = random.Random(seed)
    tables = []
    for t in range(rng.randint(3, 7)):
        num_rows = rng.randint(2, 8)
        columns = ["Key"] + [f"c{i}" for i in range(rng.randint(1, 3))]
        rows = []
        for _ in range(num_rows):
            cells = [rng.choice(VOCAB)]
            for i in range(len(columns) - 1):
                roll = rng.random()
                if roll < 0.15:
                    cells.append(MISSING)
                elif roll < 0.6:
                    cells.append(rng.choice(VOCAB))
                else:
                    cells.append(rng.randint(0, 50))
            rows.append(tuple(cells))
        tables.append(Table(columns, rows, name=f"t{t}"))
    return DataLake(tables)


def make_query(seed: int) -> Table:
    rng = random.Random(seed + 1)
    rows = [
        (rng.choice(VOCAB), rng.randint(0, 50), rng.choice(VOCAB))
        for _ in range(rng.randint(2, 8))
    ]
    return Table(["Key", "Metric", "Other"], rows, name="query")


def roster():
    return [
        JosieJoinSearch(),
        LSHEnsembleJoinSearch(),
        SantosUnionSearch(),
        TusUnionSearch(),
        StarmieUnionSearch(),
        CocoaJoinSearch(),
        FunctionDiscoverer(value_overlap_similarity, name="user_defined"),
    ]


def comparable(results):
    return [(r.table_name, round(r.score, 9)) for r in results]


def both_paths(discoverer, lake, query, k=50, query_column=None):
    """(engine-backed, forced-exhaustive) results of one fitted discoverer.

    The default k exceeds every generated lake's size, so the comparison
    covers *complete* result sets: subset contracts are then exact
    (truncating both sides at any smaller k preserves identity for the
    identical group, whose full sets match result for result)."""
    discoverer.fit(lake)
    engine = discoverer.engine
    engine.force_exhaustive = False
    fast = comparable(discoverer.search(query, k=k, query_column=query_column))
    engine.force_exhaustive = True
    full = comparable(discoverer.search(query, k=k, query_column=query_column))
    engine.force_exhaustive = False
    return fast, full


#: Discoverers whose retrieval is a provable superset of their scorable set.
IDENTICAL = {"josie", "santos", "starmie", "cocoa", "user_defined"}


def check_contract(discoverer, fast, full):
    """Assert the equivalence level the discoverer's spec promises."""
    if discoverer.name in IDENTICAL:
        assert fast == full, f"{discoverer.name}: engine {fast} != full scan {full}"
        return
    full_scores = dict(full)
    for table, score in fast:
        assert table in full_scores, (
            f"{discoverer.name} retrieved {table} the full scan missed"
        )
        if discoverer.name == "tus":
            assert score == full_scores[table], f"{discoverer.name}: {table}"
        else:  # lsh_ensemble: best-column selection may degrade under bands
            assert score <= full_scores[table], f"{discoverer.name}: {table}"


@settings(max_examples=12, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_engine_matches_declared_contract(seed):
    lake = make_lake(seed)
    query = make_query(seed)
    for discoverer in roster():
        fast, full = both_paths(discoverer, lake, query, query_column="Key")
        check_contract(discoverer, fast, full)


@settings(max_examples=12, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_lsh_engine_results_contained_in_full_scan(seed):
    lake = make_lake(seed)
    query = make_query(seed)
    fast, full = both_paths(
        LSHEnsembleJoinSearch(), lake, query, k=50, query_column="Key"
    )
    full_scores = dict(full)
    for table, score in fast:
        assert table in full_scores, f"LSH retrieved {table} the full scan missed"
        # The banded path may miss a table's *best* column while a lesser
        # column still collides, so its best-per-table score is bounded by
        # the exhaustive one (both read the same signatures).
        assert score <= full_scores[table]


@settings(max_examples=8, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_no_intent_column_matches_contract(seed):
    lake = make_lake(seed)
    query = make_query(seed)
    for discoverer in roster():
        fast, full = both_paths(discoverer, lake, query)
        check_contract(discoverer, fast, full)


class TestEdgeCases:
    @pytest.fixture
    def lake(self):
        return make_lake(seed=42)

    def test_empty_query_table(self, lake):
        empty = Table(["Key", "Metric"], [], name="query")
        for discoverer in roster():
            fast, full = both_paths(discoverer, lake, empty, query_column="Key")
            check_contract(discoverer, fast, full)

    def test_all_null_query_column(self, lake):
        query = Table(
            ["Key", "Metric"],
            [(MISSING, 1), (MISSING, 2), (MISSING, 3)],
            name="query",
        )
        for discoverer in roster():
            fast, full = both_paths(discoverer, lake, query, query_column="Key")
            check_contract(discoverer, fast, full)

    def test_all_null_lake_column(self):
        lake = DataLake(
            [
                Table(["Key", "Empty"], [("berlin", MISSING), ("rome", MISSING)], name="t0"),
                Table(["Key"], [("berlin",), ("oslo",)], name="t1"),
            ]
        )
        query = Table(["Key", "Metric"], [("berlin", 1.0), ("rome", 2.0)], name="query")
        for discoverer in roster():
            fast, full = both_paths(discoverer, lake, query, query_column="Key")
            check_contract(discoverer, fast, full)

    def test_query_disjoint_from_lake(self, lake):
        query = Table(["Key"], [("zzz",), ("yyy",)], name="query")
        for discoverer in roster():
            fast, full = both_paths(discoverer, lake, query, query_column="Key")
            check_contract(discoverer, fast, full)
