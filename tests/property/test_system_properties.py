"""Property-based tests on system-level invariants: ER clustering,
alignment, generation, aggregation."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.er import EntityResolver, Record, cluster_matches
from repro.genquery import generate_query_table
from repro.table import MISSING, Table, ops

names = st.sampled_from(["Pfizer", "JnJ", "J&J", "Moderna", "USA", "Germany"])
cells = st.one_of(names, st.just(MISSING), st.integers(0, 3))


class TestERProperties:
    records_strategy = st.lists(
        st.tuples(cells, cells), min_size=1, max_size=8
    ).map(
        lambda rows: [
            Record.from_mapping(f"r{i}", {"x": a, "y": b}) for i, (a, b) in enumerate(rows)
        ]
    )

    @settings(max_examples=50, deadline=None)
    @given(records_strategy)
    def test_clusters_partition_records(self, records):
        result = EntityResolver().resolve_records(records)
        flattened = [m for cluster in result.clusters for m in cluster]
        assert sorted(flattened) == sorted(r.record_id for r in records)

    @settings(max_examples=50, deadline=None)
    @given(records_strategy)
    def test_same_entity_is_equivalence_relation(self, records):
        result = EntityResolver().resolve_records(records)
        ids = [r.record_id for r in records]
        for a in ids:
            assert result.same_entity(a, a)
        if len(ids) >= 2:
            a, b = ids[0], ids[1]
            assert result.same_entity(a, b) == result.same_entity(b, a)

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.tuples(st.integers(0, 6), st.integers(0, 6)), max_size=10))
    def test_transitive_closure_idempotent(self, edges):
        ids = [f"n{i}" for i in range(7)]
        pairs = [(f"n{a}", f"n{b}") for a, b in edges]
        once = cluster_matches(ids, pairs)
        derived_pairs = [
            (cluster[0], member) for cluster in once for member in cluster[1:]
        ]
        twice = cluster_matches(ids, derived_pairs)
        assert once == twice


class TestAlignmentProperties:
    tables_strategy = st.lists(
        st.tuples(
            st.sampled_from(["City", "Country", "Rate", "Name"]),
            st.lists(names, min_size=1, max_size=4),
        ),
        min_size=1,
        max_size=3,
    ).map(
        lambda specs: [
            Table([f"{header}"], [(v,) for v in values], name=f"T{i}")
            for i, (header, values) in enumerate(specs)
        ]
    )

    @settings(max_examples=30, deadline=None)
    @given(tables_strategy)
    def test_alignment_never_collides_within_table(self, tables):
        from repro.alignment import HolisticAligner

        alignment = HolisticAligner().align(tables)
        for table in tables:
            ids = [alignment.integration_id(table.name, c) for c in table.columns]
            assert len(ids) == len(set(ids))

    @settings(max_examples=20, deadline=None)
    @given(tables_strategy)
    def test_alignment_deterministic(self, tables):
        from repro.alignment import HolisticAligner

        first = HolisticAligner().align(tables)
        second = HolisticAligner().align(tables)
        assert first.assignments == second.assignments


class TestGenqueryProperties:
    @settings(max_examples=40, deadline=None)
    @given(
        st.sampled_from(["covid", "vaccine", "people", "weather", "energy", "zzz"]),
        st.integers(1, 12),
        st.integers(1, 8),
        st.integers(0, 5),
    )
    def test_shape_always_honored(self, topic, rows, columns, seed):
        table = generate_query_table(f"a table about {topic}", rows=rows,
                                     columns=columns, seed=seed)
        assert table.shape == (rows, columns)
        assert len(set(table.columns)) == columns  # headers unique

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 100))
    def test_seed_determinism(self, seed):
        a = generate_query_table("housing market", rows=4, seed=seed)
        b = generate_query_table("housing market", rows=4, seed=seed)
        assert a.equals(b)


class TestAggregationProperties:
    sales = st.lists(
        st.tuples(st.sampled_from(["e", "w"]), st.one_of(st.integers(-50, 50), st.just(MISSING))),
        min_size=1,
        max_size=20,
    ).map(lambda rows: Table(["g", "v"], rows, name="s"))

    @settings(max_examples=50, deadline=None)
    @given(sales)
    def test_group_sums_add_up_to_global_sum(self, table):
        grouped = ops.aggregate(table, ["g"], {"s": ("v", "sum")})
        total = ops.aggregate(table, [], {"s": ("v", "sum")})
        group_total = sum(v for v in grouped.column("s") if isinstance(v, (int, float)))
        global_total = total.rows[0][0]
        if isinstance(global_total, (int, float)):
            assert group_total == global_total

    @settings(max_examples=50, deadline=None)
    @given(sales)
    def test_group_counts_add_up(self, table):
        grouped = ops.aggregate(table, ["g"], {"n": ("v", "count")})
        non_null = sum(1 for v in table.column("v") if v is not MISSING)
        assert sum(grouped.column("n")) == non_null
