"""Crash-at-every-write-point recovery (the fault-tolerance tentpole).

The intent-journal protocol (:mod:`repro.store.journal`) promises that a
writer killed at *any* instant leaves a store that ``open()`` repairs to
**byte-for-byte** either the pre-operation state or the post-operation
state -- never a torn mix -- with zero orphan files.

These tests make that promise exhaustive rather than anecdotal: the
fault plane's recorder (:func:`repro.faults.inject.record`) enumerates
every write-point fire of a crash-free run of the operation, then the
operation is re-run on a fresh copy of the pre-state with a simulated
crash (:class:`FaultInjected`) armed at each ``(point, nth)`` in turn.
After recovery:

* the directory's full file set and every file's bytes equal exactly
  the pre- or the post-state snapshot (txn ids are content-derived, so a
  recovered-then-retried operation converges on the *identical* bytes a
  crash-free run produces);
* no ``*.tmp`` droppings and no ``journal.json`` survive;
* a rolled-back operation can simply be retried and lands on the
  post-state.

Covered operations: ``LakeStore.ingest`` (adds + an update, so both
``pending`` and ``stale`` paths run), ``LakeStore.remove``, and the
journaled ``ShardedLakeStore.rebalance`` (whose crash windows include
whole-directory backup renames and moves -- the "table in two shards"
hazard the journal exists to close).
"""

from __future__ import annotations

import shutil
from pathlib import Path

import pytest

from repro.faults import FaultInjected, inject
from repro.shard.store import ShardedLakeStore
from repro.store import journal
from repro.store.lakestore import LakeStore
from repro.table.table import Table


@pytest.fixture(autouse=True)
def _fast_and_clean():
    # The protocol under test is the journal + tmp/replace ordering;
    # skipping the physical fsyncs keeps the crash matrix fast without
    # changing any byte the assertions see.
    was_on = journal.fsync_enabled()
    journal.set_fsync_enabled(False)
    inject.reset()
    yield
    inject.reset()
    journal.set_fsync_enabled(was_on)


def table(name: str, seed: int, rows: int = 6) -> Table:
    return Table(
        ["City", "State", "Pop"],
        [(f"c{seed}_{j}", f"s{j % 3}", seed * 10 + j) for j in range(rows)],
        name=name,
    )


def snapshot(root: Path) -> dict[str, bytes]:
    """Every file under *root* with its exact bytes.

    The advisory ``.writer.lock`` sidecars are excluded: they are
    contentless liveness markers, deliberately never unlinked (removing
    a flock file races fresh lockers against stale holders), so their
    mere existence says nothing about store state."""
    return {
        p.relative_to(root).as_posix(): p.read_bytes()
        for p in sorted(root.rglob("*"))
        if p.is_file() and p.name != journal.LOCK_NAME
    }


def assert_no_orphans(root: Path) -> None:
    leftovers = [
        p.relative_to(root).as_posix()
        for p in root.rglob("*")
        if p.name.endswith(".tmp") or p.name == journal.JOURNAL_NAME
    ]
    assert leftovers == [], f"orphans survived recovery: {leftovers}"


def crash_matrix(pre_dir, operation, reopen, tmp_path, extra_roots=()):
    """Run *operation* crash-free to learn its write points, then crash
    at every (point, nth) and assert recovery lands on pre or post bytes.

    Returns ``(cases, rollbacks, rollforwards)`` so callers can assert
    both directions were actually exercised.
    """
    pre = snapshot(pre_dir)

    clean = tmp_path / "clean"
    shutil.copytree(pre_dir, clean)
    with inject.record() as counts:
        operation(clean)
    post = snapshot(clean)
    points = {
        point: n
        for point, n in sorted(counts.items())
        if point.startswith(("store.", "shard.rebalance."))
    }
    assert points, "operation fired no write points -- the matrix is empty"

    cases = rollbacks = rollforwards = 0
    for point, total in points.items():
        for nth in range(1, total + 1):
            work = tmp_path / f"crash-{point.replace('.', '_')}-{nth}"
            shutil.copytree(pre_dir, work)
            inject.crash_after(point, nth=nth)
            try:
                with pytest.raises(FaultInjected):
                    operation(work)
            finally:
                inject.reset()
            reopen(work)  # recovery runs inside open()
            state = snapshot(work)
            assert state == pre or state == post, (
                f"crash after {point}#{nth}: recovered state is neither "
                f"pre nor post (files {sorted(set(state) ^ set(pre))} vs pre, "
                f"{sorted(set(state) ^ set(post))} vs post)"
            )
            assert_no_orphans(work)
            for sibling in extra_roots:
                staged = work.parent / (work.name + sibling)
                assert not staged.exists(), f"staging dir {staged} survived"
            cases += 1
            if state == pre:
                rollbacks += 1
                # A rolled-back operation is simply retried -- and must
                # converge on the identical post bytes.
                operation(work)
                assert snapshot(work) == post, (
                    f"retry after rolled-back crash at {point}#{nth} "
                    f"diverged from the crash-free bytes"
                )
            else:
                rollforwards += 1
    return cases, rollbacks, rollforwards


# ----------------------------------------------------------------------
# LakeStore: ingest (add + update) and remove
# ----------------------------------------------------------------------
@pytest.fixture
def plain_store(tmp_path):
    path = tmp_path / "pre"
    store = LakeStore.create(path)
    store.ingest({"alpha": table("alpha", 1), "beta": table("beta", 2)})
    return path


def test_ingest_crash_at_every_write_point(plain_store, tmp_path):
    def operation(path):
        LakeStore.open(path).ingest(
            # beta changes (stale segment+stats), gamma is new (pending).
            {"beta": table("beta", 7, rows=4), "gamma": table("gamma", 3)},
            prune=False,
        )

    cases, rollbacks, rollforwards = crash_matrix(
        plain_store, operation, LakeStore.open, tmp_path
    )
    assert cases >= 7  # journal, 2 segments, 2 stats, manifest, version, ...
    assert rollbacks and rollforwards  # both recovery directions exercised


def test_remove_crash_at_every_write_point(plain_store, tmp_path):
    def operation(path):
        LakeStore.open(path).remove("beta")

    cases, rollbacks, rollforwards = crash_matrix(
        plain_store, operation, LakeStore.open, tmp_path
    )
    assert cases >= 4
    assert rollbacks and rollforwards


def test_recovery_is_idempotent(plain_store, tmp_path):
    """Crashing *during recovery's own cleanup* must not make things
    worse: recovery uses raw unlinks (no fault points), so opening twice
    is byte-stable."""
    work = tmp_path / "work"
    shutil.copytree(plain_store, work)
    inject.crash_after("store.write_segment", nth=1)
    with pytest.raises(FaultInjected):
        LakeStore.open(work).ingest({"gamma": table("gamma", 3)}, prune=False)
    inject.reset()
    LakeStore.open(work)
    first = snapshot(work)
    LakeStore.open(work)
    assert snapshot(work) == first


def test_recovery_leaves_a_live_writers_journal_alone(plain_store, tmp_path):
    """Readers may open() while a writer is mid-mutation; recovery must
    settle only *crashed* writers (advisory lock free), never roll back
    an operation that is still running."""
    work = tmp_path / "work"
    shutil.copytree(plain_store, work)
    lock = journal.acquire_writer_lock(work)
    journal.write_journal(
        work,
        {"op": "ingest", "txn": "tx", "pending": ["segments/bogus.seg"],
         "stale": []},
    )
    pre = snapshot(work)
    assert LakeStore.recover(work) is None  # live writer: untouched
    assert journal.read_journal(work) is not None
    assert snapshot(work) == pre
    lock.release()
    repaired = LakeStore.recover(work)  # dead writer: settled
    assert repaired is not None and repaired["action"] == "rolled_back"
    assert journal.read_journal(work) is None


# ----------------------------------------------------------------------
# ShardedLakeStore: rebalance
# ----------------------------------------------------------------------
@pytest.fixture
def sharded_store(tmp_path):
    path = tmp_path / "pre"
    store = ShardedLakeStore.create(path, num_shards=2)
    store.ingest({f"t{i:02d}": table(f"t{i:02d}", i) for i in range(6)})
    return path


def test_rebalance_crash_at_every_write_point(sharded_store, tmp_path):
    def operation(path):
        ShardedLakeStore.open(path, check_sketch=False).rebalance(3)

    def reopen(path):
        ShardedLakeStore.open(path, check_sketch=False)

    cases, rollbacks, rollforwards = crash_matrix(
        sharded_store, operation, reopen, tmp_path, extra_roots=(".rebalance",)
    )
    assert cases >= 10  # staging ingests + backup renames + moves + commit
    assert rollbacks and rollforwards


def test_interrupted_rebalance_never_leaves_a_table_in_two_shards(
    sharded_store, tmp_path
):
    """The satellite guarantee, asserted directly: crash at every move
    of the new layout into place, recover, and check placement is a
    partition -- each table lives in exactly one live shard."""
    clean = tmp_path / "clean"
    shutil.copytree(sharded_store, clean)
    with inject.record() as counts:
        ShardedLakeStore.open(clean, check_sketch=False).rebalance(3)
    for nth in range(1, counts.get("shard.rebalance.move", 0) + 1):
        work = tmp_path / f"move-{nth}"
        shutil.copytree(sharded_store, work)
        inject.crash_after("shard.rebalance.move", nth=nth)
        with pytest.raises(FaultInjected):
            ShardedLakeStore.open(work, check_sketch=False).rebalance(3)
        inject.reset()
        recovered = ShardedLakeStore.open(work, check_sketch=False)
        placements: dict[str, list[str]] = {}
        for shard in recovered.shards:
            for name in shard.table_names:
                placements.setdefault(name, []).append(shard.path.name)
        doubled = {t: s for t, s in placements.items() if len(s) > 1}
        assert not doubled, f"tables in two shards after recovery: {doubled}"
        assert sorted(placements) == [f"t{i:02d}" for i in range(6)]
