"""Property-based tests for Full Disjunction (the reproduction's core).

The oracle test is the strongest guarantee in the suite: on arbitrary small
integration sets, AliteFD, NestedLoopFD and ParallelFD must produce exactly
the value set of the brute-force definitional FD (:class:`OracleFD`).
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.integration import (
    AliteFD,
    NestedLoopFD,
    OracleFD,
    ParallelFD,
    UnionIntegrator,
    joinable,
    merge_tuples,
    normalized_key,
    remove_subsumed,
    subsumes,
)
from repro.integration.tuples import WorkTuple
from repro.table import MISSING, Table

# Small value alphabet forces collisions -> merges actually happen.
values = st.sampled_from(["a", "b", "c", None])
rows = st.lists(values, min_size=2, max_size=3)


def tables_strategy(max_tables: int = 3, max_rows: int = 3):
    """Random integration sets over shared column names x, y, z."""

    @st.composite
    def build(draw):
        num_tables = draw(st.integers(1, max_tables))
        all_columns = ["x", "y", "z"]
        tables = []
        for t in range(num_tables):
            width = draw(st.integers(2, 3))
            columns = all_columns[:width]
            num_rows = draw(st.integers(1, max_rows))
            table_rows = []
            for _ in range(num_rows):
                row = [
                    MISSING if cell is None else cell
                    for cell in draw(st.lists(values, min_size=width, max_size=width))
                ]
                table_rows.append(tuple(row))
            tables.append(Table(columns, table_rows, name=f"T{t}"))
        return tables

    return build()


def value_multiset(result):
    return sorted(normalized_key(row) for row in result.rows)


class TestAgainstOracle:
    @settings(max_examples=60, deadline=None)
    @given(tables_strategy())
    def test_alite_equals_oracle(self, tables):
        oracle = OracleFD().integrate(tables)
        alite = AliteFD().integrate(tables)
        assert value_multiset(alite) == value_multiset(oracle)

    @settings(max_examples=40, deadline=None)
    @given(tables_strategy())
    def test_nested_loop_equals_oracle(self, tables):
        oracle = OracleFD().integrate(tables)
        nested = NestedLoopFD().integrate(tables)
        assert value_multiset(nested) == value_multiset(oracle)

    @settings(max_examples=40, deadline=None)
    @given(tables_strategy())
    def test_parallel_equals_oracle(self, tables):
        oracle = OracleFD().integrate(tables)
        parallel = ParallelFD().integrate(tables)
        assert value_multiset(parallel) == value_multiset(oracle)


class TestFDInvariants:
    @settings(max_examples=50, deadline=None)
    @given(tables_strategy())
    def test_no_output_tuple_subsumed_by_another(self, tables):
        result = AliteFD().integrate(tables)
        rows = list(result.rows)
        for i, row in enumerate(rows):
            for j, other in enumerate(rows):
                if i != j:
                    assert not (
                        subsumes(other, row)
                        and normalized_key(other) != normalized_key(row)
                    )

    @settings(max_examples=50, deadline=None)
    @given(tables_strategy())
    def test_every_input_tuple_covered(self, tables):
        # FD never loses information: each input tuple is subsumed by some
        # output tuple (after aligning to the output header).
        result = AliteFD().integrate(tables)
        union = UnionIntegrator().integrate(tables)
        positions = [union.column_index(c) for c in result.columns]
        for row in union.rows:
            aligned = tuple(row[p] for p in positions)
            assert any(subsumes(out, aligned) for out in result.rows)

    @settings(max_examples=30, deadline=None)
    @given(tables_strategy(max_tables=3, max_rows=2))
    def test_table_order_invariance(self, tables):
        forward = AliteFD().integrate(tables)
        backward = AliteFD().integrate(list(reversed([t.with_name(t.name) for t in tables])))
        # Compare as relations over sorted column order.
        def canonical(result):
            columns = sorted(result.columns)
            positions = [result.column_index(c) for c in columns]
            return sorted(
                normalized_key(tuple(row[p] for p in positions)) for row in result.rows
            )

        assert canonical(forward) == canonical(backward)

    @settings(max_examples=50, deadline=None)
    @given(tables_strategy())
    def test_idempotence(self, tables):
        # FD of an FD result is the FD result itself.
        once = AliteFD().integrate(tables)
        again = AliteFD().integrate([Table(once.columns, once.rows, name="once")])
        assert value_multiset(again) == value_multiset(once)

    @settings(max_examples=50, deadline=None)
    @given(tables_strategy())
    def test_provenance_is_a_real_witness(self, tables):
        # Merging exactly the provenance tuples reproduces each output row's
        # values (the witness actually derives the fact).
        from repro.integration import prepare_integration_input

        result = AliteFD().integrate(tables)
        _, work, _ = prepare_integration_input(tables)
        by_tid = {next(iter(w.tids)): w for w in work}
        for row, tids in zip(result.rows, result.provenance):
            members = [by_tid[t] for t in sorted(tids)]
            merged = members[0]
            rest = members[1:]
            # Merge in any feasible order (witnesses are connected).
            progress = True
            while rest and progress:
                progress = False
                for candidate in list(rest):
                    if joinable(merged.cells, candidate.cells):
                        merged = merge_tuples(merged, candidate)
                        rest.remove(candidate)
                        progress = True
            assert not rest
            assert normalized_key(merged.cells) == normalized_key(row)


class TestTupleKernels:
    cells = st.lists(values, min_size=3, max_size=3).map(
        lambda row: tuple(MISSING if c is None else c for c in row)
    )

    @settings(max_examples=100, deadline=None)
    @given(cells, cells)
    def test_joinable_symmetric(self, a, b):
        assert joinable(a, b) == joinable(b, a)

    @settings(max_examples=100, deadline=None)
    @given(cells, cells)
    def test_merge_subsumes_both_parents(self, a, b):
        if joinable(a, b):
            merged = merge_tuples(
                WorkTuple(a, frozenset({"t1"})), WorkTuple(b, frozenset({"t2"}))
            )
            assert subsumes(merged.cells, a)
            assert subsumes(merged.cells, b)

    @settings(max_examples=100, deadline=None)
    @given(cells, cells, cells)
    def test_subsumption_transitive(self, a, b, c):
        if subsumes(a, b) and subsumes(b, c):
            assert subsumes(a, c)

    @settings(max_examples=100, deadline=None)
    @given(st.lists(cells, min_size=1, max_size=6))
    def test_remove_subsumed_keeps_maximal_antichain(self, rows):
        tuples = [WorkTuple(c, frozenset({f"t{i}"})) for i, c in enumerate(rows)]
        kept = remove_subsumed(tuples)
        # Anti-chain: no kept tuple subsumes another (distinct values).
        for i, a in enumerate(kept):
            for j, b in enumerate(kept):
                if i != j:
                    assert not subsumes(a.cells, b.cells) or normalized_key(
                        a.cells
                    ) == normalized_key(b.cells)
        # Coverage: every input subsumed by something kept.
        for work in tuples:
            assert any(subsumes(k.cells, work.cells) for k in kept)
