"""Sharded scatter-gather vs single-store discovery equivalence.

ISSUE 8 tentpole guarantee: routing a lake across N content-hash
shards and fanning a query out (deferred retrieval policy + global
reducer) returns **byte-identical top-k** to the unsharded pipeline,
for every discoverer and for every retrieval mode the reducer can
take (assemble, budget truncation, below-floor exhaustive fallback).

Two preconditions make the comparison valid and are part of what the
test pins:

* Both sides are *fresh builds* over the same lake.  Lake-global fit
  state (SANTOS synthesized KB, TUS corpus IDF) is computed from the
  combined lake and pinned at build time; comparing a pinned sharded
  index against a *re-fit* unsharded one after ingest would measure
  fit-state drift, not reducer correctness.
* Thread executor -- shard counts above the thread limit would pick
  process pools under ``executor="auto"``, which is equivalence-tested
  elsewhere and too slow for a property sweep.

The incremental-ingest test pins the perf contract the routing rule
buys: one table's ingest rewrites exactly one shard (version bump +
file churn confined to the home shard; every other shard's persisted
bytes -- indexes, postings, segments, manifest -- are untouched).
"""

from __future__ import annotations

import hashlib
import random
import tempfile
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datalake import DataLake, LakeIndex
from repro.discovery import (
    CocoaJoinSearch,
    JosieJoinSearch,
    LSHEnsembleJoinSearch,
    SantosUnionSearch,
    StarmieUnionSearch,
    TusUnionSearch,
)
from repro.shard import ShardedLakeIndex, ShardedLakeStore
from repro.table import MISSING, Table

SHARD_COUNTS = (1, 2, 4, 7)

VOCAB = [
    "berlin", "boston", "rome", "paris", "tokyo", "oslo", "lima", "cairo",
    "delhi", "quito", "accra", "hanoi",
]


def make_lake(seed: int) -> DataLake:
    rng = random.Random(seed)
    tables = []
    for t in range(rng.randint(3, 7)):
        num_rows = rng.randint(2, 8)
        columns = ["Key"] + [f"c{i}" for i in range(rng.randint(1, 3))]
        rows = []
        for _ in range(num_rows):
            cells = [rng.choice(VOCAB)]
            for i in range(len(columns) - 1):
                roll = rng.random()
                if roll < 0.15:
                    cells.append(MISSING)
                elif roll < 0.6:
                    cells.append(rng.choice(VOCAB))
                else:
                    cells.append(rng.randint(0, 50))
            rows.append(tuple(cells))
        tables.append(Table(columns, rows, name=f"t{t}"))
    return DataLake(tables)


def make_query(seed: int) -> Table:
    rng = random.Random(seed + 1)
    rows = [
        (rng.choice(VOCAB), rng.randint(0, 50), rng.choice(VOCAB))
        for _ in range(rng.randint(2, 8))
    ]
    return Table(["Key", "Metric", "Other"], rows, name="query")


def roster():
    return [
        JosieJoinSearch(),
        LSHEnsembleJoinSearch(),
        SantosUnionSearch(),
        TusUnionSearch(),
        StarmieUnionSearch(),
        CocoaJoinSearch(),
    ]


def comparable(answer):
    """Per-discoverer (table, score, discoverer) triples, order-preserving."""
    return {
        name: [(r.table_name, round(r.score, 9), r.discoverer) for r in results]
        for name, results in answer.items()
    }


def unsharded_answer(lake, query, k, budget=None):
    index = LakeIndex(lake, roster()).set_candidate_budget(budget).build()
    return comparable(index.search(query, k=k, query_column="Key"))


def sharded_answer(root, lake, query, k, num_shards, budget=None):
    store = ShardedLakeStore.create(root / f"lake-{num_shards}", num_shards=num_shards)
    store.ingest(lake)
    index = ShardedLakeIndex(store, roster(), executor="threads")
    index.set_candidate_budget(budget)
    try:
        index.build()
        return comparable(index.search(query, k=k, query_column="Key"))
    finally:
        index.close()


@settings(max_examples=5, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_sharded_topk_identical_for_every_shard_count(seed):
    lake = make_lake(seed)
    query = make_query(seed)
    for k in (3, 10):
        expected = unsharded_answer(lake, query, k)
        with tempfile.TemporaryDirectory() as tmp:
            for num_shards in SHARD_COUNTS:
                got = sharded_answer(Path(tmp), lake, query, k, num_shards)
                assert got == expected, (
                    f"seed={seed} k={k} shards={num_shards}: scatter-gather "
                    f"diverged from the single-store pipeline"
                )


@settings(max_examples=4, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_fallback_round_identical(seed):
    # k above the lake size forces the below-floor exhaustive fallback:
    # the reducer must re-scatter round 2 and still match the unsharded
    # engine's own fallback, result for result.
    lake = make_lake(seed)
    query = make_query(seed)
    k = len(lake) + 10
    expected = unsharded_answer(lake, query, k)
    with tempfile.TemporaryDirectory() as tmp:
        for num_shards in (2, 7):
            got = sharded_answer(Path(tmp), lake, query, k, num_shards)
            assert got == expected, f"seed={seed} shards={num_shards} (fallback)"


@settings(max_examples=4, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_budget_truncation_identical(seed):
    # A global candidate budget must be enforced on the *union* of shard
    # retrievals (kept set by (-strength, name)), not per shard -- a
    # per-shard budget of 2 over 4 shards could keep 8 tables.
    lake = make_lake(seed)
    query = make_query(seed)
    expected = unsharded_answer(lake, query, 5, budget=2)
    with tempfile.TemporaryDirectory() as tmp:
        for num_shards in (2, 4):
            got = sharded_answer(Path(tmp), lake, query, 5, num_shards, budget=2)
            assert got == expected, f"seed={seed} shards={num_shards} (budget)"


def test_disjoint_query_identical():
    lake = make_lake(seed=42)
    query = Table(["Key"], [("zzz",), ("yyy",)], name="query")
    expected = unsharded_answer(lake, query, 5)
    with tempfile.TemporaryDirectory() as tmp:
        for num_shards in SHARD_COUNTS:
            got = sharded_answer(Path(tmp), lake, query, 5, num_shards)
            assert got == expected


def _shard_digests(store: ShardedLakeStore) -> list[dict[str, str]]:
    """Per shard: every persisted file's relative path -> content hash."""
    digests = []
    for shard in store.shards:
        files = {}
        for path in sorted(shard.path.rglob("*")):
            if path.is_file():
                rel = str(path.relative_to(shard.path))
                files[rel] = hashlib.sha256(path.read_bytes()).hexdigest()
        digests.append(files)
    return digests


def test_single_table_ingest_rewrites_exactly_one_shard(tmp_path):
    lake = make_lake(seed=7)
    store = ShardedLakeStore.create(tmp_path / "lake", num_shards=4)
    store.ingest(lake)
    index = ShardedLakeIndex(store, roster(), executor="threads")
    try:
        index.build()  # persists per-shard indexes + the lake-global fit state
    finally:
        index.close()

    before_versions = store.shard_versions()
    before_digests = _shard_digests(store)

    newcomer = Table(["Key", "c0"], [("berlin", "rome"), ("oslo", 3)], name="zz_new")
    home = store.shard_of(newcomer.name)
    store.ingest({newcomer.name: newcomer}, prune=False)

    after_versions = store.shard_versions()
    after_digests = _shard_digests(store)

    for i in range(store.num_shards):
        if i == home:
            assert after_versions[i] == before_versions[i] + 1
        else:
            # Untouched shards keep every persisted byte: manifest,
            # segments, postings, and the version-pinned index pickles.
            assert after_versions[i] == before_versions[i]
            assert after_digests[i] == before_digests[i], (
                f"shard {i} is not {newcomer.name}'s home but its files changed"
            )

    # The routed shard really did change (version bump is not cosmetic),
    # and its persisted indexes are now stale relative to its version.
    assert after_digests[home] != before_digests[home]
    info = store.shards[home].info()
    assert newcomer.name in info["tables"]
