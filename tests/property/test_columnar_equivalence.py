"""Row-major ↔ columnar equivalence for every operator in table.ops.

The columnar engine must be observationally identical to the seed's
row-major implementation.  Each property here runs an operator through the
columnar :mod:`repro.table.ops` and through an independent row-major
reference (a direct transcription of the seed algorithms over
``table.rows``) and asserts cell-exact equality, *including* null kinds
(MISSING ``±`` vs PRODUCED ``⊥``) and row order.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.table import MISSING, PRODUCED, Table, ops
from repro.table.ops import _hashable
from repro.table.values import PRODUCED as BOT
from repro.table.values import Cell, is_null

# ----------------------------------------------------------------------
# Table strategies: heterogeneous cells with both null kinds
# ----------------------------------------------------------------------
cells = st.one_of(
    st.integers(-3, 3),
    st.sampled_from(["a", "b", "cc", ""]),
    st.booleans(),
    st.sampled_from([0.5, 1.0, -2.0]),
    st.just(MISSING),
    st.just(PRODUCED),
)


@st.composite
def tables(draw, min_cols=1, max_cols=4, max_rows=8, prefix="c"):
    num_cols = draw(st.integers(min_cols, max_cols))
    num_rows = draw(st.integers(0, max_rows))
    columns = [f"{prefix}{i}" for i in range(num_cols)]
    rows = [
        tuple(draw(cells) for _ in range(num_cols)) for _ in range(num_rows)
    ]
    return Table(columns, rows, name=draw(st.sampled_from(["t", "u", "v"])))


@st.composite
def join_pairs(draw):
    """Two tables sharing at least one column name (a natural-join setup)."""
    shared = draw(st.integers(1, 2))
    left_extra = draw(st.integers(0, 2))
    right_extra = draw(st.integers(0, 2))
    shared_cols = [f"k{i}" for i in range(shared)]
    left_cols = shared_cols + [f"l{i}" for i in range(left_extra)]
    right_cols = shared_cols + [f"r{i}" for i in range(right_extra)]
    num_left = draw(st.integers(0, 7))
    num_right = draw(st.integers(0, 7))
    left = Table(
        left_cols,
        [tuple(draw(cells) for _ in left_cols) for _ in range(num_left)],
        name="L",
    )
    right = Table(
        right_cols,
        [tuple(draw(cells) for _ in right_cols) for _ in range(num_right)],
        name="R",
    )
    return left, right, shared_cols


def assert_same(result: Table, reference_columns, reference_rows) -> None:
    """Cell-exact comparison, null kinds included (``is``-checked)."""
    assert list(result.columns) == list(reference_columns)
    assert result.num_rows == len(reference_rows)
    for got, expected in zip(result.rows, reference_rows):
        assert len(got) == len(expected)
        for g, e in zip(got, expected):
            if is_null(e):
                assert g is e  # identity pins the null *kind*
            else:
                assert g == e and isinstance(g, type(e))


# ----------------------------------------------------------------------
# Row-major reference implementations (transcribed from the seed)
# ----------------------------------------------------------------------
def ref_key_of(row, positions):
    key = []
    for position in positions:
        cell = row[position]
        if is_null(cell):
            return None
        key.append(_hashable(cell))
    return tuple(key)


def ref_hash_join(left, right, on, keep_left, keep_right):
    left_key_pos = [left.column_index(c) for c in on]
    right_key_pos = [right.column_index(c) for c in on]
    right_extra = [c for c in right.columns if c not in on]
    right_extra_pos = [right.column_index(c) for c in right_extra]
    header = list(left.columns) + right_extra
    index = {}
    for i, row in enumerate(right.rows):
        key = ref_key_of(row, right_key_pos)
        if key is not None:
            index.setdefault(key, []).append(i)
    matched = set()
    rows = []
    for row in left.rows:
        key = ref_key_of(row, left_key_pos)
        matches = index.get(key, []) if key is not None else []
        if matches:
            for j in matches:
                matched.add(j)
                right_row = right.rows[j]
                rows.append(row + tuple(right_row[p] for p in right_extra_pos))
        elif keep_left:
            rows.append(row + (BOT,) * len(right_extra))
    if keep_right:
        left_pos = {c: i for i, c in enumerate(left.columns)}
        for j, right_row in enumerate(right.rows):
            if j in matched:
                continue
            out: list[Cell] = [BOT] * len(left.columns)
            for column, right_p in zip(on, right_key_pos):
                out[left_pos[column]] = right_row[right_p]
            out.extend(right_row[p] for p in right_extra_pos)
            rows.append(tuple(out))
    return header, rows


def ref_outer_union(tables_list):
    header, seen = [], set()
    for table in tables_list:
        for column in table.columns:
            if column not in seen:
                seen.add(column)
                header.append(column)
    rows = []
    for table in tables_list:
        positions = {c: i for i, c in enumerate(table.columns)}
        for row in table.rows:
            rows.append(
                tuple(
                    row[positions[c]] if c in positions else BOT for c in header
                )
            )
    return header, rows


def ref_distinct(table):
    seen, rows = set(), []
    for row in table.rows:
        key = tuple(_hashable(cell) for cell in row)
        if key not in seen:
            seen.add(key)
            rows.append(row)
    return list(table.columns), rows


def ref_sort(table, columns, descending):
    positions = [table.column_index(c) for c in columns]

    def key(row):
        return tuple(
            (is_null(row[p]), type(row[p]).__name__, str(row[p])) for p in positions
        )

    return list(table.columns), sorted(table.rows, key=key, reverse=descending)


# ----------------------------------------------------------------------
# Properties
# ----------------------------------------------------------------------
class TestUnaryEquivalence:
    @settings(max_examples=120, deadline=None)
    @given(tables(), st.data())
    def test_project(self, table, data):
        kept = data.draw(
            st.lists(
                st.sampled_from(list(table.columns)),
                min_size=1,
                max_size=table.num_columns,
                unique=True,
            )
        )
        result = ops.project(table, kept)
        positions = [table.column_index(c) for c in kept]
        reference = [tuple(row[p] for p in positions) for row in table.rows]
        assert_same(result, kept, reference)

    @settings(max_examples=120, deadline=None)
    @given(tables())
    def test_select(self, table):
        predicate = lambda row: not is_null(row[table.columns[0]])
        result = ops.select(table, predicate)
        reference = [
            row for row in table.rows if not is_null(row[0])
        ]
        assert_same(result, table.columns, reference)

    @settings(max_examples=120, deadline=None)
    @given(tables())
    def test_distinct(self, table):
        header, reference = ref_distinct(table)
        assert_same(ops.distinct(table), header, reference)

    @settings(max_examples=120, deadline=None)
    @given(tables(), st.booleans(), st.data())
    def test_sort_by(self, table, descending, data):
        by = data.draw(
            st.lists(
                st.sampled_from(list(table.columns)),
                min_size=1,
                max_size=table.num_columns,
                unique=True,
            )
        )
        header, reference = ref_sort(table, by, descending)
        assert_same(ops.sort_by(table, by, descending=descending), header, reference)

    @settings(max_examples=80, deadline=None)
    @given(tables(), st.integers(0, 10))
    def test_head_limit(self, table, n):
        assert_same(ops.limit(table, n), table.columns, table.rows[:n])


class TestUnionEquivalence:
    @settings(max_examples=100, deadline=None)
    @given(st.lists(tables(prefix="c", max_cols=3), min_size=1, max_size=4))
    def test_outer_union(self, tables_list):
        named = [t.with_name(f"s{i}") for i, t in enumerate(tables_list)]
        header, reference = ref_outer_union(named)
        assert_same(ops.outer_union(named), header, reference)

    @settings(max_examples=60, deadline=None)
    @given(tables(), st.integers(1, 3))
    def test_union_all(self, table, copies):
        parts = [table.with_name(f"p{i}") for i in range(copies)]
        result = ops.union_all(parts)
        assert_same(result, table.columns, list(table.rows) * copies)


class TestJoinEquivalence:
    @settings(max_examples=150, deadline=None)
    @given(join_pairs(), st.sampled_from(["inner", "left", "full"]))
    def test_hash_joins(self, pair, flavor):
        left, right, on = pair
        keep_left = flavor in ("left", "full")
        keep_right = flavor == "full"
        header, reference = ref_hash_join(left, right, on, keep_left, keep_right)
        op = {
            "inner": ops.inner_join,
            "left": ops.left_outer_join,
            "full": ops.full_outer_join,
        }[flavor]
        assert_same(op(left, right), header, reference)

    @settings(max_examples=120, deadline=None)
    @given(join_pairs(), st.booleans())
    def test_filter_joins(self, pair, keep_matching):
        left, right, on = pair
        right_keys = {
            key
            for key in (
                ref_key_of(row, [right.column_index(c) for c in on])
                for row in right.rows
            )
            if key is not None
        }
        positions = [left.column_index(c) for c in on]
        reference = [
            row
            for row in left.rows
            if (
                (ref_key_of(row, positions) is not None
                 and ref_key_of(row, positions) in right_keys)
                == keep_matching
            )
        ]
        op = ops.semi_join if keep_matching else ops.anti_join
        assert_same(op(left, right), left.columns, reference)


class TestRoundTrips:
    @settings(max_examples=120, deadline=None)
    @given(tables())
    def test_from_dict_to_dict_round_trip(self, table):
        rebuilt = Table.from_dict(table.to_dict(), name=table.name)
        assert_same(rebuilt, table.columns, table.rows)
        # And the opposite direction: dicts agree cell-for-cell.
        assert rebuilt.to_dict() == table.to_dict()

    @settings(max_examples=120, deadline=None)
    @given(tables())
    def test_rows_and_arrays_are_transposes(self, table):
        arrays = table.column_arrays
        assert len(arrays) == table.num_columns
        for j, array in enumerate(arrays):
            assert len(array) == table.num_rows
            for i, cell in enumerate(array):
                got = table.rows[i][j]
                assert got is cell if is_null(cell) else got == cell

    @settings(max_examples=100, deadline=None)
    @given(tables())
    def test_take_matches_row_indexing(self, table):
        indices = list(range(table.num_rows))[::-1]
        taken = table.take(indices)
        assert_same(taken, table.columns, [table.rows[i] for i in indices])

    @settings(max_examples=100, deadline=None)
    @given(tables())
    def test_stats_cache_matches_fresh_computation(self, table):
        for column in table.columns:
            array = table.column_array(column)
            fresh_values = [v for v in array if not is_null(v)]
            assert table.column_values(column) == fresh_values
            assert table.distinct_values(column) == set(fresh_values)
            assert table.column(column) == list(array)
            # Cached views are shared objects, not fresh copies.
            assert table.column(column) is table.column(column)
            assert table.distinct_values(column) is table.distinct_values(column)
