"""End-to-end fuzzing: the pipeline must behave on arbitrary small lakes.

These properties don't check cleverness, they check *contracts*: no crash,
query always first in the integration set, FD output covers the query's
tuples, analyze apps run on whatever integration produced.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Dialite, DataLake
from repro.genquery import TEMPLATES, generate_query_table
from repro.integration import subsumes

topics = st.sampled_from([template.topic for template in TEMPLATES])


@st.composite
def random_lakes(draw):
    """A lake of 1-4 generated tables plus a query table."""
    num_tables = draw(st.integers(1, 4))
    tables = []
    for i in range(num_tables):
        topic = draw(topics)
        rows = draw(st.integers(1, 6))
        tables.append(
            generate_query_table(
                f"a table about {topic}", rows=rows, seed=draw(st.integers(0, 50)),
                name=f"lake_{i}",
            )
        )
    query_topic = draw(topics)
    query = generate_query_table(
        f"a table about {query_topic}", rows=draw(st.integers(1, 6)),
        seed=draw(st.integers(0, 50)), name="fuzz_query",
    )
    return DataLake(tables), query


class TestPipelineContracts:
    @settings(max_examples=20, deadline=None)
    @given(random_lakes(), st.integers(1, 5))
    def test_discover_contract(self, lake_and_query, k):
        lake, query = lake_and_query
        pipeline = Dialite(lake).fit()
        outcome = pipeline.discover(query, k=k)
        assert outcome.integration_set[0].name == "fuzz_query"
        assert len(outcome.merged) <= k * len(pipeline.discoverers)
        for result in outcome.merged:
            assert result.table_name in lake
            assert result.score >= 0.0

    @settings(max_examples=15, deadline=None)
    @given(random_lakes())
    def test_integrate_covers_query(self, lake_and_query):
        lake, query = lake_and_query
        pipeline = Dialite(lake).fit()
        outcome = pipeline.discover(query, k=3)
        integrated = pipeline.integrate(outcome)
        # Every query tuple must be subsumed by some integrated fact once
        # mapped through the alignment -- FD never loses input facts.  We
        # check coverage via provenance: each query row's TID appears in
        # some output fact OR its content is subsumed by another fact.
        query_tids = {
            tid
            for tid, (table, _) in integrated.tid_sources.items()
            if table == "fuzz_query"
        }
        assert len(query_tids) == query.num_rows
        covered = set().union(*integrated.provenance) if integrated.provenance else set()
        for tid in query_tids:
            if tid in covered:
                continue
            # Subsumed away: its values must be dominated by some fact.
            source = next(
                w for w in integrated.input_tuples if tid in w.tids
            )
            assert any(subsumes(row, source.cells) for row in integrated.rows)

    @settings(max_examples=10, deadline=None)
    @given(random_lakes())
    def test_describe_runs_on_any_result(self, lake_and_query):
        lake, query = lake_and_query
        pipeline = Dialite(lake).fit()
        outcome = pipeline.discover(query, k=2)
        integrated = pipeline.integrate(outcome)
        described = pipeline.analyze(integrated, "describe")
        assert described["rows"] == integrated.num_rows
        assert 0.0 <= described["completeness"] <= 1.0
