"""Store round-trip fidelity, pinned over random tables.

The ISSUE 2 acceptance property: for arbitrary lakes,
``LakeStore.open(save(lake))`` yields identical ``column_arrays``
(null kinds included), equal :class:`ColumnStats` products, and
byte-identical sketch signatures -- and a warm discover run performs zero
raw-cell scans.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datalake import DataLake
from repro.store import LakeStore, SketchConfig
from repro.table import MISSING, PRODUCED, Table

# ----------------------------------------------------------------------
# Strategies: heterogeneous cells with both null kinds and unicode text
# ----------------------------------------------------------------------
cells = st.one_of(
    st.integers(-1_000_000, 1_000_000),
    st.sampled_from(["a", "b", "cc", "", "Zürich", "entity 7", "±", "x,y\n z"]),
    st.booleans(),
    st.sampled_from([0.5, 1.0, -2.0, 3.25e10, 1e-9]),
    st.just(MISSING),
    st.just(PRODUCED),
)


@st.composite
def tables(draw, name: str = "t"):
    num_cols = draw(st.integers(1, 4))
    num_rows = draw(st.integers(0, 8))
    columns = [f"c{i}" for i in range(num_cols)]
    rows = [tuple(draw(cells) for _ in range(num_cols)) for _ in range(num_rows)]
    return Table(columns, rows, name=name)


@st.composite
def lakes(draw):
    count = draw(st.integers(1, 3))
    return DataLake([draw(tables(name=f"t{i}")) for i in range(count)])


# ----------------------------------------------------------------------
# Properties
# ----------------------------------------------------------------------
@settings(max_examples=25, deadline=None)
@given(lakes())
def test_roundtrip_arrays_stats_and_sketches(tmp_path_factory, lake):
    store_dir = tmp_path_factory.mktemp("store") / "lake.store"
    store = LakeStore.create(store_dir)
    store.ingest(lake)

    warm = LakeStore.open(store_dir).lake()
    hasher = SketchConfig().hasher
    assert sorted(warm) == sorted(lake)
    for name, original in lake.items():
        stored = warm[name]
        # Cell-exact columnar round trip, null kinds included.
        assert stored.column_arrays == original.column_arrays
        for ours, theirs in zip(stored.column_arrays, original.column_arrays):
            for a, b in zip(ours, theirs):
                if a is MISSING or a is PRODUCED:
                    assert a is b
        for column in original.columns:
            restored = stored.stats.column(column)
            reference = original.stats.column(column)
            assert restored.dtype == reference.dtype
            assert restored.row_count == reference.row_count
            assert restored.null_count == reference.null_count
            assert restored.missing_count == reference.missing_count
            assert restored.distinct == reference.distinct
            assert restored.tokens == reference.tokens
            assert restored.numeric_fraction == reference.numeric_fraction
            assert restored.text_values() == reference.text_values()
            # Sketches restore byte-identically.
            assert (
                restored.minhash(hasher).to_bytes()
                == reference.minhash(hasher).to_bytes()
            )
            assert restored.hll(12).to_bytes() == reference.hll(12).to_bytes()
    # The whole verification above ran from hydrated snapshots: no scans.
    assert all(n == 0 for n in warm.stats.scan_counts().values())


@settings(max_examples=15, deadline=None)
@given(lakes())
def test_reingest_is_a_fixed_point(tmp_path_factory, lake):
    """Ingesting identical content twice changes nothing: no version bump,
    every table reported unchanged."""
    store_dir = tmp_path_factory.mktemp("store") / "lake.store"
    store = LakeStore.create(store_dir)
    first = store.ingest(lake)
    assert sorted(first.added) == sorted(lake)
    again = store.ingest(lake)
    assert not again.changed
    assert sorted(again.unchanged) == sorted(lake)
    assert again.lake_version == first.lake_version


@settings(max_examples=10, deadline=None)
@given(lakes(), st.sampled_from([("v1", "v2"), ("v2", "v1")]))
def test_cross_format_migration_preserves_everything(
    tmp_path_factory, lake, direction
):
    """ISSUE 6 acceptance property: ``migrate`` between segment formats
    (both directions) is invisible to every consumer -- cells and null
    kinds identical, stats products equal, sketches byte-identical, lake
    version untouched -- and the migrated store still serves with zero
    raw-cell scans."""
    source_fmt, target_fmt = direction
    store_dir = tmp_path_factory.mktemp("store") / "lake.store"
    store = LakeStore.create(store_dir, segment_format=source_fmt)
    store.ingest(lake)
    version_before = store.lake_version

    migrator = LakeStore.open(store_dir)
    migrated = migrator.migrate(segment_format=target_fmt)
    assert sorted(migrated) == sorted(lake)
    assert migrator.lake_version == version_before
    assert migrator.default_segment_format == target_fmt

    warm = LakeStore.open(store_dir).lake()
    hasher = SketchConfig().hasher
    assert sorted(warm) == sorted(lake)
    for name, original in lake.items():
        stored = warm[name]
        assert stored.column_arrays == original.column_arrays
        for ours, theirs in zip(stored.column_arrays, original.column_arrays):
            for a, b in zip(ours, theirs):
                if a is MISSING or a is PRODUCED:
                    assert a is b
        for column in original.columns:
            restored = stored.stats.column(column)
            reference = original.stats.column(column)
            assert restored.distinct == reference.distinct
            assert restored.tokens == reference.tokens
            assert restored.null_count == reference.null_count
            assert (
                restored.minhash(hasher).to_bytes()
                == reference.minhash(hasher).to_bytes()
            )
            assert restored.hll(12).to_bytes() == reference.hll(12).to_bytes()
    assert all(n == 0 for n in warm.stats.scan_counts().values())


def test_corrupted_v2_segment_raises_typed_error(tmp_path):
    """Truncation or header damage in a binary segment must surface as
    :class:`SegmentCorrupted`, never as garbage cells or a bare
    struct/unicode error."""
    from repro.store import SegmentCorrupted

    store_dir = tmp_path / "lake.store"
    store = LakeStore.create(store_dir, segment_format="v2")
    store.ingest(
        DataLake(
            [
                Table(
                    ["a", "b"],
                    [(1, "x"), (2.5, "y"), (MISSING, "Zürich")],
                    name="t0",
                )
            ]
        )
    )
    segment = next(store_dir.glob("segments/*.seg.bin"))
    pristine = segment.read_bytes()

    def load():
        import pytest

        with pytest.raises(SegmentCorrupted):
            LakeStore.open(store_dir, check_sketch=False).load_table("t0")

    for damage in (
        pristine[: len(pristine) // 2],  # truncated mid-body
        pristine[:10],  # shorter than the header
        b"NOPE" + pristine[4:],  # bad magic
        pristine[:-1],  # one byte short
        pristine + b"\x00\x00",  # trailing garbage
    ):
        segment.write_bytes(damage)
        load()

    # And the pristine bytes still load (the guard is not over-eager).
    segment.write_bytes(pristine)
    table = LakeStore.open(store_dir, check_sketch=False).load_table("t0")
    assert table.rows[2][1] == "Zürich"


@settings(max_examples=15, deadline=None)
@given(tables(name="q"), st.integers(0, 3))
def test_content_hash_is_content_equality(tmp_path_factory, table, salt):
    """Two tables hash equal iff their header + cells are identical."""
    from repro.store import table_content_hash

    clone = Table(table.columns, list(table.rows), name="other")
    assert table_content_hash(clone) == table_content_hash(table)
    perturbed = Table(
        table.columns,
        list(table.rows) + [tuple(salt for _ in table.columns)],
        name=table.name,
    )
    assert table_content_hash(perturbed) != table_content_hash(table)
