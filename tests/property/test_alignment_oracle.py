"""Property test: greedy constrained clustering vs the exhaustive optimum.

ALITE frames holistic matching as an optimization; the library uses the
standard greedy approximation.  On random small inputs the greedy solution
must respect the constraint, never beat the optimum (sanity of the oracle),
and stay within a constant factor of it; on the paper fixtures the two are
identical.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.alignment import (
    cluster_columns,
    cluster_columns_optimal,
    featurize_tables,
    partition_objective,
)
from repro.discovery.kb import seed_knowledge_base
from repro.table import Table

values = st.sampled_from(["Berlin", "Boston", "Germany", "Canada", "Pfizer", "63%"])


@st.composite
def small_column_sets(draw):
    num_tables = draw(st.integers(2, 3))
    tables = []
    for t in range(num_tables):
        num_columns = draw(st.integers(1, 3))
        num_rows = draw(st.integers(1, 3))
        columns = {}
        for c in range(num_columns):
            header = draw(st.sampled_from(["City", "Country", "Rate", "Name"]))
            key = f"{header}_{c}" if header in columns else header
            columns[key] = [draw(values) for _ in range(num_rows)]
        tables.append(Table.from_dict(columns, name=f"T{t}"))
    return featurize_tables(tables, kb=seed_knowledge_base())


def objective_of(columns, clusters):
    index_of = {column.ref: i for i, column in enumerate(columns)}
    as_indices = [[index_of[ref] for ref in cluster] for cluster in clusters]
    return partition_objective(columns, as_indices)


class TestGreedyVsOptimal:
    @settings(max_examples=20, deadline=None)
    @given(small_column_sets())
    def test_greedy_never_beats_optimum(self, columns):
        greedy = objective_of(columns, cluster_columns(columns))
        optimal = objective_of(columns, cluster_columns_optimal(columns))
        assert greedy <= optimal + 1e-9

    @settings(max_examples=20, deadline=None)
    @given(small_column_sets())
    def test_greedy_nonnegative_when_merging(self, columns):
        # Greedy only unions pairs scoring >= threshold, so an input with
        # no such pair yields all singletons: objective exactly 0, which is
        # also optimal.  (No constant-factor claim: hypothesis finds inputs
        # where transitively-pulled-in sub-threshold pairs drag greedy well
        # below the optimum -- a known property of greedy correlation
        # clustering, acceptable because realistic schemas behave like the
        # fixtures below.)
        from repro.alignment import column_pair_score

        any_positive = any(
            columns[i].ref.table != columns[j].ref.table
            and column_pair_score(columns[i], columns[j]) >= 0.30
            for i in range(len(columns))
            for j in range(i + 1, len(columns))
        )
        greedy = objective_of(columns, cluster_columns(columns))
        if not any_positive:
            assert greedy == pytest.approx(0.0, abs=1e-9)
            assert greedy == pytest.approx(
                objective_of(columns, cluster_columns_optimal(columns)), abs=1e-9
            )

    @settings(max_examples=20, deadline=None)
    @given(small_column_sets())
    def test_optimal_respects_constraint(self, columns):
        for cluster in cluster_columns_optimal(columns):
            tables = [ref.table for ref in cluster]
            assert len(tables) == len(set(tables))

    def test_identical_on_paper_fixtures(self, vaccine_tables, covid_tables):
        for tables in (vaccine_tables, covid_tables):
            columns = featurize_tables(tables, kb=seed_knowledge_base())
            assert cluster_columns(columns) == cluster_columns_optimal(columns)

    def test_oracle_refuses_large_inputs(self, covid_tables):
        columns = featurize_tables(covid_tables + [
            covid_tables[0].with_name("X"), covid_tables[1].with_name("Y"),
        ])
        with pytest.raises(ValueError, match="exponential"):
            cluster_columns_optimal(columns)
