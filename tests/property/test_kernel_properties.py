"""Property-based tests for the kernels: text similarity, MinHash, table ops."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sketch import MinHasher, containment_from_jaccard
from repro.table import MISSING, Table, ops
from repro.text import (
    containment,
    jaccard,
    jaro,
    jaro_winkler,
    levenshtein,
    name_similarity,
)

token_sets = st.sets(st.text(alphabet="abcdef", min_size=1, max_size=4), max_size=30)
short_text = st.text(alphabet="abcdef ", max_size=12)


class TestSetSimilarityProperties:
    @settings(max_examples=100, deadline=None)
    @given(token_sets, token_sets)
    def test_jaccard_bounds_and_symmetry(self, a, b):
        value = jaccard(a, b)
        assert 0.0 <= value <= 1.0
        assert value == jaccard(b, a)

    @settings(max_examples=100, deadline=None)
    @given(token_sets)
    def test_jaccard_identity(self, a):
        assert jaccard(a, a) == 1.0

    @settings(max_examples=100, deadline=None)
    @given(token_sets, token_sets)
    def test_containment_bounds(self, a, b):
        assert 0.0 <= containment(a, b) <= 1.0

    @settings(max_examples=100, deadline=None)
    @given(token_sets, token_sets)
    def test_subset_containment_is_one(self, a, b):
        if a and a <= b:
            assert containment(a, b) == 1.0


class TestStringDistanceProperties:
    @settings(max_examples=100, deadline=None)
    @given(short_text, short_text)
    def test_levenshtein_symmetry_and_identity(self, a, b):
        assert levenshtein(a, b) == levenshtein(b, a)
        assert levenshtein(a, a) == 0

    @settings(max_examples=60, deadline=None)
    @given(short_text, short_text, short_text)
    def test_levenshtein_triangle_inequality(self, a, b, c):
        assert levenshtein(a, c) <= levenshtein(a, b) + levenshtein(b, c)

    @settings(max_examples=100, deadline=None)
    @given(short_text, short_text)
    def test_jaro_bounds(self, a, b):
        assert 0.0 <= jaro(a, b) <= 1.0
        assert 0.0 <= jaro_winkler(a, b) <= 1.0

    @settings(max_examples=100, deadline=None)
    @given(short_text, short_text)
    def test_name_similarity_bounds_and_symmetry(self, a, b):
        value = name_similarity(a, b)
        assert 0.0 <= value <= 1.0
        assert value == name_similarity(b, a)


class TestMinHashProperties:
    hasher = MinHasher(128, seed=9)

    @settings(max_examples=40, deadline=None)
    @given(token_sets, token_sets)
    def test_estimate_bounded(self, a, b):
        if not a or not b:
            return
        estimate = self.hasher.signature(a).jaccard(self.hasher.signature(b))
        assert 0.0 <= estimate <= 1.0

    @settings(max_examples=40, deadline=None)
    @given(token_sets)
    def test_self_similarity_one(self, a):
        if not a:
            return
        sig = self.hasher.signature(a)
        assert sig.jaccard(self.hasher.signature(set(a))) == 1.0

    @settings(max_examples=60, deadline=None)
    @given(
        st.floats(min_value=0.0, max_value=1.0),
        st.integers(1, 100),
        st.integers(0, 100),
    )
    def test_containment_conversion_bounded(self, j, query, candidate):
        assert 0.0 <= containment_from_jaccard(j, query, candidate) <= 1.0


cells = st.one_of(
    st.integers(-5, 5),
    st.sampled_from(["p", "q"]),
    st.just(MISSING),
)


def small_tables(columns=("k", "v")):
    return st.lists(
        st.tuples(*[cells for _ in columns]), min_size=0, max_size=6
    ).map(lambda rows: Table(list(columns), rows, name="t"))


class TestTableOpsProperties:
    @settings(max_examples=60, deadline=None)
    @given(small_tables())
    def test_distinct_idempotent(self, table):
        once = ops.distinct(table)
        assert ops.distinct(once).equals(once)

    @settings(max_examples=60, deadline=None)
    @given(small_tables())
    def test_project_preserves_height(self, table):
        assert ops.project(table, ["v"]).num_rows == table.num_rows

    @settings(max_examples=40, deadline=None)
    @given(small_tables(), small_tables(columns=("k", "w")))
    def test_inner_join_subset_of_left_outer(self, left, right):
        right = right.with_name("r")
        inner = ops.inner_join(left, right)
        louter = ops.left_outer_join(left, right)
        assert inner.num_rows <= louter.num_rows

    @settings(max_examples=40, deadline=None)
    @given(small_tables(), small_tables(columns=("k", "w")))
    def test_full_outer_covers_both_sides(self, left, right):
        right = right.with_name("r")
        full = ops.full_outer_join(left, right)
        assert full.num_rows >= max(
            ops.left_outer_join(left, right).num_rows,
            ops.inner_join(left, right).num_rows,
        )

    @settings(max_examples=60, deadline=None)
    @given(small_tables())
    def test_outer_union_with_self_doubles_rows(self, table):
        doubled = ops.outer_union([table, table.with_name("copy")])
        assert doubled.num_rows == 2 * table.num_rows
        assert doubled.columns == table.columns
