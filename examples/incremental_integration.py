"""Incremental integration and offline index persistence.

Two deployment patterns the demo implies but never spells out:

1. a user keeps discovering tables and folding them into the running
   integration result (``AliteFD.integrate_incremental`` -- provably equal
   to re-integrating from scratch, warm-started by the previous result);
2. discovery indexes are built offline once and reloaded per session
   (``LakeIndex.save`` / ``load``), which is how Sec. 3.1's "indexes are
   already available for the user" works operationally.

Run:  python examples/incremental_integration.py
"""

import tempfile
from pathlib import Path

from repro.analysis import fact_coverage
from repro.datalake import DataLake, LakeIndex, SyntheticLakeBuilder
from repro.discovery import JosieJoinSearch, LSHEnsembleJoinSearch, SantosUnionSearch
from repro.integration import AliteFD, normalized_key

# --- a lake, indexed offline and persisted ----------------------------------
synth = SyntheticLakeBuilder(seed=13).build(num_unionable=3, num_joinable=3, num_distractors=5)
index = LakeIndex(
    synth.lake, [SantosUnionSearch(), LSHEnsembleJoinSearch(), JosieJoinSearch()]
).build()

index_path = Path(tempfile.mkdtemp(prefix="dialite_")) / "lake.idx"
index.save(index_path)
print(f"Offline index saved to {index_path} "
      f"({index_path.stat().st_size / 1024:.0f} KiB)")

# --- a later session: reload, no rebuild -------------------------------------
session_index = LakeIndex.load(index_path)
query = synth.query.with_name("Q")
ranked = session_index.search_merged(query, k=4, query_column="City")
print(f"\nReloaded index answers immediately: "
      f"{[r.table_name for r in ranked[:6]]}")

# --- fold discovered tables in one at a time ---------------------------------
fd = AliteFD()
result = fd.integrate([query])
print(f"\nIncremental integration, starting from the query "
      f"({result.num_rows} facts):")
for discovery in ranked[:4]:
    table = synth.lake[discovery.table_name]
    result = fd.integrate_incremental(result, table)
    coverage = fact_coverage(result.provenance)
    print(f"  + {table.name:<10} -> {result.num_rows:>3} facts, "
          f"{result.num_columns} attrs, "
          f"{coverage['merged_tuples']} merged")

# --- sanity: equal to batch integration --------------------------------------
batch = fd.integrate([query] + [synth.lake[r.table_name] for r in ranked[:4]])
same = sorted(normalized_key(r) for r in result.rows) == sorted(
    normalized_key(r) for r in batch.rows
)
print(f"\nIncremental result equals batch FD: {same}")
