"""Discovery at lake scale: indexing, querying and measuring quality.

Builds a larger synthetic open-data lake (with ground truth), persists it to
CSV like a real lake directory, builds all three discovery indexes offline
(the demo's preprocessing step), and evaluates precision@k / recall@k of
each discoverer against the known ground truth -- experiment E10's workload
in example form.

Run:  python examples/datalake_discovery.py
"""

import tempfile
from pathlib import Path

from repro import Dialite, DataLake
from repro.datalake import SyntheticLakeBuilder

# --- build and persist a lake ------------------------------------------------
synth = SyntheticLakeBuilder(
    seed=42, rows_per_table=14, null_rate=0.08, header_synonym_rate=0.4
).build(num_unionable=6, num_joinable=6, num_distractors=14)

lake_dir = Path(tempfile.mkdtemp(prefix="dialite_lake_"))
synth.lake.save_to(lake_dir)
print(f"Synthetic lake: {len(synth.lake)} tables written to {lake_dir}")
print(f"  ground truth: {len(synth.truth.unionable)} unionable, "
      f"{len(synth.truth.joinable)} joinable, "
      f"{len(synth.truth.distractors)} distractors")

# --- reload from disk and build indexes offline -------------------------------
lake = DataLake.from_dir(lake_dir)
pipeline = Dialite(lake).fit()
print("\nOffline index build times:")
for name, seconds in pipeline.index.build_seconds.items():
    print(f"  {name:<14} {seconds * 1000:7.1f} ms")

# --- query and evaluate -------------------------------------------------------
query = synth.query.with_name("query")
K = 6


def precision_recall(found: list[str], relevant: frozenset[str], k: int):
    top = found[:k]
    hits = sum(1 for name in top if name in relevant)
    precision = hits / max(1, len(top))
    recall = hits / max(1, len(relevant))
    return precision, recall


print(f"\nPer-discoverer quality at k={K} (query column 'City'):")
per = pipeline.index.search(query, k=K, query_column="City")
for name, results in per.items():
    found = [r.table_name for r in results]
    if name == "santos":
        relevant = synth.truth.unionable
        target = "unionable"
    else:
        relevant = synth.truth.joinable
        target = "joinable"
    precision, recall = precision_recall(found, relevant, K)
    print(f"  {name:<14} P@{K}={precision:.2f}  R@{K}={recall:.2f}  (vs {target} truth)")

merged = pipeline.index.search_merged(query, k=K, query_column="City")
precision, recall = precision_recall(
    [r.table_name for r in merged], synth.truth.relevant(), 2 * K
)
print(f"  {'merged union':<14} P={precision:.2f}  R={recall:.2f}  (vs all relevant)")

# --- end to end ----------------------------------------------------------------
outcome = pipeline.discover(query, k=K, query_column="City")
integrated = pipeline.integrate(outcome)
print(f"\nIntegrated {len(outcome.integration_set)} tables -> "
      f"{integrated.num_rows} facts x {integrated.num_columns} attributes "
      f"(completeness {integrated.completeness():.2f})")
