"""Serving demo: one warm lake, concurrent clients, a live ingest.

Builds a small persistent lake store, puts it behind the concurrent
serving layer (`repro.service`), and drives it end to end over TCP:

1. two identical discover calls -- the second is served from the
   versioned result cache;
2. a burst of concurrent clients -- coalesced by discover micro-batching;
3. a live ingest through the service -- the lake version bumps, the
   service hot-swaps to a warm new generation, and the same query now
   returns the new table (never a stale cached answer);
4. the service stats surface: hits/misses, batches, reloads, latency.

Run:  python examples/serve_demo.py
"""

import tempfile
import threading
from pathlib import Path

from repro import DataLake, Dialite, LakeServer, LakeService, ServiceClient, Table
from repro.datalake.indexer import LakeIndex
from repro.store import LakeStore

# --- a small lake, persisted as a store (the offline step) ---------------
lake = DataLake(
    [
        Table(
            ["Country", "City", "Vaccination Rate"],
            [("Canada", "Toronto", "83%"), ("USA", "Boston", "62%")],
            name="vaccinations",
        ),
        Table(
            ["City", "Total Cases", "Death Rate"],
            [("Berlin", "1.4M", 147), ("Boston", "263k", 335)],
            name="covid_stats",
        ),
        Table(
            ["First Name", "Last Name", "Company"],
            [("Alice", "Smith", "Acme")],
            name="employees",  # unrelated; discovery should skip it
        ),
    ]
)
store_dir = Path(tempfile.mkdtemp(prefix="serve_demo_")) / "lake.store"
store = LakeStore.create(store_dir)
store.ingest(lake)
roster = Dialite(DataLake()).discoverers.components()
LakeIndex.from_store(store, roster, lake=store.lake()).save_to_store(store)
print(f"store built at {store_dir} (lake v{store.lake_version})")

# --- the serving session, behind a TCP front end -------------------------
service = LakeService(store=store_dir, workers=4, batch_window=0.01)
server = LakeServer(service, port=0)  # 0 = pick a free port
server.start()
host, port = server.address
client = ServiceClient((host, port))
print(f"serving on {host}:{port}, lake v{client.version()}\n")

query = Table(
    ["Country", "City", "Vaccination Rate"],
    [("Germany", "Berlin", "63%"), ("Spain", "Barcelona", "82%")],
    name="my_query",
)

# 1. cache: same content twice -> second response is a cache hit
first = client.discover(query, k=5, column="City")
again = client.discover(query, k=5, column="City")
print("discovered:", [r["table"] for r in first["payload"]["results"]])
print(f"first cached={first['cached']}, second cached={again['cached']}\n")

# 2. concurrent burst: compatible requests coalesce into one batch
# (distinct content -- identical content would just hit the cache)
burst = [
    Table(
        query.columns,
        list(query.rows) + [("France", "Paris", f"{70 + i}%")],
        name=f"caller_{i}",
    )
    for i in range(5)
]
threads = [
    threading.Thread(target=client.discover, args=(q,), kwargs={"k": 5, "column": "City"})
    for q in burst
]
for thread in threads:
    thread.start()
for thread in threads:
    thread.join()

# 3. live ingest: version bumps, the service reloads, answers change
report = client.ingest(
    [Table(["City", "Mayor"], [("Berlin", "K. Giffey"), ("Boston", "M. Wu")],
           name="mayors")]
)
print(f"ingested {report['added']} -> lake v{report['lake_version']}")
fresh = client.discover(query, k=5, column="City")
print(
    f"re-query at v{fresh['lake_version']} (cached={fresh['cached']}): "
    f"{[r['table'] for r in fresh['payload']['results']]}\n"
)
assert "mayors" in [r["table"] for r in fresh["payload"]["results"]]
assert fresh["lake_version"] > first["lake_version"]

# 4. the metrics surface
stats = client.stats()
print(
    f"stats: {stats['requests']} requests, {stats['hits']} cache hits, "
    f"{stats['batches']} batches ({stats['batched_requests']} batched requests), "
    f"{stats['reloads']} reloads"
)
discover_latency = stats["latency"].get("discover", {})
print(
    f"discover latency: p50 {discover_latency.get('p50_ms')}ms, "
    f"p95 {discover_latency.get('p95_ms')}ms"
)

client.shutdown()
print("\nserver shut down cleanly")
