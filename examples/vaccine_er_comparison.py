"""FD vs outer join, judged by a downstream task (Figures 7-8, Example 5).

The sharpest demonstration in the paper: integrate the same three vaccine
tables with (a) the standard outer join and (b) ALITE's Full Disjunction,
then run entity resolution over both results.

Outer join leaves JnJ's approver unknowable and its fragments unresolvable;
FD connects t13 and t15 into the fact that the J&J vaccine is FDA-approved,
and ER collapses the output to two clean entities.

Run:  python examples/vaccine_er_comparison.py
"""

from repro.analysis import compare_integrations
from repro.datalake.fixtures import vaccine_integration_set
from repro.er import EntityResolver
from repro.integration import AliteFD, OuterJoinIntegrator, order_sensitivity

tables = vaccine_integration_set()  # T4, T5, T6 -- already aligned by header
print("Input tables:")
for table in tables:
    print(f"\n{table.name}:")
    print(table.to_pretty())

# --- integrate both ways -----------------------------------------------------
outer = OuterJoinIntegrator().integrate(tables, name="outer_join_result")
fd = AliteFD().integrate(tables, name="fd_result")

print("\nFigure 8(a) -- outer join (T4 ⟗ T5 ⟗ T6):")
print(outer.to_display_table().to_pretty())
print("\nFigure 8(b) -- Full Disjunction (ALITE):")
print(fd.to_display_table().to_pretty())

print("\nSide-by-side quality report:")
print(compare_integrations([fd, outer]).to_pretty())

# --- outer join is order-sensitive; FD is not --------------------------------
row_counts = {}
for order, result in order_sensitivity(tables):
    row_counts["⟗".join(order)] = result.num_rows
print("\nOuter-join tuple counts per fold order (non-associativity):")
for order, count in row_counts.items():
    print(f"  {order}: {count} tuples")

# --- downstream entity resolution (Figures 8(c) / 8(d)) ----------------------
resolver = EntityResolver()
er_outer = resolver.resolve_table(outer)
er_fd = resolver.resolve_table(fd)

print(f"\nER over outer join -> {er_outer.num_entities} entities (paper: 4):")
print(er_outer.entities.to_pretty())
print(f"\nER over FD -> {er_fd.num_entities} entities (paper: 2):")
print(er_fd.entities.to_pretty())

print(
    "\nTakeaway: only the FD result contains a tuple stating the J&J vaccine "
    "is FDA-approved (f13 = {t13, t15}), and only over the FD result can ER "
    "resolve the J&J/JnJ surface forms into one entity."
)
