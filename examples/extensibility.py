"""Extending DIALITE with your own components (Sec. 3.2, Figures 4-6).

Three extension points, demonstrated end to end:

1. a user-defined discovery algorithm from a bare similarity function
   (Figure 4's inner-join similarity);
2. a query table generated from a free-text prompt (Figure 5's GPT-3
   feature, reproduced with a deterministic template generator);
3. a user-defined integration operator (Figure 6's outer join) compared
   against the default ALITE operator.

Run:  python examples/extensibility.py
"""

from repro import Dialite
from repro.analysis import AnalysisApp
from repro.datalake import SyntheticLakeBuilder
from repro.table import Table, ops

# A synthetic open-data lake with known structure (see repro.datalake.synth).
synth = SyntheticLakeBuilder(seed=21).build(
    num_unionable=3, num_joinable=3, num_distractors=5
)
pipeline = Dialite(synth.lake).fit()

# --- Figure 4: add a discovery algorithm from a similarity function ---------
def inner_join_similarity(df1: Table, df2: Table) -> float:
    """Fraction of query rows that survive a natural inner join with df2."""
    shared = [c for c in df1.columns if df2.has_column(c)]
    if not shared or df1.num_rows == 0:
        return 0.0
    return ops.inner_join(df1, df2, on=shared).num_rows / df1.num_rows


pipeline.add_discoverer(inner_join_similarity, name="inner_join_search")
print(f"Discoverers now registered: {pipeline.discoverers.names}")

# --- Figure 5: generate the query table from a prompt ------------------------
query = pipeline.generate_query(
    "generate a query table about COVID-19 cases that has 5 columns and 5 rows",
    seed=4,
)
print("\nGenerated query table (the GPT-3 substitute):")
print(query.to_pretty())

outcome = pipeline.discover(query, k=4, query_column="City")
print("\nDiscovery results (all algorithms, union merged):")
print(outcome.summary().to_pretty())

# --- Figure 6: plug in outer join as an alternative integration operator ----
fd = pipeline.integrate(outcome, name="via_alite")
outer = pipeline.integrate(outcome, integrator="outer_join", name="via_outer_join")
print(
    f"\nALITE FD: {fd.num_rows} tuples, completeness "
    f"{fd.completeness():.2f} | outer join: {outer.num_rows} tuples, "
    f"completeness {outer.completeness():.2f}"
)

# --- bonus: a custom analysis app --------------------------------------------
class MergeRateApp(AnalysisApp):
    """What fraction of integrated facts actually connect >= 2 sources?"""

    name = "merge_rate"

    def run(self, table, **options):
        provenance = getattr(table, "provenance", ())
        if not provenance:
            return 0.0
        return sum(1 for tids in provenance if len(tids) >= 2) / len(provenance)


pipeline.add_app(MergeRateApp())
print(f"\nFD merge rate:        {pipeline.analyze(fd, 'merge_rate'):.2%}")
print(f"Outer-join merge rate: {pipeline.analyze(outer, 'merge_rate'):.2%}")
