"""The paper's running COVID example, end to end (Figures 2-3, Examples 1-3).

Reproduces: discovery of T2 (unionable) and T3 (joinable) for query T1,
ALITE's alignment + Full Disjunction producing the 7 facts of Figure 3, and
the Example 3 analysis -- Boston lowest / Toronto highest vaccination rate,
and the correlations 0.16 (vaccination vs death rate) and 0.9 (cases vs
vaccination) the authors call "somewhat surprising".

Run:  python examples/covid_analysis.py
"""

from repro import Dialite, DataLake
from repro.analysis import column_correlation, extreme, null_profile
from repro.datalake.fixtures import (
    covid_joinable_table,
    covid_query_table,
    covid_unionable_table,
)

query = covid_query_table()          # T1
lake = DataLake([covid_unionable_table(), covid_joinable_table()])  # T2, T3

pipeline = Dialite(lake).fit()

# --- Example 1: discovery ----------------------------------------------------
outcome = pipeline.discover(query, k=2, query_column="City")
print("Example 1 -- discovery with intent column 'City':")
for name, results in outcome.per_discoverer.items():
    found = ", ".join(f"{r.table_name} ({r.score:.2f})" for r in results) or "-"
    print(f"  {name:<14} -> {found}")
print(f"  integration set: {[t.name for t in outcome.integration_set]}")

# --- Example 2: align & integrate (Figure 3) --------------------------------
alignment = pipeline.align(outcome.integration_set)
print("\nExample 2 -- integration IDs from holistic schema matching:")
for cluster in alignment.clusters:
    if len(cluster) > 1:
        members = ", ".join(map(str, cluster))
        print(f"  [{alignment.assignments[cluster[0]]}] <- {members}")

integrated = pipeline.integrate(outcome)
print("\nFD(T1, T2, T3) -- compare with the paper's Figure 3:")
print(integrated.to_display_table().to_pretty())

profile = null_profile(integrated)
print(f"\nNull accounting: {profile.missing} missing (±), {profile.produced} produced (⊥)")

# --- Example 3: analysis ------------------------------------------------------
lowest = extreme(integrated, "Vaccination Rate", "City", "min")
highest = extreme(integrated, "Vaccination Rate", "City", "max")
print(f"\nExample 3 -- lowest vaccination: {lowest[0]} ({lowest[1]:g}%), "
      f"highest: {highest[0]} ({highest[1]:g}%)")

vacc_death, n1 = column_correlation(integrated, "Vaccination Rate", "Death Rate")
cases_vacc, n2 = column_correlation(integrated, "Total Cases", "Vaccination Rate")
print(f"corr(vaccination, death rate) = {vacc_death:.2f}  (paper: 0.16, n={n1})")
print(f"corr(cases, vaccination)      = {cases_vacc:.2f}  (paper: 0.9, n={n2})")
print("\nInterpretation (paper): cities with more cases and deaths push harder "
      "on vaccination programs.")
