"""Quickstart: the DIALITE pipeline in ~40 lines.

Builds a tiny in-memory data lake, discovers tables related to a query,
integrates them with ALITE's Full Disjunction, and runs an analysis --
the three stages of the paper's Figure 1.

Run:  python examples/quickstart.py
"""

from repro import Dialite, DataLake, Table

# --- a query table: COVID vaccination rates by city (paper's T1) ---------
query = Table(
    ["Country", "City", "Vaccination Rate"],
    [
        ("Germany", "Berlin", "63%"),
        ("England", "Manchester", "78%"),
        ("Spain", "Barcelona", "82%"),
    ],
    name="my_query",
)

# --- a small data lake ----------------------------------------------------
lake = DataLake(
    [
        Table(
            ["Country", "City", "Vaccination Rate"],
            [("Canada", "Toronto", "83%"), ("USA", "Boston", "62%")],
            name="vaccinations_more",
        ),
        Table(
            ["City", "Total Cases", "Death Rate"],
            [("Berlin", "1.4M", 147), ("Boston", "263k", 335), ("New Delhi", "2M", 158)],
            name="covid_stats",
        ),
        Table(
            ["First Name", "Last Name", "Company"],
            [("Alice", "Smith", "Acme"), ("Bob", "Chen", "Globex")],
            name="employees",  # an unrelated table the search should skip
        ),
    ]
)

# --- stage 1: discover ------------------------------------------------------
pipeline = Dialite(lake).fit()  # builds the SANTOS / LSH Ensemble / JOSIE indexes
outcome = pipeline.discover(query, k=3, query_column="City")
print("Discovered tables:")
print(outcome.summary().to_pretty())

# --- stage 2: align & integrate --------------------------------------------
integrated = pipeline.integrate(outcome)
print("\nIntegrated table (OID/TIDs show tuple provenance; ± input null, ⊥ produced):")
print(integrated.to_display_table().to_pretty())

# --- stage 3: analyze -------------------------------------------------------
stats = pipeline.analyze(
    integrated, "aggregation", value_column="Vaccination Rate", label_column="City"
)
print(f"\nLowest vaccination rate:  {stats['lowest'][0]} ({stats['lowest'][1]:g}%)")
print(f"Highest vaccination rate: {stats['highest'][0]} ({stats['highest'][1]:g}%)")
