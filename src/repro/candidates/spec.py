"""The retrieval contract between discoverers and the candidate engine.

Every discoverer declares a :class:`CandidateSpec` -- *which* lake-wide
signals can surface its candidates (token overlap, normalized-value
overlap, MinHash sketch containment, published semantic labels, or an
honest "exhaustive": nothing sublinear is sound for this scoring) and
*how many* candidates it needs (budget cap, exhaustive fallback floor).
The engine answers with a :class:`CandidateSet`: the tables the scoring
phase is allowed to touch, plus per-column evidence the scorer may reuse
so retrieval work is never repeated.

Budget semantics
----------------
``budget`` caps how many candidate *tables* reach the scoring phase
(ranked by retrieval evidence, name-tiebroken); ``None`` means unbudgeted
-- every retrieved candidate is scored, which is what keeps the
channel-soundness guarantee ("retrieval is a superset of every table the
scorer could rank") an *identical top-k* guarantee.  A budget is an
explicit recall trade-off; the engine-wide ``default_budget`` (the CLI's
``--candidate-budget``) applies to any spec that doesn't pin its own.

``min_candidates`` is the exhaustive-fallback floor: when retrieval
surfaces fewer tables, the scorer gets the whole lake instead (evidence
retained).  ``min_candidates_is_k`` ties the floor to the query's ``k``
-- TUS's "type-only matches still need consideration" rule.  The floor
is judged on what retrieval *surfaced*, before any budget: a budget
below the floor caps scoring at the budget rather than snapping back to
a full-lake scan (budget and fallback never combine).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator

__all__ = ["CandidateSpec", "CandidateSet", "RetrievalReport", "CHANNELS"]

#: The retrieval channels the engine understands.  ``labels`` and
#: ``sketch`` need query-side state only the discoverer can produce
#: (annotations, signatures + thresholds), so discoverers using them
#: override ``Discoverer._candidates``; ``tokens`` / ``values`` /
#: ``exhaustive`` are served generically from the query's cached stats.
CHANNELS = ("tokens", "values", "sketch", "labels", "exhaustive")


@dataclass(frozen=True)
class CandidateSpec:
    """One discoverer's declared retrieval contract."""

    channels: tuple[str, ...] = ("exhaustive",)
    #: Probe only the user's intent/join column when one is given (JOSIE,
    #: LSH Ensemble); ``False`` probes every query column regardless (TUS).
    intent_only: bool = True
    #: Exhaustive-fallback floor: fewer retrieved tables than this and the
    #: scorer receives the whole lake.
    min_candidates: int = 0
    #: Tie the fallback floor to the query's ``k`` instead.
    min_candidates_is_k: bool = False
    #: Cap on candidate tables handed to scoring (None = unbudgeted; the
    #: engine-wide default_budget fills in when unset).
    budget: int | None = None
    #: Human-readable soundness note (shown by ``discover --explain``).
    note: str = ""

    def __post_init__(self) -> None:
        unknown = [c for c in self.channels if c not in CHANNELS]
        if unknown:
            raise ValueError(f"unknown candidate channels {unknown}; known: {CHANNELS}")
        if not self.channels:
            raise ValueError("a CandidateSpec needs at least one channel")
        if self.min_candidates < 0:
            raise ValueError("min_candidates must be >= 0")
        if self.budget is not None and self.budget <= 0:
            raise ValueError("budget must be positive (or None for unbudgeted)")

    @property
    def exhaustive(self) -> bool:
        return "exhaustive" in self.channels

    def floor(self, k: int) -> int:
        """The effective exhaustive-fallback floor for a top-*k* query."""
        return k if self.min_candidates_is_k else self.min_candidates


@dataclass(frozen=True)
class RetrievalReport:
    """What one retrieval did -- the ``discover --explain`` record."""

    discoverer: str
    channels: tuple[str, ...]
    probes: int            # channel probes executed (columns x channels)
    retrieved: int         # distinct tables with retrieval evidence
    scored: int            # tables handed to the scoring phase
    lake_size: int
    fallback: bool = False
    truncated: bool = False
    exhaustive: bool = False

    def to_json(self) -> dict[str, Any]:
        return {
            "discoverer": self.discoverer,
            "channels": list(self.channels),
            "probes": self.probes,
            "retrieved": self.retrieved,
            "scored": self.scored,
            "lake_size": self.lake_size,
            "fallback": self.fallback,
            "truncated": self.truncated,
            "exhaustive": self.exhaustive,
        }

    def summary(self) -> str:
        shape = "exhaustive" if self.exhaustive else "+".join(self.channels)
        extra = ""
        if self.fallback:
            extra = ", exhaustive fallback"
        elif self.truncated:
            extra = ", budget-truncated"
        return (
            f"{shape}: scored {self.scored}/{self.lake_size} tables "
            f"({self.retrieved} retrieved, {self.probes} probes{extra})"
        )


@dataclass
class CandidateSet:
    """The retrieval phase's answer: tables to score, evidence to reuse.

    ``evidence`` maps a probe label (``"tokens:City"``) to per-column-key
    match strengths (key ids resolve through the engine's column
    registry).  ``evidence is None`` means *no retrieval ran at all* (the
    engine was forced exhaustive): scorers that normally consume evidence
    must recompute it from the shared stats -- that recompute path is the
    full-scan baseline the equivalence tests and benchmarks compare
    against.  ``context`` carries retrieval-phase scratch (a query
    annotation, a join-key map) to the scoring phase so nothing is
    derived twice per query.
    """

    tables: tuple[str, ...]
    evidence: dict[str, dict[int, float]] | None
    fallback: bool = False
    truncated: bool = False
    report: RetrievalReport | None = None
    context: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self._table_set = frozenset(self.tables)

    def __contains__(self, table: object) -> bool:
        return table in self._table_set

    def __iter__(self) -> Iterator[str]:
        return iter(self.tables)

    def __len__(self) -> int:
        return len(self.tables)

    @property
    def table_set(self) -> frozenset[str]:
        return self._table_set

    def evidence_for(self, label: str) -> dict[int, float]:
        """Evidence of one probe (empty when the probe found nothing)."""
        if self.evidence is None:
            raise KeyError(
                "candidate set carries no retrieval evidence (exhaustive "
                "scan); scorers must recompute from shared stats"
            )
        return self.evidence.get(label, {})

    def __repr__(self) -> str:
        mode = "exhaustive" if self.evidence is None else f"{len(self.tables)} tables"
        return f"CandidateSet({mode}, fallback={self.fallback})"
