"""The lake-wide candidate-generation engine.

One :class:`CandidateEngine` is shared by every discoverer over a lake
(:meth:`LakeIndex.build <repro.datalake.indexer.LakeIndex.build>` creates
and threads it); it owns the sublinear retrieval structures the query
path runs on:

* an **inverted token posting index** (token -> columns containing it,
  with document frequencies) built once from the shared column-stats
  cache -- JOSIE's retrieval, and the generic ``tokens`` channel;
* a **normalized-value posting index** over the columns' text values --
  COCOA's join-key index and TUS's value-overlap pruning, unified;
* a **MinHash LSH sketch prefilter** (banded ensembles memoized per
  parameter set, reusing :mod:`repro.sketch`) with a cardinality gate --
  LSH Ensemble's retrieval;
* **label postings** namespaces that semantic discoverers publish into
  (SANTOS's type / relationship maps), so even annotation-driven
  retrieval runs through one accounted structure.

Channels build lazily from :class:`~repro.datalake.stats.LakeStats` --
derived products only, never raw cells -- and the whole structure
persists through :meth:`repro.store.LakeStore.save_engine` as a
``postings/`` artifact pinned to the lake version, so a warm process
serves sublinear retrieval with **zero** posting-index rebuild
(:attr:`build_count` stays 0, the tested observable).

``force_exhaustive`` disables retrieval engine-wide: every discoverer
scores the entire lake through its fallback path.  That is the
pre-refactor full-scan baseline the equivalence property tests and
``benchmarks/bench_candidates.py`` compare against.

Concurrent reads (the serving layer's contract)
-----------------------------------------------
One engine is shared by every worker thread of a :mod:`repro.service`
session, so the query path must be safe under concurrent *reads* after a
warm build.  The audit, structure by structure:

* **Lazy channel construction** is the one structural race: two threads
  racing ``token_postings`` / ``value_postings`` / ``ensemble_for`` would
  both build (double work, and ``build_count`` would over-count -- the
  tested warm-start observable).  A build lock serializes construction;
  fully-built structures are published by a single attribute store, after
  which reads are lock-free.
* **Posting probes / registry reads / sketch queries** are pure reads of
  immutable-after-build structures -- safe.
* **Accounting** (``_reports`` / ``_query_counts``) is advisory,
  last-write-wins: single dict stores under the GIL, never structurally
  torn.  Concurrent explains may interleave reports of different queries;
  the serving layer therefore treats retrieval accounting as diagnostics
  and never caches or compares it.
* **Shared column stats** memoize idempotently (two racing threads compute
  equal products; one assignment wins) -- duplicated effort at worst, and
  none at all on the hydrated snapshots a warm service actually runs on.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Any, Hashable, Iterable, Iterator, Mapping

from ..obs import metrics, trace
from ..sketch.ensemble import LSHEnsemble
from ..sketch.minhash import MinHasher, MinHashSignature
from .postings import ColumnRegistry, PostingIndex
from .spec import CandidateSet, CandidateSpec, RetrievalReport

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..datalake.stats import LakeStats
    from ..table.stats import ColumnStats
    from ..table.table import Table

__all__ = ["CandidateEngine", "EngineError"]


class EngineError(RuntimeError):
    """Misuse of the candidate engine (unknown channel, bad probe)."""


class CandidateEngine:
    """Shared retrieval structures + accounting for one lake."""

    def __init__(
        self,
        lake: Mapping[str, "Table"],
        stats: "LakeStats | None" = None,
    ):
        # Deferred import: repro.datalake imports the indexer, which
        # imports the discovery base, which imports this package.
        from ..datalake.stats import LakeStats

        self._lake = lake
        if stats is None:
            own = getattr(lake, "stats", None)
            stats = own if isinstance(own, LakeStats) else LakeStats(lake)
        self._stats = stats
        self._registry: ColumnRegistry | None = None
        self._token_postings: PostingIndex | None = None
        self._value_postings: PostingIndex | None = None
        self._ensembles: dict[tuple[int, int, int, int], LSHEnsemble] = {}
        self._hashers: dict[tuple[int, int], MinHasher] = {}
        self._labels: dict[str, Mapping[str, Iterable[str]]] = {}
        #: Query-time cap on candidate tables for specs without their own
        #: budget (the CLI's ``--candidate-budget``).  None = unbudgeted.
        self.default_budget: int | None = None
        #: Engine-wide kill switch: answer every retrieval with the whole
        #: lake (the full-scan baseline for benchmarks / equivalence tests).
        self.force_exhaustive = False
        #: Scatter-gather mode (repro.shard): report retrieval evidence
        #: without applying the fallback floor -- a shard cannot judge the
        #: floor against its local retrieved count; the reducer owns that
        #: decision with the global count.  The per-shard budget cap still
        #: applies (the global top-budget's members within a shard are a
        #: prefix of the shard's own strength ranking, so a per-shard cap
        #: at the same budget never drops a globally-kept table).
        self.defer_policy = False
        #: True when the posting structures were hydrated from a store
        #: artifact instead of built from stats.
        self.loaded_from_store = False
        #: How many channel structures were *built* from column stats in
        #: this process -- a warm start from a persisted artifact keeps
        #: this at 0 for the hydrated channels.
        self.build_count = 0
        self._reports: dict[str, RetrievalReport] = {}
        self._query_counts: dict[str, int] = {}
        # Serializes lazy channel construction under concurrent queries
        # (see the module docstring's audit); reads of built structures
        # never take it.  Recreated on unpickle (locks don't pickle).
        self._build_lock = threading.RLock()

    # ------------------------------------------------------------------
    # Lazy channel construction (derived stats only, never raw cells)
    # ------------------------------------------------------------------
    @property
    def registry(self) -> ColumnRegistry:
        if self._registry is None:
            with self._build_lock:
                if self._registry is None:
                    self._build_token_channel()
        assert self._registry is not None
        return self._registry

    @property
    def token_postings(self) -> PostingIndex:
        if self._token_postings is None:
            with self._build_lock:
                if self._token_postings is None:
                    self._build_token_channel()
        assert self._token_postings is not None
        return self._token_postings

    @property
    def value_postings(self) -> PostingIndex:
        if self._value_postings is None:
            with self._build_lock:
                if self._value_postings is None:
                    self.build_count += 1
                    metrics.counter("engine.build.values").inc()
                    with trace.span("engine.build", channel="values"):
                        registry = self.registry
                        self._value_postings = PostingIndex.build(
                            (key, self._column_stats(key).text_values())
                            for key in range(len(registry))
                        )
        return self._value_postings

    def _build_token_channel(self) -> None:
        """One pass over the lake's cached token sets: registry + postings."""
        self.build_count += 1
        metrics.counter("engine.build.tokens").inc()
        with trace.span("engine.build", channel="tokens"):
            self._build_token_channel_inner()

    def _build_token_channel_inner(self) -> None:
        owners: list[tuple[str, str]] = []
        sizes: list[int] = []
        postings: dict[str, list[int]] = {}
        for table_name, table_stats in self._stats:
            for column in table_stats.columns:
                tokens = table_stats.column(column).tokens
                key = len(owners)
                owners.append((table_name, column))
                sizes.append(len(tokens))
                for token in tokens:
                    postings.setdefault(token, []).append(key)
        # Registry may already be hydrated (store artifact) while postings
        # are not; keep the hydrated identity space in that case.
        if self._registry is None:
            self._registry = ColumnRegistry(owners, sizes)
        self._token_postings = PostingIndex(postings, sizes)

    def hasher_for(self, num_perm: int, seed: int) -> MinHasher:
        hasher = self._hashers.get((num_perm, seed))
        if hasher is None:
            with self._build_lock:
                hasher = self._hashers.get((num_perm, seed))
                if hasher is None:
                    hasher = MinHasher(num_perm=num_perm, seed=seed)
                    self._hashers[(num_perm, seed)] = hasher
        return hasher

    def ensemble_for(
        self, num_perm: int, num_partitions: int, seed: int, min_size: int
    ) -> LSHEnsemble:
        """The banded sketch index under one parameter set (memoized, so
        every discoverer with matching config shares the structure and
        the column signatures behind it)."""
        params = (num_perm, num_partitions, seed, min_size)
        ensemble = self._ensembles.get(params)
        if ensemble is None:
            with self._build_lock:
                ensemble = self._ensembles.get(params)
                if ensemble is not None:
                    return ensemble
                # Band insertion from (hydrated) signatures is cheap and is
                # not counted as a posting-index rebuild: build_count tracks
                # the registry / posting channels the store artifact
                # replaces.  Built fully before publication, so concurrent
                # readers only ever see a complete ensemble.
                metrics.counter("engine.build.ensemble").inc()
                # size-buckets: a column's partition (and hence its band
                # parameters) is a function of its own cardinality, not of
                # the lake distribution -- an engine over any subset of the
                # lake retrieves exactly the global band hits restricted to
                # that subset.  Required for sharded scatter-gather to be
                # byte-identical with the single-store pipeline.
                ensemble = LSHEnsemble(
                    num_perm=num_perm,
                    num_partitions=num_partitions,
                    seed=seed,
                    partitioning="size-buckets",
                )
                hasher = ensemble.hasher
                registry = self.registry
                ensemble.index_signatures(
                    (key, self._column_stats(key).minhash(hasher))
                    for key in range(len(registry))
                    if registry.token_sizes[key] >= min_size
                )
                self._ensembles[params] = ensemble
        return ensemble

    def materialized_ensembles(self) -> dict[tuple[int, int, int, int], LSHEnsemble]:
        """The sketch ensembles built so far, keyed by their parameters
        (what the lake store pickles next to the postings artifact)."""
        return dict(self._ensembles)

    def adopt_ensembles(
        self, ensembles: Mapping[tuple[int, int, int, int], LSHEnsemble]
    ) -> None:
        """Install persisted sketch ensembles (store hydration); matching
        parameter sets will never rebuild from stats."""
        for params, ensemble in ensembles.items():
            self._ensembles[tuple(params)] = ensemble

    def warm(self, channels: Iterable[str]) -> "CandidateEngine":
        """Materialize the posting channels *channels* now (idempotent).

        ``LakeIndex.build`` calls this with the union of the roster's
        declared channels, so index building -- not the first query --
        pays the one-time construction cost."""
        wanted = set(channels)
        if wanted & {"tokens", "sketch"}:
            self.token_postings  # sketch indexes key into the same registry
        if "values" in wanted:
            self.value_postings
        return self

    # ------------------------------------------------------------------
    # Column accessors (scoring-phase reads; all served from shared stats)
    # ------------------------------------------------------------------
    def _column_stats(self, key: int) -> "ColumnStats":
        table, column = self.registry.owner(key)
        return self._stats.column(table, column)

    def column_owner(self, key: int) -> tuple[str, str]:
        return self.registry.owner(key)

    def column_token_size(self, key: int) -> int:
        return self.registry.token_sizes[key]

    def column_tokens(self, key: int) -> frozenset[str]:
        return self._column_stats(key).tokens

    def column_text_values(self, key: int) -> frozenset[str]:
        return self._column_stats(key).text_values()

    def column_minhash(self, key: int, hasher: MinHasher) -> MinHashSignature:
        return self._column_stats(key).minhash(hasher)

    def tables(self) -> tuple[str, ...]:
        """Every lake table name, in lake order (no cell materialization)."""
        return tuple(self._lake)

    # ------------------------------------------------------------------
    # Retrieval
    # ------------------------------------------------------------------
    def retrieve(
        self,
        discoverer: str,
        spec: CandidateSpec,
        query: "Table",
        k: int,
        query_column: str | None = None,
    ) -> CandidateSet:
        """Generic retrieval for ``tokens`` / ``values`` / ``exhaustive``
        specs, probing the query's cached column stats.  Discoverers on
        the ``sketch`` / ``labels`` channels build their probes themselves
        (signatures with thresholds, annotation labels) and assemble
        through :meth:`assemble` / :meth:`label_candidates`."""
        if self.force_exhaustive or spec.exhaustive:
            return self.all_candidates(discoverer, spec)
        with trace.span(
            "engine.retrieve", discoverer=discoverer, channels=",".join(spec.channels)
        ):
            if spec.intent_only and query_column in query.columns:
                probe_columns = [query_column]
            else:
                # No (known) intent column: probe everything.  An unknown
                # intent degrades to all-columns rather than raising, matching
                # the scorers' own probe-column selection -- discoverers that
                # want loud validation do it in their _candidates override
                # (LSH Ensemble does).
                probe_columns = list(query.columns)
            evidence: dict[str, dict[int, float]] = {}
            probes = 0
            for channel in spec.channels:
                if channel == "tokens":
                    index = self.token_postings
                    for column in probe_columns:
                        tokens = query.stats.column(column).tokens
                        if not tokens:
                            continue
                        probes += 1
                        evidence[f"tokens:{column}"] = dict(index.probe(tokens))
                elif channel == "values":
                    index = self.value_postings
                    for column in probe_columns:
                        values = query.stats.column(column).text_values()
                        if not values:
                            continue
                        probes += 1
                        evidence[f"values:{column}"] = dict(index.probe(values))
                else:
                    raise EngineError(
                        f"channel {channel!r} needs discoverer-provided probes; "
                        f"override _candidates() instead of using generic retrieve()"
                    )
            return self.assemble(discoverer, spec, evidence, k, probes=probes)

    def assemble(
        self,
        discoverer: str,
        spec: CandidateSpec,
        evidence: dict[str, dict[int, float]],
        k: int,
        probes: int | None = None,
    ) -> CandidateSet:
        """Rank evidenced tables, apply budget and fallback, record."""
        if self.force_exhaustive:
            return self.all_candidates(discoverer, spec)
        table_of = self.registry.table_of
        totals: dict[str, float] = {}
        for hits in evidence.values():
            for key, strength in hits.items():
                table = table_of[key]
                totals[table] = totals.get(table, 0.0) + strength
        return self._finalize(
            discoverer,
            spec,
            totals,
            evidence,
            k,
            probes=probes if probes is not None else len(evidence),
        )

    def label_candidates(
        self,
        discoverer: str,
        spec: CandidateSpec,
        label_queries: Mapping[str, Iterable[str]],
        k: int,
    ) -> CandidateSet:
        """Tables sharing published labels with the query, ranked by how
        many labels matched (namespace -> query labels)."""
        if self.force_exhaustive:
            return self.all_candidates(discoverer, spec)
        matched: dict[str, float] = {}
        probes = 0
        for namespace, labels in label_queries.items():
            published = self._labels.get(namespace)
            if not published:
                continue
            for label in labels:
                probes += 1
                for table in published.get(label, ()):
                    matched[table] = matched.get(table, 0) + 1
        return self._finalize(discoverer, spec, matched, {}, k, probes=probes)

    def _finalize(
        self,
        discoverer: str,
        spec: CandidateSpec,
        totals: Mapping[str, float],
        evidence: dict[str, dict[int, float]],
        k: int,
        probes: int,
    ) -> CandidateSet:
        """The one place budget / fallback-floor / reporting semantics
        live: every evidence-producing channel funnels through here.

        The floor is judged on the *pre-truncation* retrieved count: the
        exhaustive fallback exists for sparse retrieval (recall-critical
        discoverers must still see type-only matches), not to undo an
        explicit budget -- a budget below the floor caps scoring at the
        budget, it never inflates back to the whole lake."""
        ordered = sorted(totals, key=lambda table: (-totals[table], table))
        retrieved = len(ordered)
        budget = spec.budget if spec.budget is not None else self.default_budget
        if self.defer_policy:
            # Shard mode: never fall back locally (the reducer judges the
            # floor against the global retrieved count and orchestrates a
            # second, evidence-retained exhaustive round when needed); the
            # budget cap is safe per shard -- see the attribute docstring.
            truncated = budget is not None and retrieved > budget
            if truncated:
                ordered = ordered[:budget]
            report = RetrievalReport(
                discoverer=discoverer,
                channels=spec.channels,
                probes=probes,
                retrieved=retrieved,
                scored=len(ordered),
                lake_size=len(self._lake),
                fallback=False,
                truncated=truncated,
            )
            self._record(report)
            candidates = CandidateSet(
                tables=tuple(ordered),
                evidence=evidence,
                fallback=False,
                truncated=truncated,
                report=report,
            )
            candidates.context["deferred"] = {
                "retrieved": retrieved,
                "floor": spec.floor(k),
                "totals": dict(totals),
            }
            return candidates
        fallback = retrieved < spec.floor(k)
        truncated = False
        if fallback:
            ordered = list(self.tables())
        else:
            truncated = budget is not None and retrieved > budget
            if truncated:
                ordered = ordered[:budget]
        report = RetrievalReport(
            discoverer=discoverer,
            channels=spec.channels,
            probes=probes,
            retrieved=retrieved,
            scored=len(ordered),
            lake_size=len(self._lake),
            fallback=fallback,
            truncated=truncated,
        )
        self._record(report)
        return CandidateSet(
            tables=tuple(ordered),
            evidence=evidence,
            fallback=fallback,
            truncated=truncated,
            report=report,
        )

    def sketch_probe(
        self,
        signature: MinHashSignature,
        threshold: float,
        *,
        num_perm: int,
        num_partitions: int,
        seed: int,
        min_size: int,
    ) -> dict[int, float]:
        """Column key -> estimated containment, via the banded prefilter."""
        ensemble = self.ensemble_for(num_perm, num_partitions, seed, min_size)
        return {
            int(match.key): match.containment
            for match in ensemble.query(signature, threshold=threshold, k=None)
        }

    def all_candidates(self, discoverer: str, spec: CandidateSpec) -> CandidateSet:
        """The whole lake, evidence-free: the exhaustive-scan path."""
        tables = self.tables()
        report = RetrievalReport(
            discoverer=discoverer,
            channels=("exhaustive",),
            probes=0,
            retrieved=len(tables),
            scored=len(tables),
            lake_size=len(tables),
            exhaustive=True,
        )
        self._record(report)
        return CandidateSet(tables=tables, evidence=None, report=report)

    def empty_candidates(self, discoverer: str, spec: CandidateSpec) -> CandidateSet:
        """No candidates (the query can't be probed at all -- e.g. COCOA
        without a numeric target); recorded, never falls back."""
        report = RetrievalReport(
            discoverer=discoverer,
            channels=spec.channels,
            probes=0,
            retrieved=0,
            scored=0,
            lake_size=len(self._lake),
        )
        self._record(report)
        return CandidateSet(tables=(), evidence={}, report=report)

    # ------------------------------------------------------------------
    # Exhaustive scoring helpers (the fallback / full-scan compute paths)
    # ------------------------------------------------------------------
    def overlap_scan(
        self, tokens: frozenset[str], tables: Iterable[str] | None = None
    ) -> dict[int, int]:
        """Exact token overlap with every column of *tables* (all when
        None) -- what the posting probe computes, without the index."""
        hits: dict[int, int] = {}
        for key in self.registry.keys_of(tables):
            overlap = len(tokens & self.column_tokens(key))
            if overlap:
                hits[key] = overlap
        return hits

    def value_overlap_scan(
        self, values: Iterable[Hashable], tables: Iterable[str] | None = None
    ) -> dict[int, int]:
        """Exact normalized-value overlap with every column of *tables*."""
        probe = {str(v) for v in values}
        hits: dict[int, int] = {}
        for key in self.registry.keys_of(tables):
            overlap = len(probe & self.column_text_values(key))
            if overlap:
                hits[key] = overlap
        return hits

    def containment_scan(
        self,
        signature: MinHashSignature,
        threshold: float,
        hasher: MinHasher,
        min_size: int,
        tables: Iterable[str] | None = None,
    ) -> dict[int, float]:
        """Estimated containment against every column's signature -- the
        sketch channel without LSH banding (a superset of what the bands
        retrieve).  The cardinality gate skips columns whose size bounds
        the containment estimate below *threshold* (see
        :meth:`LSHEnsemble.query <repro.sketch.ensemble.LSHEnsemble.query>`)."""
        if signature.size == 0:
            return {}
        hits: dict[int, float] = {}
        registry = self.registry
        for key in registry.keys_of(tables):
            if registry.token_sizes[key] < min_size:
                continue
            candidate = self.column_minhash(key, hasher)
            if candidate.size == 0:
                continue
            upper = (signature.size + candidate.size) / (2.0 * signature.size)
            if upper < threshold:
                continue
            estimate = signature.containment_in(candidate)
            if estimate >= threshold:
                hits[key] = estimate
        return hits

    # ------------------------------------------------------------------
    # Label namespaces (semantic discoverers publish their fit products)
    # ------------------------------------------------------------------
    def publish_labels(
        self, namespace: str, table_sets: Mapping[str, Iterable[str]]
    ) -> None:
        """Register ``label -> table names`` under *namespace* (held by
        reference: the publisher may keep mutating during its fit)."""
        self._labels[namespace] = table_sets

    def labels(self, namespace: str) -> Mapping[str, Iterable[str]]:
        return self._labels.get(namespace, {})

    @property
    def label_namespaces(self) -> list[str]:
        return sorted(self._labels)

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    def _record(self, report: RetrievalReport) -> None:
        self._reports[report.discoverer] = report
        self._query_counts[report.discoverer] = (
            self._query_counts.get(report.discoverer, 0) + 1
        )
        # Every retrieval funnels through here (finalize / exhaustive /
        # empty), so this is where process-wide retrieval accounting and
        # per-request span attribution both attach -- once per retrieval,
        # never per posting entry.
        metrics.counter("engine.retrievals").inc()
        metrics.counter("engine.probes").inc(report.probes)
        metrics.counter("engine.retrieved_tables").inc(report.retrieved)
        for channel in report.channels:
            metrics.counter(f"engine.channel.{channel}").inc()
        if report.fallback:
            metrics.counter("engine.fallbacks").inc()
        if report.truncated:
            metrics.counter("engine.truncations").inc()
        tracer = trace.current_tracer()
        if tracer is not None and tracer.current is not None:
            tracer.current.add(
                probes=report.probes,
                retrieved=report.retrieved,
                scored=report.scored,
                fallback=int(report.fallback),
            )

    @property
    def reports(self) -> dict[str, RetrievalReport]:
        """Most recent retrieval report per discoverer."""
        return dict(self._reports)

    def explain(self) -> dict[str, dict[str, Any]]:
        """JSON-friendly last-retrieval summary (``discover --explain``)."""
        return {name: report.to_json() for name, report in self._reports.items()}

    def stats(self) -> dict[str, Any]:
        """Size/shape summary of every materialized structure."""
        ensembles = [
            {
                "num_perm": num_perm,
                "num_partitions": partitions,
                "seed": seed,
                "min_size": min_size,
                "indexed_columns": len(ensemble),
                "bands": sum(
                    index.b
                    for partition in (
                        list(ensemble._partitions) + list(ensemble._buckets.values())
                    )
                    for index in partition.indexes.values()
                ),
            }
            for (num_perm, partitions, seed, min_size), ensemble in sorted(
                self._ensembles.items()
            )
        ]
        return {
            "tables": len(self._lake),
            "columns": len(self._registry) if self._registry is not None else None,
            "token_postings": {
                "tokens": self._token_postings.num_tokens,
                "entries": self._token_postings.num_entries,
            }
            if self._token_postings is not None
            else None,
            "value_postings": {
                "values": self._value_postings.num_tokens,
                "entries": self._value_postings.num_entries,
            }
            if self._value_postings is not None
            else None,
            "ensembles": ensembles,
            "label_namespaces": self.label_namespaces,
            "default_budget": self.default_budget,
            "loaded_from_store": self.loaded_from_store,
            "build_count": self.build_count,
            "queries": dict(self._query_counts),
        }

    # ------------------------------------------------------------------
    # Persistence payload (the lake store's postings artifact)
    # ------------------------------------------------------------------
    def to_records(self, channels: Iterable[str] = ("tokens",)) -> Iterator[dict[str, Any]]:
        """JSONL records describing the posting channels *channels* use
        (token postings for ``tokens``/``sketch``, value postings for
        ``values``; channels nobody declared are neither built nor
        written).

        Sketch ensembles serialize separately (the store pickles them
        next to this artifact): their band structures are not
        JSONL-friendly, and rebuilding them would page in every stats
        snapshot on a warm process's first sketch query.
        """
        wanted = set(channels)
        persisted = []
        if wanted & {"tokens", "sketch"}:
            self.token_postings  # materialize before describing
            persisted.append("tokens")
        if "values" in wanted:
            self.value_postings
            persisted.append("values")
        yield {
            "kind": "meta",
            "channels": sorted(persisted),
            "columns": self.registry.to_json(),
        }
        if "tokens" in persisted:
            yield from self.token_postings.to_records("token")
        if "values" in persisted:
            yield from self.value_postings.to_records("value")

    @classmethod
    def from_records(
        cls,
        lake: Mapping[str, "Table"],
        records: Iterable[Mapping[str, Any]],
        stats: "LakeStats | None" = None,
    ) -> "CandidateEngine":
        """Hydrate an engine from :meth:`to_records` output; the restored
        channels never rebuild (``build_count`` stays 0 for them)."""
        engine = cls(lake, stats=stats)
        token_records: list[Mapping[str, Any]] = []
        value_records: list[Mapping[str, Any]] = []
        token_sizes: list[int] = []
        value_sizes: list[int] = []
        channels: list[str] = []
        saw_meta = False
        for record in records:
            kind = record.get("kind")
            if kind == "meta":
                engine._registry = ColumnRegistry.from_json(record["columns"])
                channels = list(record.get("channels", ()))
                saw_meta = True
            elif kind == "token":
                token_records.append(record)
            elif kind == "token_sizes":
                token_sizes = [int(s) for s in record["s"]]
            elif kind == "value":
                value_records.append(record)
            elif kind == "value_sizes":
                value_sizes = [int(s) for s in record["s"]]
            else:
                raise EngineError(f"unknown postings record kind {kind!r}")
        if not saw_meta:
            raise EngineError("postings artifact has no meta record")
        # Only channels the artifact actually carries hydrate (the meta
        # record is authoritative -- an empty lake legitimately persists
        # empty posting lists); anything else stays lazy, never empty.
        if "tokens" in channels:
            engine._token_postings = PostingIndex.from_records(
                token_sizes, token_records
            )
        if "values" in channels:
            engine._value_postings = PostingIndex.from_records(
                value_sizes, value_records
            )
        engine.loaded_from_store = True
        return engine

    def __getstate__(self) -> dict[str, Any]:
        # Locks don't pickle (LakeIndex.save pickles the whole index,
        # engine included); a fresh lock is recreated on load.
        state = dict(self.__dict__)
        state.pop("_build_lock", None)
        return state

    def __setstate__(self, state: dict[str, Any]) -> None:
        self.__dict__.update(state)
        self._build_lock = threading.RLock()

    def __repr__(self) -> str:
        built = []
        if self._token_postings is not None:
            built.append("tokens")
        if self._value_postings is not None:
            built.append("values")
        built.extend(f"sketch{params}" for params in self._ensembles)
        return (
            f"CandidateEngine({len(self._lake)} tables, "
            f"channels={built or ['<lazy>']}, budget={self.default_budget})"
        )
