"""Shared candidate generation: the sublinear half of every search.

DIALITE pre-builds indexes so users query a *ready* lake; this package is
the query path those indexes feed.  Discovery is retrieve-then-rerank:
each discoverer declares a :class:`CandidateSpec` (which lake-wide
signals can surface its candidates, and how many it needs), the
lake-wide :class:`CandidateEngine` retrieves a candidate set from
inverted postings / sketch prefilters / published labels, and the
discoverer's scoring phase touches only those candidates -- per-query
cost follows the candidate count, not the lake size.
"""

from .engine import CandidateEngine, EngineError
from .postings import ColumnRegistry, PostingIndex
from .spec import CHANNELS, CandidateSet, CandidateSpec, RetrievalReport

__all__ = [
    "CandidateEngine",
    "EngineError",
    "ColumnRegistry",
    "PostingIndex",
    "CandidateSpec",
    "CandidateSet",
    "RetrievalReport",
    "CHANNELS",
]
