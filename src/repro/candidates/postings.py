"""Inverted posting lists over the lake's column domains.

The core sublinear structure of the query path: a token (or normalized
text value) maps to the list of column keys containing it, so probing a
query's token set touches only the columns that share something with it
-- sum-of-document-frequency work instead of one pass over every column
of the lake.  Built once per lake from the shared
:class:`~repro.table.stats.ColumnStats` products (never from raw cells),
and persisted by the lake store as a version-pinned artifact so warm
processes skip the build entirely.
"""

from __future__ import annotations

from typing import Any, Hashable, Iterable, Iterator, Mapping

from .. import accel
from ..obs import metrics

__all__ = ["ColumnRegistry", "PostingIndex"]


def _observe_probe(entries: int, vectorized: bool) -> None:
    """Per-*probe* accounting (one histogram observation and one counter
    bump per probe call -- never per posting entry): how many posting
    entries the probe touched, and which twin answered it."""
    metrics.counter(
        "postings.probe.vectorized" if vectorized else "postings.probe.pure"
    ).inc()
    metrics.histogram(
        "postings.probe_entries", metrics.DEFAULT_SIZE_BUCKETS
    ).observe(entries)


class ColumnRegistry:
    """Compact identity space for the lake's columns.

    Posting lists and sketch indexes refer to columns by dense integer
    key; the registry resolves a key back to ``(table, column)`` and
    keeps the per-column domain sizes retrieval ranking and scoring
    tie-breaks consume.
    """

    __slots__ = ("owners", "token_sizes", "table_of", "by_table", "tables")

    def __init__(self, owners: list[tuple[str, str]], token_sizes: list[int]):
        if len(owners) != len(token_sizes):
            raise ValueError("owners and token_sizes must align")
        self.owners = owners
        self.token_sizes = token_sizes
        self.table_of = [table for table, _ in owners]
        self.by_table: dict[str, list[int]] = {}
        for key, table in enumerate(self.table_of):
            self.by_table.setdefault(table, []).append(key)
        self.tables = tuple(self.by_table)

    def __len__(self) -> int:
        return len(self.owners)

    def owner(self, key: int) -> tuple[str, str]:
        return self.owners[key]

    def keys_of(self, tables: Iterable[str] | None = None) -> Iterator[int]:
        """Column keys of *tables* (all columns when None), in key order."""
        if tables is None:
            yield from range(len(self.owners))
            return
        for table in tables:
            yield from self.by_table.get(table, ())

    def to_json(self) -> list[list[Any]]:
        return [
            [table, column, size]
            for (table, column), size in zip(self.owners, self.token_sizes)
        ]

    @classmethod
    def from_json(cls, payload: Iterable[Iterable[Any]]) -> "ColumnRegistry":
        owners: list[tuple[str, str]] = []
        sizes: list[int] = []
        for table, column, size in payload:
            owners.append((str(table), str(column)))
            sizes.append(int(size))
        return cls(owners, sizes)


class PostingIndex:
    """token -> sorted list of column keys containing it."""

    __slots__ = ("postings", "sizes", "_arrays")

    def __init__(self, postings: dict[str, list[int]], sizes: list[int]):
        self.postings = postings
        #: Per-column domain size under *this* channel's vocabulary (token
        #: count for the token channel, normalized-value count for the
        #: value channel) -- distinct from the registry's token sizes.
        self.sizes = sizes
        # Lazy per-probed-token contiguous int arrays for the vectorized
        # probe; ``postings`` itself stays plain lists (the persisted
        # JSONL shape and the public contract tests compare against).
        self._arrays: dict[str, Any] = {}

    @classmethod
    def build(cls, domains: Iterable[tuple[int, Iterable[Hashable]]]) -> "PostingIndex":
        """Index ``(column key, domain)`` pairs; keys must be dense ints."""
        postings: dict[str, list[int]] = {}
        sizes: list[int] = []
        for key, domain in domains:
            if key != len(sizes):
                raise ValueError("PostingIndex.build expects dense keys in order")
            count = 0
            for token in domain:
                postings.setdefault(str(token), []).append(key)
                count += 1
            sizes.append(count)
        return cls(postings, sizes)

    # ------------------------------------------------------------------
    @property
    def num_tokens(self) -> int:
        return len(self.postings)

    @property
    def num_entries(self) -> int:
        """Total posting-list entries (the index's footprint metric)."""
        return sum(len(keys) for keys in self.postings.values())

    def document_frequency(self, token: Hashable) -> int:
        return len(self.postings.get(str(token), ()))

    def probe(self, probe_tokens: Iterable[Hashable]) -> dict[int, int]:
        """Column key -> number of probe tokens it contains.

        The per-key counts are *exact* overlap sizes with the probe set,
        so a scorer ranking by overlap (JOSIE, COCOA's key index)
        consumes them directly -- retrieval and exact scoring are the
        same pass.  With numpy the matched posting lists merge as one
        ``concatenate`` + ``bincount`` over contiguous int arrays (cached
        per probed token); otherwise one posting-list walk per token.
        Key order in the result may differ between the two paths; every
        consumer aggregates or re-sorts with explicit tie-breaks, and the
        counts themselves are identical (pinned by the equivalence suite).
        """
        if accel.np is None:
            hits = self._probe_py(probe_tokens)
            _observe_probe(sum(hits.values()), vectorized=False)
            return hits
        hits = self._probe_np(probe_tokens)
        _observe_probe(sum(hits.values()), vectorized=True)
        return hits

    def _probe_np(self, probe_tokens: Iterable[Hashable]) -> dict[int, int]:
        np = accel.np
        postings = self.postings
        arrays = getattr(self, "_arrays", None)
        if arrays is None:  # instance from a pre-cache pickle
            arrays = self._arrays = {}
        matched = []
        total = 0
        for token in probe_tokens:
            text = str(token)
            array = arrays.get(text)
            if array is None:
                keys = postings.get(text)
                if not keys:
                    continue
                array = arrays[text] = np.asarray(keys, dtype=np.int64)
            matched.append(array)
            total += len(array)
        if not matched:
            return {}
        if len(matched) == 1:
            # A single posting list holds each key once: all counts are 1.
            return dict.fromkeys(matched[0].tolist(), 1)
        if total < 64:
            hits: dict[int, int] = {}
            for array in matched:
                for key in array.tolist():
                    hits[key] = hits.get(key, 0) + 1
            return hits
        counts = np.bincount(np.concatenate(matched), minlength=len(self.sizes))
        nonzero = np.nonzero(counts)[0]
        return dict(zip(nonzero.tolist(), counts[nonzero].tolist()))

    def _probe_py(self, probe_tokens: Iterable[Hashable]) -> dict[int, int]:
        """The pure posting-list walk (also the vectorized path's oracle)."""
        hits: dict[int, int] = {}
        postings = self.postings
        for token in probe_tokens:
            keys = postings.get(str(token))
            if not keys:
                continue
            for key in keys:
                hits[key] = hits.get(key, 0) + 1
        return hits

    # ------------------------------------------------------------------
    def to_records(self, kind: str) -> Iterator[dict[str, Any]]:
        """JSONL-friendly records (one per token) for the store artifact."""
        yield {"kind": f"{kind}_sizes", "s": list(self.sizes)}
        for token, keys in self.postings.items():
            yield {"kind": kind, "t": token, "p": keys}

    @classmethod
    def from_records(
        cls, sizes: Iterable[int], records: Iterable[Mapping[str, Any]]
    ) -> "PostingIndex":
        postings = {str(r["t"]): [int(k) for k in r["p"]] for r in records}
        return cls(postings, [int(s) for s in sizes])

    def __repr__(self) -> str:
        return f"PostingIndex({self.num_tokens} tokens, {self.num_entries} entries)"
