"""Cell-level codec and canonical content hashing for the lake store.

Everything the store writes is line-oriented JSON over this codec: a cell
is a JSON scalar (``str`` / ``int`` / ``float`` / ``bool``) except nulls,
which become single-key objects carrying their provenance kind -- JSON
objects can never be confused with scalar cells, so the encoding is
unambiguous and the paper's two-kind null model (``±`` missing vs ``⊥``
produced) survives a round trip bit-for-bit.

The *content hash* is the store's change detector: a SHA-256 over a
canonical serialization of a table's header and column arrays.  Two tables
hash equal iff they hold the same cells (null kinds included) under the
same column names in the same order -- the table's *name* is deliberately
excluded, because the manifest already keys entries by name and a rename
should read as remove+add, not as a content change.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any

from ..table.table import Table
from ..table.values import Cell, Null, is_null

__all__ = [
    "encode_cell",
    "decode_cell",
    "encode_column",
    "decode_column",
    "encode_table",
    "decode_table",
    "table_content_hash",
]

_NULL_KEY = "__null__"


def encode_cell(cell: Cell) -> Any:
    """One cell as a JSON-serializable value."""
    if is_null(cell):
        return {_NULL_KEY: cell.kind}
    if isinstance(cell, (str, int, float, bool)):
        return cell
    raise TypeError(
        f"cell of type {type(cell).__name__} is not storable: {cell!r}"
    )


def decode_cell(value: Any) -> Cell:
    """Inverse of :func:`encode_cell`; null singletons are restored by kind."""
    if isinstance(value, dict):
        return Null(value[_NULL_KEY])
    return value


def encode_column(array: tuple[Cell, ...]) -> str:
    """One column array as a compact single-line JSON document."""
    return json.dumps(
        [encode_cell(cell) for cell in array],
        ensure_ascii=False,
        separators=(",", ":"),
    )


def decode_column(line: str) -> tuple[Cell, ...]:
    """Inverse of :func:`encode_column`."""
    return tuple(decode_cell(value) for value in json.loads(line))


def encode_table(table: Table) -> dict[str, Any]:
    """A whole table as one JSON-serializable document -- the canonical
    ``{"name", "columns", "rows"}`` shape shared by the serving layer's
    response payloads and the wire protocol (one definition, so the two
    can never drift apart)."""
    return {
        "name": table.name,
        "columns": list(table.columns),
        "rows": [[encode_cell(cell) for cell in row] for row in table.rows],
    }


def decode_table(document: dict[str, Any]) -> Table:
    """Inverse of :func:`encode_table`."""
    return Table(
        document["columns"],
        [tuple(decode_cell(cell) for cell in row) for row in document["rows"]],
        name=document.get("name", "table"),
    )


def table_content_hash(table: Table) -> str:
    """Hex SHA-256 of the table's canonical content (header + cells)."""
    digest = hashlib.sha256()
    digest.update(
        json.dumps(list(table.columns), ensure_ascii=False, separators=(",", ":")).encode("utf-8")
    )
    for array in table.column_arrays:
        digest.update(b"\x1f")
        digest.update(encode_column(array).encode("utf-8"))
    return digest.hexdigest()
