"""Cell-level codec and canonical content hashing for the lake store.

Everything the store writes is line-oriented JSON over this codec: a cell
is a JSON scalar (``str`` / ``int`` / ``float`` / ``bool``) except nulls,
which become single-key objects carrying their provenance kind -- JSON
objects can never be confused with scalar cells, so the encoding is
unambiguous and the paper's two-kind null model (``±`` missing vs ``⊥``
produced) survives a round trip bit-for-bit.

The *content hash* is the store's change detector: a SHA-256 over a
canonical serialization of a table's header and column arrays.  Two tables
hash equal iff they hold the same cells (null kinds included) under the
same column names in the same order -- the table's *name* is deliberately
excluded, because the manifest already keys entries by name and a rename
should read as remove+add, not as a content change.
"""

from __future__ import annotations

import hashlib
import json
import struct
from typing import Any

from ..table.table import Table
from ..table.values import MISSING, PRODUCED, Cell, Null, is_null

__all__ = [
    "encode_cell",
    "decode_cell",
    "encode_column",
    "decode_column",
    "encode_table",
    "decode_table",
    "table_content_hash",
    "encode_cells_binary",
    "decode_cells_binary",
    "BinaryCodecError",
]

_NULL_KEY = "__null__"


def encode_cell(cell: Cell) -> Any:
    """One cell as a JSON-serializable value."""
    if is_null(cell):
        return {_NULL_KEY: cell.kind}
    if isinstance(cell, (str, int, float, bool)):
        return cell
    raise TypeError(
        f"cell of type {type(cell).__name__} is not storable: {cell!r}"
    )


def decode_cell(value: Any) -> Cell:
    """Inverse of :func:`encode_cell`; null singletons are restored by kind."""
    if isinstance(value, dict):
        return Null(value[_NULL_KEY])
    return value


def encode_column(array: tuple[Cell, ...]) -> str:
    """One column array as a compact single-line JSON document."""
    return json.dumps(
        [encode_cell(cell) for cell in array],
        ensure_ascii=False,
        separators=(",", ":"),
    )


def decode_column(line: str) -> tuple[Cell, ...]:
    """Inverse of :func:`encode_column`."""
    return tuple(decode_cell(value) for value in json.loads(line))


def encode_table(table: Table) -> dict[str, Any]:
    """A whole table as one JSON-serializable document -- the canonical
    ``{"name", "columns", "rows"}`` shape shared by the serving layer's
    response payloads and the wire protocol (one definition, so the two
    can never drift apart)."""
    return {
        "name": table.name,
        "columns": list(table.columns),
        "rows": [[encode_cell(cell) for cell in row] for row in table.rows],
    }


def decode_table(document: dict[str, Any]) -> Table:
    """Inverse of :func:`encode_table`."""
    return Table(
        document["columns"],
        [tuple(decode_cell(cell) for cell in row) for row in document["rows"]],
        name=document.get("name", "table"),
    )


# ----------------------------------------------------------------------
# Binary cell codec (the segment-v2 value dictionary encoding)
# ----------------------------------------------------------------------
# A *columnar* encoding of a cell sequence: one tag byte per cell, then
# one little-endian u32 payload length per cell, then the payloads
# grouped by tag -- every string payload first, then every int payload,
# then every float payload (within a group, cell order)::
#
#     tags      count bytes
#     lengths   count * u32  (0 for bool/null, 8 for float, n for int/str)
#     payloads  all str payloads + all int payloads + all float payloads
#
# Grouping by field instead of by cell is what makes decoding batched:
# tags and lengths come off the buffer as contiguous arrays, payload
# offsets are per-group cumulative sums, and each tag's cells decode as
# one contiguous region -- the float region is a single IEEE-754 vector
# read, and the string region (ASCII-only, the overwhelmingly common
# case) is one UTF-8 decode plus slicing -- instead of a per-cell tag
# dispatch.  Unlike the JSON
# line codec above, every value round-trips at the *bit* level: floats
# are raw IEEE-754 doubles (NaN payloads, ``±inf``, ``-0.0`` and the sign
# of zero all survive), ints are arbitrary-precision two's-complement
# bytes (no float64 detour, so ints beyond 2**53 stay exact), and bool
# keeps its own tags so ``True`` can never collapse into ``1``.  Nulls
# carry their kind in the tag.  Segment v2 stores its per-table value
# dictionary under this codec; the JSON codec remains the v1 segment /
# wire / content-hash format.

_TAG_FALSE = 0x01
_TAG_TRUE = 0x02
_TAG_INT = 0x03
_TAG_FLOAT = 0x04
_TAG_STR = 0x05
_TAG_MISSING = 0x06
_TAG_PRODUCED = 0x07

#: Tags whose payload length is fixed by the tag itself.
_FIXED_LENGTH = {
    _TAG_FALSE: 0,
    _TAG_TRUE: 0,
    _TAG_FLOAT: 8,
    _TAG_MISSING: 0,
    _TAG_PRODUCED: 0,
}

_U32 = struct.Struct("<I")
_F64 = struct.Struct("<d")

#: Below this many cells the plain loop beats numpy's per-call overhead
#: (measured crossover on small value dictionaries).
_VECTOR_MIN_CELLS = 512

#: Per-tag expected payload length for the batched validator: -2 marks an
#: unknown tag, -1 a variable-length one (int/str), >= 0 a fixed length.
_EXPECTED_LENGTH = [-2] * 256
for _tag in (_TAG_INT, _TAG_STR):
    _EXPECTED_LENGTH[_tag] = -1
for _tag, _fixed in _FIXED_LENGTH.items():
    _EXPECTED_LENGTH[_tag] = _fixed
del _tag, _fixed


class BinaryCodecError(ValueError):
    """A malformed binary cell payload (truncation, unknown tag)."""


def encode_cells_binary(cells: Any) -> bytes:
    """Columnar binary encoding of a cell sequence."""
    tags = bytearray()
    lengths = bytearray()
    strs: list[bytes] = []
    ints: list[bytes] = []
    floats: list[bytes] = []
    pack_length = _U32.pack
    for cell in cells:
        if cell is MISSING:
            tags.append(_TAG_MISSING)
            lengths += b"\x00\x00\x00\x00"
        elif cell is PRODUCED:
            tags.append(_TAG_PRODUCED)
            lengths += b"\x00\x00\x00\x00"
        elif isinstance(cell, bool):
            tags.append(_TAG_TRUE if cell else _TAG_FALSE)
            lengths += b"\x00\x00\x00\x00"
        elif isinstance(cell, int):
            payload = cell.to_bytes(cell.bit_length() // 8 + 1, "big", signed=True)
            tags.append(_TAG_INT)
            lengths += pack_length(len(payload))
            ints.append(payload)
        elif isinstance(cell, float):
            tags.append(_TAG_FLOAT)
            lengths += b"\x08\x00\x00\x00"
            floats.append(_F64.pack(cell))
        elif isinstance(cell, str):
            payload = cell.encode("utf-8")
            tags.append(_TAG_STR)
            lengths += pack_length(len(payload))
            strs.append(payload)
        else:
            raise TypeError(
                f"cell of type {type(cell).__name__} is not storable: {cell!r}"
            )
    return (
        bytes(tags)
        + bytes(lengths)
        + b"".join(strs)
        + b"".join(ints)
        + b"".join(floats)
    )


def decode_cells_binary(buffer: bytes, count: int) -> list[Cell]:
    """Inverse of :func:`encode_cells_binary`: exactly *count* cells.

    Raises :class:`BinaryCodecError` on truncation, trailing garbage, an
    unknown tag or a tag/length mismatch -- a corrupted dictionary must
    fail loudly, never decode into plausible-looking garbage cells.
    """
    base = count * 5
    if len(buffer) < base:
        raise BinaryCodecError("binary cell payload truncated")
    from .. import accel

    if accel.np is not None and count >= _VECTOR_MIN_CELLS:
        return _decode_cells_np(accel.np, buffer, count, base)

    tags = buffer[:count]
    lengths = [length for (length,) in _U32.iter_unpack(buffer[count:base])]
    str_total = 0
    int_total = 0
    float_count = 0
    for tag, length in zip(tags, lengths):
        fixed = _FIXED_LENGTH.get(tag)
        if fixed is not None:
            if fixed != length:
                raise BinaryCodecError(
                    f"binary cell tag 0x{tag:02x} declares payload length {length}"
                )
            if tag == _TAG_FLOAT:
                float_count += 1
        elif tag == _TAG_STR:
            str_total += length
        elif tag == _TAG_INT:
            int_total += length
        else:
            raise BinaryCodecError(f"unknown binary cell tag 0x{tag:02x}")
    end = base + str_total + int_total + float_count * 8
    if end > len(buffer):
        raise BinaryCodecError("binary cell payload truncated")
    if end < len(buffer):
        raise BinaryCodecError(
            f"binary cell payload has {len(buffer) - end} trailing bytes"
        )
    str_cursor = base
    int_cursor = base + str_total
    float_cursor = int_cursor + int_total
    cells: list[Cell] = []
    append = cells.append
    for tag, length in zip(tags, lengths):
        if tag == _TAG_STR:
            try:
                append(buffer[str_cursor : str_cursor + length].decode("utf-8"))
            except UnicodeDecodeError as exc:
                raise BinaryCodecError(
                    "binary cell payload holds invalid UTF-8"
                ) from exc
            str_cursor += length
        elif tag == _TAG_INT:
            append(
                int.from_bytes(
                    buffer[int_cursor : int_cursor + length], "big", signed=True
                )
            )
            int_cursor += length
        elif tag == _TAG_FLOAT:
            append(_F64.unpack_from(buffer, float_cursor)[0])
            float_cursor += 8
        elif tag == _TAG_FALSE:
            append(False)
        elif tag == _TAG_TRUE:
            append(True)
        elif tag == _TAG_MISSING:
            append(MISSING)
        else:
            append(PRODUCED)
    return cells


def _decode_cells_np(np, buffer: bytes, count: int, base: int) -> list[Cell]:
    """Batched decode: per-tag groups instead of a per-cell dispatch loop."""
    lut = getattr(_decode_cells_np, "lut", None)
    if lut is None:
        lut = _decode_cells_np.lut = np.asarray(_EXPECTED_LENGTH, dtype=np.int64)
    tags = np.frombuffer(buffer, dtype=np.uint8, count=count)
    lengths = np.frombuffer(buffer, dtype="<u4", count=count, offset=count).astype(
        np.int64
    )
    expected = lut[tags]
    invalid = np.nonzero(
        (expected == -2) | ((expected >= 0) & (expected != lengths))
    )[0]
    if invalid.size:
        first = int(invalid[0])
        tag = int(tags[first])
        if _EXPECTED_LENGTH[tag] == -2:
            raise BinaryCodecError(f"unknown binary cell tag 0x{tag:02x}")
        raise BinaryCodecError(
            f"binary cell tag 0x{tag:02x} declares payload length "
            f"{int(lengths[first])}"
        )
    out = np.empty(count, dtype=object)
    cursor = base

    str_index = np.nonzero(tags == _TAG_STR)[0]
    str_total = 0
    if str_index.size:
        str_lengths = lengths[str_index]
        str_total = int(str_lengths.sum())
        if cursor + str_total > len(buffer):
            raise BinaryCodecError("binary cell payload truncated")
        region = buffer[cursor : cursor + str_total]
        try:
            blob = region.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise BinaryCodecError("binary cell payload holds invalid UTF-8") from exc
        ends = np.cumsum(str_lengths)
        if len(blob) == str_total:  # pure ASCII: byte offsets == char offsets
            pairs = zip((ends - str_lengths).tolist(), ends.tolist())
            decoded = [blob[start:end] for start, end in pairs]
        else:
            pairs = zip((ends - str_lengths).tolist(), ends.tolist())
            decoded = [region[start:end].decode("utf-8") for start, end in pairs]
        out[str_index] = np.asarray(decoded, dtype=object)
    cursor += str_total

    int_index = np.nonzero(tags == _TAG_INT)[0]
    int_total = 0
    if int_index.size:
        int_lengths = lengths[int_index]
        int_total = int(int_lengths.sum())
        if cursor + int_total > len(buffer):
            raise BinaryCodecError("binary cell payload truncated")
        ends = np.cumsum(int_lengths) + cursor
        pairs = zip((ends - int_lengths).tolist(), ends.tolist())
        out[int_index] = np.asarray(
            [
                int.from_bytes(buffer[start:end], "big", signed=True)
                for start, end in pairs
            ],
            dtype=object,
        )
    cursor += int_total

    float_index = np.nonzero(tags == _TAG_FLOAT)[0]
    if float_index.size:
        float_total = int(float_index.size) * 8
        if cursor + float_total > len(buffer):
            raise BinaryCodecError("binary cell payload truncated")
        floats = np.frombuffer(buffer, dtype="<f8", count=int(float_index.size),
                               offset=cursor)
        out[float_index] = np.asarray(floats.tolist(), dtype=object)
        cursor += float_total

    if cursor != len(buffer):
        raise BinaryCodecError(
            f"binary cell payload has {len(buffer) - cursor} trailing bytes"
        )
    out[tags == _TAG_TRUE] = True
    out[tags == _TAG_FALSE] = False
    out[tags == _TAG_MISSING] = MISSING
    out[tags == _TAG_PRODUCED] = PRODUCED
    return out.tolist()


def table_content_hash(table: Table) -> str:
    """Hex SHA-256 of the table's canonical content (header + cells)."""
    digest = hashlib.sha256()
    digest.update(
        json.dumps(list(table.columns), ensure_ascii=False, separators=(",", ":")).encode("utf-8")
    )
    for array in table.column_arrays:
        digest.update(b"\x1f")
        digest.update(encode_column(array).encode("utf-8"))
    return digest.hexdigest()
