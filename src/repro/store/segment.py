"""Columnar segment files in two on-disk formats.

**v1** (``.seg.jsonl``) mirrors
:attr:`repro.table.table.Table.column_arrays` as line-oriented JSON: line
*i* is column *i*'s cell array under the codec in
:mod:`repro.store.codec`.  The writer records each line's starting byte
offset, which the manifest keeps alongside the table entry -- that is what
makes **per-column lazy loading** a single ``seek`` + ``readline`` instead
of a file scan.

**v2** (``.seg.bin``) is the binary dictionary-coded columnar format::

    header   <4sBIIIQ>  magic b"RSG2", code width (1|2|4), rows, cols,
                        dictionary entry count, dictionary byte length
    dict     binary cell codec (codec.encode_cells_binary), one entry per
             distinct non-null cell, in first-appearance order
    col i    rows * width little-endian unsigned dictionary codes,
             then a non-null bitmap of (rows+7)//8 bytes (LSB-first:
             bit r of byte r//8 set iff row r holds a real value)

Codes reuse the PR-4 interner's assignment idea: ``0`` is the MISSING
null, ``1`` the PRODUCED null, and code ``c >= 2`` names dictionary entry
``c - 2``.  Decoding a column is therefore one contiguous array read plus
a table lookup -- no JSON parsing, no per-cell branching -- and the null
bitmap hands bitmask kernels their non-null masks without a scan.  Reads
go through ``mmap`` + numpy when available, with a pure-stdlib
``array``-module fallback.  Any structural damage (bad magic, impossible
code width, size mismatch, out-of-range code, undecodable dictionary)
raises :class:`SegmentCorrupted` rather than yielding garbage cells.
"""

from __future__ import annotations

import mmap
import os
import struct
import sys
from pathlib import Path

from .. import accel
from ..obs import metrics
from . import journal
from ..table.table import Table
from ..table.values import MISSING, PRODUCED, Cell, is_null
from .codec import (
    BinaryCodecError,
    decode_cells_binary,
    decode_column,
    encode_cells_binary,
    encode_column,
)

__all__ = [
    "write_segment",
    "read_column",
    "read_columns",
    "write_segment_v2",
    "read_column_v2",
    "read_columns_v2",
    "read_segment_v2_codes",
    "SegmentCorrupted",
]


class SegmentCorrupted(RuntimeError):
    """A v2 segment file is structurally damaged (truncated, bad magic,
    out-of-range dictionary codes, undecodable dictionary block)."""


def write_segment(path: Path, table: Table) -> list[int]:
    """Write *table*'s columns to *path*; returns per-column byte offsets.

    The write is atomic (temp file + rename), so a crash mid-write never
    leaves a half-segment behind a manifest that references it.
    """
    path.parent.mkdir(parents=True, exist_ok=True)
    temp = path.with_name(path.name + ".tmp")
    offsets: list[int] = []
    with temp.open("wb") as handle:
        for array in table.column_arrays:
            offsets.append(handle.tell())
            handle.write(encode_column(array).encode("utf-8"))
            handle.write(b"\n")
        handle.flush()
        if journal.fsync_enabled():
            os.fsync(handle.fileno())
    temp.replace(path)
    return offsets


def read_column(path: Path, offset: int) -> tuple[Cell, ...]:
    """One column array, read by its recorded byte offset."""
    with path.open("rb") as handle:
        handle.seek(offset)
        line = handle.readline()
    return decode_column(line.decode("utf-8"))


def read_columns(path: Path, num_columns: int) -> list[tuple[Cell, ...]]:
    """All column arrays of a segment, in header order (one sequential read)."""
    arrays: list[tuple[Cell, ...]] = []
    with path.open("rb") as handle:
        for line in handle:
            arrays.append(decode_column(line.decode("utf-8")))
    if len(arrays) != num_columns:
        raise ValueError(
            f"segment {path} holds {len(arrays)} columns, manifest says {num_columns}"
        )
    return arrays


# ----------------------------------------------------------------------
# Format v2: binary dictionary-coded columns
# ----------------------------------------------------------------------
_V2_MAGIC = b"RSG2"
_V2_HEADER = struct.Struct("<4sBIIIQ")

#: Null sentinels occupy the first two codes; real cells start at 2.
_NULL_CODES = 2

#: stdlib ``array`` typecodes by unsigned item size (platform-resolved:
#: the C type behind a typecode varies, the byte width is what matters).
_TYPECODE_BY_WIDTH = {
    size: code
    for code in ("B", "H", "I", "L", "Q")
    for size in (struct.calcsize(code),)
}
_NUMPY_DTYPE_BY_WIDTH = {1: "<u1", 2: "<u2", 4: "<u4"}


def _width_for(code_count: int) -> int:
    if code_count <= 0xFF:
        return 1
    if code_count <= 0xFFFF:
        return 2
    return 4


def _pack_codes(codes: list[int], width: int) -> bytes:
    np = accel.np
    if np is not None:
        return np.asarray(codes, dtype=_NUMPY_DTYPE_BY_WIDTH[width]).tobytes()
    packed = _stdarray_of(width, codes)
    if sys.byteorder == "big":
        packed.byteswap()
    return packed.tobytes()


def _stdarray_of(width: int, init):
    from array import array

    return array(_TYPECODE_BY_WIDTH[width], init)


def _unpack_codes(buffer, width: int) -> list[int]:
    np = accel.np
    if np is not None:
        return np.frombuffer(buffer, dtype=_NUMPY_DTYPE_BY_WIDTH[width]).tolist()
    unpacked = _stdarray_of(width, b"")
    unpacked.frombytes(bytes(buffer))
    if sys.byteorder == "big":
        unpacked.byteswap()
    return unpacked.tolist()


def write_segment_v2(path: Path, table: Table) -> list[int]:
    """Write *table* in binary v2; returns per-column block byte offsets.

    Atomic like the v1 writer (temp file + rename).  The dictionary keys
    cells by ``(type, value)`` so numerically-equal cells of different
    types (``True`` / ``1`` / ``1.0``) keep distinct codes and decode back
    to their exact original type.
    """
    path.parent.mkdir(parents=True, exist_ok=True)
    arrays = table.column_arrays
    rows = table.num_rows
    dictionary: list[Cell] = []
    code_of: dict = {}
    column_codes: list[list[int]] = []
    for array in arrays:
        codes: list[int] = []
        for cell in array:
            if is_null(cell):
                codes.append(0 if cell is MISSING or cell.kind == MISSING.kind else 1)
                continue
            key = (type(cell).__name__, cell)
            code = code_of.get(key)
            if code is None:
                code = len(dictionary) + _NULL_CODES
                code_of[key] = code
                dictionary.append(cell)
            codes.append(code)
        column_codes.append(codes)

    width = _width_for(len(dictionary) + _NULL_CODES)
    dict_block = encode_cells_binary(dictionary)
    bitmap_bytes = (rows + 7) // 8

    temp = path.with_name(path.name + ".tmp")
    offsets: list[int] = []
    with temp.open("wb") as handle:
        handle.write(
            _V2_HEADER.pack(
                _V2_MAGIC, width, rows, len(arrays), len(dictionary), len(dict_block)
            )
        )
        handle.write(dict_block)
        for codes in column_codes:
            offsets.append(handle.tell())
            handle.write(_pack_codes(codes, width))
            nonnull = 0
            for row, code in enumerate(codes):
                if code >= _NULL_CODES:
                    nonnull |= 1 << row
            handle.write(nonnull.to_bytes(bitmap_bytes, "little"))
        handle.flush()
        if journal.fsync_enabled():
            os.fsync(handle.fileno())
    temp.replace(path)
    return offsets


class _SegmentV2:
    """Parsed v2 header + dictionary over one contiguous buffer."""

    __slots__ = (
        "buffer", "width", "rows", "cols", "lut", "body_start", "path", "_obj_lut"
    )

    def __init__(self, path: Path, buffer) -> None:
        self.path = path
        self.buffer = buffer
        if len(buffer) < _V2_HEADER.size:
            raise SegmentCorrupted(f"segment {path} is shorter than a v2 header")
        magic, width, rows, cols, dict_count, dict_bytes = _V2_HEADER.unpack_from(
            buffer, 0
        )
        if magic != _V2_MAGIC:
            raise SegmentCorrupted(f"segment {path} has bad magic {magic!r}")
        if width not in (1, 2, 4):
            raise SegmentCorrupted(f"segment {path} declares code width {width}")
        body_start = _V2_HEADER.size + dict_bytes
        expected = body_start + cols * (rows * width + (rows + 7) // 8)
        if len(buffer) != expected:
            raise SegmentCorrupted(
                f"segment {path} holds {len(buffer)} bytes, header implies {expected}"
            )
        try:
            dictionary = decode_cells_binary(
                bytes(buffer[_V2_HEADER.size : body_start]), dict_count
            )
        except BinaryCodecError as exc:
            raise SegmentCorrupted(
                f"segment {path} dictionary is undecodable: {exc}"
            ) from exc
        self.width = width
        self.rows = rows
        self.cols = cols
        self.lut = [MISSING, PRODUCED, *dictionary]
        self.body_start = body_start
        self._obj_lut = None  # lazily-built numpy object LUT for decode

    def codes_at(self, offset: int) -> list[int]:
        """The code array of the column block starting at *offset*."""
        span = self.rows * self.width
        if (
            offset < self.body_start
            or offset + span + (self.rows + 7) // 8 > len(self.buffer)
        ):
            raise SegmentCorrupted(
                f"segment {self.path} column offset {offset} is out of bounds"
            )
        return _unpack_codes(self.buffer[offset : offset + span], self.width)

    def column_offset(self, index: int) -> int:
        return self.body_start + index * (self.rows * self.width + (self.rows + 7) // 8)

    def bitmap_at(self, offset: int) -> int:
        start = offset + self.rows * self.width
        return int.from_bytes(
            bytes(self.buffer[start : start + (self.rows + 7) // 8]), "little"
        )

    def decode(self, codes: list[int]) -> tuple[Cell, ...]:
        lut = self.lut
        try:
            return tuple(map(lut.__getitem__, codes))
        except IndexError:
            bad = max(codes)
            raise SegmentCorrupted(
                f"segment {self.path} holds code {bad}, dictionary ends at "
                f"{len(lut) - 1}"
            ) from None

    def cells_at(self, offset: int) -> tuple[Cell, ...]:
        """The cell array of the column block at *offset*: one contiguous
        code read plus one LUT gather (numpy object fancy-indexing when
        available, the plain map otherwise)."""
        np = accel.np
        if np is None:
            return self.decode(self.codes_at(offset))
        span = self.rows * self.width
        if (
            offset < self.body_start
            or offset + span + (self.rows + 7) // 8 > len(self.buffer)
        ):
            raise SegmentCorrupted(
                f"segment {self.path} column offset {offset} is out of bounds"
            )
        codes = np.frombuffer(
            self.buffer, dtype=_NUMPY_DTYPE_BY_WIDTH[self.width],
            count=self.rows, offset=offset,
        )
        obj_lut = self._obj_lut
        if obj_lut is None:
            obj_lut = self._obj_lut = np.asarray(self.lut, dtype=object)
        try:
            return tuple(obj_lut[codes].tolist())
        except IndexError:
            raise SegmentCorrupted(
                f"segment {self.path} holds code {int(codes.max())}, "
                f"dictionary ends at {len(self.lut) - 1}"
            ) from None


#: Files below this many bytes are read whole instead of memory-mapped:
#: two syscalls (map + unmap) cost more than one small read.
_MMAP_MIN_BYTES = 1 << 20


def _open_v2(path: Path):
    """Open a v2 segment: ``mmap``-backed for large files (zero-copy numpy
    ``frombuffer`` reads), a plain ``read()`` for small ones."""
    handle = path.open("rb")
    try:
        size = os.fstat(handle.fileno()).st_size
        if size >= _MMAP_MIN_BYTES:
            buffer = mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ)
            metrics.counter("segment.open.mmap").inc()
        else:
            buffer = handle.read()
            metrics.counter("segment.open.read").inc()
        try:
            segment = _SegmentV2(path, buffer)
        except SegmentCorrupted:
            if isinstance(buffer, mmap.mmap):
                buffer.close()
            raise
    finally:
        handle.close()
    return segment


def _close_v2(segment: _SegmentV2) -> None:
    if isinstance(segment.buffer, mmap.mmap):
        segment.buffer.close()


def read_columns_v2(path: Path, num_columns: int) -> list[tuple[Cell, ...]]:
    """All column arrays of a v2 segment, in header order."""
    segment = _open_v2(path)
    try:
        if segment.cols != num_columns:
            raise SegmentCorrupted(
                f"segment {path} holds {segment.cols} columns, manifest says "
                f"{num_columns}"
            )
        return [
            segment.cells_at(segment.column_offset(index))
            for index in range(segment.cols)
        ]
    finally:
        _close_v2(segment)


def read_column_v2(path: Path, offset: int) -> tuple[Cell, ...]:
    """One column array of a v2 segment, read by its recorded block offset."""
    segment = _open_v2(path)
    try:
        return segment.cells_at(offset)
    finally:
        _close_v2(segment)


def read_segment_v2_codes(
    path: Path,
) -> tuple[list[Cell], list[list[int]], list[int]]:
    """Code-native view of a v2 segment, for consumers that want to stay in
    integer space: ``(lut, per-column code arrays, per-column non-null
    bitmaps as Python ints)`` where ``lut[0]`` is MISSING, ``lut[1]`` is
    PRODUCED and ``lut[c]`` decodes code ``c``."""
    segment = _open_v2(path)
    try:
        columns: list[list[int]] = []
        bitmaps: list[int] = []
        for index in range(segment.cols):
            offset = segment.column_offset(index)
            codes = segment.codes_at(offset)
            if codes and max(codes) >= len(segment.lut):
                raise SegmentCorrupted(
                    f"segment {path} holds code {max(codes)}, dictionary ends "
                    f"at {len(segment.lut) - 1}"
                )
            columns.append(codes)
            bitmaps.append(segment.bitmap_at(offset))
        return list(segment.lut), columns, bitmaps
    finally:
        _close_v2(segment)
