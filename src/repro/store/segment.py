"""Columnar segment files: one table's cell data, one column per line.

A segment mirrors :attr:`repro.table.table.Table.column_arrays` on disk:
line *i* is column *i*'s cell array under the codec in
:mod:`repro.store.codec`.  The writer records each line's starting byte
offset, which the manifest keeps alongside the table entry -- that is what
makes **per-column lazy loading** a single ``seek`` + ``readline`` instead
of a file scan, so hydrating one column of one table of a 10k-table lake
touches exactly one line of one file.
"""

from __future__ import annotations

from pathlib import Path

from ..table.table import Table
from ..table.values import Cell
from .codec import decode_column, encode_column

__all__ = ["write_segment", "read_column", "read_columns"]


def write_segment(path: Path, table: Table) -> list[int]:
    """Write *table*'s columns to *path*; returns per-column byte offsets.

    The write is atomic (temp file + rename), so a crash mid-write never
    leaves a half-segment behind a manifest that references it.
    """
    path.parent.mkdir(parents=True, exist_ok=True)
    temp = path.with_name(path.name + ".tmp")
    offsets: list[int] = []
    with temp.open("wb") as handle:
        for array in table.column_arrays:
            offsets.append(handle.tell())
            handle.write(encode_column(array).encode("utf-8"))
            handle.write(b"\n")
    temp.replace(path)
    return offsets


def read_column(path: Path, offset: int) -> tuple[Cell, ...]:
    """One column array, read by its recorded byte offset."""
    with path.open("rb") as handle:
        handle.seek(offset)
        line = handle.readline()
    return decode_column(line.decode("utf-8"))


def read_columns(path: Path, num_columns: int) -> list[tuple[Cell, ...]]:
    """All column arrays of a segment, in header order (one sequential read)."""
    arrays: list[tuple[Cell, ...]] = []
    with path.open("rb") as handle:
        for line in handle:
            arrays.append(decode_column(line.decode("utf-8")))
    if len(arrays) != num_columns:
        raise ValueError(
            f"segment {path} holds {len(arrays)} columns, manifest says {num_columns}"
        )
    return arrays
