"""Per-column statistics snapshots: the warm half of the lake store.

A stats snapshot captures everything :class:`repro.table.stats.ColumnStats`
computes from a raw column -- dtype, null/missing counts, the distinct-value
set, the domain token set, normalized text values, and the serialized
MinHash / HyperLogLog sketches -- so a later process restores the whole
cache with :meth:`ColumnStats.from_snapshot` and never re-scans a cell.

Sketch parameters are pinned by :class:`SketchConfig` and recorded in the
store manifest: MinHash signatures are only comparable under identical
``(num_perm, seed)`` and HyperLogLogs only merge at equal precision, so a
snapshot built under one configuration must never be hydrated into a
process expecting another -- the store raises
:class:`~repro.store.lakestore.SketchConfigMismatch` instead of silently
serving incomparable sketches.
"""

from __future__ import annotations

import base64
from dataclasses import asdict, dataclass
from functools import lru_cache
from typing import Any, Callable

from ..sketch.hll import HyperLogLog
from ..sketch.minhash import DEFAULT_NUM_PERM, DEFAULT_SEED, MinHasher, MinHashSignature
from ..table.stats import ColumnStats
from ..table.values import Cell
from .codec import decode_cell, encode_cell

__all__ = ["SketchConfig", "DEFAULT_HLL_PRECISION", "column_stats_payload", "hydrate_column_stats"]

DEFAULT_HLL_PRECISION = 12


@dataclass(frozen=True)
class SketchConfig:
    """The sketch parameters a snapshot was built under.

    Recorded verbatim in the manifest; equality is the compatibility test.
    """

    minhash_num_perm: int = DEFAULT_NUM_PERM
    minhash_seed: int = DEFAULT_SEED
    hll_precision: int = DEFAULT_HLL_PRECISION

    def to_json(self) -> dict[str, int]:
        return asdict(self)

    @classmethod
    def from_json(cls, payload: dict[str, int]) -> "SketchConfig":
        return cls(**payload)

    @property
    def hasher(self) -> MinHasher:
        return _hasher(self.minhash_num_perm, self.minhash_seed)


@lru_cache(maxsize=8)
def _hasher(num_perm: int, seed: int) -> MinHasher:
    # One hasher per parameter pair per process: constructing a MinHasher
    # draws the permutation coefficients, which should happen once, not
    # once per column of a 10k-table lake.
    return MinHasher(num_perm=num_perm, seed=seed)


def _distinct_sort_key(cell: Cell) -> tuple[str, str]:
    # A total order over heterogeneous distinct values, so payloads are
    # deterministic across processes and set-iteration orders.
    return (type(cell).__name__, str(cell))


def column_stats_payload(stats: ColumnStats, config: SketchConfig) -> dict[str, Any]:
    """Serialize one column's full statistics under *config*.

    Forces the base scan and all derived products if they have not run yet
    (ingest time is exactly when that one scan is supposed to happen).
    """
    signature = stats.minhash(config.hasher)
    hll = stats.hll(config.hll_precision)
    return {
        "dtype": stats.dtype,
        "row_count": stats.row_count,
        "null_count": stats.null_count,
        "missing_count": stats.missing_count,
        "numeric_fraction": stats.numeric_fraction,
        "distinct": [
            encode_cell(cell) for cell in sorted(stats.distinct, key=_distinct_sort_key)
        ],
        "tokens": sorted(stats.tokens),
        "text_values": sorted(stats.text_values()),
        "minhash": base64.b64encode(signature.to_bytes()).decode("ascii"),
        "hll": base64.b64encode(hll.to_bytes()).decode("ascii"),
    }


def hydrate_column_stats(
    table_name: str,
    name: str,
    payload: dict[str, Any],
    config: SketchConfig,
    array_loader: Callable[[], tuple[Cell, ...]],
) -> ColumnStats:
    """Rebuild a fully-warmed :class:`ColumnStats` from its payload."""
    signature = MinHashSignature.from_bytes(base64.b64decode(payload["minhash"]))
    hll = HyperLogLog.from_bytes(base64.b64decode(payload["hll"]))
    return ColumnStats.from_snapshot(
        table_name,
        name,
        dtype=payload["dtype"],
        row_count=payload["row_count"],
        null_count=payload["null_count"],
        missing_count=payload["missing_count"],
        numeric_fraction=payload["numeric_fraction"],
        distinct=[decode_cell(value) for value in payload["distinct"]],
        tokens=payload["tokens"],
        text_values=payload["text_values"],
        minhash={(config.minhash_num_perm, config.minhash_seed): signature},
        hll={config.hll_precision: hll},
        array_loader=array_loader,
    )
