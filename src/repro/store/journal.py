"""Intent journal + durable-write helpers for crash-consistent stores.

The protocol (used by :class:`~repro.store.lakestore.LakeStore` for
ingest/remove/migrate and by
:class:`~repro.shard.store.ShardedLakeStore` for rebalance):

1. before touching any file, the store writes ``journal.json`` at its
   root: the operation name, a deterministic ``txn`` id derived from the
   operation's content (:func:`txn_id`), the ``pending`` files it is
   about to create and the ``stale`` files it will delete after commit;
2. data files are written tmp+replace and fsynced, and their directories
   are fsynced, *before* the manifest rename -- so a manifest can never
   point at unsynced bytes;
3. the manifest replace is the commit point: the manifest carries the
   journal's ``txn``;
4. after commit the store deletes the stale files and clears the journal.

Recovery on ``open()`` compares the journal's ``txn`` against the
manifest's: equal means the crash happened after commit (roll forward:
finish deleting ``stale``), different means before (roll back: delete
``pending``).  Either way the store lands byte-for-byte on exactly the
pre- or post-operation state and the journal is cleared.

``txn`` ids are content-derived (not random) on purpose: recovery of a
crashed operation must reproduce the identical committed bytes a crash-
free run would have produced, which is what the crash-at-every-write-
point property test asserts.

Recovery must never settle a *live* writer's journal -- readers may
``open()`` (and therefore attempt recovery) while a writer is mid-
mutation, and rolling back an operation that is still running would
delete files out from under it.  Writers therefore hold an advisory
exclusive ``flock`` on ``.writer.lock`` for the whole journaled span
(:func:`acquire_writer_lock`), released even when the operation dies
(a dead operation *should* be settled); recovery takes the same lock
non-blocking and simply skips settlement while a writer is alive --
the committed manifest it proceeds to read never references pending
files, so the reader still sees a consistent store.

fsync is on by default and can be disabled for benchmarks with
``REPRO_FSYNC=0`` (atomicity via tmp+replace is kept either way; only
power-loss durability is traded).
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Any

try:  # pragma: no cover - fcntl is always present on the POSIX targets
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback: unlocked
    fcntl = None  # type: ignore[assignment]

from ..faults import inject

__all__ = [
    "JOURNAL_NAME",
    "LOCK_NAME",
    "WriterLock",
    "acquire_writer_lock",
    "clear_journal",
    "fsync_dir",
    "fsync_enabled",
    "fsync_file",
    "journal_path",
    "read_journal",
    "set_fsync_enabled",
    "txn_id",
    "write_journal",
    "write_json_atomic",
]

JOURNAL_NAME = "journal.json"
LOCK_NAME = ".writer.lock"

_fsync_on = os.environ.get("REPRO_FSYNC", "1").lower() not in ("0", "false", "no")


def fsync_enabled() -> bool:
    return _fsync_on


def set_fsync_enabled(on: bool) -> None:
    """Benchmark escape hatch (equivalent to ``REPRO_FSYNC=0``)."""
    global _fsync_on
    _fsync_on = bool(on)


def fsync_file(path: Path) -> None:
    if not _fsync_on:
        return
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def fsync_dir(path: Path) -> None:
    """Flush a directory's entry table (the rename itself).  Best-effort:
    some filesystems refuse O_RDONLY fsync on directories."""
    if not _fsync_on:
        return
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform-dependent
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - platform-dependent
        pass
    finally:
        os.close(fd)


def write_json_atomic(path: Path, payload: Any) -> None:
    """tmp + fsync + replace + directory fsync: after this returns the
    new bytes are durable and a crash at any instant shows either the old
    file or the new one, never a torn mix."""
    temp = path.with_name(path.name + ".tmp")
    with temp.open("w", encoding="utf-8") as handle:
        json.dump(payload, handle, ensure_ascii=False, separators=(",", ":"))
        handle.flush()
        if _fsync_on:
            os.fsync(handle.fileno())
    temp.replace(path)
    fsync_dir(path.parent)


class WriterLock:
    """A held advisory writer lock; ``release()`` is idempotent.  The
    OS drops the flock automatically if the holding process dies, which
    is exactly what lets recovery distinguish a crashed writer (lock
    free, journal present -> settle) from a live one (lock held ->
    leave the journal alone)."""

    __slots__ = ("_fd",)

    def __init__(self, fd: int) -> None:
        self._fd = fd

    def release(self) -> None:
        fd, self._fd = self._fd, -1
        if fd < 0:
            return
        if fcntl is not None:
            # Explicit unlock, not just close: a process-pool worker
            # forked while the lock was held inherits a duplicate of
            # this open file description, and a flock lives until
            # *every* duplicate closes -- LOCK_UN releases it now
            # regardless of who else still holds a dup.
            try:
                fcntl.flock(fd, fcntl.LOCK_UN)
            except OSError:  # pragma: no cover - already-dead fd
                pass
        os.close(fd)


def acquire_writer_lock(root: Path, blocking: bool = True) -> WriterLock | None:
    """Exclusive advisory lock marking a live writer at *root*.

    Writers take it blocking around the whole journaled mutation (two
    well-behaved writers serialize instead of corrupting each other);
    recovery takes it non-blocking and returns ``None`` when a live
    writer holds it.  ``flock`` is per open-file-description, so the
    exclusion works between threads of one process as well as between
    processes.  Platforms without ``fcntl`` degrade to unlocked --
    single-writer discipline is then the caller's contract, as it was
    before the journal existed.
    """
    fd = os.open(Path(root) / LOCK_NAME, os.O_CREAT | os.O_RDWR, 0o644)
    if fcntl is None:  # pragma: no cover - non-POSIX fallback
        return WriterLock(fd)
    try:
        fcntl.flock(fd, fcntl.LOCK_EX | (0 if blocking else fcntl.LOCK_NB))
    except OSError:
        os.close(fd)
        return None
    return WriterLock(fd)


def txn_id(*parts: Any) -> str:
    """Deterministic transaction id from the operation's content."""
    blob = json.dumps(parts, sort_keys=True, default=str).encode("utf-8")
    return hashlib.sha1(blob).hexdigest()


def journal_path(root: Path) -> Path:
    return root / JOURNAL_NAME


def write_journal(root: Path, doc: dict[str, Any]) -> None:
    """Record intent durably before the first data write."""
    write_json_atomic(journal_path(root), doc)
    inject.fire("store.write_journal", op=doc.get("op"))


def read_journal(root: Path) -> dict[str, Any] | None:
    try:
        with journal_path(root).open("r", encoding="utf-8") as handle:
            return json.load(handle)
    except FileNotFoundError:
        return None


def clear_journal(root: Path) -> None:
    """Drop the journal once the operation is fully settled."""
    journal_path(root).unlink(missing_ok=True)
    fsync_dir(root)
    inject.fire("store.clear_journal")
