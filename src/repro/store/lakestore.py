"""The persistent lake store: versioned segments + stats snapshots.

Layout of a store directory::

    manifest.json            versioned catalog: per-table content hashes,
                             segment/stats file names, column byte offsets,
                             sketch configuration, persisted-index roster
    segments/<t>.seg.jsonl   one table's cell data, v1: one JSON column
                             per line
    segments/<t>.seg.bin     same data, v2: binary columnar -- fixed-width
                             dictionary codes + per-table value dictionary
                             + null bitmaps (per-entry ``segment_format``
                             manifest tags let both coexist; see
                             :meth:`LakeStore.migrate`)
    stats/<t>.stats.json     the table's ColumnStats snapshot payloads
    indexes/<d>.pkl          one fitted discoverer index per file
    postings/engine.post.jsonl  the candidate engine's inverted posting
                             structures (column registry, token and
                             normalized-value posting lists)

The design goals, in order:

* **Incremental ingest.**  Every table entry carries a content hash;
  :meth:`LakeStore.ingest` rewrites only the segments and stats of tables
  whose hash changed (or that are new), and prunes removed ones.  Adding,
  replacing or deleting one table of a 10k-table lake costs one table's
  worth of I/O plus a manifest write -- never a lake rewrite.
* **Warm starts.**  :meth:`LakeStore.lake` returns a
  :class:`StoredDataLake`: a lazy mapping whose tables materialize from
  segments on first access, each adopting a hydrated
  :class:`~repro.table.stats.TableStats` snapshot -- so a warm process
  serves discovery from persisted sketches with **zero** raw-cell scans
  (``LakeStats.scan_counts()`` stays all-zero, the tested guarantee).
* **Sketch compatibility.**  MinHash signatures only compare under one
  ``(num_perm, seed)`` and HyperLogLogs only merge at one precision, so
  the manifest records the :class:`~repro.store.snapshot.SketchConfig`
  and :meth:`LakeStore.open` raises :class:`SketchConfigMismatch` rather
  than hydrating incomparable sketches.

Versioning: ``lake_version`` increments on every content-changing ingest;
persisted discoverer indexes *and* the persisted posting artifact
remember the version they were fitted/built against and are dropped
(never silently served stale) when it moves on.

Readers and writers may share a store directory across processes: every
file the store writes -- manifest included -- is committed with an atomic
``tmp`` + ``replace``, so a reader never observes a torn manifest, and a
small ``version.json`` sibling (written on every manifest commit) lets
:meth:`LakeStore.current_version` poll the on-disk version cheaply without
re-parsing the full manifest -- the watch hook the serving layer
(:mod:`repro.service`) uses to detect foreign ingests and hot-reload.

Multi-file mutations (ingest, remove, migrate) are additionally
**crash-consistent as a unit**: the store records its intent in
``journal.json`` before the first write, fsyncs every data file (and its
directory) before the manifest replace, stamps the manifest with the
journal's deterministic ``txn`` id, and clears the journal only after the
stale files are gone.  :meth:`LakeStore.open` runs :meth:`recover` first,
which rolls an interrupted operation forward (journal txn == manifest
txn: finish deleting stale files) or back (delete the pending files the
crashed run had written) -- so a crash at *any* write point yields
exactly the old or the new ``lake_version``, with no orphan files.  See
:mod:`repro.store.journal` for the protocol.
"""

from __future__ import annotations

import hashlib
import json
import pickle
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterable, Iterator, Mapping, Sequence

from ..datalake.catalog import DataLake
from ..datalake.stats import LakeStats
from ..discovery.base import Discoverer
from ..faults import inject
from ..obs import metrics, trace
from ..table.stats import TableStats
from ..table.table import Table
from ..table.values import Cell
from . import journal
from .codec import table_content_hash
from .lru import LRUCache
from .segment import (
    read_column,
    read_column_v2,
    read_columns,
    read_columns_v2,
    write_segment,
    write_segment_v2,
)
from .snapshot import SketchConfig, column_stats_payload, hydrate_column_stats

__all__ = [
    "LakeStore",
    "StoredDataLake",
    "StoredLakeStats",
    "IngestReport",
    "StoreError",
    "StoreNotFound",
    "SketchConfigMismatch",
]

_FORMAT = "repro-lake-store"
_FORMAT_VERSION = 1

#: Segment formats this library writes and reads.  ``v1`` is JSON lines
#: (``.seg.jsonl``), ``v2`` the binary dictionary-coded format
#: (``.seg.bin``).  Per-entry tags let the two coexist in one store; the
#: store-level ``segment_format`` manifest key is only the *default* for
#: new writes.  Content hashes are computed over the canonical JSON codec
#: regardless of segment format, so migrating never changes hashes,
#: ``lake_version``, or the validity of persisted indexes/postings.
_SEGMENT_FORMATS = ("v1", "v2")
_DEFAULT_SEGMENT_FORMAT = "v2"


def _check_segment_format(segment_format: str) -> str:
    if segment_format not in _SEGMENT_FORMATS:
        raise StoreError(
            f"unknown segment format {segment_format!r}; "
            f"expected one of {_SEGMENT_FORMATS}"
        )
    return segment_format


class StoreError(RuntimeError):
    """Any structural problem with a lake store on disk."""


class StoreNotFound(StoreError):
    """The given path holds no store manifest."""


class SketchConfigMismatch(StoreError):
    """The snapshot's sketches were built under different parameters."""


@dataclass(frozen=True)
class IngestReport:
    """What one :meth:`LakeStore.ingest` call actually did."""

    added: tuple[str, ...] = ()
    updated: tuple[str, ...] = ()
    removed: tuple[str, ...] = ()
    unchanged: tuple[str, ...] = ()
    lake_version: int = 0

    @property
    def changed(self) -> bool:
        return bool(self.added or self.updated or self.removed)

    def summary(self) -> str:
        return (
            f"v{self.lake_version}: +{len(self.added)} ~{len(self.updated)} "
            f"-{len(self.removed)} ={len(self.unchanged)}"
        )


class LakeStore:
    """A directory-backed, versioned snapshot of a data lake."""

    def __init__(
        self,
        path: Path,
        manifest: dict[str, Any],
        stats_cache_capacity: int | None = None,
    ):
        self._path = Path(path)
        self._manifest = manifest
        self._sketch = SketchConfig.from_json(manifest["sketch"])
        # Hydrated per-table stats, shared between :meth:`table_stats` and
        # the tables :meth:`load_table` materializes -- one object per
        # table name, so the lake-wide scan ledger is coherent.  Unbounded
        # by default (a batch run's working set is one process lifetime);
        # long-running services pass a capacity so recency-evicted
        # snapshots are re-hydrated from disk instead of accreting forever
        # (an evicted snapshot a live table already adopted stays valid --
        # the table keeps its reference; only the store-side pointer goes).
        self._stats_cache: LRUCache = LRUCache(stats_cache_capacity)
        # Held only for the span of a journaled mutation (see _begin).
        self._writer_lock: journal.WriterLock | None = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def create(
        cls,
        path: str | Path,
        sketch_config: SketchConfig | None = None,
        exist_ok: bool = False,
        segment_format: str = _DEFAULT_SEGMENT_FORMAT,
    ) -> "LakeStore":
        """Initialize an empty store at *path* (or open the existing one
        when ``exist_ok`` and the sketch configuration is compatible).

        *segment_format* becomes the store's default for new writes (the
        manifest ``segment_format`` key); stores created before the key
        existed default to ``v1``, so legacy stores stay pure-v1 unless
        migrated or ingested into with an explicit format.
        """
        path = Path(path)
        if (path / "manifest.json").exists():
            if not exist_ok:
                raise StoreError(
                    f"a lake store already exists at {path}; open() it or ingest into it"
                )
            return cls.open(path, sketch_config=sketch_config)
        path.mkdir(parents=True, exist_ok=True)
        manifest = {
            "format": _FORMAT,
            "format_version": _FORMAT_VERSION,
            "segment_format": _check_segment_format(segment_format),
            "lake_version": 0,
            "sketch": (sketch_config or SketchConfig()).to_json(),
            "tables": {},
            "indexes": None,
            "postings": None,
        }
        store = cls(path, manifest)
        store._write_manifest()
        return store

    @classmethod
    def open(
        cls,
        path: str | Path,
        sketch_config: SketchConfig | None = None,
        check_sketch: bool = True,
        stats_cache_capacity: int | None = None,
    ) -> "LakeStore":
        """Open an existing store; validates format and sketch parameters.

        *sketch_config* is what this process expects (library defaults when
        omitted).  A snapshot built under a different MinHash seed /
        permutation count or HLL precision raises
        :class:`SketchConfigMismatch` -- hydrated sketches would silently
        be incomparable with freshly computed ones otherwise.  Pass
        ``check_sketch=False`` to adopt whatever the snapshot recorded.

        *stats_cache_capacity* bounds the hydrated-stats cache by recency
        (None = unbounded, the batch default); see :class:`.lru.LRUCache`.
        """
        path = Path(path)
        cls.recover(path)
        manifest_path = path / "manifest.json"
        if not manifest_path.exists():
            raise StoreNotFound(f"no lake store manifest at {path}")
        manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
        if manifest.get("format") != _FORMAT:
            raise StoreError(f"{manifest_path} is not a {_FORMAT} manifest")
        if manifest.get("format_version", 0) > _FORMAT_VERSION:
            raise StoreError(
                f"store at {path} uses format version {manifest['format_version']}, "
                f"this library reads up to {_FORMAT_VERSION}"
            )
        store = cls(path, manifest, stats_cache_capacity=stats_cache_capacity)
        if check_sketch:
            expected = sketch_config or SketchConfig()
            if store.sketch_config != expected:
                raise SketchConfigMismatch(
                    f"lake store at {path} was built with sketch config "
                    f"{store.sketch_config}, but this process expects {expected}; "
                    f"sketches from different seeds are not comparable -- rebuild "
                    f"the store (index build) or open with the matching SketchConfig"
                )
        return store

    @classmethod
    def recover(cls, path: str | Path) -> dict[str, Any] | None:
        """Settle an interrupted multi-file operation (crash recovery).

        Runs at the top of :meth:`open`.  No journal means the last
        operation finished cleanly -- return ``None`` without touching
        anything.  Otherwise the manifest decides which side of the
        commit point the crash fell on:

        * journal ``txn`` == manifest ``txn``: the operation *committed*;
          roll forward by finishing the post-commit cleanup (delete the
          journal's ``stale`` files, refresh the version beacon);
        * mismatch: the operation never committed; roll back by deleting
          the ``pending`` files the crashed run managed to write -- the
          manifest still references only the old, intact files.

        Either way stray ``*.tmp`` files are garbage-collected and the
        journal is cleared, leaving the directory byte-for-byte equal to
        the pre- or post-operation state.

        A journal whose writer is still *alive* (advisory writer lock
        held -- readers may open while a writer mutates) is left alone:
        the committed manifest never references pending files, so the
        open proceeding without settlement still sees a consistent
        store.
        """
        path = Path(path)
        if journal.read_journal(path) is None:
            return None
        lock = journal.acquire_writer_lock(path, blocking=False)
        if lock is None:
            # Live writer mid-mutation; nothing has crashed.
            return None
        try:
            return cls._settle(path)
        finally:
            lock.release()

    @classmethod
    def _settle(cls, path: Path) -> dict[str, Any] | None:
        """The settlement body of :meth:`recover`; caller holds the
        writer lock (so the journal can no longer change under us --
        re-read it, the writer may have finished between the lock-free
        peek and the lock grant)."""
        doc = journal.read_journal(path)
        (path / (journal.JOURNAL_NAME + ".tmp")).unlink(missing_ok=True)
        if doc is None:
            return None
        manifest_path = path / "manifest.json"
        if not manifest_path.exists():
            # Crashed before the store's very first manifest write; there
            # is no store to repair, only intent to discard.
            journal.journal_path(path).unlink(missing_ok=True)
            return {"op": doc.get("op"), "action": "discarded", "removed": []}
        manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
        committed = manifest.get("txn") == doc.get("txn")
        removed: list[str] = []
        for rel in doc.get("stale" if committed else "pending", []):
            file = path / rel
            if file.exists():
                file.unlink()
                removed.append(rel)
        for sub in ("", "segments", "stats", "indexes", "postings"):
            directory = path / sub if sub else path
            if directory.is_dir():
                for stray in directory.glob("*.tmp"):
                    stray.unlink(missing_ok=True)
        # Re-sync the cheap version beacon: a crash between the manifest
        # replace and the beacon write leaves pollers behind otherwise.
        version_path = path / "version.json"
        try:
            beacon = json.loads(version_path.read_text(encoding="utf-8"))
            beacon_version = int(beacon["lake_version"])
        except (FileNotFoundError, json.JSONDecodeError, KeyError, ValueError):
            beacon_version = None
        if beacon_version != manifest.get("lake_version"):
            journal.write_json_atomic(
                version_path, {"lake_version": manifest["lake_version"]}
            )
        journal.journal_path(path).unlink(missing_ok=True)
        journal.fsync_dir(path)
        metrics.counter("store.recoveries").inc()
        return {
            "op": doc.get("op"),
            "action": "rolled_forward" if committed else "rolled_back",
            "removed": removed,
        }

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def path(self) -> Path:
        return self._path

    @property
    def sketch_config(self) -> SketchConfig:
        return self._sketch

    @property
    def lake_version(self) -> int:
        return self._manifest["lake_version"]

    @property
    def default_segment_format(self) -> str:
        """The format new segment writes use when :meth:`ingest` is not
        told otherwise.  Manifests from before the tag existed read as
        ``v1`` -- their segments are JSON lines and stay that way."""
        return self._manifest.get("segment_format", "v1")

    def segment_format_counts(self) -> dict[str, int]:
        """How many table entries sit in each segment format."""
        counts = dict.fromkeys(_SEGMENT_FORMATS, 0)
        for entry in self._manifest["tables"].values():
            counts[entry.get("segment_format", "v1")] += 1
        return counts

    def current_version(self) -> int:
        """The lake version currently committed **on disk** (cheap poll).

        Unlike :attr:`lake_version` (this handle's in-memory manifest),
        this re-reads the tiny ``version.json`` sibling the store writes on
        every manifest commit -- no manifest re-parse, no re-hydration --
        so a serving process can poll it per request to detect a foreign
        ingest.  Falls back to parsing the manifest for stores written
        before the sibling existed.  Atomic-replace commits guarantee a
        reader sees either the old or the new file, never a torn one.
        """
        try:
            payload = json.loads(
                (self._path / "version.json").read_text(encoding="utf-8")
            )
            return int(payload["lake_version"])
        except (FileNotFoundError, json.JSONDecodeError, KeyError, ValueError):
            pass
        manifest_path = self._path / "manifest.json"
        if not manifest_path.exists():
            raise StoreNotFound(f"no lake store manifest at {self._path}")
        return int(
            json.loads(manifest_path.read_text(encoding="utf-8"))["lake_version"]
        )

    def reopen(self) -> "LakeStore":
        """A fresh handle on this store's current on-disk state (the
        hot-reload path: the old handle keeps serving its snapshot; the new
        one sees the new manifest), preserving the sketch expectation and
        stats-cache bound of this handle."""
        return type(self).open(
            self._path,
            sketch_config=self._sketch,
            stats_cache_capacity=self._stats_cache.capacity,
        )

    @property
    def table_names(self) -> list[str]:
        return list(self._manifest["tables"])

    def __contains__(self, name: object) -> bool:
        return name in self._manifest["tables"]

    def __len__(self) -> int:
        return len(self._manifest["tables"])

    def __repr__(self) -> str:
        return f"LakeStore({str(self._path)!r}, v{self.lake_version}, {len(self)} tables)"

    def info(self) -> dict[str, Any]:
        """A JSON-friendly summary (what ``repro index info`` prints)."""
        tables = {
            name: {
                "rows": entry["num_rows"],
                "columns": len(entry["columns"]),
                "content_hash": entry["content_hash"][:12],
                "segment_format": entry.get("segment_format", "v1"),
            }
            for name, entry in self._manifest["tables"].items()
        }
        indexes = self._manifest.get("indexes") or {}
        discoverers = indexes.get("discoverers") or {}
        return {
            "path": str(self._path),
            "format_version": self._manifest["format_version"],
            "segment_format": self.default_segment_format,
            "segment_format_counts": self.segment_format_counts(),
            "lake_version": self.lake_version,
            "sketch": self._sketch.to_json(),
            "num_tables": len(tables),
            "total_rows": sum(t["rows"] for t in tables.values()),
            "tables": tables,
            "indexes": sorted(discoverers),
            "indexes_lake_version": indexes.get("lake_version"),
            "candidate_specs": {
                name: entry.get("spec")
                for name, entry in discoverers.items()
                if entry.get("spec")
            },
            "postings": self._manifest.get("postings"),
        }

    # ------------------------------------------------------------------
    # Ingest (incremental)
    # ------------------------------------------------------------------
    def ingest(
        self,
        lake: Mapping[str, Table],
        prune: bool = True,
        adopt_stats: bool = True,
        segment_format: str | None = None,
    ) -> IngestReport:
        """Bring the store up to date with *lake*, rewriting only deltas.

        Per table: content hash unchanged -> skip (and, with
        ``adopt_stats``, warm the in-memory table by adopting the stored
        stats snapshot, so a follow-up index build re-scans nothing);
        new/changed -> write that table's segment + stats snapshot.  With
        ``prune``, tables absent from *lake* are dropped.  Any change bumps
        ``lake_version`` and invalidates persisted discoverer indexes.

        *segment_format* chooses the on-disk encoding for the segments
        this call writes (the store's default when ``None``); unchanged
        tables keep whatever format they already have -- use
        :meth:`migrate` to rewrite those.
        """
        segment_format = _check_segment_format(
            segment_format or self.default_segment_format
        )
        tables = self._manifest["tables"]
        added: list[str] = []
        updated: list[str] = []
        unchanged: list[str] = []
        removed: list[str] = []
        writes: list[tuple[str, Table, str]] = []

        for name, table in lake.items():
            digest = table_content_hash(table)
            entry = tables.get(name)
            if entry is not None and entry["content_hash"] == digest:
                unchanged.append(name)
                if adopt_stats:
                    table.adopt_stats(self.table_stats(name))
                continue
            writes.append((name, table, digest))
            (updated if entry is not None else added).append(name)

        if prune:
            removed = [n for n in tables if n not in lake]

        if not writes and not removed:
            self._write_manifest()
            return IngestReport(
                unchanged=tuple(unchanged), lake_version=self.lake_version
            )

        # Plan the whole delta up front so intent can be journaled before
        # the first write.  ``pending`` is every file this call will
        # create; ``stale`` every file that becomes garbage once the new
        # manifest commits.  File stems are content-addressed (the stem
        # embeds the content hash), so an update writes *new* segment/
        # stats files and the manifest replace is the single atomic commit
        # point: a crash at any moment leaves the old manifest describing
        # the old, intact files, and recovery rolls the journal forward or
        # back.  Stale files are unlinked only after the commit.
        stale: list[str] = []
        pending: list[str] = []
        for name, _table, digest in writes:
            entry = tables.get(name)
            if entry is not None:
                stale.extend(entry[key] for key in ("segment", "stats"))
            stem = self._file_stem(name, digest)
            pending.append(self._segment_rel(stem, segment_format))
            pending.append(f"stats/{stem}.stats.json")
        for name in removed:
            stale.extend(tables[name][key] for key in ("segment", "stats"))
        stale.extend(self._artifact_files())

        txn = self._begin("ingest", pending, stale)
        try:
            for name, table, digest in writes:
                tables[name] = self._write_table(name, table, digest, segment_format)
                self._stats_cache.pop(name, None)
            for name in removed:
                tables.pop(name)
                self._stats_cache.pop(name, None)
            self._manifest["lake_version"] += 1
            self._invalidate_indexes()
            self._invalidate_postings()
            self._commit(txn, stale)
        finally:
            self._end()
        return IngestReport(
            added=tuple(added),
            updated=tuple(updated),
            removed=tuple(removed),
            unchanged=tuple(unchanged),
            lake_version=self.lake_version,
        )

    def remove(self, name: str) -> None:
        """Drop one table (segment, stats and manifest entry)."""
        entry = self._manifest["tables"].get(name)
        if entry is None:
            raise KeyError(f"no table {name!r} in store {self._path}")
        stale = [entry["segment"], entry["stats"], *self._artifact_files()]
        txn = self._begin("remove", [], stale)
        try:
            self._manifest["tables"].pop(name)
            self._stats_cache.pop(name, None)
            self._manifest["lake_version"] += 1
            self._invalidate_indexes()
            self._invalidate_postings()
            self._commit(txn, stale)
        finally:
            self._end()

    @staticmethod
    def _segment_rel(stem: str, segment_format: str) -> str:
        suffix = ".seg.bin" if segment_format == "v2" else ".seg.jsonl"
        return f"segments/{stem}{suffix}"

    def _write_segment_file(
        self, stem: str, table: Table, segment_format: str
    ) -> tuple[str, list[int]]:
        """One segment under the chosen format: ``(relative path, offsets)``.

        The segment writers fsync the data before their tmp->replace
        rename; the directory fsync here makes the *entry* durable too,
        so the manifest commit can never reference unsynced bytes."""
        segment_rel = self._segment_rel(stem, segment_format)
        writer = write_segment_v2 if segment_format == "v2" else write_segment
        offsets = writer(self._path / segment_rel, table)
        journal.fsync_dir((self._path / segment_rel).parent)
        return segment_rel, offsets

    def _write_table(
        self, name: str, table: Table, digest: str, segment_format: str
    ) -> dict[str, Any]:
        stem = self._file_stem(name, digest)
        segment_rel, offsets = self._write_segment_file(stem, table, segment_format)
        inject.fire("store.write_segment", table=name)
        stats_rel = f"stats/{stem}.stats.json"
        payload = {
            "columns": {
                column: column_stats_payload(table.stats.column(column), self._sketch)
                for column in table.columns
            }
        }
        self._write_json(self._path / stats_rel, payload)
        inject.fire("store.write_stats", table=name)
        return {
            "content_hash": digest,
            "segment": segment_rel,
            "segment_format": segment_format,
            "stats": stats_rel,
            "columns": list(table.columns),
            "num_rows": table.num_rows,
            "column_offsets": offsets,
        }

    def migrate(self, segment_format: str = _DEFAULT_SEGMENT_FORMAT) -> list[str]:
        """Rewrite every segment not already in *segment_format*; returns
        the migrated table names (possibly empty).

        Only segment files move: stats snapshots, content hashes and
        ``lake_version`` are untouched -- hashes are computed over the
        canonical JSON codec, not the on-disk encoding, so persisted
        discoverer indexes and posting artifacts remain valid across a
        migration.  The manifest commit is the atomic switch point; old
        segment files are unlinked only after it lands.  The store's
        default format for future writes is updated to match.
        """
        _check_segment_format(segment_format)
        plan: list[tuple[str, dict[str, Any]]] = []
        stale: list[str] = []
        pending: list[str] = []
        for name, entry in self._manifest["tables"].items():
            if entry.get("segment_format", "v1") == segment_format:
                continue
            plan.append((name, entry))
            stale.append(entry["segment"])
            pending.append(
                self._segment_rel(
                    self._file_stem(name, entry["content_hash"]), segment_format
                )
            )
        if not plan:
            changed = self.default_segment_format != segment_format
            self._manifest["segment_format"] = segment_format
            if changed:
                self._write_manifest()
            return []
        migrated: list[str] = []
        txn = self._begin("migrate", pending, stale)
        try:
            for name, entry in plan:
                table = self.load_table(name)
                stem = self._file_stem(name, entry["content_hash"])
                segment_rel, offsets = self._write_segment_file(
                    stem, table, segment_format
                )
                inject.fire("store.write_segment", table=name)
                self._manifest["tables"][name] = dict(
                    entry,
                    segment=segment_rel,
                    segment_format=segment_format,
                    column_offsets=offsets,
                )
                migrated.append(name)
            self._manifest["segment_format"] = segment_format
            self._commit(txn, stale)
        finally:
            self._end()
        return migrated

    def _unlink_all(self, relative_paths: Sequence[str]) -> None:
        for rel in relative_paths:
            file = self._path / rel
            if file.exists():
                file.unlink()
                inject.fire("store.unlink_stale", file=rel)

    # ------------------------------------------------------------------
    # Crash-consistent commit protocol (see repro.store.journal)
    # ------------------------------------------------------------------
    def _artifact_files(self) -> list[str]:
        """The files the persisted discoverer indexes and posting
        artifacts own right now -- the part of a content-changing commit's
        stale set that :meth:`_invalidate_indexes` / ``_postings`` will
        disown.  Peek only: the manifest is not touched."""
        files: list[str] = []
        info = self._manifest.get("indexes")
        if info:
            files.extend(
                entry["file"] for entry in (info.get("discoverers") or {}).values()
            )
        postings = self._manifest.get("postings")
        if postings:
            files.append(postings["file"])
            if postings.get("sketches"):
                files.append(postings["sketches"])
        return files

    def _begin(self, op: str, pending: Sequence[str], stale: Sequence[str]) -> str:
        """Journal intent before the first data write.  The txn id is
        content-derived (not random) so recovery of a crashed operation
        reproduces the byte-identical committed state a crash-free run
        would have produced.

        The writer lock is taken first and held until :meth:`_end` --
        it is what stops a concurrent reader's ``open()``-time recovery
        from settling this still-running operation (and serializes two
        well-behaved writers instead of letting them corrupt each
        other)."""
        self._writer_lock = journal.acquire_writer_lock(self._path)
        try:
            txn = journal.txn_id(
                op, self._manifest["lake_version"], sorted(pending), sorted(set(stale))
            )
            journal.write_journal(
                self._path,
                {
                    "op": op,
                    "txn": txn,
                    "base_version": self._manifest["lake_version"],
                    "pending": sorted(pending),
                    "stale": sorted(set(stale)),
                },
            )
        except BaseException:
            # A crash inside the journal write itself must not leave the
            # lock held -- the caller's finally never runs for it.
            self._end()
            raise
        return txn

    def _end(self) -> None:
        """Drop the writer lock (idempotent).  Runs in ``finally`` --
        releasing on *failure* is deliberate: a died operation should be
        settleable by the next ``open()``."""
        lock, self._writer_lock = self._writer_lock, None
        if lock is not None:
            lock.release()

    def _commit(self, txn: str, stale: Sequence[str]) -> None:
        """The atomic switch: stamp the manifest with the journal's txn
        and replace it (data files are already durable), then do the
        post-commit cleanup the journal also describes -- so recovery can
        finish either half."""
        self._manifest["txn"] = txn
        self._write_manifest()
        self._unlink_all(sorted(set(stale)))
        journal.clear_journal(self._path)

    # ------------------------------------------------------------------
    # Hydration (the warm-start read path)
    # ------------------------------------------------------------------
    def lake(self) -> "StoredDataLake":
        """The store's content as a lazy, read-only :class:`DataLake`."""
        return StoredDataLake(self)

    def load_table(self, name: str) -> Table:
        """Materialize one table from its segment, with its hydrated stats
        snapshot attached (so its columns never need a raw re-scan)."""
        entry = self._entry(name)
        segment_format = entry.get("segment_format", "v1")
        reader = read_columns_v2 if segment_format == "v2" else read_columns
        metrics.counter(f"store.decode.{segment_format}").inc()
        with trace.span("store.load_table", table=name, format=segment_format):
            arrays = reader(self._path / entry["segment"], len(entry["columns"]))
            table = Table.from_columns(entry["columns"], arrays, name=name)
            return table.adopt_stats(self.table_stats(name))

    def load_column(self, name: str, column: str) -> tuple[Cell, ...]:
        """One column's cells, read by byte offset (no full-table load)."""
        entry = self._entry(name)
        try:
            position = entry["columns"].index(column)
        except ValueError:
            raise KeyError(
                f"table {name!r} has no column {column!r}; columns: {entry['columns']}"
            ) from None
        segment_format = entry.get("segment_format", "v1")
        reader = read_column_v2 if segment_format == "v2" else read_column
        metrics.counter(f"store.decode_column.{segment_format}").inc()
        return reader(self._path / entry["segment"], entry["column_offsets"][position])

    def table_stats(self, name: str) -> TableStats:
        """The hydrated stats snapshot of one table (cached per name; the
        same object a materialized table adopts, keeping one scan ledger)."""
        cached = self._stats_cache.get(name)
        if cached is not None:
            metrics.counter("store.stats_cache.hits").inc()
            return cached
        metrics.counter("store.stats_cache.rehydrates").inc()
        with trace.span("store.rehydrate_stats", table=name):
            entry = self._entry(name)
            payloads = json.loads(
                (self._path / entry["stats"]).read_text(encoding="utf-8")
            )["columns"]
            by_name = {
                column: hydrate_column_stats(
                    name,
                    column,
                    payloads[column],
                    self._sketch,
                    self._column_loader(name, column),
                )
                for column in entry["columns"]
            }
            cached = TableStats.hydrated(name, entry["columns"], by_name)
            self._stats_cache.put(name, cached)
            metrics.gauge("store.stats_cache.evictions").set(
                self._stats_cache.evictions
            )
        return cached

    def _column_loader(self, name: str, column: str):
        def load() -> tuple[Cell, ...]:
            return self.load_column(name, column)

        return load

    def _entry(self, name: str) -> dict[str, Any]:
        try:
            return self._manifest["tables"][name]
        except KeyError:
            raise KeyError(
                f"no table {name!r} in store {self._path}; "
                f"{len(self._manifest['tables'])} tables available"
            ) from None

    # ------------------------------------------------------------------
    # Persisted discoverer indexes
    # ------------------------------------------------------------------
    def save_indexes(
        self,
        discoverers: Sequence[Discoverer],
        build_seconds: Mapping[str, float] | None = None,
    ) -> None:
        """Persist fitted discoverer indexes, pinned to the current
        ``lake_version`` (a later ingest that changes content drops them)."""
        entries: dict[str, Any] = {}
        for discoverer in discoverers:
            if not discoverer.is_fitted:
                raise StoreError(
                    f"discoverer {discoverer.name!r} is not fitted; build before saving"
                )
            rel = f"indexes/{self._file_stem(discoverer.name)}.pkl"
            file = self._path / rel
            file.parent.mkdir(parents=True, exist_ok=True)
            temp = file.with_name(file.name + ".tmp")
            with temp.open("wb") as handle:
                pickle.dump(discoverer, handle, protocol=pickle.HIGHEST_PROTOCOL)
            temp.replace(file)
            spec = discoverer.candidate_spec()
            entries[discoverer.name] = {
                "file": rel,
                "build_seconds": float((build_seconds or {}).get(discoverer.name, 0.0)),
                "spec": {
                    "channels": list(spec.channels),
                    "budget": spec.budget,
                    "min_candidates": (
                        "k" if spec.min_candidates_is_k else spec.min_candidates
                    ),
                },
            }
        self._manifest["indexes"] = {
            "lake_version": self.lake_version,
            "discoverers": entries,
        }
        self._write_manifest()

    def load_indexes(self) -> dict[str, Discoverer]:
        """The persisted, *current* discoverer indexes (empty dict if none
        were saved or the lake has changed since they were fitted)."""
        info = self._manifest.get("indexes")
        if not info or info.get("lake_version") != self.lake_version:
            return {}
        loaded: dict[str, Discoverer] = {}
        for name, entry in info["discoverers"].items():
            file = self._path / entry["file"]
            if not file.exists():
                # A crash window (or manual tampering) can orphan manifest
                # index entries; treat the set as absent rather than dying.
                return {}
            with file.open("rb") as handle:
                discoverer = pickle.load(handle)
            if not isinstance(discoverer, Discoverer):
                raise StoreError(
                    f"{entry['file']} does not contain a Discoverer "
                    f"(got {type(discoverer).__name__})"
                )
            loaded[name] = discoverer
        return loaded

    def index_build_seconds(self) -> dict[str, float]:
        """Recorded offline build time per persisted discoverer."""
        info = self._manifest.get("indexes") or {}
        return {
            name: entry.get("build_seconds", 0.0)
            for name, entry in (info.get("discoverers") or {}).items()
        }

    def _invalidate_indexes(self) -> list[str]:
        """Mark persisted indexes stale in the manifest; returns their file
        paths for the caller to unlink *after* the manifest commits."""
        info = self._manifest.get("indexes")
        if not info:
            return []
        self._manifest["indexes"] = None
        return [entry["file"] for entry in (info.get("discoverers") or {}).values()]

    # ------------------------------------------------------------------
    # Persisted candidate-engine postings (the sublinear query path's
    # offline artifact; see repro.candidates)
    # ------------------------------------------------------------------
    def save_engine(self, engine, channels: Iterable[str] = ("tokens",)) -> None:
        """Persist the candidate engine's posting structures, pinned to the
        current ``lake_version`` (a later content-changing ingest drops
        them, exactly like discoverer index pickles).

        *channels* is the roster's declared channel union; posting
        channels (``tokens``, ``values``) serialize as JSONL, materialized
        sketch ensembles (banded LSH structures + their signatures) as a
        sibling pickle -- rebuilding bands would otherwise force a warm
        process to page in every table's stats snapshot on its first
        sketch query.  Label namespaces ride inside their publishers'
        index pickles.
        """
        rel = "postings/engine.post.jsonl"
        file = self._path / rel
        file.parent.mkdir(parents=True, exist_ok=True)
        temp = file.with_name(file.name + ".tmp")
        with temp.open("w", encoding="utf-8") as handle:
            for record in engine.to_records(channels):
                handle.write(json.dumps(record, ensure_ascii=False, separators=(",", ":")))
                handle.write("\n")
        temp.replace(file)
        sketches_rel = None
        ensembles = engine.materialized_ensembles()
        if ensembles:
            sketches_rel = "postings/engine.sketches.pkl"
            sketch_file = self._path / sketches_rel
            temp = sketch_file.with_name(sketch_file.name + ".tmp")
            with temp.open("wb") as handle:
                pickle.dump(ensembles, handle, protocol=pickle.HIGHEST_PROTOCOL)
            temp.replace(sketch_file)
        stats = engine.stats()
        self._manifest["postings"] = {
            "file": rel,
            "sketches": sketches_rel,
            "lake_version": self.lake_version,
            "columns": stats["columns"],
            "tokens": (stats["token_postings"] or {}).get("tokens"),
            "token_entries": (stats["token_postings"] or {}).get("entries"),
            "values": (stats["value_postings"] or {}).get("values"),
            "value_entries": (stats["value_postings"] or {}).get("entries"),
            # Band shapes recorded for `index info`; the structures
            # themselves live in the sketches pickle above.
            "ensembles": stats["ensembles"],
        }
        self._write_manifest()

    def load_engine(self, lake: Mapping[str, Table] | None = None, stats=None):
        """The persisted, *current* candidate engine, hydrated over *lake*
        (the store's lazy lake view by default); None when no artifact was
        saved or the lake has changed since it was built.  A hydrated
        engine's posting channels never rebuild (``build_count`` stays 0)."""
        from ..candidates.engine import CandidateEngine

        info = self._manifest.get("postings")
        if not info or info.get("lake_version") != self.lake_version:
            return None
        file = self._path / info["file"]
        if not file.exists():
            # Same crash window as orphaned index entries: treat as absent.
            return None
        if lake is None:
            lake = self.lake()
        with file.open("r", encoding="utf-8") as handle:
            records = (json.loads(line) for line in handle if line.strip())
            engine = CandidateEngine.from_records(lake, records, stats=stats)
        sketches_rel = info.get("sketches")
        if sketches_rel and (self._path / sketches_rel).exists():
            with (self._path / sketches_rel).open("rb") as handle:
                engine.adopt_ensembles(pickle.load(handle))
        return engine

    def _invalidate_postings(self) -> list[str]:
        """Mark the persisted posting artifacts stale; returns their paths
        for unlinking after the manifest commits."""
        info = self._manifest.get("postings")
        if not info:
            return []
        self._manifest["postings"] = None
        stale = [info["file"]]
        if info.get("sketches"):
            stale.append(info["sketches"])
        return stale

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------
    @staticmethod
    def _file_stem(name: str, digest: str = "") -> str:
        # Table names are arbitrary strings; files need a safe, collision-
        # free stem: a readable slug plus a name-hash suffix.  Table data
        # files additionally embed the content hash, which content-
        # addresses them: an update writes to a *new* path, so the old
        # manifest's files survive intact until the new manifest commits.
        slug = re.sub(r"[^A-Za-z0-9._-]+", "_", name)[:48].strip("._") or "table"
        suffix = hashlib.sha1(name.encode("utf-8")).hexdigest()[:10]
        return f"{slug}-{suffix}" + (f"-{digest[:10]}" if digest else "")

    def _write_json(self, path: Path, payload: dict[str, Any]) -> None:
        path.parent.mkdir(parents=True, exist_ok=True)
        journal.write_json_atomic(path, payload)

    def _write_manifest(self) -> None:
        self._write_json(self._path / "manifest.json", self._manifest)
        inject.fire("store.write_manifest")
        # The cheap version beacon `current_version()` polls.  Written
        # *after* the manifest commit: a poller that races the two writes
        # sees an old version and simply reloads one poll later -- it can
        # never see a version the manifest does not yet describe (and
        # recovery re-syncs it if a crash lands between the two writes).
        self._write_json(
            self._path / "version.json",
            {"lake_version": self._manifest["lake_version"]},
        )
        inject.fire("store.write_version")


class StoredDataLake(DataLake):
    """A read-only :class:`DataLake` served from a :class:`LakeStore`.

    Opening the lake reads only the manifest; a table's cells materialize
    from its segment on first ``lake[name]`` access (and are then cached),
    each adopting the store's hydrated stats snapshot.  ``stats`` serves
    hydrated statistics *without* materializing any cell data, which is
    what keeps warm discovery free of raw scans.
    """

    def __init__(self, store: LakeStore):
        super().__init__(())
        self._store = store

    @property
    def store(self) -> LakeStore:
        return self._store

    @property
    def loaded_names(self) -> list[str]:
        """Tables whose cell data has actually been materialized so far."""
        return list(self._tables)

    def add(self, table: Table) -> None:
        raise TypeError(
            "StoredDataLake is read-only; ingest tables into the LakeStore instead"
        )

    def __getitem__(self, name: str) -> Table:
        table = self._tables.get(name)
        if table is None:
            if name not in self._store:
                raise KeyError(
                    f"no table {name!r} in lake; {len(self._store)} tables available"
                )
            table = self._store.load_table(name)
            self._tables[name] = table
        return table

    def __iter__(self) -> Iterator[str]:
        return iter(self._store.table_names)

    def __len__(self) -> int:
        return len(self._store)

    @property
    def names(self) -> list[str]:
        return self._store.table_names

    def tables(self) -> list[Table]:
        """All tables, materializing any that were not loaded yet."""
        return [self[name] for name in self._store.table_names]

    def total_rows(self) -> int:
        # Served from the manifest: counting rows must not page in cells.
        return sum(
            entry["num_rows"] for entry in self._store._manifest["tables"].values()
        )

    @property
    def stats(self) -> "StoredLakeStats":
        return StoredLakeStats(self)

    def __repr__(self) -> str:
        return (
            f"StoredDataLake({len(self)} tables, "
            f"{len(self._tables)} materialized, v{self._store.lake_version})"
        )


class StoredLakeStats(LakeStats):
    """Lake-wide stats over a stored lake, served from hydrated snapshots.

    Unlike the base view, reading statistics here never materializes cell
    data: every method goes through :meth:`LakeStore.table_stats`, which
    returns the same objects materialized tables adopt -- one coherent
    scan ledger either way.
    """

    def __init__(self, lake: StoredDataLake):
        super().__init__(lake)
        self._store = lake.store

    def table(self, name: str) -> TableStats:
        return self._store.table_stats(name)

    def column(self, table_name: str, column: str):
        return self._store.table_stats(table_name).column(column)

    def __iter__(self) -> Iterator[tuple[str, TableStats]]:
        for name in self._store.table_names:
            yield name, self._store.table_stats(name)

    def warm(self) -> "StoredLakeStats":
        # Hydrated snapshots are already warm; ensure without scanning.
        for _, stats in self:
            stats.warm()
        return self

    def scan_counts(self) -> dict[tuple[str, str], int]:
        counts: dict[tuple[str, str], int] = {}
        for name, stats in self:
            for column, count in stats.scan_counts.items():
                counts[(name, column)] = count
        return counts
