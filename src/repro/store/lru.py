"""A small thread-safe LRU map with optional TTL expiry.

Two long-running-service caches are built on this one primitive:

* the :class:`~repro.store.lakestore.LakeStore` hydrated-stats cache
  (``stats_cache_capacity`` -- recency-bounded so a service scanning a
  huge lake does not accrete every table's snapshot forever), and
* the :mod:`repro.service` versioned result cache (capacity + TTL).

Semantics: ``get`` refreshes recency; ``put`` evicts the least recently
used entry once ``capacity`` is exceeded; entries older than ``ttl``
seconds (when set) are treated as absent and dropped on access.  A
``capacity`` of ``None`` means unbounded -- the right default for batch
use, where a process's working set is one run and then the process exits.
All operations take an internal lock, so one instance may be shared by
service worker threads.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from typing import Any, Callable, Hashable, Iterator

__all__ = ["LRUCache"]


class LRUCache:
    """``dict``-like recency cache; None capacity = unbounded."""

    def __init__(
        self,
        capacity: int | None = None,
        ttl: float | None = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        if capacity is not None and capacity < 1:
            raise ValueError(f"LRU capacity must be >= 1 or None, got {capacity}")
        if ttl is not None and ttl <= 0:
            raise ValueError(f"LRU ttl must be positive or None, got {ttl}")
        self.capacity = capacity
        self.ttl = ttl
        self._clock = clock
        self._lock = threading.Lock()
        self._entries: "OrderedDict[Hashable, tuple[float, Any]]" = OrderedDict()
        #: Entries dropped to make room (monotonic; service stats read it).
        self.evictions = 0
        #: Entries dropped because their TTL lapsed.
        self.expirations = 0

    def get(self, key: Hashable, default: Any = None) -> Any:
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                return default
            stamp, value = entry
            if self.ttl is not None and self._clock() - stamp > self.ttl:
                del self._entries[key]
                self.expirations += 1
                return default
            self._entries.move_to_end(key)
            return value

    def put(self, key: Hashable, value: Any) -> None:
        with self._lock:
            self._entries[key] = (self._clock(), value)
            self._entries.move_to_end(key)
            if self.capacity is not None:
                while len(self._entries) > self.capacity:
                    self._entries.popitem(last=False)
                    self.evictions += 1

    def pop(self, key: Hashable, default: Any = None) -> Any:
        with self._lock:
            entry = self._entries.pop(key, None)
            return default if entry is None else entry[1]

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __contains__(self, key: Hashable) -> bool:
        return self.get(key, _SENTINEL) is not _SENTINEL

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def keys(self) -> list[Hashable]:
        """Current keys, least recently used first (a snapshot)."""
        with self._lock:
            return list(self._entries)

    def __iter__(self) -> Iterator[Hashable]:
        return iter(self.keys())

    def __repr__(self) -> str:
        cap = "unbounded" if self.capacity is None else self.capacity
        return f"LRUCache({len(self)}/{cap}, ttl={self.ttl})"


_SENTINEL = object()
