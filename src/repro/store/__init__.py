"""Persistent lake store: versioned columnar segments + stats snapshots.

The discovery pipeline's cold-start cost -- scanning every column, building
every token set, hashing every MinHash/HLL sketch -- should be paid once
per *lake version*, not once per process.  This package is that durable
layer:

* :mod:`repro.store.codec` / :mod:`repro.store.segment` -- cell codec and
  per-column segment files mirroring ``Table.column_arrays``;
* :mod:`repro.store.snapshot` -- serialized
  :class:`~repro.table.stats.ColumnStats` payloads (dtype, null counts,
  distinct/token sets, normalized text, MinHash + HLL sketches) under a
  pinned :class:`SketchConfig`;
* :mod:`repro.store.lakestore` -- the :class:`LakeStore` itself: a
  versioned manifest with per-table content hashes (incremental ingest
  rewrites only changed tables), persisted fitted discoverer indexes, and
  the lazy :class:`StoredDataLake` / :class:`StoredLakeStats` read path
  that powers ``DataLake.open`` and ``LakeIndex.from_store`` warm starts.

Typical use::

    from repro.store import LakeStore

    store = LakeStore.create("lake.store")
    store.ingest(lake)                         # cold: scans each column once
    ...
    store = LakeStore.open("lake.store")       # later process
    warm = store.lake()                        # lazy; no cell data read
    warm.stats.scan_counts()                   # all zero, forever warm
"""

from .codec import BinaryCodecError, table_content_hash
from .lakestore import (
    IngestReport,
    LakeStore,
    SketchConfigMismatch,
    StoredDataLake,
    StoredLakeStats,
    StoreError,
    StoreNotFound,
)
from .segment import SegmentCorrupted
from .snapshot import DEFAULT_HLL_PRECISION, SketchConfig

__all__ = [
    "LakeStore",
    "StoredDataLake",
    "StoredLakeStats",
    "IngestReport",
    "SketchConfig",
    "StoreError",
    "StoreNotFound",
    "SketchConfigMismatch",
    "SegmentCorrupted",
    "BinaryCodecError",
    "table_content_hash",
    "DEFAULT_HLL_PRECISION",
]
