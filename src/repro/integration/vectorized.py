"""Numpy twins of the interned FD kernels: batched partner scans.

The pure kernels in :mod:`repro.integration.intern` walk one partner (or
subsumption candidate) at a time, paying a Python-level bit-walk per
pair.  This module keeps every store entry's code vector as a row of one
contiguous ``int32`` matrix and decides whole partner batches with three
array operations:

* **joinability** -- a shared posting value guarantees the overlap
  condition, so partner *p* conflicts with work *w* iff some position has
  ``p != w`` with both non-null: ``((P != w) & (P != 0) & (w != 0)).any(axis=1)``;
* **merge** -- non-null wins: ``np.where(w != 0, w, P[joinable])``, one
  batched select for every joinable partner of a pop;
* **subsumption** -- candidate *c* subsumes work *w* iff no position has
  ``w`` non-null and ``c != w``: ``~((W != 0) & (C != W)).any(axis=1)``.

Everything order-bearing stays in Python, unchanged from the pure
kernel: partner iteration still sorts by the base-``domain`` packed rank
scalar (a Python int -- ``domain**width`` routinely exceeds ``int64``),
store insertion order still keys the output, and provenance still folds
by the same minimal-witness rule on the same objects.  Results are
therefore *identical* to the pure kernels, which the equivalence
property suite pins (``tests/property/test_vectorized_equivalence.py``).

Dispatch lives in :mod:`.intern`: these twins are used only when numpy
is enabled and the domain fits ``int32``; small partner batches fall
through to the pure per-pair walk, where array setup costs more than it
saves.
"""

from __future__ import annotations

from collections import deque
from typing import Sequence

from .. import accel
from .intern import IntTuple, _min_witness, int_dedupe, int_subsumes

__all__ = ["interned_closure_np", "interned_remove_subsumed_np", "max_int32_domain"]

#: Partner/candidate batches below this size run the pure per-pair walk.
_BATCH_MIN = 8

#: Codes above this cannot live in an int32 matrix; dispatch falls back.
_INT32_LIMIT = 2**31 - 1


def max_int32_domain() -> int:
    return _INT32_LIMIT


def interned_closure_np(
    tuples: Sequence[IntTuple], domain: int, ranks: Sequence[int]
) -> list[IntTuple]:
    """Batched twin of :func:`repro.integration.intern.interned_closure_py`.

    Store entries are named by dense integer **ids** (insertion order);
    postings map packed values to id lists, so a pop's partner set is one
    ``concatenate`` + ``unique`` over int arrays, its legacy iteration
    order one ``lexsort`` over int32 rank rows (no big-int scalars on
    this path), and joinability/merge two batched array operations.  The
    per-pair store bookkeeping -- dedupe lookups, provenance folds, new
    inserts -- is byte-for-byte the pure kernel's.
    """
    np = accel.np
    if not tuples:
        return []
    width = len(tuples[0].codes)

    entries: list[IntTuple] = []
    id_of: dict[tuple[int, ...], int] = {}
    packed_of: list[list[int]] = []
    postings: dict[int, list[int]] = {}
    rank_lut = np.asarray(ranks, dtype=np.int32)

    capacity = 64
    while capacity < 2 * len(tuples):
        capacity *= 2
    matrix = np.zeros((capacity, width), dtype=np.int32)
    # Rank rows sort exactly like the pure kernel's base-domain packed
    # rank scalars: each digit is one position's rank, most-significant
    # first, and rank vectors are unique per store key (ranks is a
    # bijection), so lexicographic order has no ties to break.
    rank_matrix = np.zeros((capacity, width), dtype=np.int32)

    def insert(work: IntTuple) -> int | None:
        nonlocal matrix, rank_matrix, capacity
        key = work.codes
        existing_id = id_of.get(key)
        if existing_id is not None:
            entries[existing_id] = _min_witness(entries[existing_id], work)
            return None
        new_id = len(entries)
        id_of[key] = new_id
        entries.append(work)
        if new_id == capacity:
            capacity *= 2
            matrix = np.resize(matrix, (capacity, width))
            rank_matrix = np.resize(rank_matrix, (capacity, width))
        row = np.asarray(key, dtype=np.int32)
        matrix[new_id] = row
        rank_matrix[new_id] = rank_lut[row]
        packed = [
            position * domain + code for position, code in enumerate(key) if code
        ]
        packed_of.append(packed)
        for value in packed:
            postings.setdefault(value, []).append(new_id)
        return new_id

    agenda: deque[int] = deque()
    for work in tuples:
        new_id = insert(work)
        if new_id is not None:
            agenda.append(new_id)

    intp = np.intp
    while agenda:
        work_id = agenda.popleft()
        work = entries[work_id]
        work_mask = work.mask
        work_tids = work.tids
        lists = [postings[value] for value in packed_of[work_id]]
        if not lists:  # all-null tuple: no postings, no partners
            continue
        if len(lists) == 1:
            partner_ids = np.asarray(lists[0], dtype=intp)
        else:
            partner_ids = np.unique(
                np.concatenate([np.asarray(ids, dtype=intp) for ids in lists])
            )
        # Work's own id is always present (it sits in each of its posting
        # lists); partners are everything else.
        if len(partner_ids) <= 1:
            continue
        w = matrix[work_id]
        partner_ranks = rank_matrix[partner_ids]
        ordered = partner_ids[
            np.lexsort(tuple(partner_ranks[:, i] for i in range(width - 1, -1, -1)))
        ]
        partners = matrix[ordered]
        w_nonnull = w != 0
        conflicts = ((partners != w) & (partners != 0) & w_nonnull).any(axis=1)
        conflicts |= ordered == work_id
        joinable = np.nonzero(~conflicts)[0]
        if joinable.size == 0:
            continue
        merged_block = np.where(w_nonnull, w, partners[joinable])
        partner_id_list = ordered[joinable].tolist()

        for partner_id, merged_list in zip(partner_id_list, merged_block.tolist()):
            partner = entries[partner_id]
            partner_mask = partner.mask
            # Same both-ways mask test as the pure kernel: one-sided pairs
            # reproduce an existing key with a support superset -- no-ops.
            if not work_mask & ~partner_mask or not partner_mask & ~work_mask:
                continue
            merged_codes = tuple(merged_list)
            existing_id = id_of.get(merged_codes)
            if existing_id is None:
                merged = IntTuple(
                    merged_codes,
                    work_mask | partner.mask,
                    work_tids | partner.tids,
                )
                agenda.append(insert(merged))
            else:
                # Same size precheck as the pure kernel: the union cannot
                # beat an existing support smaller than either side.
                existing = entries[existing_id]
                existing_tids = existing.tids
                existing_size = len(existing_tids)
                partner_tids = partner.tids
                if existing_size < len(work_tids) or existing_size < len(
                    partner_tids
                ):
                    continue
                merged_tids = work_tids | partner_tids
                if merged_tids != existing_tids:
                    merged_size = len(merged_tids)
                    if merged_size < existing_size or (
                        merged_size == existing_size
                        and sorted(merged_tids) < sorted(existing_tids)
                    ):
                        existing.tids = merged_tids
    return entries


def interned_remove_subsumed_np(
    tuples: Sequence[IntTuple], domain: int
) -> list[IntTuple]:
    """Batched twin of
    :func:`repro.integration.intern.interned_remove_subsumed_py`."""
    np = accel.np
    unique = int_dedupe(tuples)
    if len(unique) <= 1:
        return unique
    width = len(unique[0].codes)

    postings: dict[int, list[int]] = {}
    packed_lists: list[list[int]] = []
    for i, work in enumerate(unique):
        packed = [
            position * domain + code
            for position, code in enumerate(work.codes)
            if code
        ]
        for value in packed:
            postings.setdefault(value, []).append(i)
        packed_lists.append(packed)

    matrix = np.zeros((len(unique), width), dtype=np.int32)
    for i, work in enumerate(unique):
        matrix[i] = work.codes

    candidate_arrays: dict[int, object] = {}
    kept: list[IntTuple] = []
    for i, work in enumerate(unique):
        packed = packed_lists[i]
        if not packed:
            # All-null tuple: subsumed by anything else.
            continue
        rarest = min(packed, key=lambda value: len(postings[value]))
        candidates = postings[rarest]
        if len(candidates) >= _BATCH_MIN:
            index_array = candidate_arrays.get(rarest)
            if index_array is None:
                index_array = np.asarray(candidates, dtype=np.intp)
                candidate_arrays[rarest] = index_array
            w = matrix[i]
            rows = matrix[index_array]
            subsumes = ~((w != 0) & (rows != w)).any(axis=1)
            dominated = bool((subsumes & (index_array != i)).any())
        else:
            mask = work.mask
            dominated = False
            for j in candidates:
                if j == i:
                    continue
                candidate = unique[j]
                if mask & ~candidate.mask:
                    continue
                if int_subsumes(candidate, work):
                    dominated = True
                    break
        if not dominated:
            kept.append(work)
    return kept
