"""Table integration: Full Disjunction (ALITE and baselines) plus the
comparison operators (outer/inner join, union).  Paper Sec. 2.2.

All integrators consume *aligned* tables (shared columns = integration IDs,
see :mod:`repro.alignment`) and produce provenance-carrying
:class:`IntegratedTable` results.
"""

from .alite import AliteFD, LegacyAliteFD, complementation_closure
from .base import Integrator
from .definition import OracleFD, enumerate_merges
from .explain import explain_fact, fact_lineage
from .intern import IntTuple, ValueInterner, solve_interned
from .iterator import fd_preview, iter_fd
from .nested_loop import NestedLoopFD
from .outerjoin import (
    InnerJoinIntegrator,
    OuterJoinIntegrator,
    UnionIntegrator,
    order_sensitivity,
)
from .parallel import ParallelFD, connected_components
from .subsume import dedupe_tuples, interned_remove_subsumed, remove_subsumed
from .tuples import (
    IntegratedTable,
    WorkTuple,
    joinable,
    merge_tuples,
    normalized_key,
    prepare_integration_input,
    subsumes,
)

__all__ = [
    "Integrator",
    "AliteFD",
    "LegacyAliteFD",
    "NestedLoopFD",
    "ParallelFD",
    "OracleFD",
    "ValueInterner",
    "IntTuple",
    "solve_interned",
    "interned_remove_subsumed",
    "OuterJoinIntegrator",
    "InnerJoinIntegrator",
    "UnionIntegrator",
    "IntegratedTable",
    "WorkTuple",
    "joinable",
    "merge_tuples",
    "subsumes",
    "normalized_key",
    "prepare_integration_input",
    "complementation_closure",
    "connected_components",
    "enumerate_merges",
    "dedupe_tuples",
    "remove_subsumed",
    "order_sensitivity",
    "explain_fact",
    "fact_lineage",
    "iter_fd",
    "fd_preview",
]
