"""Tuple-level machinery for Full Disjunction: provenance, joinability,
merge, subsumption.

Terminology follows the paper's figures:

* every input tuple gets a **TID** (``t1``, ``t2``, ...) numbered across the
  integration set in input order;
* every output tuple gets an **OID** (``f1``, ...) and carries the set of
  TIDs it was merged from;
* two tuples are **joinable** (ALITE: *complementing*) when they agree on
  every attribute where both are non-null **and** share at least one
  attribute where both are non-null and equal -- the connectedness condition
  that stops FD from degenerating into a cartesian product;
* tuple ``a`` **subsumes** ``b`` when ``a`` repeats all of ``b``'s non-null
  values (so ``b`` adds nothing).

Null *kind* (missing ``±`` vs produced ``⊥``) never affects joinability or
subsumption -- both kinds are "no value" -- but it is tracked through merges
so the integrated table can render Figures 3/8 faithfully.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

from ..table.ops import outer_union
from ..table.table import Table
from ..table.values import MISSING, PRODUCED, Cell, coalesce, is_null

__all__ = [
    "WorkTuple",
    "joinable",
    "merge_tuples",
    "subsumes",
    "cell_key",
    "normalized_key",
    "prepare_integration_input",
    "base_cells_map",
    "canonicalize_null_kinds",
    "missing_positions_map",
    "IntegratedTable",
]


@dataclass
class WorkTuple:
    """One tuple in an FD working set: cells plus supporting TIDs."""

    cells: tuple[Cell, ...]
    tids: frozenset[str]

    def non_null_positions(self) -> tuple[int, ...]:
        """Indices of the cells carrying values."""
        return tuple(i for i, cell in enumerate(self.cells) if not is_null(cell))

    def non_null_count(self) -> int:
        """How many cells carry values (the tuple's information mass)."""
        return sum(1 for cell in self.cells if not is_null(cell))


def joinable(a: Sequence[Cell], b: Sequence[Cell]) -> bool:
    """ALITE's complementation condition (see module docstring).

    Value equality follows :func:`repro.table.values.values_equal` and
    :func:`cell_key`: ``1`` joins ``1.0``, but ``True`` never joins ``1``
    (bool is kept distinct from int in data context, so the predicate
    agrees with the keys the working-set stores and postings use).
    """
    share = False
    for cell_a, cell_b in zip(a, b):
        null_a, null_b = is_null(cell_a), is_null(cell_b)
        if null_a or null_b:
            continue
        if cell_a != cell_b or isinstance(cell_a, bool) != isinstance(cell_b, bool):
            return False
        share = True
    return share


def merge_tuples(a: WorkTuple, b: WorkTuple) -> WorkTuple:
    """Merge two joinable tuples: non-null values win, null kinds combine,
    provenance unions.  Caller must have checked :func:`joinable`."""
    cells = tuple(coalesce(cell_a, cell_b) for cell_a, cell_b in zip(a.cells, b.cells))
    return WorkTuple(cells=cells, tids=a.tids | b.tids)


def subsumes(a: Sequence[Cell], b: Sequence[Cell]) -> bool:
    """Whether *a* subsumes *b* (a repeats every non-null value of b).

    Reflexive by this definition; callers decide how to break ties between
    equal tuples (the FD algorithms dedupe by value first, so strictness is
    handled there).
    """
    for cell_a, cell_b in zip(a, b):
        if is_null(cell_b):
            continue
        if (
            is_null(cell_a)
            or cell_a != cell_b
            or isinstance(cell_a, bool) != isinstance(cell_b, bool)
        ):
            return False
    return True


_NULL_KEY = ("null",)


def cell_key(cell: Cell) -> tuple:
    """The per-cell component of :func:`normalized_key` (null kind ignored).

    Exposed separately because the FD hot paths (complementation closure,
    subsumption) key their inverted indexes by single cells and must not pay
    a per-cell tuple-of-one round trip through :func:`normalized_key`.
    """
    if is_null(cell):
        return _NULL_KEY
    if isinstance(cell, bool):
        return ("bool", cell)
    if isinstance(cell, (int, float)):
        return ("num", float(cell))
    return ("str", str(cell))


def normalized_key(cells: Sequence[Cell]) -> tuple:
    """A dict key for cells that ignores null *kind* (± and ⊥ collapse) but
    keeps everything else exact -- two derivations of the same fact must
    land on one output tuple."""
    return tuple(cell_key(cell) for cell in cells)


def combine_duplicate(existing: WorkTuple, new: WorkTuple) -> WorkTuple:
    """Fold two derivations of the same fact into one tuple.

    Provenance policy: the **canonical minimal witness** wins -- the
    derivation with the fewest supporting TIDs, ties broken by the sorted
    TID list.  This is a commutative, associative, idempotent minimum, so
    the stored provenance is independent of the order in which derivations
    are discovered.  It also matches the paper's Figure 8(b), where ``f12``
    keeps ``{t16}`` although merging ``t12`` re-derives the same values:
    a subsumed input never tints the surviving fact.

    Output null *kinds* are recomputed from the final provenance by
    :func:`canonicalize_null_kinds`, so they need no handling here.
    """
    key_existing = (len(existing.tids), sorted(existing.tids))
    key_new = (len(new.tids), sorted(new.tids))
    return existing if key_existing <= key_new else new


def prepare_integration_input(
    tables: Sequence[Table],
) -> tuple[tuple[str, ...], list[WorkTuple], dict[str, tuple[str, int]]]:
    """Shared preamble of every FD algorithm.

    Outer-unions the (already aligned) tables over the united header, labels
    input tuples ``t1..tn`` in input order, and converts any raw nulls the
    inputs carried into *missing* nulls (they predate integration).  Returns
    ``(header, work tuples, tid -> (table name, row index))``.
    """
    if not tables:
        raise ValueError("cannot integrate an empty set of tables")
    unioned = outer_union(tables)
    header = unioned.columns
    tuples: list[WorkTuple] = []
    tid_sources: dict[str, tuple[str, int]] = {}
    counter = 0
    position = 0
    for table in tables:
        own_columns = set(table.columns)
        for row_index in range(table.num_rows):
            counter += 1
            tid = f"t{counter}"
            tid_sources[tid] = (table.name, row_index)
            raw = unioned.rows[position]
            position += 1
            cells = tuple(
                (MISSING if column in own_columns else cell) if is_null(cell) else cell
                for column, cell in zip(header, raw)
            )
            tuples.append(WorkTuple(cells=cells, tids=frozenset({tid})))
    return header, tuples, tid_sources


def base_cells_map(tuples: Sequence[WorkTuple]) -> dict[str, tuple[Cell, ...]]:
    """tid -> input cells, from the singleton-tid tuples of
    :func:`prepare_integration_input` (before any dedup or merging)."""
    mapping: dict[str, tuple[Cell, ...]] = {}
    for work in tuples:
        for tid in work.tids:
            mapping[tid] = work.cells
    return mapping


def missing_positions_map(
    base: dict[str, tuple[Cell, ...]]
) -> dict[str, frozenset[int]]:
    """tid -> positions where that input tuple carries an explicit missing
    null.  The precomputation behind :func:`canonicalize_null_kinds`;
    callers canonicalizing many tuple batches over one input set (e.g. the
    component-at-a-time iterator) build it once and pass it through."""
    missing_of: dict[str, frozenset[int]] = {}
    for tid, source in base.items():
        positions = frozenset(
            i for i, cell in enumerate(source) if cell is MISSING
        )
        if positions:
            missing_of[tid] = positions
    return missing_of


def canonicalize_null_kinds(
    tuples: Sequence[WorkTuple],
    base: dict[str, tuple[Cell, ...]],
    missing_of: dict[str, frozenset[int]] | None = None,
) -> list[WorkTuple]:
    """Make output null kinds a pure function of provenance.

    A null in an output fact is *missing* (``±``) iff some supporting input
    tuple carried an explicit missing null at that attribute; otherwise it is
    *produced* (``⊥``).  This is exactly how the paper's figures annotate
    nulls, and -- because it depends only on (provenance, attribute) -- it
    makes every FD algorithm's output deterministic regardless of the order
    in which merges were discovered.

    *missing_of* is the per-TID missing-position index of
    :func:`missing_positions_map`; it is derived from *base* when not
    supplied, so the inner question per output null is a set-membership
    test instead of a rescan of the supporting input tuple's cell vector.
    """
    if missing_of is None:
        missing_of = missing_positions_map(base)

    canonical = []
    for work in tuples:
        cells = list(work.cells)
        for position, cell in enumerate(cells):
            if not is_null(cell):
                continue
            kind: Cell = PRODUCED
            for tid in work.tids:
                positions = missing_of.get(tid)
                if positions is not None and position in positions:
                    kind = MISSING
                    break
            cells[position] = kind
        canonical.append(WorkTuple(cells=tuple(cells), tids=work.tids))
    return canonical


class IntegratedTable(Table):
    """A table whose rows carry provenance (the figures' OID/TIDs columns).

    ``provenance[i]`` is the frozenset of TIDs supporting row ``i``;
    ``tid_sources`` maps each TID back to its (table name, row index).
    """

    __slots__ = ("provenance", "tid_sources", "algorithm", "input_tuples")

    def __init__(
        self,
        columns: Sequence[str],
        rows: Sequence[Sequence[Cell]],
        provenance: Sequence[frozenset[str]],
        tid_sources: dict[str, tuple[str, int]],
        name: str = "integrated",
        algorithm: str = "",
        input_tuples: Sequence[WorkTuple] = (),
    ):
        super().__init__(columns, rows, name=name)
        if len(provenance) != self.num_rows:
            raise ValueError("provenance must align with rows")
        self.provenance = tuple(provenance)
        self.tid_sources = dict(tid_sources)
        self.algorithm = algorithm
        #: The original (singleton-TID) input tuples over this header --
        #: kept so integration can continue incrementally: a tuple that was
        #: subsumed away can still merge with a *future* table's rows.
        self.input_tuples = tuple(input_tuples)

    @classmethod
    def from_work_tuples(
        cls,
        header: Sequence[str],
        tuples: Sequence[WorkTuple],
        tid_sources: dict[str, tuple[str, int]],
        name: str = "integrated",
        algorithm: str = "",
        input_tuples: Sequence[WorkTuple] = (),
    ) -> "IntegratedTable":
        """Build the final table, ordering rows by their smallest TID (the
        paper's presentation order) and then by value for determinism."""

        # TIDs repeat across many output tuples' provenance sets; parse
        # each one once per call instead of once per (tuple, tid) pair.
        numbers: dict[str, int] = {}

        def tid_number(tid: str) -> int:
            number = numbers.get(tid)
            if number is None:
                number = numbers[tid] = int(tid[1:])
            return number

        def sort_key(work: WorkTuple):
            smallest = min((tid_number(t) for t in work.tids), default=1 << 30)
            return (smallest, normalized_key(work.cells))

        ordered = sorted(tuples, key=sort_key)
        return cls(
            columns=tuple(header),
            rows=[w.cells for w in ordered],
            provenance=[w.tids for w in ordered],
            tid_sources=tid_sources,
            name=name,
            algorithm=algorithm,
            input_tuples=input_tuples,
        )

    def iter_facts(self) -> Iterator[tuple[str, frozenset[str], tuple[Cell, ...]]]:
        """Yield ``(OID, TIDs, cells)`` in presentation order."""
        for i, row in enumerate(self.rows):
            yield (f"f{i + 1}", self.provenance[i], row)

    def to_display_table(self) -> Table:
        """The figures' rendering: OID and TIDs as leading columns."""
        rows = []
        for oid, tids, cells in self.iter_facts():
            tid_text = "{" + ", ".join(sorted(tids, key=lambda t: int(t[1:]))) + "}"
            rows.append((oid, tid_text, *cells))
        return Table(("OID", "TIDs", *self.columns), rows, name=self.name)

    def find_fact(self, **values: Cell) -> frozenset[str] | None:
        """Provenance of the first row matching all given column values, or
        ``None`` -- a convenience for tests and examples."""
        positions = {self.column_index(k): v for k, v in values.items()}
        for i, row in enumerate(self.rows):
            if all(row[p] == v for p, v in positions.items()):
                return self.provenance[i]
        return None
