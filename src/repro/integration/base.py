"""The integration-operator API (paper Sec. 2.2 / Sec. 3.2, Fig. 6).

An integrator turns an *aligned* integration set (tables whose shared
columns already carry the same integration IDs) into one
:class:`~repro.integration.tuples.IntegratedTable`.  ALITE's Full
Disjunction is the default; outer join, inner join and union are provided as
the comparison operators the demo plugs in, and users can register their own
through :mod:`repro.core.registry`.
"""

from __future__ import annotations

import abc
from typing import Sequence

from ..table.table import Table
from .tuples import IntegratedTable

__all__ = ["Integrator"]


class Integrator(abc.ABC):
    """Base class for integration operators."""

    #: Short identifier used by the pipeline registry and result labels.
    name: str = "integrator"

    def integrate(self, tables: Sequence[Table], name: str = "integrated") -> IntegratedTable:
        """Integrate *tables* (aligned, uniquely named) into one table."""
        if not tables:
            raise ValueError("cannot integrate an empty set of tables")
        table_names = [t.name for t in tables]
        if len(set(table_names)) != len(table_names):
            raise ValueError(f"integration-set tables must be uniquely named: {table_names}")
        return self._integrate(list(tables), name)

    @abc.abstractmethod
    def _integrate(self, tables: list[Table], name: str) -> IntegratedTable:
        """Implementation hook."""
