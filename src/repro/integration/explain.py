"""Fact explanation: attribute-level lineage of an integrated tuple.

The demo's "validate the intermediate results" interaction needs an answer
to *why is this fact in the output?*  ``explain_fact`` decomposes one output
row into, per attribute, the value and exactly which supporting source
tuples contributed it (with their table and row); nulls are explained by
their kind (withheld by a source vs never stated by any source).
"""

from __future__ import annotations

from ..table.table import Table
from ..table.values import is_missing, is_null
from .tuples import IntegratedTable

__all__ = ["explain_fact", "fact_lineage"]


def fact_lineage(
    integrated: IntegratedTable, oid: str
) -> list[dict[str, object]]:
    """Structured lineage for one output fact (``oid`` like ``"f3"``).

    Each entry: ``{"attribute", "value", "tids", "sources"}`` where *tids*
    are the supporting tuple ids that carry the value and *sources* their
    ``(table, row index)`` origins.  Requires the integrated table to carry
    its input tuples (AliteFD results do).
    """
    if not oid.startswith("f"):
        raise ValueError(f"OIDs look like 'f3'; got {oid!r}")
    index = int(oid[1:]) - 1
    if not 0 <= index < integrated.num_rows:
        raise KeyError(f"{oid} out of range; table has {integrated.num_rows} facts")
    if not integrated.input_tuples:
        raise ValueError(
            "integrated table carries no input tuples; explanation needs an "
            "AliteFD-produced result"
        )
    row = integrated.rows[index]
    tids = integrated.provenance[index]
    inputs = {
        tid: work.cells
        for work in integrated.input_tuples
        for tid in work.tids
        if tid in tids
    }
    lineage = []
    for position, column in enumerate(integrated.columns):
        value = row[position]
        if is_null(value):
            supporting: list[str] = []
        else:
            supporting = sorted(
                (tid for tid, cells in inputs.items() if cells[position] == value),
                key=lambda t: int(t[1:]),
            )
        lineage.append(
            {
                "attribute": column,
                "value": value,
                "tids": supporting,
                "sources": [integrated.tid_sources[tid] for tid in supporting],
            }
        )
    return lineage


def explain_fact(integrated: IntegratedTable, oid: str) -> Table:
    """Human-readable lineage table for one output fact."""
    lineage = fact_lineage(integrated, oid)
    rows = []
    for entry in lineage:
        value = entry["value"]
        if is_null(value):
            origin = (
                "withheld by a source (±)" if is_missing(value) else "no source states it (⊥)"
            )
        else:
            origin = "; ".join(
                f"{tid} = {table}[{row_index}]"
                for tid, (table, row_index) in zip(entry["tids"], entry["sources"])
            )
        rows.append((entry["attribute"], repr(value) if is_null(value) else value, origin))
    return Table(["attribute", "value", "origin"], rows, name=f"{integrated.name}_{oid}")
