"""The interned-value Full Disjunction kernel: FD hot paths on integers.

The object-level kernel (kept as :class:`~repro.integration.alite.LegacyAliteFD`)
pays for every ``joinable`` / ``subsumes`` / ``merge`` with per-cell type
dispatch, and keys every posting and store entry by a tuple of tagged
tuples built by :func:`~repro.integration.tuples.cell_key`.  This module
replaces that representation wholesale:

* a :class:`ValueInterner` maps each distinct ``cell_key`` to a small
  integer **code** (``0`` is reserved for nulls of either kind -- null
  *kind* is recomputed from provenance afterwards, see
  :func:`~repro.integration.tuples.canonicalize_null_kinds`, so the kernel
  never needs to carry it);
* working tuples become :class:`IntTuple`: a tuple of codes plus a
  **non-null bitmask**, so the subsumption candidate check and the
  joinability overlap check are one mask ``AND`` before any cell loop;
* closure and subsumption postings are keyed by one packed integer,
  ``position * domain + code``, instead of a ``(position, tagged tuple)``
  pair; store keys are the code vectors themselves.

**Determinism / equivalence contract.**  The interned kernel must produce
*identical* results to the legacy kernel -- cells, null kinds, provenance
and row order.  Value identity is easy (``cell_key`` equality is code
equality by construction).  Provenance is subtler: the closure folds
re-derivations of a fact with a minimal-witness rule, and *which*
derivations occur depends on the order tuples meet, so the kernel must
iterate partners in exactly the legacy order (sorted store keys).  Codes
are assigned in arrival order, which is *not* value order -- so every
closure run uses a **rank permutation** (:meth:`ValueInterner.sort_ranks`):
code ``c`` maps to the rank of its tagged key in the sorted domain.  Rank
vectors are order-isomorphic to the legacy tagged-key store keys, so
sorting by them reproduces the legacy iteration exactly -- regardless of
how the interner's domain accreted (fresh per integration, or reused
across a lake / an incremental session).

Interning contract: an interner is **append-only** (codes are never
reassigned or dropped), so one interner may be shared across many
integrations -- :class:`~repro.integration.alite.AliteFD` holds one per
instance precisely for incremental integration, which re-interns new rows
against the stored domain.  **Cell spelling:** a code is rendered back
with a *per-call* representative -- the first spelling seen in *this
integration's* input (never a spelling left over from an earlier call on
a shared interner, so results are independent of domain history).  The
one visible normalization this implies: when an integration mixes
``==``-equal numeric spellings of one value (``1`` and ``1.0`` -- the
only cells :func:`~repro.integration.tuples.cell_key` collapses), every
occurrence renders as the input's first spelling, where the legacy
kernel preserves each unmerged row's own spelling.  The property suite
therefore compares cells by ``==`` *and* by normalized key, which is
exactly the equivalence the relational semantics define.
"""

from __future__ import annotations

from collections import deque
from time import perf_counter
from typing import Callable, Iterable, Sequence

from .. import accel
from ..obs import metrics, trace
from ..table.values import MISSING, PRODUCED, Cell, is_null
from .tuples import WorkTuple, cell_key

__all__ = [
    "ValueInterner",
    "IntTuple",
    "NULL_CODE",
    "intern_tuples",
    "intern_call_input",
    "unintern_tuple",
    "int_joinable",
    "int_subsumes",
    "int_merge",
    "int_dedupe",
    "interned_closure",
    "interned_closure_py",
    "interned_remove_subsumed",
    "interned_remove_subsumed_py",
    "int_connected_components",
    "solve_interned",
    "fd_stats_from_span",
]

#: The code every null cell (either kind) interns to.
NULL_CODE = 0

_NULL_KEY = cell_key(MISSING)


class ValueInterner:
    """Append-only bijection between distinct ``cell_key`` values and codes.

    Code ``0`` is the null code; value codes start at ``1`` and are handed
    out in arrival order.  ``cell(code)`` returns the representative cell
    (the first cell interned for that key) for rendering results back at
    the object level.
    """

    __slots__ = ("_code_of", "_cells", "_keys", "_ranks_cache")

    def __init__(self) -> None:
        self._code_of: dict[tuple, int] = {}
        self._cells: list[Cell] = [PRODUCED]
        self._keys: list[tuple] = [_NULL_KEY]
        self._ranks_cache: tuple[int, tuple[int, ...]] | None = None

    def __len__(self) -> int:
        return len(self._cells) - 1  # distinct non-null values

    @property
    def domain(self) -> int:
        """Number of codes handed out, nulls included (= max code + 1)."""
        return len(self._cells)

    def code(self, cell: Cell) -> int:
        """Intern one cell (nulls of either kind collapse to ``NULL_CODE``)."""
        if is_null(cell):
            return NULL_CODE
        key = cell_key(cell)
        code = self._code_of.get(key)
        if code is None:
            code = len(self._cells)
            self._code_of[key] = code
            self._cells.append(cell)
            self._keys.append(key)
        return code

    def codes(self, cells: Sequence[Cell]) -> tuple[int, ...]:
        """Intern a whole cell vector."""
        return tuple(self.code(cell) for cell in cells)

    def cell(self, code: int) -> Cell:
        """The representative cell of a code (``PRODUCED`` for the null code;
        callers re-kind nulls from provenance)."""
        return self._cells[code]

    def key(self, code: int) -> tuple:
        """The tagged ``cell_key`` a code stands for."""
        return self._keys[code]

    def sort_ranks(self) -> tuple[int, ...]:
        """``ranks[code]`` = position of the code's tagged key in the sorted
        domain (null key included).

        Rank vectors compare exactly like the legacy kernel's tagged-key
        store keys, which is what keeps the interned closure's iteration
        order -- and therefore its provenance folding -- identical to the
        object kernel's.  Cached until the domain grows.
        """
        cached = self._ranks_cache
        if cached is not None and cached[0] == len(self._keys):
            return cached[1]
        order = sorted(range(len(self._keys)), key=self._keys.__getitem__)
        ranks = [0] * len(order)
        for rank, code in enumerate(order):
            ranks[code] = rank
        frozen = tuple(ranks)
        self._ranks_cache = (len(self._keys), frozen)
        return frozen


class IntTuple:
    """One FD working tuple in the interned domain.

    ``codes[i] == 0`` means null at position *i*; ``mask`` has bit *i* set
    iff position *i* is non-null.  Pickles compactly (ints + tid strings),
    which is what makes shipping components to a process pool cheap.
    """

    __slots__ = ("codes", "mask", "tids")

    def __init__(self, codes: tuple[int, ...], mask: int, tids: frozenset[str]):
        self.codes = codes
        self.mask = mask
        self.tids = tids

    def __reduce__(self):
        return (IntTuple, (self.codes, self.mask, self.tids))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"IntTuple({self.codes!r}, tids={sorted(self.tids)})"


def mask_of(codes: Sequence[int]) -> int:
    """The non-null bitmask of a code vector."""
    mask = 0
    for position, code in enumerate(codes):
        if code:
            mask |= 1 << position
    return mask


def intern_tuples(
    tuples: Iterable[WorkTuple], interner: ValueInterner
) -> list[IntTuple]:
    """Object working set -> interned working set (null kinds collapse).

    Convenience form of :func:`intern_call_input` for callers that do not
    need the per-call spelling map (tests, ad-hoc kernel use)."""
    return intern_call_input(tuples, interner)[0]


def intern_call_input(
    tuples: Iterable[WorkTuple], interner: ValueInterner
) -> tuple[list[IntTuple], dict[int, Cell]]:
    """Intern one integration's input and capture its **per-call
    representative cells**: for each code, the first spelling this input
    carries.  Rendering outputs through this map (not the interner's
    global first-seen cells) keeps results independent of what a shared
    interner saw in earlier calls."""
    code_of = interner.code
    cells_by_code: dict[int, Cell] = {}
    out = []
    for work in tuples:
        codes = []
        mask = 0
        for position, cell in enumerate(work.cells):
            code = code_of(cell)
            codes.append(code)
            if code:
                mask |= 1 << position
                if code not in cells_by_code:
                    cells_by_code[code] = cell
        out.append(IntTuple(tuple(codes), mask, work.tids))
    return out, cells_by_code


def unintern_tuple(
    work: IntTuple,
    interner: ValueInterner,
    cells_by_code: dict[int, Cell] | None = None,
) -> WorkTuple:
    """Interned tuple -> object tuple.  Nulls come back as ``PRODUCED``
    placeholders; callers must follow with
    :func:`~repro.integration.tuples.canonicalize_null_kinds` (which every
    FD algorithm does anyway -- null kind is a pure function of provenance).

    *cells_by_code* is the per-call spelling map of
    :func:`intern_call_input`; without it, the interner's global
    representatives are used (fine for single-use interners)."""
    if cells_by_code is None:
        cell = interner.cell
        return WorkTuple(
            cells=tuple(cell(code) if code else PRODUCED for code in work.codes),
            tids=work.tids,
        )
    get = cells_by_code.get
    cell = interner.cell
    return WorkTuple(
        cells=tuple(
            get(code, cell(code)) if code else PRODUCED for code in work.codes
        ),
        tids=work.tids,
    )


# ----------------------------------------------------------------------
# Kernel predicates: tight int loops behind one-mask prefilters
# ----------------------------------------------------------------------
def int_joinable(a: IntTuple, b: IntTuple) -> bool:
    """ALITE's complementation condition on interned tuples.

    One ``AND`` decides the overlap requirement; conflicts can only occur
    at shared non-null positions, so the loop walks the set bits of the
    common mask only.
    """
    common = a.mask & b.mask
    if not common:
        return False
    a_codes, b_codes = a.codes, b.codes
    while common:
        position = (common & -common).bit_length() - 1
        if a_codes[position] != b_codes[position]:
            return False
        common &= common - 1
    return True


def int_subsumes(a: IntTuple, b: IntTuple) -> bool:
    """Whether *a* subsumes *b*: one mask check (*b* must add no
    positions), then code equality over *b*'s non-null positions."""
    remaining = b.mask
    if remaining & ~a.mask:
        return False
    a_codes, b_codes = a.codes, b.codes
    while remaining:
        position = (remaining & -remaining).bit_length() - 1
        if a_codes[position] != b_codes[position]:
            return False
        remaining &= remaining - 1
    return True


def int_merge(a: IntTuple, b: IntTuple) -> IntTuple:
    """Merge two joinable interned tuples (non-null wins, provenance
    unions).  Caller must have checked :func:`int_joinable`."""
    codes = tuple(x if x else y for x, y in zip(a.codes, b.codes))
    return IntTuple(codes, a.mask | b.mask, a.tids | b.tids)


def _min_witness(a: IntTuple, b: IntTuple) -> IntTuple:
    """The canonical minimal-witness fold of two derivations of one fact --
    the interned twin of :func:`~repro.integration.tuples.combine_duplicate`
    (fewest supporting TIDs, ties by sorted TID list)."""
    key_a = (len(a.tids), sorted(a.tids))
    key_b = (len(b.tids), sorted(b.tids))
    return a if key_a <= key_b else b


def int_dedupe(tuples: Iterable[IntTuple]) -> list[IntTuple]:
    """Collapse code-identical tuples, folding provenance by minimal
    witness (first-seen order preserved, like
    :func:`~repro.integration.subsume.dedupe_tuples`)."""
    store: dict[tuple[int, ...], IntTuple] = {}
    for work in tuples:
        existing = store.get(work.codes)
        store[work.codes] = work if existing is None else _min_witness(existing, work)
    return list(store.values())


# ----------------------------------------------------------------------
# Complementation closure on the interned domain
# ----------------------------------------------------------------------
#: Domains whose codes fit an int32 matrix row; larger ones (or a numpy-
#: less process) run the pure kernels.  The packed posting values and
#: rank scalars are Python ints either way -- only *codes* enter arrays.
_INT32_DOMAIN_LIMIT = 2**31 - 1

#: Components below this size always run the pure kernels: the per-pair
#: store bookkeeping (dedupe lookups, provenance folds) is the shared
#: floor of both backends, and numpy's per-pop array setup only amortizes
#: once partner sets are large enough for its C-level conflict pruning to
#: decide whole batches.  Measured on the FD kernel benchmark's 656
#: small components (4-70 tuples), array setup *loses* ~40%; on single
#: dense components it breaks even around the mid-hundreds and wins past
#: that.
_VECTOR_MIN_TUPLES = 512


def _use_vectorized(num_tuples: int, domain: int) -> bool:
    return (
        num_tuples >= _VECTOR_MIN_TUPLES
        and accel.np is not None
        and domain <= _INT32_DOMAIN_LIMIT
    )


#: Vectorized-vs-pure dispatch tallies.  Plain ints bumped under the GIL:
#: the dispatchers run once per component, and :func:`solve_interned`
#: snapshots the deltas into its span / the global registry once per
#: solve, so the per-component cost is a dict increment, not a lock.
_DISPATCH = {
    "closure_vectorized": 0,
    "closure_pure": 0,
    "subsume_vectorized": 0,
    "subsume_pure": 0,
}


def interned_closure(
    tuples: Sequence[IntTuple], domain: int, ranks: Sequence[int]
) -> list[IntTuple]:
    """Close *tuples* under pairwise complementation (dispatching twin:
    batched numpy partner scans for large components, else the pure
    kernel -- identical results either way, pinned by the equivalence
    suite)."""
    if _use_vectorized(len(tuples), domain):
        from .vectorized import interned_closure_np

        _DISPATCH["closure_vectorized"] += 1
        return interned_closure_np(tuples, domain, ranks)
    _DISPATCH["closure_pure"] += 1
    return interned_closure_py(tuples, domain, ranks)


def interned_closure_py(
    tuples: Sequence[IntTuple], domain: int, ranks: Sequence[int]
) -> list[IntTuple]:
    """Close *tuples* (already deduped) under pairwise complementation.

    Same agenda algorithm as the legacy
    :func:`~repro.integration.alite.complementation_closure`, with postings
    keyed by packed ``position * domain + code`` ints and partner iteration
    ordered by **rank scalars**: each store key's rank vector (see module
    docstring) is packed base-``domain`` into one integer, so the legacy
    sorted-tagged-key order becomes a single int comparison.  The inner
    loop is deliberately inlined -- re-derivations of known facts (the
    bulk of closure work) fold provenance without building a merged tuple
    object, and provenance comparisons resolve on support size before
    paying for a sort.
    """
    store: dict[tuple[int, ...], IntTuple] = {}
    packed_of: dict[tuple[int, ...], list[int]] = {}
    sort_int_of: dict[tuple[int, ...], int] = {}
    postings: dict[int, set[tuple[int, ...]]] = {}

    def insert(work: IntTuple) -> tuple[int, ...] | None:
        key = work.codes
        existing = store.get(key)
        if existing is not None:
            store[key] = _min_witness(existing, work)
            return None
        store[key] = work
        packed = [
            position * domain + code for position, code in enumerate(key) if code
        ]
        packed_of[key] = packed
        rank_scalar = 0
        for code in key:
            rank_scalar = rank_scalar * domain + ranks[code]
        sort_int_of[key] = rank_scalar
        for value in packed:
            postings.setdefault(value, set()).add(key)
        return key

    agenda: deque[tuple[int, ...]] = deque()
    for work in tuples:
        key = insert(work)
        if key is not None:
            agenda.append(key)

    sort_int = sort_int_of.__getitem__
    while agenda:
        key = agenda.popleft()
        work = store[key]
        work_codes = work.codes
        work_mask = work.mask
        work_tids = work.tids
        partner_keys: set[tuple[int, ...]] = set()
        for value in packed_of[key]:
            partner_keys.update(postings[value])
        partner_keys.discard(key)
        for partner_key in sorted(partner_keys, key=sort_int):
            partner = store[partner_key]
            partner_codes = partner.codes
            partner_mask = partner.mask
            # Productive pairs add positions *both* ways.  When one mask
            # contains the other, the merge reproduces the wider tuple's
            # own store key with a support superset -- and a superset can
            # never win the minimal-witness fold -- so the whole pair is
            # a provable no-op, skipped before any per-position work.
            if not work_mask & ~partner_mask or not partner_mask & ~work_mask:
                continue
            # Joinable?  A shared posting value guarantees the overlap
            # condition, so only conflicts at common positions can block.
            common = work_mask & partner_mask
            while common:
                position = (common & -common).bit_length() - 1
                if work_codes[position] != partner_codes[position]:
                    break
                common &= common - 1
            else:
                merged_codes = tuple(
                    [x if x else y for x, y in zip(work_codes, partner_codes)]
                )
                existing = store.get(merged_codes)
                if existing is None:
                    merged = IntTuple(
                        merged_codes,
                        work_mask | partner.mask,
                        work_tids | partner.tids,
                    )
                    store[merged_codes] = merged
                    packed = [
                        position * domain + code
                        for position, code in enumerate(merged_codes)
                        if code
                    ]
                    packed_of[merged_codes] = packed
                    rank_scalar = 0
                    for code in merged_codes:
                        rank_scalar = rank_scalar * domain + ranks[code]
                    sort_int_of[merged_codes] = rank_scalar
                    for value in packed:
                        postings.setdefault(value, set()).add(merged_codes)
                    agenda.append(merged_codes)
                else:
                    # Re-derivation: fold provenance by minimal witness
                    # (same rule as insert/_min_witness) without building
                    # a tuple object for the already-known fact.  The
                    # union is skipped outright when it cannot win:
                    # |work ∪ partner| >= max(|work|, |partner|), so an
                    # existing support smaller than either side already
                    # beats any merge of the two.
                    existing_tids = existing.tids
                    existing_size = len(existing_tids)
                    partner_tids = partner.tids
                    if existing_size < len(work_tids) or existing_size < len(
                        partner_tids
                    ):
                        continue
                    merged_tids = work_tids | partner_tids
                    if merged_tids != existing_tids:
                        merged_size = len(merged_tids)
                        if merged_size < existing_size or (
                            merged_size == existing_size
                            and sorted(merged_tids) < sorted(existing_tids)
                        ):
                            existing.tids = merged_tids
    return list(store.values())


# ----------------------------------------------------------------------
# Subsumption removal on the interned domain
# ----------------------------------------------------------------------
def interned_remove_subsumed(tuples: Sequence[IntTuple], domain: int) -> list[IntTuple]:
    """Keep only tuples no other (distinct) tuple subsumes (dispatching
    twin of the closure above: batched for large working sets)."""
    if _use_vectorized(len(tuples), domain):
        from .vectorized import interned_remove_subsumed_np

        _DISPATCH["subsume_vectorized"] += 1
        return interned_remove_subsumed_np(tuples, domain)
    _DISPATCH["subsume_pure"] += 1
    return interned_remove_subsumed_py(tuples, domain)


def interned_remove_subsumed_py(
    tuples: Sequence[IntTuple], domain: int
) -> list[IntTuple]:
    """Keep only tuples no other (distinct) tuple subsumes.

    The rarest-value candidate walk of
    :func:`~repro.integration.subsume.remove_subsumed`, with packed-int
    postings and the mask prefilter deciding most candidate pairs in one
    ``AND``.
    """
    unique = int_dedupe(tuples)
    if len(unique) <= 1:
        return unique

    postings: dict[int, list[int]] = {}
    packed_lists: list[list[int]] = []
    for i, work in enumerate(unique):
        packed = [
            position * domain + code
            for position, code in enumerate(work.codes)
            if code
        ]
        for value in packed:
            postings.setdefault(value, []).append(i)
        packed_lists.append(packed)

    kept: list[IntTuple] = []
    for i, work in enumerate(unique):
        packed = packed_lists[i]
        if not packed:
            # All-null tuple: subsumed by anything else.
            continue
        rarest = min(packed, key=lambda value: len(postings[value]))
        mask = work.mask
        dominated = False
        for j in postings[rarest]:
            if j == i:
                continue
            candidate = unique[j]
            if mask & ~candidate.mask:
                continue
            if int_subsumes(candidate, work):
                dominated = True
                break
        if not dominated:
            kept.append(work)
    return kept


# ----------------------------------------------------------------------
# Partitioning (Paganelli et al., BDR 2019) on the interned domain
# ----------------------------------------------------------------------
def int_connected_components(
    tuples: Sequence[IntTuple], domain: int
) -> tuple[list[list[IntTuple]], list[IntTuple]]:
    """Split an interned working set into connected components of the
    shared-value graph; all-null tuples (no component) come back separately.

    Union-find keyed by packed ``position * domain + code`` ints; component
    membership order preserves input order, so each component's closure
    seeds in the same relative order as a global run -- the partition-first
    determinism argument (merging and subsumption both require a shared
    value, so neither crosses a component boundary).
    """
    parent = list(range(len(tuples)))

    def find(i: int) -> int:
        while parent[i] != i:
            parent[i] = parent[parent[i]]
            i = parent[i]
        return i

    owner_of: dict[int, int] = {}
    all_null: set[int] = set()
    for i, work in enumerate(tuples):
        if not work.mask:
            all_null.add(i)
            continue
        for position, code in enumerate(work.codes):
            if not code:
                continue
            value = position * domain + code
            owner = owner_of.setdefault(value, i)
            if owner != i:
                parent[find(i)] = find(owner)

    groups: dict[int, list[IntTuple]] = {}
    for i, work in enumerate(tuples):
        if i in all_null:
            continue
        groups.setdefault(find(i), []).append(work)
    return list(groups.values()), [tuples[i] for i in sorted(all_null)]


# ----------------------------------------------------------------------
# The partition-first solver every interned FD algorithm shares
# ----------------------------------------------------------------------
#: ``(components, domain, ranks) -> solved tuples`` -- how a caller may
#: replace the sequential per-component loop of :func:`solve_interned`.
ComponentSolver = Callable[
    [list, int, Sequence[int]], Sequence[IntTuple]
]


def solve_interned(
    work: Sequence[WorkTuple],
    interner: ValueInterner,
    stats: dict | None = None,
    component_solver: "ComponentSolver | None" = None,
) -> list[WorkTuple]:
    """Full FD pipeline on the interned domain: intern, dedupe, partition,
    then close + subsume each component independently.

    Returns object-level tuples with ``PRODUCED`` null placeholders (null
    kinds are recomputed from provenance by the caller's
    ``canonicalize_null_kinds`` pass).  *stats*, when given, receives
    component counts and per-phase timings -- the ``--explain`` payload.

    *component_solver*, when given, replaces the sequential per-component
    loop: it receives ``(components, domain, ranks)`` and returns the
    concatenated solved tuples -- the hook :class:`ParallelFD` uses to
    dispatch components to its process pool while sharing every other
    stage (interning, dedupe, partitioning, the degenerate all-null rule,
    un-interning) with the sequential integrator.  A solver that times its
    phases internally may record them by mutating *stats* through a
    closure; the sequential default records the closure/subsume split.

    The phase structure is emitted as an ``integrate.fd`` span tree
    (nesting under the ambient tracer when one is active); *stats* is
    **derived from that tree** by :func:`fd_stats_from_span` -- one
    instrumentation source, same payload keys as ever.  The interleaved
    per-component closure/subsume loop keeps local ``perf_counter``
    accumulation (a span per component would allocate inside the hot
    loop) and enters the tree as two pre-measured children.
    """
    tracer = trace.current_tracer()
    if tracer is None:
        tracer = trace.Tracer()

    dispatch_before = dict(_DISPATCH)
    with tracer.span("integrate.fd") as fd_span:
        with tracer.span("integrate.intern"):
            ints, cells_by_code = intern_call_input(work, interner)
            domain = interner.domain
            ranks = interner.sort_ranks()

        with tracer.span("integrate.partition"):
            components, all_null = int_connected_components(
                int_dedupe(ints), domain
            )

        if component_solver is not None:
            # Combined closure+subsume inside the solver (e.g. a process
            # pool); the split is not observable from here.
            with tracer.span("integrate.closure"):
                solved = list(component_solver(components, domain, ranks))
        else:
            closure_seconds = 0.0
            subsume_seconds = 0.0
            solved = []
            for component in components:
                closure_started = perf_counter()
                closed = interned_closure(component, domain, ranks)
                closure_seconds += perf_counter() - closure_started
                subsume_started = perf_counter()
                solved.extend(interned_remove_subsumed(closed, domain))
                subsume_seconds += perf_counter() - subsume_started
            tracer.record("integrate.closure", wall_s=closure_seconds)
            tracer.record("integrate.subsume", wall_s=subsume_seconds)
        if not solved and all_null:
            # Degenerate input: only all-null tuples exist; keep one
            # (already provenance-folded by the dedupe above).
            solved = all_null[:1]

        final = [unintern_tuple(t, interner, cells_by_code) for t in solved]
        fd_span.add(
            input_tuples=len(ints),
            output_tuples=len(final),
            components=len(components),
            largest_component=max((len(c) for c in components), default=0),
            all_null_tuples=len(all_null),
            domain=domain,
        )
        for key, before in dispatch_before.items():
            delta = _DISPATCH[key] - before
            if delta:
                fd_span.add(**{key: delta})
                metrics.counter(f"fd.dispatch.{key}").inc(delta)
        size_histogram = metrics.histogram(
            "fd.component_size", metrics.DEFAULT_SIZE_BUCKETS
        )
        for component in components:
            size_histogram.observe(len(component))
        metrics.counter("fd.solves").inc()

    if stats is not None:
        stats.update(fd_stats_from_span(fd_span))
    return final


def fd_stats_from_span(fd_span: "trace.Span") -> dict:
    """The ``--explain`` kernel-stats payload, read off a closed
    ``integrate.fd`` span: phase children become ``*_seconds``, span
    counters carry the sizes.  Keys match the historical hand-rolled
    dict exactly (``subsume_seconds`` is present only when a separate
    subsume child exists -- i.e. the sequential per-component path)."""
    counters = fd_span.counters
    stats = {
        key: counters[key]
        for key in (
            "input_tuples",
            "output_tuples",
            "components",
            "largest_component",
            "all_null_tuples",
            "domain",
        )
        if key in counters
    }
    for phase, key in (
        ("integrate.intern", "intern_seconds"),
        ("integrate.partition", "partition_seconds"),
        ("integrate.closure", "closure_seconds"),
    ):
        child = fd_span.child(phase)
        if child is not None:
            stats[key] = child.wall_s
    subsume = fd_span.child("integrate.subsume")
    if subsume is not None:
        stats["subsume_seconds"] = subsume.wall_s
    return stats
