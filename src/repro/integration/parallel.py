"""Partitioned / parallel Full Disjunction (Paganelli et al., BDR 2019).

The parallelizable structure of FD: tuples can only ever merge with tuples
they are *connected* to through shared attribute values, so the input
decomposes into connected components of the value-sharing graph, and the
closure + subsumption of each component is an independent subproblem.

``ParallelFD(max_workers=1)`` runs the components sequentially (useful on
its own -- decomposition already prunes the quadratic work); with
``max_workers > 1`` components are dispatched to a process pool, components
first sorted largest-first for load balance.

Correctness of the decomposition: merging requires a shared value (the
joinability overlap condition) and subsumption requires the subsumer to
repeat the subsumee's non-null values, so both relations stay within a
component.  All-null tuples (which a degenerate input may contain) belong to
no component and are handled at the end: they are subsumed by any tuple.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor

from ..table.table import Table
from ..table.values import is_null
from .alite import complementation_closure
from .base import Integrator
from .subsume import dedupe_tuples, remove_subsumed
from .tuples import (
    IntegratedTable,
    WorkTuple,
    base_cells_map,
    canonicalize_null_kinds,
    normalized_key,
    prepare_integration_input,
)

__all__ = ["ParallelFD", "connected_components"]


def connected_components(tuples: list[WorkTuple]) -> tuple[list[list[WorkTuple]], list[WorkTuple]]:
    """Split tuples into connected components of the shared-value graph.

    Returns ``(components, all_null_tuples)``.
    """
    parent = list(range(len(tuples)))

    def find(i: int) -> int:
        while parent[i] != i:
            parent[i] = parent[parent[i]]
            i = parent[i]
        return i

    by_value: dict[tuple, int] = {}
    all_null: list[int] = []
    for i, work in enumerate(tuples):
        any_value = False
        for position, cell in enumerate(work.cells):
            if is_null(cell):
                continue
            any_value = True
            key = (position, normalized_key((cell,))[0])
            owner = by_value.setdefault(key, i)
            if owner != i:
                parent[find(i)] = find(owner)
        if not any_value:
            all_null.append(i)

    groups: dict[int, list[WorkTuple]] = {}
    for i, work in enumerate(tuples):
        if i in all_null:
            continue
        groups.setdefault(find(i), []).append(work)
    return list(groups.values()), [tuples[i] for i in all_null]


def _solve_component(component: list[WorkTuple]) -> list[WorkTuple]:
    """Closure + subsumption for one independent component."""
    return remove_subsumed(complementation_closure(component))


class ParallelFD(Integrator):
    """Component-decomposed FD, optionally on a process pool."""

    name = "parallel_fd"

    def __init__(self, max_workers: int = 1, min_parallel_components: int = 4):
        self.max_workers = max_workers
        self.min_parallel_components = min_parallel_components

    def _integrate(self, tables: list[Table], name: str) -> IntegratedTable:
        header, work, tid_sources = prepare_integration_input(tables)
        components, all_null = connected_components(dedupe_tuples(work))
        components.sort(key=len, reverse=True)

        if self.max_workers > 1 and len(components) >= self.min_parallel_components:
            with ProcessPoolExecutor(max_workers=self.max_workers) as pool:
                solved = list(pool.map(_solve_component, components))
        else:
            solved = [_solve_component(component) for component in components]

        final: list[WorkTuple] = [w for chunk in solved for w in chunk]
        if not final and all_null:
            # Degenerate input: only all-null tuples exist; keep one.
            final = dedupe_tuples(all_null)[:1]
        final = canonicalize_null_kinds(final, base_cells_map(work))
        return IntegratedTable.from_work_tuples(
            header, final, tid_sources, name=name, algorithm=self.name
        )
