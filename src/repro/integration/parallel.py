"""Partitioned / parallel Full Disjunction (Paganelli et al., BDR 2019).

The parallelizable structure of FD: tuples can only ever merge with tuples
they are *connected* to through shared attribute values, so the input
decomposes into connected components of the value-sharing graph, and the
closure + subsumption of each component is an independent subproblem.

Since PR 4 the component decomposition is the *default* preamble of the
sequential integrator too (:class:`~repro.integration.alite.AliteFD` is
partition-first); this module keeps the decomposition's public object-level
form (:func:`connected_components`) and the process-pool dispatcher.
``ParallelFD`` ships **interned integer tuples**
(:class:`~repro.integration.intern.IntTuple`: code vectors + tid sets) to
its workers instead of object cell tuples -- they pickle to a fraction of
the bytes -- and dispatches components as **round-robin stripes** over the
largest-first order: pool overhead is paid per stripe, not per component,
and the heavy head of the distribution spreads across workers instead of
landing consecutively in one worker's chunk.

``ParallelFD(max_workers=1)`` runs the components sequentially (useful on
its own -- decomposition already prunes the quadratic work); with
``max_workers > 1`` components are dispatched to a process pool.

Correctness of the decomposition: merging requires a shared value (the
joinability overlap condition) and subsumption requires the subsumer to
repeat the subsumee's non-null values, so both relations stay within a
component.  All-null tuples (which a degenerate input may contain) belong to
no component and are handled at the end: they are subsumed by any tuple.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from functools import partial

from ..obs import trace
from ..table.table import Table
from ..table.values import is_null
from .base import Integrator
from .intern import (
    IntTuple,
    ValueInterner,
    interned_closure,
    interned_remove_subsumed,
    solve_interned,
)
from .tuples import (
    IntegratedTable,
    WorkTuple,
    base_cells_map,
    canonicalize_null_kinds,
    cell_key,
    prepare_integration_input,
)

__all__ = ["ParallelFD", "connected_components"]


def connected_components(tuples: list[WorkTuple]) -> tuple[list[list[WorkTuple]], list[WorkTuple]]:
    """Split object-level tuples into connected components of the
    shared-value graph.  Returns ``(components, all_null_tuples)``.

    The interned twin is
    :func:`repro.integration.intern.int_connected_components`; this form
    stays public for callers holding object tuples.  Values key directly by
    :func:`cell_key` -- never the tuple-of-one round trip through
    ``normalized_key`` that :mod:`repro.integration.tuples` forbids on hot
    paths -- and all-null membership is a set probe, not a list scan.
    """
    parent = list(range(len(tuples)))

    def find(i: int) -> int:
        while parent[i] != i:
            parent[i] = parent[parent[i]]
            i = parent[i]
        return i

    by_value: dict[tuple, int] = {}
    all_null: set[int] = set()
    for i, work in enumerate(tuples):
        any_value = False
        for position, cell in enumerate(work.cells):
            if is_null(cell):
                continue
            any_value = True
            key = (position, cell_key(cell))
            owner = by_value.setdefault(key, i)
            if owner != i:
                parent[find(i)] = find(owner)
        if not any_value:
            all_null.add(i)

    groups: dict[int, list[WorkTuple]] = {}
    for i, work in enumerate(tuples):
        if i in all_null:
            continue
        groups.setdefault(find(i), []).append(work)
    return list(groups.values()), [tuples[i] for i in sorted(all_null)]


def _solve_interned_component(
    domain: int, ranks: tuple[int, ...], component: list[IntTuple]
) -> list[IntTuple]:
    """Closure + subsumption for one independent component, entirely in the
    interned domain (top-level so the process pool can pickle it)."""
    return interned_remove_subsumed(
        interned_closure(component, domain, ranks), domain
    )


def _annotate_span(stats: dict) -> None:
    """Copy the pool fan-out (workers/stripes) onto the open ambient span
    -- the ``integrate.closure`` span :func:`solve_interned` holds while
    the component solver runs -- so a traced integrate attributes its
    combined closure time to the right pool shape."""
    tracer = trace.current_tracer()
    if tracer is not None and tracer.current is not None:
        tracer.current.add(
            workers=stats.get("workers", 1), stripes=stats.get("stripes", 0)
        )


def _solve_interned_stripe(
    domain: int, ranks: tuple[int, ...], stripe: list[list[IntTuple]]
) -> list[IntTuple]:
    """Solve a stripe of components in one pool task (one pickle/IPC
    round trip per stripe, not per component)."""
    solved: list[IntTuple] = []
    for component in stripe:
        solved.extend(_solve_interned_component(domain, ranks, component))
    return solved


class ParallelFD(Integrator):
    """Component-decomposed FD, optionally on a process pool."""

    name = "parallel_fd"

    def __init__(
        self,
        max_workers: int = 1,
        min_parallel_components: int = 4,
        interner: ValueInterner | None = None,
    ):
        self.max_workers = max_workers
        self.min_parallel_components = min_parallel_components
        self.interner = interner if interner is not None else ValueInterner()
        self.last_stats: dict | None = None

    def _integrate(self, tables: list[Table], name: str) -> IntegratedTable:
        header, work, tid_sources = prepare_integration_input(tables)
        stats: dict = {}

        def pool_solver(components, domain, ranks):
            parallel = (
                self.max_workers > 1
                and len(components) >= self.min_parallel_components
            )
            if not parallel:
                stats["workers"] = 1
                stats["stripes"] = len(components)
                _annotate_span(stats)
                solve = partial(_solve_interned_component, domain, ranks)
                return [t for c in components for t in solve(c)]
            # Stripe round-robin over largest-first components:
            # pool.map splits its iterable into *consecutive* chunks, so
            # chunking the sorted list directly would hand every big
            # component to one worker.  Striding spreads the heavy head
            # across stripes while keeping one pickle/IPC round trip per
            # stripe, not per component.
            components = sorted(components, key=len, reverse=True)
            num_stripes = min(len(components), self.max_workers * 4)
            stripes = [components[i::num_stripes] for i in range(num_stripes)]
            stats["workers"] = self.max_workers
            stats["stripes"] = num_stripes
            _annotate_span(stats)
            solve = partial(_solve_interned_stripe, domain, ranks)
            with ProcessPoolExecutor(max_workers=self.max_workers) as pool:
                solved_stripes = list(pool.map(solve, stripes))
            return [t for stripe in solved_stripes for t in stripe]

        final = canonicalize_null_kinds(
            solve_interned(work, self.interner, stats, pool_solver),
            base_cells_map(work),
        )
        self.last_stats = stats
        # input_tuples make the result explainable (fact lineage) and
        # incrementally extensible, exactly like an AliteFD result --
        # parallel_fd is the pipeline default when fd_workers > 1, so it
        # must not produce a less capable table.
        return IntegratedTable.from_work_tuples(
            header, final, tid_sources, name=name, algorithm=self.name,
            input_tuples=work,
        )
