"""Lazy Full Disjunction: facts as a stream, component at a time.

The paper's reference [2] (Cohen et al., VLDB 2006) computes FD with
*polynomial-delay iterators* -- results stream out without materializing the
whole output.  The practical reproduction of that interface: the input
decomposes into connected components of the value-sharing graph (see
:mod:`repro.integration.parallel`), and each component's facts can be
emitted as soon as that component is solved.  Peak memory is bounded by the
largest component rather than the whole output, and consumers can stop
early (top-n preview, first-match probes) without paying for the rest.

This is *component delay*, not tuple-level polynomial delay -- the honest
scope for an in-memory library, recorded in DESIGN.md's substitutions.
"""

from __future__ import annotations

from typing import Iterator, Sequence

from ..table.table import Table
from .intern import (
    ValueInterner,
    int_connected_components,
    int_dedupe,
    intern_call_input,
    interned_closure,
    interned_remove_subsumed,
    unintern_tuple,
)
from .tuples import (
    WorkTuple,
    base_cells_map,
    canonicalize_null_kinds,
    missing_positions_map,
    prepare_integration_input,
)

__all__ = ["iter_fd", "fd_preview"]


def iter_fd(
    tables: Sequence[Table], largest_first: bool = False
) -> Iterator[tuple[tuple[str, ...], WorkTuple]]:
    """Yield ``(header, fact)`` pairs of FD(tables), component by component.

    The union of all yielded facts equals ``AliteFD().integrate(tables)``
    (asserted by tests); within a component, facts appear in deterministic
    (smallest-TID, value) order.  ``largest_first=False`` (default) solves
    small components first, so the first results arrive as early as
    possible.  Each component is solved on the interned integer kernel,
    so the stream pays interning once up front and int-vector work per
    component.
    """
    header, work, _ = prepare_integration_input(tables)
    base = base_cells_map(work)
    # Computed once, shared by every component's canonicalization pass --
    # the per-component cost stays proportional to the component.
    missing_of = missing_positions_map(base)
    interner = ValueInterner()
    interned, cells_by_code = intern_call_input(work, interner)
    ints = int_dedupe(interned)
    domain = interner.domain
    ranks = interner.sort_ranks()
    components, all_null = int_connected_components(ints, domain)
    components.sort(key=len, reverse=largest_first)
    emitted = 0
    for component in components:
        solved_int = interned_remove_subsumed(
            interned_closure(component, domain, ranks), domain
        )
        solved = canonicalize_null_kinds(
            [unintern_tuple(t, interner, cells_by_code) for t in solved_int],
            base,
            missing_of,
        )
        solved.sort(
            key=lambda w: (min(int(t[1:]) for t in w.tids), tuple(map(repr, w.cells)))
        )
        for fact in solved:
            emitted += 1
            yield tuple(header), fact
    if emitted == 0 and all_null:
        yield tuple(header), canonicalize_null_kinds(
            [unintern_tuple(all_null[0], interner, cells_by_code)], base, missing_of
        )[0]


def fd_preview(tables: Sequence[Table], n: int = 10) -> Table:
    """The first *n* facts of the FD, without computing the rest.

    A UI affordance the demo's interactivity implies: show the user some
    integrated tuples immediately while the full integration would still be
    running on a large set.
    """
    rows = []
    header: tuple[str, ...] = ()
    for header, fact in iter_fd(tables):
        rows.append(fact.cells)
        if len(rows) >= n:
            break
    return Table(header, rows, name="fd_preview")
