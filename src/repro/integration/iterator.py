"""Lazy Full Disjunction: facts as a stream, component at a time.

The paper's reference [2] (Cohen et al., VLDB 2006) computes FD with
*polynomial-delay iterators* -- results stream out without materializing the
whole output.  The practical reproduction of that interface: the input
decomposes into connected components of the value-sharing graph (see
:mod:`repro.integration.parallel`), and each component's facts can be
emitted as soon as that component is solved.  Peak memory is bounded by the
largest component rather than the whole output, and consumers can stop
early (top-n preview, first-match probes) without paying for the rest.

This is *component delay*, not tuple-level polynomial delay -- the honest
scope for an in-memory library, recorded in DESIGN.md's substitutions.
"""

from __future__ import annotations

from typing import Iterator, Sequence

from ..table.table import Table
from .alite import complementation_closure
from .parallel import connected_components
from .subsume import dedupe_tuples, remove_subsumed
from .tuples import (
    WorkTuple,
    base_cells_map,
    canonicalize_null_kinds,
    prepare_integration_input,
)

__all__ = ["iter_fd", "fd_preview"]


def iter_fd(
    tables: Sequence[Table], largest_first: bool = False
) -> Iterator[tuple[tuple[str, ...], WorkTuple]]:
    """Yield ``(header, fact)`` pairs of FD(tables), component by component.

    The union of all yielded facts equals ``AliteFD().integrate(tables)``
    (asserted by tests); within a component, facts appear in deterministic
    (smallest-TID, value) order.  ``largest_first=False`` (default) solves
    small components first, so the first results arrive as early as
    possible.
    """
    header, work, _ = prepare_integration_input(tables)
    base = base_cells_map(work)
    components, all_null = connected_components(dedupe_tuples(work))
    components.sort(key=len, reverse=largest_first)
    emitted = 0
    for component in components:
        solved = canonicalize_null_kinds(
            remove_subsumed(complementation_closure(component)), base
        )
        solved.sort(
            key=lambda w: (min(int(t[1:]) for t in w.tids), tuple(map(repr, w.cells)))
        )
        for fact in solved:
            emitted += 1
            yield tuple(header), fact
    if emitted == 0 and all_null:
        yield tuple(header), dedupe_tuples(all_null)[0]


def fd_preview(tables: Sequence[Table], n: int = 10) -> Table:
    """The first *n* facts of the FD, without computing the rest.

    A UI affordance the demo's interactivity implies: show the user some
    integrated tuples immediately while the full integration would still be
    running on a large set.
    """
    rows = []
    header: tuple[str, ...] = ()
    for header, fact in iter_fd(tables):
        rows.append(fact.cells)
        if len(rows) >= n:
            break
    return Table(header, rows, name="fd_preview")
