"""Outer join / inner join / union as integration operators.

These are the comparison operators of the demo: outer join is what a user
plugs in via Fig. 6 (and what Figure 8(a) renders), inner join and union are
the operators Auctus-style systems apply pairwise.  All are provenance-aware
so their outputs can be displayed and analyzed exactly like FD outputs.

The outer-join integrator folds the binary natural full outer join over the
integration set **in the given table order**.  Because full outer join is not
associative, the result genuinely depends on that order --
:func:`order_sensitivity` quantifies this, reproducing the motivation the
paper cites for Full Disjunction (experiment E9).
"""

from __future__ import annotations

from itertools import permutations
from typing import Iterator, Sequence

from ..table.table import Table
from ..table.values import PRODUCED, Cell, is_null
from .base import Integrator
from .subsume import dedupe_tuples
from .tuples import IntegratedTable, WorkTuple, cell_key

__all__ = [
    "OuterJoinIntegrator",
    "InnerJoinIntegrator",
    "UnionIntegrator",
    "order_sensitivity",
]


def _label_tables(tables: Sequence[Table]) -> tuple[list[list[WorkTuple]], dict[str, tuple[str, int]]]:
    """Assign TIDs t1..tn across the integration set in input order (the
    same numbering :func:`prepare_integration_input` uses)."""
    labelled: list[list[WorkTuple]] = []
    tid_sources: dict[str, tuple[str, int]] = {}
    counter = 0
    for table in tables:
        rows = []
        for row_index, row in enumerate(table.rows):
            counter += 1
            tid = f"t{counter}"
            tid_sources[tid] = (table.name, row_index)
            rows.append(WorkTuple(cells=tuple(row), tids=frozenset({tid})))
        labelled.append(rows)
    return labelled, tid_sources


class _JoinState:
    """An intermediate join result: a header plus provenance-carrying rows."""

    def __init__(self, header: tuple[str, ...], rows: list[WorkTuple]):
        self.header = header
        self.rows = rows


def _fold_join(
    state: _JoinState,
    table: Table,
    tuples: list[WorkTuple],
    keep_left: bool,
    keep_right: bool,
) -> _JoinState:
    shared = [c for c in state.header if table.has_column(c)]
    right_extra = [c for c in table.columns if c not in shared]
    new_header = state.header + tuple(right_extra)
    left_pos = {c: i for i, c in enumerate(state.header)}
    right_pos = {c: i for i, c in enumerate(table.columns)}

    if not shared:
        # Natural join with no shared attributes would be a cross product;
        # integration folds degrade to padding both sides instead (the
        # behaviour a user plugging "outer join" into the demo expects).
        rows: list[WorkTuple] = []
        if keep_left:
            for work in state.rows:
                rows.append(
                    WorkTuple(work.cells + (PRODUCED,) * len(right_extra), work.tids)
                )
        if keep_right:
            for work in tuples:
                cells: list[Cell] = [PRODUCED] * len(state.header)
                cells.extend(work.cells[right_pos[c]] for c in right_extra)
                rows.append(WorkTuple(tuple(cells), work.tids))
        return _JoinState(new_header, rows)

    def key_of(cells: Sequence[Cell], positions: list[int]) -> tuple | None:
        parts = []
        for position in positions:
            cell = cells[position]
            if is_null(cell):
                return None
            parts.append(cell_key(cell))
        return tuple(parts)

    shared_left = [left_pos[c] for c in shared]
    shared_right = [right_pos[c] for c in shared]
    index: dict[tuple, list[int]] = {}
    for j, work in enumerate(tuples):
        key = key_of(work.cells, shared_right)
        if key is not None:
            index.setdefault(key, []).append(j)

    rows = []
    matched_right: set[int] = set()
    for work in state.rows:
        key = key_of(work.cells, shared_left)
        matches = index.get(key, []) if key is not None else []
        if matches:
            for j in matches:
                matched_right.add(j)
                right = tuples[j]
                cells = work.cells + tuple(right.cells[right_pos[c]] for c in right_extra)
                rows.append(WorkTuple(cells, work.tids | right.tids))
        elif keep_left:
            rows.append(WorkTuple(work.cells + (PRODUCED,) * len(right_extra), work.tids))
    if keep_right:
        for j, right in enumerate(tuples):
            if j in matched_right:
                continue
            cells = [PRODUCED] * len(state.header)
            for c in shared:
                cells[left_pos[c]] = right.cells[right_pos[c]]
            cells.extend(right.cells[right_pos[c]] for c in right_extra)
            rows.append(WorkTuple(tuple(cells), right.tids))
    return _JoinState(new_header, rows)


class OuterJoinIntegrator(Integrator):
    """Fold binary natural full outer join left-to-right (paper's ``⟗``)."""

    name = "outer_join"

    def _integrate(self, tables: list[Table], name: str) -> IntegratedTable:
        labelled, tid_sources = _label_tables(tables)
        state = _JoinState(tuple(tables[0].columns), labelled[0])
        for table, tuples in zip(tables[1:], labelled[1:]):
            state = _fold_join(state, table, tuples, keep_left=True, keep_right=True)
        return IntegratedTable.from_work_tuples(
            state.header, state.rows, tid_sources, name=name, algorithm=self.name
        )


class InnerJoinIntegrator(Integrator):
    """Fold binary natural inner join (the harshest baseline: any tuple
    without a match anywhere simply disappears)."""

    name = "inner_join"

    def _integrate(self, tables: list[Table], name: str) -> IntegratedTable:
        labelled, tid_sources = _label_tables(tables)
        state = _JoinState(tuple(tables[0].columns), labelled[0])
        for table, tuples in zip(tables[1:], labelled[1:]):
            state = _fold_join(state, table, tuples, keep_left=False, keep_right=False)
        return IntegratedTable.from_work_tuples(
            state.header, state.rows, tid_sources, name=name, algorithm=self.name
        )


class UnionIntegrator(Integrator):
    """Outer union with duplicate elimination: stack tuples, never merge."""

    name = "union"

    def _integrate(self, tables: list[Table], name: str) -> IntegratedTable:
        from .tuples import prepare_integration_input

        header, work, tid_sources = prepare_integration_input(tables)
        return IntegratedTable.from_work_tuples(
            header, dedupe_tuples(work), tid_sources, name=name, algorithm=self.name
        )


def order_sensitivity(
    tables: Sequence[Table], max_orders: int = 24
) -> Iterator[tuple[tuple[str, ...], IntegratedTable]]:
    """Yield the outer-join integration under each table permutation (up to
    *max_orders*): the demonstration that outer join is not associative,
    while FD gives one canonical answer regardless of order."""
    integrator = OuterJoinIntegrator()
    for count, order in enumerate(permutations(tables)):
        if count >= max_orders:
            return
        names = tuple(t.name for t in order)
        yield names, integrator.integrate(list(order), name="outer_join_" + "_".join(names))
