"""The definitional (oracle) Full Disjunction, by exhaustive enumeration.

Full Disjunction = the subsumption-free set of merges of all *connected,
join-consistent* subsets of the input tuples (Galindo-Legaria 1994 /
Rajaraman & Ullman 1996, phrased over the outer-unioned integration set).

This module computes that definition literally, by breadth-first expansion
over subsets.  It is exponential and exists for two purposes only: as the
ground-truth oracle in property-based tests (AliteFD / NestedLoopFD /
ParallelFD must all equal it on every random small input), and as executable
documentation of the semantics.  Never use it on more than ~15 tuples.
"""

from __future__ import annotations

from ..table.table import Table
from .base import Integrator
from .subsume import dedupe_tuples, remove_subsumed
from .tuples import (
    IntegratedTable,
    WorkTuple,
    base_cells_map,
    canonicalize_null_kinds,
    joinable,
    merge_tuples,
    prepare_integration_input,
)

__all__ = ["OracleFD", "enumerate_merges"]

_MAX_ORACLE_TUPLES = 18


def enumerate_merges(base: list[WorkTuple]) -> list[WorkTuple]:
    """Merges of every connected join-consistent subset of *base*.

    Expansion invariant: a subset S is grown by tuple j only when the merge
    of S is joinable with j, which holds exactly when S ∪ {j} is still
    connected and join-consistent (the merged tuple carries every member's
    values, so pair checks against it cover all members).
    """
    merges: dict[frozenset[int], WorkTuple] = {}
    frontier: list[tuple[frozenset[int], WorkTuple]] = []
    for i, work in enumerate(base):
        subset = frozenset([i])
        merges[subset] = work
        frontier.append((subset, work))
    while frontier:
        next_frontier: list[tuple[frozenset[int], WorkTuple]] = []
        for subset, merged in frontier:
            for j, candidate in enumerate(base):
                if j in subset:
                    continue
                grown = subset | {j}
                if grown in merges:
                    continue
                if joinable(merged.cells, candidate.cells):
                    grown_merge = merge_tuples(merged, candidate)
                    merges[grown] = grown_merge
                    next_frontier.append((grown, grown_merge))
        frontier = next_frontier
    return list(merges.values())


class OracleFD(Integrator):
    """Brute-force FD by definition (test oracle; exponential)."""

    name = "oracle_fd"

    def _integrate(self, tables: list[Table], name: str) -> IntegratedTable:
        header, work, tid_sources = prepare_integration_input(tables)
        base = dedupe_tuples(work)
        if len(base) > _MAX_ORACLE_TUPLES:
            raise ValueError(
                f"OracleFD is exponential; refusing {len(base)} tuples "
                f"(limit {_MAX_ORACLE_TUPLES}) -- use AliteFD"
            )
        final = canonicalize_null_kinds(
            remove_subsumed(enumerate_merges(base)), base_cells_map(work)
        )
        return IntegratedTable.from_work_tuples(
            header, final, tid_sources, name=name, algorithm=self.name
        )
