"""Subsumption removal: dropping tuples that add no information.

The last step of every FD algorithm.  A tuple is dropped when some other
tuple repeats all of its non-null values (Figure 8(b): ``t12 = (JnJ, ±)``
disappears because ``f12 = (JnJ, ⊥, USA)`` already says everything it says).
Provenance of a subsumed tuple is dropped with it -- the paper reports the
*derivation* set of each output fact, not a coverage set.

The implementation first collapses duplicates (same values up to null kind,
provenance unioned), then uses an inverted index on (position, value) so
each tuple is only checked against candidates sharing its rarest value.

This object-level form is the :class:`~repro.integration.alite.LegacyAliteFD`
baseline; the default integrators run the interned twin,
:func:`~repro.integration.intern.interned_remove_subsumed` (re-exported
here), whose candidate check is one non-null-bitmask ``AND`` before any
cell loop.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from ..table.values import is_null
from .intern import interned_remove_subsumed
from .tuples import WorkTuple, cell_key, combine_duplicate, normalized_key, subsumes

__all__ = ["dedupe_tuples", "remove_subsumed", "interned_remove_subsumed"]


def dedupe_tuples(tuples: Iterable[WorkTuple]) -> list[WorkTuple]:
    """Collapse value-identical tuples (null kind ignored), unioning
    provenance and upgrading null kinds (missing beats produced)."""
    store: dict[tuple, WorkTuple] = {}
    for work in tuples:
        key = normalized_key(work.cells)
        existing = store.get(key)
        store[key] = work if existing is None else combine_duplicate(existing, work)
    return list(store.values())


def remove_subsumed(tuples: Sequence[WorkTuple]) -> list[WorkTuple]:
    """Keep only tuples not subsumed by another (distinct) tuple.

    Input should already be deduped; duplicates are collapsed defensively.
    """
    unique = dedupe_tuples(tuples)
    if len(unique) <= 1:
        return unique

    # Inverted index: (position, value key) -> indices of tuples having it.
    postings: dict[tuple, list[int]] = {}
    cell_keys: list[list[tuple]] = []
    for i, work in enumerate(unique):
        keys = []
        for position, cell in enumerate(work.cells):
            if is_null(cell):
                continue
            key = (position, cell_key(cell))
            postings.setdefault(key, []).append(i)
            keys.append(key)
        cell_keys.append(keys)

    kept: list[WorkTuple] = []
    for i, work in enumerate(unique):
        keys = cell_keys[i]
        if not keys:
            # All-null tuple: subsumed by anything else.
            if len(unique) > 1:
                continue
            kept.append(work)
            continue
        # Candidates must contain the tuple's rarest value.
        rarest = min(keys, key=lambda key: len(postings[key]))
        dominated = False
        for j in postings[rarest]:
            if j == i:
                continue
            if subsumes(unique[j].cells, work.cells):
                dominated = True
                break
        if not dominated:
            kept.append(work)
    return kept
