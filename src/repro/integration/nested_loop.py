"""Nested-loop Full Disjunction: the classical baseline.

Semantically identical to :class:`~repro.integration.alite.AliteFD` but
structured the way pre-ALITE algorithms were (Cohen et al., VLDB 2006 era
tuple-at-a-time processing): repeated full O(n²) passes over the working
set until a pass produces nothing new, then quadratic subsumption removal.
No value index, no agenda -- every pass re-examines every pair.

It exists as the performance baseline for experiment E8 (the demo's claim
that ALITE "was shown to be correct and faster than the existing FD
algorithms"); tests assert it computes exactly the same result as AliteFD.

Deliberately *not* ported to the interned integer kernel: this class
demonstrates the algorithmic gap (indexed, partition-first closure vs
quadratic passes), while ``LegacyAliteFD`` isolates the representation gap
(object cells vs interned int vectors) -- the two baselines of
``benchmarks/bench_fd_kernel.py``.  Its per-tuple ``normalized_key`` calls
are whole-vector keys, not the per-cell round trips the FD hot-path lint
guard (``tools/check_fd_hot_paths.py``) forbids.
"""

from __future__ import annotations

from ..table.table import Table
from ..table.values import is_null
from .base import Integrator
from .subsume import dedupe_tuples
from .tuples import (
    IntegratedTable,
    WorkTuple,
    base_cells_map,
    canonicalize_null_kinds,
    joinable,
    merge_tuples,
    normalized_key,
    prepare_integration_input,
    subsumes,
)

__all__ = ["NestedLoopFD"]


class NestedLoopFD(Integrator):
    """Fixpoint FD via repeated quadratic passes (correct, deliberately slow)."""

    name = "nested_loop_fd"

    def _integrate(self, tables: list[Table], name: str) -> IntegratedTable:
        header, work, tid_sources = prepare_integration_input(tables)
        current = dedupe_tuples(work)
        seen = {normalized_key(w.cells) for w in current}

        changed = True
        while changed:
            changed = False
            snapshot = list(current)
            for i in range(len(snapshot)):
                for j in range(i + 1, len(snapshot)):
                    left, right = snapshot[i], snapshot[j]
                    if not joinable(left.cells, right.cells):
                        continue
                    merged = merge_tuples(left, right)
                    key = normalized_key(merged.cells)
                    if key not in seen:
                        seen.add(key)
                        current.append(merged)
                        changed = True

        final = canonicalize_null_kinds(
            self._quadratic_subsumption(current), base_cells_map(work)
        )
        return IntegratedTable.from_work_tuples(
            header, final, tid_sources, name=name, algorithm=self.name
        )

    @staticmethod
    def _quadratic_subsumption(tuples: list[WorkTuple]) -> list[WorkTuple]:
        unique = dedupe_tuples(tuples)
        kept = []
        for i, work in enumerate(unique):
            if all(is_null(cell) for cell in work.cells) and len(unique) > 1:
                continue
            dominated = False
            for j, other in enumerate(unique):
                if i == j:
                    continue
                if subsumes(other.cells, work.cells):
                    dominated = True
                    break
            if not dominated:
                kept.append(work)
        return kept
