"""ALITE's Full Disjunction: partition, complement to fixpoint, subsume.

The algorithm (Khatiwada et al., VLDB 2023, adapted to in-memory scale):

1. **Outer union** the aligned tables over the united header, labelling the
   tuples ``t1..tn`` (:func:`prepare_integration_input`).
2. **Partition** the working set into connected components of the
   shared-value graph (the paper's partitioning step; Paganelli et al.,
   BDR 2019 prove closure and subsumption never cross a component).
3. **Complementation closure**, per component: repeatedly merge *joinable*
   tuple pairs (agree wherever both non-null, overlap on at least one
   value) until no new tuple appears.  The working set is keyed by value so
   re-derivations collapse; an inverted index on (attribute, value) means
   each tuple only ever meets tuples it shares a value with.
4. **Subsumption removal** drops every tuple another tuple makes redundant.

Since PR 4 the default :class:`AliteFD` runs steps 2-4 on the **interned
integer kernel** (:mod:`repro.integration.intern`): cells become small int
codes, joinability/subsumption become masked int-vector loops, and postings
become packed ints.  :class:`LegacyAliteFD` keeps the original object-level
kernel (same algorithm and data layout as pre-PR-4; it shares the
``joinable``/``subsumes`` predicates, which gained the bool-vs-int
discipline of ``values_equal`` in the same PR, so both kernels see one
semantics) as the benchmark baseline (``benchmarks/bench_fd_kernel.py``
gates the interned kernel >= 3x over it) and as the equivalence oracle for
``tests/property/test_fd_kernel_equivalence.py``: both kernels must produce
identical cells, null kinds, provenance and row order.

The result is exactly the set of maximal merges of connected,
join-consistent subsets of the input tuples (see
``tests/property/test_fd_oracle.py``, which checks this against a
brute-force oracle), which is the integration semantics of the paper's
Figures 3 and 8(b).
"""

from __future__ import annotations

from collections import deque

from ..table.table import Table
from ..table.values import MISSING, PRODUCED, is_null
from .base import Integrator
from .intern import ValueInterner, solve_interned
from .subsume import dedupe_tuples, remove_subsumed
from .tuples import (
    IntegratedTable,
    WorkTuple,
    base_cells_map,
    canonicalize_null_kinds,
    cell_key,
    combine_duplicate,
    joinable,
    merge_tuples,
    prepare_integration_input,
)

__all__ = ["AliteFD", "LegacyAliteFD", "complementation_closure"]

#: The singleton key :func:`cell_key` returns for nulls of either kind.
_NULL_CELL_KEY = cell_key(MISSING)


def complementation_closure(tuples: list[WorkTuple]) -> list[WorkTuple]:
    """Close *tuples* under pairwise complementation (merge of joinable
    pairs) -- the **object-level** kernel, kept as the
    :class:`LegacyAliteFD` baseline.  Returns the full closure including
    intermediates; callers typically follow with :func:`remove_subsumed`.

    The interned kernel (:func:`repro.integration.intern.interned_closure`)
    replicates this algorithm -- including its sorted partner iteration, so
    provenance folding is identical -- on integer codes.

    The key vectors that drive the (attribute, value) inverted index are
    computed **once per stored tuple** at insertion -- the tuple's normalized
    key is built in the same pass -- and reused every time the tuple is
    popped from the agenda, instead of being rebuilt per visit.
    """
    store: dict[tuple, WorkTuple] = {}
    keys_of: dict[tuple, list[tuple[int, tuple]]] = {}
    postings: dict[tuple[int, tuple], set[tuple]] = {}

    def insert(work: WorkTuple) -> tuple | None:
        """Add to the store; returns the key if the tuple is new.

        A re-derivation of an already-known fact folds provenance via
        :func:`combine_duplicate` (minimal support wins -- the paper's
        Figure 8(b) keeps ``f12 = {t16}`` even though merging ``t12``
        derives the same values) and never re-enters the agenda.
        """
        # One pass builds both the store key and the per-cell key vector.
        tagged = [cell_key(cell) for cell in work.cells]
        key = tuple(tagged)
        existing = store.get(key)
        if existing is not None:
            store[key] = combine_duplicate(existing, work)
            return None
        store[key] = work
        cell_keys = [
            (position, tag)
            for position, tag in enumerate(tagged)
            if tag is not _NULL_CELL_KEY
        ]
        keys_of[key] = cell_keys
        for pair in cell_keys:
            postings.setdefault(pair, set()).add(key)
        return key

    agenda: deque[tuple] = deque()
    for work in dedupe_tuples(tuples):
        key = insert(work)
        if key is not None:
            agenda.append(key)

    while agenda:
        key = agenda.popleft()
        work = store[key]
        partner_keys: set[tuple] = set()
        for pair in keys_of[key]:
            partner_keys.update(postings.get(pair, ()))
        partner_keys.discard(key)
        # Sorted iteration keeps the whole closure independent of Python's
        # per-process hash randomization (keys are tuples of tagged cells,
        # so they sort totally).
        for partner_key in sorted(partner_keys):
            partner = store.get(partner_key)
            if partner is None:
                continue
            if joinable(work.cells, partner.cells):
                merged_key = insert(merge_tuples(work, partner))
                if merged_key is not None:
                    agenda.append(merged_key)
    return list(store.values())


def _prepare_incremental(
    existing: IntegratedTable, table: Table
) -> tuple[
    list[str],
    list[WorkTuple],
    list[WorkTuple],
    list[WorkTuple],
    dict[str, tuple[str, int]],
]:
    """Shared preamble of both incremental integrators.

    Widens the existing inputs and final facts to the united header, labels
    the new table's rows with fresh TIDs, and returns ``(header, seeds,
    new_inputs, all_inputs, tid_sources)``.  Seeding the closure with the
    *original input tuples* (kept on :class:`IntegratedTable` precisely for
    this) plus the previous final output is what makes
    ``integrate_incremental`` equal the batch FD: a tuple subsumed away
    earlier can still merge with a future table's rows, while
    already-discovered merges are free.
    """
    if not existing.input_tuples:
        raise ValueError(
            "existing result carries no input tuples; it was not produced "
            "by AliteFD (or was reconstructed) -- integrate from scratch"
        )
    header = list(existing.columns)
    for column in table.columns:
        if column not in existing.columns:
            header.append(column)
    width = len(header)
    position_of = {c: i for i, c in enumerate(header)}

    def widen(cells: tuple) -> tuple:
        return cells + (PRODUCED,) * (width - len(cells))

    widened_inputs = [
        WorkTuple(widen(w.cells), w.tids) for w in existing.input_tuples
    ]
    seeds: list[WorkTuple] = list(widened_inputs)
    seeds.extend(
        WorkTuple(widen(tuple(row)), existing.provenance[i])
        for i, row in enumerate(existing.rows)
    )

    next_tid = 1 + max((int(t[1:]) for t in existing.tid_sources), default=0)
    tid_sources = dict(existing.tid_sources)
    own_positions = [position_of[c] for c in table.columns]
    new_inputs: list[WorkTuple] = []
    for row_index, row in enumerate(table.rows):
        tid = f"t{next_tid}"
        next_tid += 1
        tid_sources[tid] = (table.name, row_index)
        cells: list = [PRODUCED] * width
        for column_position, cell in zip(own_positions, row):
            cells[column_position] = MISSING if is_null(cell) else cell
        new_inputs.append(WorkTuple(tuple(cells), frozenset({tid})))

    return header, seeds, new_inputs, widened_inputs + new_inputs, tid_sources


class AliteFD(Integrator):
    """The default DIALITE integrator: ALITE's Full Disjunction on the
    interned, partition-first kernel.

    Each instance owns one append-only :class:`ValueInterner`, reused
    across every ``integrate`` / ``integrate_incremental`` call -- share an
    instance (or pass ``interner=``) to amortize interning over a lake;
    results never depend on how the domain accreted (the kernel orders by
    value rank, not code).  ``last_stats`` holds the most recent kernel
    accounting (component counts, domain size, per-phase timings) -- the
    payload behind ``repro integrate --explain``.

    *domain_capacity* bounds per-process interner growth for long-running
    services: when a fresh ``integrate`` call finds the accreted domain
    above the capacity, the instance starts over with an empty interner
    (legal precisely because results never depend on accretion history;
    output spellings come from the per-call representative map either
    way).  The reset only ever happens **between** batch calls -- never
    inside :meth:`integrate_incremental`, whose contract is continuity
    with the stored domain.  None (the default) keeps the unbounded
    batch behavior.
    """

    name = "alite_fd"

    def __init__(
        self,
        interner: ValueInterner | None = None,
        domain_capacity: int | None = None,
    ):
        self.interner = interner if interner is not None else ValueInterner()
        self.domain_capacity = domain_capacity
        self.last_stats: dict | None = None

    def _integrate(self, tables: list[Table], name: str) -> IntegratedTable:
        if (
            self.domain_capacity is not None
            and self.interner.domain > self.domain_capacity
        ):
            self.interner = ValueInterner()
        header, work, tid_sources = prepare_integration_input(tables)
        base = base_cells_map(work)
        stats: dict = {}
        final = canonicalize_null_kinds(
            solve_interned(work, self.interner, stats), base
        )
        self.last_stats = stats
        return IntegratedTable.from_work_tuples(
            header, final, tid_sources, name=name, algorithm=self.name,
            input_tuples=work,
        )

    def integrate_incremental(
        self, existing: IntegratedTable, table: Table, name: str = "integrated"
    ) -> IntegratedTable:
        """Fold one more table into an existing FD result.

        Produces exactly ``FD(original tables + table)`` (asserted by tests
        at every prefix).  New rows are re-interned against this instance's
        stored domain, so values already seen in earlier increments resolve
        to their existing codes without touching the intern dictionary's
        growth path.
        """
        header, seeds, new_inputs, all_inputs, tid_sources = _prepare_incremental(
            existing, table
        )
        stats: dict = {}
        final = canonicalize_null_kinds(
            solve_interned(seeds + new_inputs, self.interner, stats),
            base_cells_map(all_inputs),
        )
        self.last_stats = stats
        return IntegratedTable.from_work_tuples(
            header, final, tid_sources, name=name, algorithm=self.name,
            input_tuples=all_inputs,
        )


class LegacyAliteFD(Integrator):
    """The object-level ALITE kernel: the pre-PR-4 implementation shape
    (object cells, tagged-tuple keys, global closure), on the shared --
    and since PR 4 bool/int-disciplined -- predicates.

    Exists as the performance baseline of ``benchmarks/bench_fd_kernel.py``
    and the equivalence oracle of the interned kernel's property suite; it
    is *not* registered in the pipeline.
    """

    name = "legacy_alite_fd"

    def _integrate(self, tables: list[Table], name: str) -> IntegratedTable:
        header, work, tid_sources = prepare_integration_input(tables)
        base = base_cells_map(work)
        closed = complementation_closure(work)
        final = canonicalize_null_kinds(remove_subsumed(closed), base)
        return IntegratedTable.from_work_tuples(
            header, final, tid_sources, name=name, algorithm=self.name,
            input_tuples=work,
        )

    def integrate_incremental(
        self, existing: IntegratedTable, table: Table, name: str = "integrated"
    ) -> IntegratedTable:
        """The object-kernel incremental fold (same contract as
        :meth:`AliteFD.integrate_incremental`)."""
        header, seeds, new_inputs, all_inputs, tid_sources = _prepare_incremental(
            existing, table
        )
        closed = complementation_closure(seeds + new_inputs)
        final = canonicalize_null_kinds(
            remove_subsumed(closed), base_cells_map(all_inputs)
        )
        return IntegratedTable.from_work_tuples(
            header, final, tid_sources, name=name, algorithm=self.name,
            input_tuples=all_inputs,
        )
