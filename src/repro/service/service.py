"""The concurrent lake session: one warm pipeline, many callers.

:class:`LakeService` owns what every previous PR made fast but nothing
shared: a warm :class:`~repro.core.pipeline.Dialite` (hydrated store,
persisted discoverer indexes, zero-rebuild candidate engine, amortized FD
interner) served to concurrent callers through

* a **worker pool** with bounded admission -- at most ``queue_depth``
  requests in flight; the next one is rejected with
  :class:`ServiceOverloaded` instead of queueing without bound -- and
  optional per-request deadlines (:class:`DeadlineExceeded` both for
  callers that give up waiting and for queued work that expires before a
  worker reaches it);
* a **versioned result cache**: responses are memoized under
  ``(lake_version, canonical request key)`` with LRU + TTL eviction, so
  *any* ingest -- in-process or a foreign process detected through the
  store's cheap :meth:`~repro.store.lakestore.LakeStore.current_version`
  poll -- invalidates by version, never by enumeration, and a response is
  stamped with the exact lake version that produced it;
* **request micro-batching**: discover requests that arrive within
  ``batch_window`` seconds of each other and agree on ``(k, column,
  discoverers)`` are coalesced through
  :meth:`~repro.core.pipeline.Dialite.discover_many`, sharing the lake
  index and per-query profiling across callers (identical queries in one
  batch execute once and fan out);
* a **hot-swap reload** path: when the on-disk version moves, a new
  *generation* (fresh store handle, fresh warm pipeline) is built and
  swapped in atomically; in-flight requests keep their generation and
  finish on the snapshot they started on, stamped with its version.

Request canonicalization: cache keys are built from *content* -- the
query table's :func:`~repro.store.codec.table_content_hash`, ``k``, the
intent column, the discoverer subset -- and payloads never include the
caller's query-table name (the service renames queries to a
hash-derived name internally), so two callers sending the same cells
share one cache entry and byte-identical payloads.

Thread-safety ground rules (see the audit in
:mod:`repro.candidates.engine`): discovery fans out concurrently on the
shared engine; align/integrate serialize on one internal lock because
the aligner and the integrators (notably the FD interner) are shared
mutable state -- correctness first, and discovery is the hot path a
cache cannot already serve.
"""

from __future__ import annotations

import json
import queue
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field, replace
from math import ceil
from pathlib import Path
from typing import Any, Callable, Mapping, Sequence

from ..core.pipeline import Dialite
from ..datalake.indexer import LakeIndex
from ..shard.store import ShardedLakeStore, open_any_store
from ..obs import export as obs_export
from ..obs import metrics as obs_metrics
from ..obs import recorder as obs_recorder
from ..obs import slo as obs_slo
from ..obs import trace as tracing
from ..obs.metrics import MetricsRegistry
from ..store.codec import encode_table, table_content_hash
from ..store.lakestore import LakeStore
from ..store.lru import LRUCache
from ..table.table import Table

__all__ = [
    "LakeService",
    "ServiceResponse",
    "ServiceStats",
    "ServiceError",
    "ServiceOverloaded",
    "ServiceUnavailable",
    "DeadlineExceeded",
    "ServiceClosed",
    "oracle_discover_payload",
]


class ServiceError(RuntimeError):
    """Any serving-layer failure that is not a pipeline bug."""


class ServiceOverloaded(ServiceError):
    """Admission rejected: the in-flight request count is at capacity.

    ``retry_after`` is the server's backoff hint in seconds (crossing the
    wire as the error document's ``retry_after`` field); the retrying
    client floors its next delay at it.
    """

    def __init__(self, message: str = "", retry_after: float | None = None):
        super().__init__(message)
        self.retry_after = retry_after


class ServiceUnavailable(ServiceError):
    """The service could not be reached (connect/read failure, dropped
    connection).  The request may never have arrived, so only idempotent
    operations are safe to retry on it."""


class DeadlineExceeded(ServiceError):
    """The request's deadline lapsed before a result was produced."""


class ServiceClosed(ServiceError):
    """The service has been shut down."""


@dataclass(frozen=True)
class ServiceResponse:
    """One served result, version-stamped.

    ``payload`` is a deterministic, JSON-serializable document -- the unit
    that is cached, compared against oracles, and shipped over the wire.
    ``lake_version`` is the version of the lake snapshot that produced it
    (the never-stale contract: a response stamped ``v`` is byte-identical
    to what a fresh pipeline opened at ``v`` would return).
    """

    op: str
    lake_version: int
    cached: bool
    payload: dict[str, Any]
    latency_s: float = 0.0
    #: The request's span tree (:meth:`Tracer.to_dict` shape), attached
    #: only when the caller asked for tracing.
    trace: dict[str, Any] | None = field(default=None, compare=False)
    #: True when this request skipped discover micro-batching because it
    #: was traced -- its latency is an *unbatched* latency (see README's
    #: observability trade-off note).  Annotation only; never cached.
    trace_batching_bypassed: bool = field(default=False, compare=False)

    def to_json(self) -> dict[str, Any]:
        document = {
            "ok": True,
            "op": self.op,
            "lake_version": self.lake_version,
            "cached": self.cached,
            "payload": self.payload,
        }
        if self.trace is not None:
            document["trace"] = self.trace
        if self.trace_batching_bypassed:
            document["trace_batching_bypassed"] = True
        return document


def _percentile(sorted_values: list[float], q: float) -> float:
    """Nearest-rank percentile: the smallest value with at least
    ``ceil(q * n)`` values at or below it.  (The previous
    ``round(q * (n - 1))`` indexing used banker's rounding, so p50 of an
    even-length list rounded *down* past the upper median -- pinned by
    ``test_percentile_nearest_rank``.)"""
    if not sorted_values:
        return 0.0
    n = len(sorted_values)
    rank = min(n, max(1, ceil(q * n)))
    return sorted_values[rank - 1]


class ServiceStats:
    """Thread-safe serving metrics: hit/miss, rejections, batching,
    reloads, and per-op latency quantiles.

    Since the ``repro.obs`` refactor this is a thin view over a private
    :class:`~repro.obs.metrics.MetricsRegistry` -- counters are shared
    :class:`Counter` instruments and latencies are fixed-bucket
    histograms instead of the old 4096-entry reservoirs (bounded memory,
    mergeable snapshots) -- while :meth:`snapshot` keeps its historical
    shape exactly.  ``max_ms`` stays exact (histograms track the true
    max); p50/p95 are bucket-resolution nearest-rank."""

    COUNTER_NAMES = (
        "requests",
        "hits",
        "misses",
        "errors",
        "rejected_overload",
        "rejected_deadline",
        "batches",
        "batched_requests",
        "reloads",
        "ingests",
        "degraded",
    )
    _LATENCY_PREFIX = "service.latency."

    def __init__(self) -> None:
        self.registry = MetricsRegistry()
        for name in self.COUNTER_NAMES:
            self.registry.counter(f"service.{name}")

    def count(self, counter: str, amount: int = 1) -> None:
        if counter not in self.COUNTER_NAMES:
            raise AttributeError(f"unknown service counter {counter!r}")
        self.registry.counter(f"service.{counter}").inc(amount)

    def observe(self, op: str, seconds: float) -> None:
        self.registry.histogram(
            f"{self._LATENCY_PREFIX}{op}"
        ).observe_seconds(seconds)

    def __getattr__(self, name: str) -> Any:
        # The pre-registry API exposed the counters as plain attributes
        # (``stats.requests``); keep that read surface.
        if name in type(self).COUNTER_NAMES:
            return self.registry.counter(f"service.{name}").value
        raise AttributeError(name)

    def snapshot(self, queue_depth: int = 0) -> dict[str, Any]:
        """A JSON-friendly point-in-time view (the ``stats`` op / CLI)."""
        latency = {}
        for name, histogram in self.registry.histograms(
            self._LATENCY_PREFIX
        ).items():
            op = name[len(self._LATENCY_PREFIX):]
            hist = histogram.snapshot()
            latency[op] = {
                "count": hist["count"],
                "p50_ms": round(hist["p50"], 3),
                "p95_ms": round(hist["p95"], 3),
                "max_ms": round(hist["max"], 3),
            }
        snapshot: dict[str, Any] = {
            name: self.registry.counter(f"service.{name}").value
            for name in self.COUNTER_NAMES
        }
        snapshot["queue_depth"] = queue_depth
        snapshot["latency"] = latency
        return snapshot


@dataclass
class _Generation:
    """One immutable serving snapshot: a warm pipeline over one store
    handle at one lake version.  Swapped atomically on reload; in-flight
    requests keep the generation they started with."""

    pipeline: Dialite
    store: LakeStore | ShardedLakeStore | None
    version: int


class _Request:
    """One queued unit of work and its completion latch."""

    __slots__ = (
        "op", "params", "key", "deadline_at", "enqueued_at", "tracer",
        "done", "response", "error", "_expired", "_finished", "_lock",
    )

    def __init__(
        self,
        op: str,
        params: dict[str, Any],
        key: tuple | None,
        deadline_at: float | None,
        tracer: "tracing.Tracer | None" = None,
    ):
        self.op = op
        self.params = params
        self.key = key
        self.deadline_at = deadline_at
        self.tracer = tracer
        self.enqueued_at = time.monotonic()
        self.done = threading.Event()
        self.response: ServiceResponse | None = None
        self.error: BaseException | None = None
        self._expired = False
        self._finished = False
        self._lock = threading.Lock()

    def expire_once(self) -> bool:
        """Mark the deadline lapse; True for exactly one caller (so the
        rejected-deadline counter never double-counts)."""
        with self._lock:
            if self._expired:
                return False
            self._expired = True
            return True

    def finish_once(self) -> bool:
        """True for exactly one fulfiller -- the close()/dispatch race can
        try to settle a request from two sides; only one may release the
        admission slot and record stats."""
        with self._lock:
            if self._finished:
                return False
            self._finished = True
            return True


_SHUTDOWN = object()


class LakeService:
    """A shared, concurrent serving session over one warm lake.

    Construct from a store (``LakeService(store=path)``) or wrap an
    existing pipeline (``Dialite.open(path).serve()``).  ``request`` is
    the one synchronous entry point; ``discover`` / ``align`` /
    ``integrate`` / ``ingest`` are typed conveniences over it.  Use as a
    context manager (or call :meth:`close`) to stop the worker pool.
    """

    #: The backoff hint attached to :class:`ServiceOverloaded` (seconds);
    #: long enough for a worker slot to turn over on a loaded service.
    overload_retry_after = 0.05

    def __init__(
        self,
        store: "str | Path | LakeStore | None" = None,
        pipeline: Dialite | None = None,
        *,
        workers: int = 4,
        queue_depth: int = 64,
        cache_capacity: int | None = 1024,
        cache_ttl: float | None = None,
        batch_window: float = 0.02,
        batch_max: int = 16,
        reload_check_interval: float = 0.25,
        default_deadline: float | None = None,
        stats_cache_capacity: int | None = None,
        candidate_budget: int | None = None,
        fd_workers: int = 1,
        trace_path: "str | Path | None" = None,
        trace_path_max_bytes: int | None = None,
        trace_path_keep: int = 3,
        postmortem_path: "str | Path | None" = None,
        recorder: "obs_recorder.FlightRecorder | None" = None,
        recorder_capacity: int = 256,
        latency_threshold_ms: float | None = None,
        slo_monitor: "obs_slo.SLOMonitor | None" = None,
        export_path: "str | Path | None" = None,
        export_interval_s: float = 30.0,
    ):
        if pipeline is None:
            if store is None:
                raise ServiceError("LakeService needs a store or a pipeline")
            if not isinstance(store, (LakeStore, ShardedLakeStore)):
                # Sharded layouts (lake.json) auto-detect; discovery then
                # runs scatter-gather with byte-identical results.
                store = open_any_store(
                    store, stats_cache_capacity=stats_cache_capacity
                )
            pipeline = Dialite(
                store=store,
                candidate_budget=candidate_budget,
                fd_workers=fd_workers,
            )
        pipeline.index  # fit lazily: a no-op for an already-fitted pipeline
        backing = pipeline._store
        self._gen = _Generation(
            pipeline=pipeline,
            store=backing,
            version=backing.lake_version if backing is not None else 0,
        )
        self.workers = max(1, workers)
        self.queue_depth = max(1, queue_depth)
        self.batch_window = max(0.0, batch_window)
        self.batch_max = max(1, batch_max)
        self.reload_check_interval = max(0.0, reload_check_interval)
        self.default_deadline = default_deadline
        self.stats = ServiceStats()
        self.cache = LRUCache(cache_capacity, ttl=cache_ttl)
        #: JSONL trace sink: when set, *every* request is traced and its
        #: span tree appended as one JSON line (offline analysis),
        #: size-rotated at ``trace_path_max_bytes`` keeping
        #: ``trace_path_keep`` backups.
        self._trace_path = Path(trace_path) if trace_path is not None else None
        self._trace_path_max_bytes = trace_path_max_bytes
        self._trace_path_keep = trace_path_keep
        self._trace_lock = threading.Lock()
        #: Flight recorder: always-on request ring; with a
        #: ``postmortem_path`` it dumps tree + ring on every tripped
        #: request (error / deadline / latency threshold / degraded).
        self.recorder = (
            recorder
            if recorder is not None
            else obs_recorder.FlightRecorder(
                recorder_capacity,
                postmortem_path=postmortem_path,
                latency_threshold_ms=latency_threshold_ms,
            )
        )
        #: SLO monitor: every finished request feeds it; burn rates
        #: surface through :meth:`health_snapshot`.
        self.slo = slo_monitor if slo_monitor is not None else obs_slo.SLOMonitor()
        #: The serving epoch: 1 at construction, +1 per hot-swap reload.
        self._epoch = 1
        #: Background exporter (optional): periodic metrics snapshots and
        #: completed span trees to rotating JSONL.
        self._exporter: "obs_export.TelemetryExporter | None" = None
        if export_path is not None:
            self._exporter = obs_export.TelemetryExporter(
                export_path,
                interval_s=export_interval_s,
                identity=obs_export.snapshot_identity("service"),
                registries=[self.metrics_snapshot],
            ).start()

        self._handlers: dict[str, Callable[[_Generation, dict[str, Any]], dict]] = {
            "discover": self._handle_discover,
            "align": self._handle_align,
            "integrate": self._handle_integrate,
        }
        self._closed = False
        self._inflight = 0
        self._admission_lock = threading.Lock()
        self._reload_lock = threading.Lock()
        # Serializes align/integrate (shared aligner + integrator state,
        # notably the amortized FD interner); discovery never takes it.
        self._work_lock = threading.Lock()
        self._last_version_check = time.monotonic()
        self._queue: "queue.Queue[Any]" = queue.Queue()
        self._executor = ThreadPoolExecutor(
            max_workers=self.workers, thread_name_prefix="repro-service"
        )
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop, name="repro-service-dispatch", daemon=True
        )
        self._dispatcher.start()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def version(self) -> int:
        """The lake version of the current serving generation."""
        return self._gen.version

    @property
    def pipeline(self) -> Dialite:
        """The current generation's pipeline (a snapshot: reloads swap
        in a new object rather than mutating this one)."""
        return self._gen.pipeline

    @property
    def store_path(self) -> Path | None:
        store = self._gen.store
        return store.path if store is not None else None

    @property
    def inflight(self) -> int:
        return self._inflight

    def stats_snapshot(self) -> dict[str, Any]:
        snapshot = self.stats.snapshot(queue_depth=self._inflight)
        snapshot["lake_version"] = self.version
        snapshot["cache_entries"] = len(self.cache)
        snapshot["cache_evictions"] = self.cache.evictions
        snapshot["cache_expirations"] = self.cache.expirations
        snapshot["workers"] = self.workers
        store = self._gen.store
        if store is not None:
            # The on-disk segment layout this generation serves from; a
            # `store migrate` takes effect on the next reload/ingest.
            snapshot["segment_format"] = store.default_segment_format
            snapshot["segment_format_counts"] = store.segment_format_counts()
            if isinstance(store, ShardedLakeStore):
                snapshot["num_shards"] = store.num_shards
                snapshot["shard_versions"] = store.shard_versions()
        return snapshot

    def health_snapshot(self) -> dict[str, Any]:
        """Liveness + degradation + SLO burn in one cheap document (the
        ``health`` wire op): status, the serving lake version and epoch,
        per-shard worker liveness (with last-respawn ages) for sharded
        lakes, which shards (if any) the *last* discover had to serve
        without, and the SLO monitor's firing objectives.

        Status precedence: ``closed`` > ``degraded`` (live shard loss,
        or an SLO objective burning at page rate) > ``warn`` (an
        objective burning at warn rate) > ``ok``.
        """
        index = getattr(self._gen.pipeline, "_index", None)
        degraded = tuple(getattr(index, "last_degraded_shards", ()) or ())
        slo = self.slo.evaluate()
        if self._closed:
            status = "closed"
        elif degraded or slo["status"] == "degraded":
            status = "degraded"
        else:
            status = slo["status"]  # "warn" or "ok"
        document: dict[str, Any] = {
            "status": status,
            "lake_version": self.version,
            "lake_epoch": self._epoch,
            "inflight": self._inflight,
            "workers": self.workers,
            "degraded_shards": list(degraded),
            "worker_respawns": int(getattr(index, "worker_respawns", 0) or 0),
            "slo": slo,
        }
        shard_health = getattr(index, "shard_health", None)
        if shard_health is not None:
            document["shards"] = shard_health()
        return document

    def metrics_snapshot(self) -> dict[str, Any]:
        """The full instrument view: this service's private registry
        (counters + latency histograms behind :meth:`stats_snapshot`)
        merged with the process-wide registry (store decode counts,
        engine retrieval/build accounting, FD dispatch tallies).  The
        ``metrics`` wire op serves exactly this document; two of them
        from different processes fold with
        :func:`repro.obs.metrics.merge_snapshots`."""
        snapshot = obs_metrics.merge_snapshots(
            obs_metrics.global_registry().snapshot(),
            self.stats.registry.snapshot(),
        )
        # Sharded lakes in process mode keep per-shard registries inside
        # the worker processes; fold them in so engine retrieval counts
        # stay visible behind one wire op.
        worker_metrics = getattr(self._gen.pipeline._index, "worker_metrics", None)
        if worker_metrics is not None:
            extra = worker_metrics()
            if extra:
                snapshot = obs_metrics.merge_snapshots(snapshot, extra)
        return snapshot

    def _write_trace(self, document: dict[str, Any]) -> None:
        """Append one finished span tree to the JSONL sink (one compact
        JSON object per line; no-op without a ``trace_path``).  The sink
        is size-rotated under the same lock that serializes writers, so
        rotation never tears a line."""
        if self._trace_path is None or not document:
            return
        line = json.dumps(document, separators=(",", ":"), sort_keys=True)
        with self._trace_lock:
            obs_export.rotate_file(
                self._trace_path, self._trace_path_max_bytes, self._trace_path_keep
            )
            with self._trace_path.open("a", encoding="utf-8") as sink:
                sink.write(line + "\n")

    def add_handler(
        self, op: str, handler: Callable[[Any, dict[str, Any]], dict], replace: bool = False
    ) -> None:
        """Register a custom operation: ``handler(generation, params) ->
        payload dict``.  ``generation.pipeline`` is the warm pipeline,
        ``generation.version`` the lake version the response will be
        stamped with.  Custom ops are not cached (no canonical key)."""
        if op in self._handlers and not replace:
            raise ValueError(f"op {op!r} already registered")
        self._handlers[op] = handler

    # ------------------------------------------------------------------
    # The public request path
    # ------------------------------------------------------------------
    def request(
        self,
        op: str,
        params: dict[str, Any] | None = None,
        *,
        deadline: float | None = None,
        trace: bool = False,
        trace_id: str | None = None,
    ) -> ServiceResponse:
        """Serve one request: cache lookup, admission, execution, wait.

        *deadline* is relative seconds (``default_deadline`` when None);
        the caller gets :class:`DeadlineExceeded` if it lapses first.

        *trace* records the request as one span tree (admission ->
        cache -> queue wait -> execution, with every pipeline stage
        nested under it) and attaches it to the response.  A traced
        request bypasses discover micro-batching so its attribution is
        exact (the response is stamped ``trace_batching_bypassed``).
        *trace_id* adopts a distributed id minted upstream (the wire
        server passes the client's envelope id here) so client, server
        and shard-worker trees correlate.  When the service has a
        ``trace_path`` sink or a flight-recorder postmortem path, every
        request is traced internally; *trace* additionally returns the
        tree to this caller.

        Every finished request -- traced or not -- feeds the flight
        recorder ring and the SLO monitor.
        """
        tracer = (
            tracing.Tracer(trace_id=trace_id)
            if (trace or self._trace_path is not None or self.recorder.wants_trace)
            else None
        )
        started = time.monotonic()
        response: ServiceResponse | None = None
        error: BaseException | None = None
        try:
            if tracer is None:
                response = self._request_inner(op, params, deadline, None)
            else:
                with tracing.activate(tracer):
                    with tracer.span(f"service.{op}"):
                        response = self._request_inner(op, params, deadline, tracer)
                if (
                    op == "discover"
                    and not response.cached
                    and self.batch_window > 0.0
                    and self.batch_max > 1
                ):
                    # This discover executed solo (see _dispatch_loop's
                    # tracer check); stamp the response so operators do
                    # not read its latency as a batched latency.
                    response = replace(response, trace_batching_bypassed=True)
                if trace:
                    response = replace(response, trace=tracer.to_dict())
            return response
        except BaseException as exc:
            error = exc
            raise
        finally:
            tree = tracer.to_dict() if tracer is not None else None
            if tree:
                self._write_trace(tree)
            self._observe_request(op, started, response, error, tracer, tree)

    def _observe_request(
        self,
        op: str,
        started: float,
        response: ServiceResponse | None,
        error: BaseException | None,
        tracer: "tracing.Tracer | None",
        tree: dict[str, Any] | None,
    ) -> None:
        """Feed the telemetry plane with one finished request: the
        flight-recorder ring (postmortem on trip), the SLO windows, and
        the exporter's trace queue.  Never raises -- telemetry must not
        change a request's outcome."""
        try:
            latency_ms = (time.monotonic() - started) * 1000.0
            degraded: list = []
            if response is not None and isinstance(response.payload, dict):
                degraded = list(response.payload.get("degraded_shards") or ())
            summary = {
                "op": op,
                "ts": time.time(),
                "lake_version": (
                    response.lake_version if response is not None else self.version
                ),
                "latency_ms": round(latency_ms, 3),
                "cached": bool(response.cached) if response is not None else False,
                "degraded_shards": degraded,
                "error": type(error).__name__ if error is not None else None,
                "trace_id": tracer.trace_id if tracer is not None else None,
            }
            self.recorder.observe(summary, tree)
            self.slo.observe(
                ok=error is None, latency_ms=latency_ms, degraded=bool(degraded)
            )
            exporter = self._exporter
            if exporter is not None and tree:
                exporter.offer_trace(tree, summary=summary)
        except Exception:  # noqa: BLE001 - telemetry is strictly best-effort
            pass

    def _request_inner(
        self,
        op: str,
        params: dict[str, Any] | None,
        deadline: float | None,
        tracer: "tracing.Tracer | None",
    ) -> ServiceResponse:
        if self._closed:
            raise ServiceClosed("service is closed")
        if op not in self._handlers:
            raise ServiceError(
                f"unknown op {op!r}; available: {sorted(self._handlers)}"
            )
        params = dict(params or {})
        started = time.monotonic()
        self.stats.count("requests")
        self.reload_if_stale()

        key = self._request_key(op, params)
        gen = self._gen
        if key is not None:
            with tracing.span("service.cache") as cache_span:
                payload = self.cache.get((gen.version, key))
                cache_span.add(hit=int(payload is not None))
            if payload is not None:
                self.stats.count("hits")
                self.stats.observe(op, time.monotonic() - started)
                return ServiceResponse(
                    op=op,
                    lake_version=gen.version,
                    cached=True,
                    payload=payload,
                    latency_s=time.monotonic() - started,
                )
        self.stats.count("misses")

        if deadline is None:
            deadline = self.default_deadline
        deadline_at = None if deadline is None else started + deadline
        request = _Request(op, params, key, deadline_at, tracer=tracer)
        self._admit()
        self._queue.put(request)
        if self._closed:
            # close() may have drained the queue between our admission and
            # the put; settle the request ourselves rather than hang (the
            # dispatcher-side fulfil is idempotent, so a benign race with
            # a still-running dispatcher settles it exactly once).
            self._fulfil_error(request, ServiceClosed("service closed"))

        timeout = None if deadline_at is None else max(0.0, deadline_at - time.monotonic())
        if not request.done.wait(timeout):
            if request.expire_once():
                self.stats.count("rejected_deadline")
            raise DeadlineExceeded(
                f"{op} deadline of {deadline:.3f}s lapsed before completion"
            )
        if request.error is not None:
            raise request.error
        assert request.response is not None
        return request.response

    # Typed conveniences ------------------------------------------------
    def discover(
        self,
        query: Table,
        k: int = 10,
        query_column: str | None = None,
        discoverers: Sequence[str] | None = None,
        deadline: float | None = None,
        trace: bool = False,
        trace_id: str | None = None,
    ) -> ServiceResponse:
        return self.request(
            "discover",
            {
                "query": query,
                "k": k,
                "column": query_column,
                "discoverers": tuple(discoverers) if discoverers else None,
            },
            deadline=deadline,
            trace=trace,
            trace_id=trace_id,
        )

    def align(
        self,
        tables: Sequence[Table],
        deadline: float | None = None,
        trace: bool = False,
        trace_id: str | None = None,
    ) -> ServiceResponse:
        return self.request(
            "align",
            {"tables": list(tables)},
            deadline=deadline,
            trace=trace,
            trace_id=trace_id,
        )

    def integrate(
        self,
        tables: Sequence[Table] | None = None,
        *,
        query: Table | None = None,
        k: int = 10,
        query_column: str | None = None,
        integrator: str | None = None,
        align: bool = True,
        deadline: float | None = None,
        trace: bool = False,
        trace_id: str | None = None,
    ) -> ServiceResponse:
        if (tables is None) == (query is None):
            raise ServiceError("integrate takes either tables or a query")
        return self.request(
            "integrate",
            {
                "tables": list(tables) if tables is not None else None,
                "query": query,
                "k": k,
                "column": query_column,
                "integrator": integrator,
                "align": align,
            },
            deadline=deadline,
            trace=trace,
            trace_id=trace_id,
        )

    # ------------------------------------------------------------------
    # Ingest + reload (the versioned-invalidation path)
    # ------------------------------------------------------------------
    def ingest(self, tables: Sequence[Table] | Mapping[str, Table]) -> dict[str, Any]:
        """Add/replace tables in the backing store and hot-swap to the new
        version.  Runs on a *separate* store handle so the serving
        generation's snapshot stays internally consistent; the swap makes
        the new version visible to the next request, and the versioned
        cache needs no enumeration -- old entries are keyed to the old
        version and age out.
        """
        gen = self._gen
        if gen.store is None:
            raise ServiceError("ingest requires a store-backed service")
        if isinstance(tables, Mapping):
            delta = dict(tables)
        else:
            delta = {t.name: t for t in tables}
        with self._reload_lock:
            writer = self._gen.store.reopen()
            report = writer.ingest(delta, prune=False)
        self.stats.count("ingests")
        self.reload_if_stale(force=True)
        return {
            "added": list(report.added),
            "updated": list(report.updated),
            "unchanged": list(report.unchanged),
            "lake_version": report.lake_version,
        }

    def reload_if_stale(self, force: bool = False) -> bool:
        """Hot-swap to the on-disk version if it moved; returns True when
        a swap happened.  Rate-limited by ``reload_check_interval``
        (bypassed by *force*); never drops in-flight requests -- they
        finish on the generation they started with.

        While one thread rebuilds, other request threads must keep
        serving the *old* generation rather than queue up behind the
        rebuild: the per-request path takes the reload lock
        non-blocking and simply proceeds on its snapshot if a reload is
        already in progress.  Only *force* (the in-process ingest path,
        which needs synchronous visibility of the version it just wrote)
        waits for the lock.
        """
        gen = self._gen
        if gen.store is None:
            return False
        if not force:
            now = time.monotonic()
            if now - self._last_version_check < self.reload_check_interval:
                return False
            self._last_version_check = now
        if gen.store.current_version() == gen.version and not force:
            return False
        if not self._reload_lock.acquire(blocking=force):
            return False  # a reload is in flight; keep serving the old snapshot
        try:
            gen = self._gen
            if gen.store.current_version() == gen.version:
                return False
            with tracing.span("service.reload", from_version=gen.version) as reload_span:
                self._gen = self._build_generation(gen)
                reload_span.add(to_version=self._gen.version)
            self._epoch += 1
            self.stats.count("reloads")
            return True
        finally:
            self._reload_lock.release()

    def _build_generation(self, previous: _Generation) -> _Generation:
        """A fresh warm generation from the store's current on-disk state.

        If the version move dropped the persisted discoverer indexes /
        postings artifact (every content-changing ingest does), a builder
        roster refits them against the hydrated lake -- warm, via the
        stats snapshots -- and persists them, so the *serving* pipeline
        always hydrates with ``engine.build_count == 0``.
        """
        assert previous.store is not None
        store = previous.store.reopen()
        roster = previous.pipeline.discoverers.components()
        sharded = isinstance(store, ShardedLakeStore)
        if not sharded:
            persisted = store.load_indexes()
            if any(d.name not in persisted for d in roster):
                builder = LakeIndex(
                    store.lake(), [d.clone_unfitted() for d in roster]
                ).build()
                builder.save_to_store(store)
        pipeline = Dialite(
            store=store,
            discoverers=[d.clone_unfitted() for d in roster],
            candidate_budget=previous.pipeline.candidate_budget,
            fd_workers=previous.pipeline.fd_workers,
        )
        # Carry forward the (lake-independent) registries and aligner so
        # custom integrators/apps survive a reload; align/integrate are
        # serialized by the work lock, so sharing the instances is safe.
        pipeline.integrators = previous.pipeline.integrators
        pipeline.default_integrator = previous.pipeline.default_integrator
        pipeline.apps = previous.pipeline.apps
        pipeline.aligner = previous.pipeline.aligner
        if sharded:
            # The previous generation's sharded index donates per-shard
            # state (hydrated indexes or warm worker pools) for every
            # shard whose version did not move -- a one-table ingest
            # reload refits exactly one shard; stale shards refit and
            # re-persist inside the sharded hydration itself.
            pipeline.fit(previous_index=previous.pipeline._index)
        else:
            pipeline.fit()
        return _Generation(pipeline=pipeline, store=store, version=store.lake_version)

    # ------------------------------------------------------------------
    # Admission + dispatch + execution
    # ------------------------------------------------------------------
    def _admit(self) -> None:
        with self._admission_lock:
            if self._closed:
                raise ServiceClosed("service is closed")
            if self._inflight >= self.queue_depth:
                self.stats.count("rejected_overload")
                raise ServiceOverloaded(
                    f"{self._inflight} requests in flight (queue depth "
                    f"{self.queue_depth}); retry later",
                    retry_after=self.overload_retry_after,
                )
            self._inflight += 1

    def _release(self) -> None:
        with self._admission_lock:
            self._inflight -= 1

    def _dispatch_loop(self) -> None:
        while True:
            item = self._queue.get()
            if item is _SHUTDOWN:
                break
            if (
                self.batch_window > 0.0
                and item.op == "discover"
                and self.batch_max > 1
                # Traced requests execute alone: coalescing would blur a
                # batch's shared pipeline time across its members' trees.
                and item.tracer is None
                # Only open a batch window when another request is in
                # flight (queued, mid-submit, or executing) -- a lone
                # request on an idle service must not pay the window as
                # pure latency, while near-simultaneous callers still
                # coalesce even if they have not reached the queue yet.
                and (self._inflight > 1 or not self._queue.empty())
            ):
                batch = self._collect_batch(item)
                if batch is None:  # shutdown arrived mid-window
                    break
                self._executor.submit(self._execute_discover_batch, batch)
            else:
                self._executor.submit(self._execute_single, item)

    def _collect_batch(self, first: _Request) -> list[_Request] | None:
        """Drain compatible discover requests arriving within the window;
        incompatible ones dispatch immediately (they are never delayed
        by someone else's batch)."""
        signature = self._batch_signature(first)
        batch = [first]
        horizon = time.monotonic() + self.batch_window
        while len(batch) < self.batch_max:
            remaining = horizon - time.monotonic()
            if remaining <= 0:
                break
            try:
                item = self._queue.get(timeout=remaining)
            except queue.Empty:
                break
            if item is _SHUTDOWN:
                self._executor.submit(self._execute_discover_batch, batch)
                return None
            if (
                item.op == "discover"
                and item.tracer is None
                and self._batch_signature(item) == signature
            ):
                batch.append(item)
            else:
                self._executor.submit(self._execute_single, item)
        return batch

    @staticmethod
    def _batch_signature(request: _Request) -> tuple:
        # Defaults mirror _request_key, so "k omitted" and "k=10" batch
        # (and cache) together; discoverers normalized like the key.
        params = request.params
        names = params.get("discoverers")
        return (
            params.get("k", 10),
            params.get("column"),
            tuple(names) if names else None,
        )

    def _expired(self, request: _Request) -> bool:
        if request.deadline_at is not None and time.monotonic() > request.deadline_at:
            if request.expire_once():
                self.stats.count("rejected_deadline")
            self._fulfil_error(
                request, DeadlineExceeded("deadline lapsed while queued")
            )
            return True
        return False

    def _fulfil(self, request: _Request, response: ServiceResponse) -> None:
        if not request.finish_once():
            return
        request.response = response
        self.stats.observe(request.op, time.monotonic() - request.enqueued_at)
        request.done.set()
        self._release()

    def _fulfil_error(self, request: _Request, error: BaseException) -> None:
        if not request.finish_once():
            return
        request.error = error
        if not isinstance(error, (DeadlineExceeded, ServiceClosed)):
            self.stats.count("errors")
        request.done.set()
        self._release()

    def _execute_single(self, request: _Request) -> None:
        if self._expired(request):
            return
        gen = self._gen
        try:
            if request.tracer is None:
                response = self._compute_response(request, gen)
            else:
                # Re-join the caller's trace: thread-local ambience does
                # not cross the pool, so the worker re-activates the
                # request's tracer anchored at its root.  The execute
                # span must close *before* _fulfil wakes the caller --
                # the caller serializes the tree as soon as wait()
                # returns.
                with tracing.activate(request.tracer, parent=request.tracer.root):
                    request.tracer.record(
                        "service.queue_wait",
                        wall_s=time.monotonic() - request.enqueued_at,
                    )
                    with request.tracer.span("service.execute"):
                        response = self._compute_response(request, gen)
            self._fulfil(request, response)
        except Exception as error:  # noqa: BLE001 - error becomes the response
            self._fulfil_error(request, error)

    def _compute_response(self, request: _Request, gen: _Generation) -> ServiceResponse:
        """Worker-side cache re-check + handler execution (no fulfil)."""
        if request.key is not None:
            payload = self.cache.get((gen.version, request.key))
            if payload is not None:
                return ServiceResponse(
                    op=request.op,
                    lake_version=gen.version,
                    cached=True,
                    payload=payload,
                )
        handler = self._handlers[request.op]
        payload = handler(gen, request.params)
        # Degraded payloads (shards lost past the supervised retry) are
        # served -- annotated -- but never cached: a later request must
        # get a complete answer once the shard recovers, and the cache is
        # keyed by version only, which a shard death does not move.
        degraded = isinstance(payload, dict) and payload.get("degraded_shards")
        if degraded:
            self.stats.count("degraded")
        if request.key is not None and not degraded:
            self.cache.put((gen.version, request.key), payload)
        return ServiceResponse(
            op=request.op,
            lake_version=gen.version,
            cached=False,
            payload=payload,
        )

    def _execute_discover_batch(self, batch: list[_Request]) -> None:
        live = [r for r in batch if not self._expired(r)]
        if not live:
            return
        gen = self._gen
        try:
            # Re-check the cache at this generation (the version may have
            # moved since submit), then dedupe identical requests: one
            # execution fans out to every waiter.
            pending: dict[tuple, list[_Request]] = {}
            for request in live:
                payload = self.cache.get((gen.version, request.key))
                if payload is not None:
                    self._fulfil(
                        request,
                        ServiceResponse(
                            op=request.op,
                            lake_version=gen.version,
                            cached=True,
                            payload=payload,
                        ),
                    )
                    continue
                pending.setdefault(request.key, []).append(request)
            if not pending:
                return
            unique = [waiters[0] for waiters in pending.values()]
            if len(batch) > 1:
                self.stats.count("batches")
                self.stats.count("batched_requests", len(live))
            if len(unique) == 1:
                keyed = {unique[0].key: self._handle_discover(gen, unique[0].params)}
            else:
                queries = [
                    self._service_query(r.params["query"]) for r in unique
                ]
                # Same defaults as _request_key/_handle_discover: the
                # generic request() path may omit optional params.
                first = unique[0].params
                outcomes = gen.pipeline.discover_many(
                    queries,
                    k=first.get("k", 10),
                    query_column=first.get("column"),
                    discoverer_names=first.get("discoverers"),
                )
                keyed = {
                    r.key: _discover_payload(outcome)
                    for r, outcome in zip(unique, outcomes)
                }
            for key, payload in keyed.items():
                # Same degraded-never-cached rule as _compute_response.
                if payload.get("degraded_shards"):
                    self.stats.count("degraded")
                else:
                    self.cache.put((gen.version, key), payload)
                for request in pending[key]:
                    self._fulfil(
                        request,
                        ServiceResponse(
                            op=request.op,
                            lake_version=gen.version,
                            cached=False,
                            payload=payload,
                        ),
                    )
        except Exception as error:  # noqa: BLE001 - error becomes the response
            for request in live:
                if not request.done.is_set():
                    self._fulfil_error(request, error)

    # ------------------------------------------------------------------
    # Canonical keys + built-in handlers
    # ------------------------------------------------------------------
    def _request_key(self, op: str, params: dict[str, Any]) -> tuple | None:
        """The canonical cache key of one request (None = uncacheable).

        Keys are content-derived: the query table's content hash (name
        excluded -- two callers sending the same cells share an entry),
        plus every option that changes the result.
        """
        if op == "discover":
            names = params.get("discoverers")
            return (
                "discover",
                table_content_hash(params["query"]),
                params.get("k", 10),
                params.get("column"),
                # Normalized so the generic request() path may pass a
                # list (tuples hash, lists don't).
                tuple(names) if names else None,
            )
        if op == "align":
            return (
                "align",
                tuple(
                    (t.name, table_content_hash(t)) for t in params["tables"]
                ),
            )
        if op == "integrate":
            if params.get("tables") is not None:
                subject: tuple = (
                    "tables",
                    tuple(
                        (t.name, table_content_hash(t))
                        for t in params["tables"]
                    ),
                )
            else:
                subject = (
                    "query",
                    table_content_hash(params["query"]),
                    params.get("k", 10),
                    params.get("column"),
                )
            return ("integrate", subject, params.get("integrator"), params.get("align", True))
        return None

    @staticmethod
    def _service_query(query: Table) -> Table:
        """The query under its canonical service name (hash-derived, so
        identical content gets an identical -- and lake-collision-free --
        name, and batch members stay unique)."""
        return query.with_name(f"q-{table_content_hash(query)[:16]}")

    def _handle_discover(self, gen: _Generation, params: dict[str, Any]) -> dict:
        outcome = gen.pipeline.discover(
            self._service_query(params["query"]),
            k=params.get("k", 10),
            query_column=params.get("column"),
            discoverer_names=params.get("discoverers"),
        )
        return _discover_payload(outcome)

    def _handle_align(self, gen: _Generation, params: dict[str, Any]) -> dict:
        with self._work_lock:
            alignment = gen.pipeline.align(params["tables"])
        assignments = {
            f"{ref.table}.{ref.column}": integration_id
            for ref, integration_id in alignment.assignments.items()
        }
        return {
            "assignments": dict(sorted(assignments.items())),
            "num_ids": alignment.num_ids,
        }

    def _handle_integrate(self, gen: _Generation, params: dict[str, Any]) -> dict:
        integrator = params.get("integrator")
        do_align = params.get("align", True)
        if params.get("tables") is not None:
            with self._work_lock:
                result = gen.pipeline.integrate(
                    params["tables"], integrator=integrator, align=do_align
                )
            integration_set = [t.name for t in params["tables"]]
        else:
            outcome = gen.pipeline.discover(
                self._service_query(params["query"]),
                k=params.get("k", 10),
                query_column=params.get("column"),
            )
            with self._work_lock:
                result = gen.pipeline.integrate(
                    outcome, integrator=integrator, align=do_align
                )
            integration_set = [t.name for t in outcome.integration_set[1:]]
        display = result.to_display_table()
        return {
            "integration_set": integration_set,
            "table": _table_payload(display),
        }

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Stop accepting work, finish what is running, stop the pool."""
        with self._admission_lock:
            if self._closed:
                return
            self._closed = True
        self._queue.put(_SHUTDOWN)
        self._dispatcher.join(timeout=10)
        self._executor.shutdown(wait=True)
        # Stop the exporter *after* the pool drains so its final flush
        # sees the last requests' metrics and queued traces.
        if self._exporter is not None:
            try:
                self._exporter.close()
            except Exception:  # noqa: BLE001 - shutdown must not raise
                pass
        # Sharded indexes own executor resources (thread pools / worker
        # process leases); release them once nothing can dispatch.
        index_close = getattr(self._gen.pipeline._index, "close", None)
        if index_close is not None:
            try:
                index_close()
            except Exception:  # noqa: BLE001 - shutdown must not raise
                pass
        # Anything still queued (raced the sentinel) is refused loudly.
        while True:
            try:
                item = self._queue.get_nowait()
            except queue.Empty:
                break
            if item is not _SHUTDOWN:
                self._fulfil_error(item, ServiceClosed("service closed"))

    def __enter__(self) -> "LakeService":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "closed" if self._closed else f"{self._inflight} in flight"
        return (
            f"LakeService(v{self.version}, {self.workers} workers, "
            f"{len(self.cache)} cached, {state})"
        )


def oracle_discover_payload(
    pipeline: Dialite,
    query: Table,
    k: int = 10,
    query_column: str | None = None,
    discoverers: Sequence[str] | None = None,
) -> dict[str, Any]:
    """What a service over *pipeline* would serve for this request --
    the byte-identical sequential baseline the service benchmark and the
    concurrency stress tests compare cached/batched responses against.
    Applies the same canonicalization (hash-derived query name, name-free
    payload) as the serving path."""
    outcome = pipeline.discover(
        LakeService._service_query(query),
        k=k,
        query_column=query_column,
        discoverer_names=list(discoverers) if discoverers else None,
    )
    return _discover_payload(outcome)


def _discover_payload(outcome) -> dict[str, Any]:
    """The deterministic, name-free discover response document.

    ``degraded_shards`` appears *only* when non-empty, so healthy
    payloads stay byte-identical to every pre-fault-tolerance response
    (and to the oracle the chaos harness compares against)."""
    document: dict[str, Any] = {
        "results": [
            {
                "table": r.table_name,
                "score": round(r.score, 9),
                "discoverer": r.discoverer,
                "reason": r.reason,
            }
            for r in outcome.merged
        ],
        "integration_set": [t.name for t in outcome.integration_set[1:]],
    }
    degraded = tuple(getattr(outcome, "degraded_shards", ()) or ())
    if degraded:
        document["degraded_shards"] = list(degraded)
    return document


# Response payloads carry tables in the same canonical document shape the
# wire protocol uses -- one definition, in the store codec.
_table_payload = encode_table
