"""repro.service -- the concurrent query-serving layer.

Everything before this package makes one *call* fast; this package makes
a *session* fast and shared: :class:`LakeService` holds one warm
pipeline over a versioned lake store and serves concurrent
discover/align/integrate requests through a worker pool, a versioned
result cache (invalidated by lake version, never by enumeration),
request micro-batching, and a hot-swap reload path that follows on-disk
ingests without dropping in-flight work.  :class:`LakeServer` /
:class:`ServiceClient` put the same session behind a stdlib TCP line
protocol (the CLI's ``repro serve`` / ``--service``).

Entry points::

    service = LakeService(store="lake.store", workers=8)   # or
    service = Dialite.open("lake.store").serve(workers=8)

    response = service.discover(query, k=5, query_column="City")
    response.lake_version, response.cached, response.payload

    server = LakeServer(service, port=8765); server.start()
    client = ServiceClient("127.0.0.1:8765"); client.discover(query, k=5)
"""

from .protocol import LakeServer, ServiceClient, decode_table, encode_table, parse_address
from .service import (
    DeadlineExceeded,
    LakeService,
    ServiceClosed,
    ServiceError,
    ServiceOverloaded,
    ServiceResponse,
    ServiceStats,
    ServiceUnavailable,
    oracle_discover_payload,
)

__all__ = [
    "LakeService",
    "LakeServer",
    "ServiceClient",
    "ServiceResponse",
    "ServiceStats",
    "ServiceError",
    "ServiceOverloaded",
    "ServiceUnavailable",
    "DeadlineExceeded",
    "ServiceClosed",
    "encode_table",
    "decode_table",
    "parse_address",
    "oracle_discover_payload",
]
