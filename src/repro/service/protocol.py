"""The service's wire surface: newline-delimited JSON over TCP, stdlib only.

One request per line, one response per line::

    -> {"op": "discover", "query": {...table...}, "k": 5, "column": "City"}
    <- {"ok": true, "op": "discover", "lake_version": 3, "cached": false,
        "payload": {"results": [...], "integration_set": [...]}}

Tables cross the wire as ``{"name", "columns", "rows"}`` documents using
the store codec's cell encoding (:func:`repro.store.codec.encode_cell`),
so the paper's two null kinds survive the round trip.  Failures come back
as ``{"ok": false, "kind": "ServiceOverloaded", "error": "..."}`` and
:class:`ServiceClient` re-raises them under their service exception type.

:class:`LakeServer` wraps a :class:`~repro.service.service.LakeService`
in a ``ThreadingTCPServer`` (connection threads feed the service's own
admission queue and worker pool -- the socket layer adds no second
concurrency policy) and, for store-backed services, writes a
``service.json`` **beacon** into the store directory while it is up:
``repro index info`` pings it to report whether a live service currently
holds the lake and at which version.
"""

from __future__ import annotations

import json
import os
import socket
import socketserver
import threading
import time
from pathlib import Path
from typing import Any, Iterable, Sequence

from ..faults import inject
from ..faults.retry import RetryPolicy
from ..obs import export as obs_export
from ..obs import trace as tracing
from ..store.codec import decode_table, encode_table
from ..table.table import Table
from .service import (
    DeadlineExceeded,
    LakeService,
    ServiceClosed,
    ServiceError,
    ServiceOverloaded,
    ServiceUnavailable,
)

__all__ = [
    "LakeServer",
    "ServiceClient",
    "encode_table",
    "decode_table",
    "parse_address",
    "read_beacon",
]

BEACON_FILE = "service.json"

_ERROR_TYPES = {
    "ServiceOverloaded": ServiceOverloaded,
    "ServiceUnavailable": ServiceUnavailable,
    "DeadlineExceeded": DeadlineExceeded,
    "ServiceClosed": ServiceClosed,
}

#: Wire ops the client never retries: a dropped connection leaves it
#: unknown whether the server applied the write, and replaying an ingest
#: against a moved lake version is not idempotent.
_NO_RETRY_OPS = frozenset({"ingest"})


def parse_address(address: str) -> tuple[str, int]:
    """``"host:port"`` (or ``":port"`` for localhost) -> ``(host, port)``."""
    host, separator, port = address.rpartition(":")
    if not separator or not port.isdigit():
        raise ValueError(f"service address must be host:port, got {address!r}")
    return (host or "127.0.0.1", int(port))


def read_beacon(store_path: str | Path) -> dict[str, Any] | None:
    """The ``service.json`` beacon of a store directory, if present."""
    beacon = Path(store_path) / BEACON_FILE
    try:
        return json.loads(beacon.read_text(encoding="utf-8"))
    except (FileNotFoundError, json.JSONDecodeError):
        return None


class _Handler(socketserver.StreamRequestHandler):
    """One connection: serve requests line by line until EOF."""

    server: "LakeServer"

    def handle(self) -> None:
        for raw in self.rfile:
            line = raw.strip()
            if not line:
                continue
            try:
                inject.fire("server.handle")
                request = json.loads(line)
                response = self.server.dispatch(request)
            except Exception as error:  # noqa: BLE001 - becomes the response
                response = {
                    "ok": False,
                    "kind": type(error).__name__,
                    "error": str(error),
                }
                retry_after = getattr(error, "retry_after", None)
                if retry_after is not None:
                    response["retry_after"] = retry_after
            self.wfile.write(
                json.dumps(response, ensure_ascii=False, separators=(",", ":")).encode(
                    "utf-8"
                )
                + b"\n"
            )
            self.wfile.flush()
            if response.get("shutdown"):
                # Shutdown must come from another thread: serve_forever
                # only exits between polls, and this handler runs inside
                # one of its connection threads.  close() is idempotent,
                # so the CLI's own finally-close is harmless after this.
                threading.Thread(target=self.server.close, daemon=True).start()
                return


class LakeServer(socketserver.ThreadingTCPServer):
    """The service behind a TCP front end (see the module docstring)."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(
        self,
        service: LakeService,
        host: str = "127.0.0.1",
        port: int = 0,
    ):
        self.service = service
        self._beacon_path: Path | None = None
        self._serving = False
        super().__init__((host, port), _Handler)

    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)`` (port resolved when 0 was asked)."""
        return self.socket.getsockname()[:2]

    # ------------------------------------------------------------------
    # Request dispatch (the op -> service mapping)
    # ------------------------------------------------------------------
    def dispatch(self, request: dict[str, Any]) -> dict[str, Any]:
        op = request.get("op")
        deadline = request.get("deadline")
        if op == "ping":
            return {"ok": True, "op": "ping", "payload": {"pong": True}}
        if op == "version":
            return {
                "ok": True,
                "op": "version",
                "lake_version": self.service.version,
                "payload": {"lake_version": self.service.version},
            }
        if op == "health":
            return {
                "ok": True,
                "op": "health",
                "lake_version": self.service.version,
                "payload": self.service.health_snapshot(),
            }
        if op == "stats":
            return {
                "ok": True,
                "op": "stats",
                "lake_version": self.service.version,
                "payload": self.service.stats_snapshot(),
            }
        if op == "metrics":
            return {
                "ok": True,
                "op": "metrics",
                "lake_version": self.service.version,
                "payload": self.service.metrics_snapshot(),
            }
        if op == "metrics_text":
            # The same merged snapshot as ``metrics``, rendered in the
            # Prometheus text exposition format (scrape adapters, the
            # `repro obs export` CLI).
            return {
                "ok": True,
                "op": "metrics_text",
                "lake_version": self.service.version,
                "payload": {
                    "text": obs_export.prometheus_text(
                        self.service.metrics_snapshot()
                    )
                },
            }
        if op == "shutdown":
            return {"ok": True, "op": "shutdown", "shutdown": True, "payload": {}}
        if op == "ingest":
            report = self.service.ingest(
                [decode_table(doc) for doc in request["tables"]]
            )
            return {
                "ok": True,
                "op": "ingest",
                "lake_version": self.service.version,
                "payload": report,
            }
        trace = bool(request.get("trace", False))
        # Adopt the client's distributed trace id: the service's
        # ``service.<op>`` tree is stamped with it, so the client can
        # graft the returned tree under its own root span.
        trace_id = request.get("trace_id")
        if op == "discover":
            response = self.service.discover(
                decode_table(request["query"]),
                k=request.get("k", 10),
                query_column=request.get("column"),
                discoverers=request.get("discoverers"),
                deadline=deadline,
                trace=trace,
                trace_id=trace_id,
            )
            return response.to_json()
        if op == "align":
            response = self.service.align(
                [decode_table(doc) for doc in request["tables"]],
                deadline=deadline,
                trace=trace,
                trace_id=trace_id,
            )
            return response.to_json()
        if op == "integrate":
            tables = request.get("tables")
            query = request.get("query")
            response = self.service.integrate(
                tables=[decode_table(doc) for doc in tables] if tables else None,
                query=decode_table(query) if query else None,
                k=request.get("k", 10),
                query_column=request.get("column"),
                integrator=request.get("integrator"),
                align=request.get("align", True),
                deadline=deadline,
                trace=trace,
                trace_id=trace_id,
            )
            return response.to_json()
        raise ServiceError(f"unknown wire op {op!r}")

    # ------------------------------------------------------------------
    # Lifecycle + beacon
    # ------------------------------------------------------------------
    def write_beacon(self) -> None:
        """Advertise this server in the store directory (best effort)."""
        store_path = self.service.store_path
        if store_path is None:
            return
        host, port = self.address
        beacon = store_path / BEACON_FILE
        temp = beacon.with_name(beacon.name + ".tmp")
        temp.write_text(
            json.dumps({"host": host, "port": port, "pid": os.getpid()}),
            encoding="utf-8",
        )
        temp.replace(beacon)
        self._beacon_path = beacon

    def remove_beacon(self) -> None:
        if self._beacon_path is not None and self._beacon_path.exists():
            self._beacon_path.unlink()
            self._beacon_path = None

    def serve_forever(self, poll_interval: float = 0.5) -> None:
        self._serving = True
        super().serve_forever(poll_interval)

    def start(self) -> threading.Thread:
        """Serve in a background thread (returns it); beacon written."""
        self.write_beacon()
        # Marked serving *before* the thread launches so a close() racing
        # the thread's serve_forever entry still shuts it down (shutdown
        # blocks until the loop runs and observes the request).
        self._serving = True
        thread = threading.Thread(
            target=self.serve_forever, name="repro-lake-server", daemon=True
        )
        thread.start()
        return thread

    def run(self) -> None:
        """Serve in the calling thread until shutdown (the CLI path)."""
        self.write_beacon()
        try:
            self.serve_forever()
        finally:
            self.close()

    def close(self) -> None:
        """Stop serving, close the socket, drop the beacon, stop the
        service's worker pool.  Idempotent, and safe on a server whose
        ``serve_forever`` never ran (``shutdown`` would otherwise wait
        forever on an event only the serve loop sets)."""
        if self._serving:
            self._serving = False
            self.shutdown()
        self.server_close()
        self.remove_beacon()
        self.service.close()


class ServiceClient:
    """A small synchronous client: one connection per call, with retries.

    Raises the service's own exception types for wire failures
    (:class:`ServiceOverloaded`, :class:`DeadlineExceeded`, ...), so
    callers handle local and remote services identically.  Connect and
    read failures surface as :class:`ServiceUnavailable`.

    Transient failures -- connection errors (:class:`ServiceUnavailable`)
    and admission rejections (:class:`ServiceOverloaded`) -- are retried
    with bounded exponential backoff + jitter (*retry*, a
    :class:`~repro.faults.retry.RetryPolicy`; pass ``None`` to disable).
    An overload response's ``retry_after`` hint floors the next delay.
    ``ingest`` is **never** retried: a dropped connection leaves the
    write's fate unknown, and replaying it is not idempotent.
    """

    def __init__(
        self,
        address: "str | tuple[str, int]",
        timeout: float = 30.0,
        connect_timeout: float | None = None,
        retry: RetryPolicy | None = RetryPolicy(),
    ):
        if isinstance(address, str):
            address = parse_address(address)
        self.host, self.port = address
        #: Read timeout: the longest one request may take end to end
        #: (kept under its historical name for call-site compatibility).
        self.timeout = timeout
        #: Connect timeout: reaching a dead host should fail fast even
        #: when the read timeout is generous.
        self.connect_timeout = (
            connect_timeout if connect_timeout is not None else min(timeout, 5.0)
        )
        self.retry = retry

    def call(self, op: str, **params: Any) -> dict[str, Any]:
        """Send one request document; return the response document.

        A traced call (``trace=True`` in *params*) mints the distributed
        trace id here -- the client is the furthest-upstream party --
        ships it in the envelope, and grafts the server's returned tree
        under its own ``client.<op>`` root, so the response's ``trace``
        is ONE tree: client connect/serialize/wait, server admission/
        queue/execute, and (for sharded lakes) every shard worker.
        """
        request = {"op": op, **{k: v for k, v in params.items() if v is not None}}
        if not request.get("trace"):
            return self._call_with_retry(op, request)
        tracer = tracing.Tracer()
        request["trace_id"] = tracer.trace_id
        with tracing.activate(tracer):
            with tracer.span(f"client.{op}"):
                response = self._call_with_retry(op, request)
        server_tree = response.get("trace")
        if server_tree:
            tracer.attach_tree(server_tree, parent=tracer.root)
        response["trace"] = tracer.to_dict()
        return response

    def _call_with_retry(self, op: str, request: dict[str, Any]) -> dict[str, Any]:
        attempts = self.retry.attempts if self.retry is not None else 1
        if op in _NO_RETRY_OPS:
            attempts = 1
        for attempt in range(attempts):
            try:
                return self._call_once(request)
            except (ServiceUnavailable, ServiceOverloaded) as error:
                if attempt + 1 >= attempts:
                    raise
                assert self.retry is not None
                time.sleep(
                    self.retry.delay(
                        attempt, floor=getattr(error, "retry_after", None)
                    )
                )
        raise AssertionError("unreachable")  # pragma: no cover

    def _call_once(self, request: dict[str, Any]) -> dict[str, Any]:
        """One connection, one request, one response line."""
        try:
            inject.fire("client.connect")
            with tracing.span("client.connect"):
                conn = socket.create_connection(
                    (self.host, self.port), timeout=self.connect_timeout
                )
            with conn:
                conn.settimeout(self.timeout)
                with tracing.span("client.serialize") as serialize_span:
                    data = (
                        json.dumps(
                            request, ensure_ascii=False, separators=(",", ":")
                        ).encode("utf-8")
                        + b"\n"
                    )
                    serialize_span.add(bytes=len(data))
                    conn.sendall(data)
                with tracing.span("client.wait"):
                    with conn.makefile("rb") as reader:
                        line = reader.readline()
        except OSError as error:  # ConnectionError, timeout, refused, ...
            raise ServiceUnavailable(
                f"service at {self.host}:{self.port} unreachable: {error}"
            ) from error
        if not line:
            raise ServiceUnavailable(
                f"service at {self.host}:{self.port} closed the connection"
            )
        response = json.loads(line)
        if not response.get("ok"):
            error_type = _ERROR_TYPES.get(response.get("kind"), ServiceError)
            error = error_type(response.get("error", "service error"))
            if response.get("retry_after") is not None:
                error.retry_after = response["retry_after"]
            raise error
        return response

    # Typed conveniences ------------------------------------------------
    def health(self) -> dict[str, Any]:
        return self.call("health")["payload"]

    def ping(self) -> bool:
        return bool(self.call("ping")["payload"]["pong"])

    def version(self) -> int:
        return int(self.call("version")["payload"]["lake_version"])

    def stats(self) -> dict[str, Any]:
        return self.call("stats")["payload"]

    def metrics(self) -> dict[str, Any]:
        return self.call("metrics")["payload"]

    def metrics_text(self) -> str:
        """The merged metrics snapshot in Prometheus text format."""
        return self.call("metrics_text")["payload"]["text"]

    def discover(
        self,
        query: Table,
        k: int = 10,
        column: str | None = None,
        discoverers: Sequence[str] | None = None,
        deadline: float | None = None,
        trace: bool = False,
    ) -> dict[str, Any]:
        return self.call(
            "discover",
            query=encode_table(query),
            k=k,
            column=column,
            discoverers=list(discoverers) if discoverers else None,
            deadline=deadline,
            trace=True if trace else None,
        )

    def align(
        self,
        tables: Iterable[Table],
        deadline: float | None = None,
        trace: bool = False,
    ) -> dict[str, Any]:
        return self.call(
            "align",
            tables=[encode_table(t) for t in tables],
            deadline=deadline,
            trace=True if trace else None,
        )

    def integrate(
        self,
        tables: Iterable[Table] | None = None,
        query: Table | None = None,
        k: int = 10,
        column: str | None = None,
        integrator: str | None = None,
        align: bool = True,
        deadline: float | None = None,
        trace: bool = False,
    ) -> dict[str, Any]:
        return self.call(
            "integrate",
            tables=[encode_table(t) for t in tables] if tables else None,
            query=encode_table(query) if query is not None else None,
            k=k,
            column=column,
            integrator=integrator,
            align=align,
            deadline=deadline,
            trace=True if trace else None,
        )

    def ingest(self, tables: Iterable[Table]) -> dict[str, Any]:
        return self.call("ingest", tables=[encode_table(t) for t in tables])["payload"]

    def shutdown(self) -> None:
        self.call("shutdown")

    def __repr__(self) -> str:
        return f"ServiceClient({self.host}:{self.port})"
