"""Deterministic feature hashing: the embedding substrate.

The original SANTOS/ALITE stacks embed column values with pretrained GloVe /
FastText vectors.  Those models are unavailable offline, so we substitute
*feature-hashed n-gram vectors*: every token is hashed into a fixed-width
dense vector with a sign hash (the classic "hashing trick").  The property
the downstream matchers rely on -- lexically/structurally similar value sets
map to nearby vectors, dissimilar ones to near-orthogonal vectors -- is
preserved, and the whole pipeline stays deterministic and seed-stable.
"""

from __future__ import annotations

import hashlib
import struct

import numpy as np

__all__ = ["stable_hash", "signed_slot", "token_vector", "HashedVectorSpace"]

_DEFAULT_DIM = 256


def stable_hash(text: str, salt: str = "") -> int:
    """A 64-bit hash of *text* that is stable across processes and runs
    (unlike builtin ``hash``, which is randomized per interpreter)."""
    digest = hashlib.blake2b((salt + "\x1f" + text).encode("utf-8"), digest_size=8).digest()
    return struct.unpack("<Q", digest)[0]


def signed_slot(token: str, dim: int, salt: str = "") -> tuple[int, float]:
    """The (index, sign) pair feature hashing assigns to *token*."""
    value = stable_hash(token, salt)
    index = value % dim
    sign = 1.0 if (value >> 63) & 1 else -1.0
    return index, sign


def token_vector(token: str, dim: int = _DEFAULT_DIM, salt: str = "") -> np.ndarray:
    """The one-hot signed vector of a single token."""
    vector = np.zeros(dim, dtype=np.float64)
    index, sign = signed_slot(token, dim, salt)
    vector[index] = sign
    return vector


class HashedVectorSpace:
    """A fixed-dimension vector space over hashed tokens.

    ``embed_tokens`` accumulates (optionally weighted) token vectors and
    L2-normalizes, so cosine similarity between two embeddings approximates
    the weighted cosine between the underlying token multisets.
    """

    def __init__(self, dim: int = _DEFAULT_DIM, salt: str = ""):
        if dim <= 0:
            raise ValueError("embedding dimension must be positive")
        self.dim = dim
        self.salt = salt

    def embed_tokens(self, tokens: dict[str, float] | list[str]) -> np.ndarray:
        """Embed a token multiset (list) or weighted token map."""
        vector = np.zeros(self.dim, dtype=np.float64)
        if isinstance(tokens, dict):
            items = tokens.items()
        else:
            counts: dict[str, float] = {}
            for token in tokens:
                counts[token] = counts.get(token, 0.0) + 1.0
            items = counts.items()
        for token, weight in items:
            index, sign = signed_slot(token, self.dim, self.salt)
            vector[index] += sign * weight
        norm = np.linalg.norm(vector)
        if norm > 0:
            vector /= norm
        return vector

    @staticmethod
    def cosine(a: np.ndarray, b: np.ndarray) -> float:
        """Cosine similarity of two embeddings (0.0 if either is zero)."""
        denom = np.linalg.norm(a) * np.linalg.norm(b)
        if denom == 0.0:
            return 0.0
        return float(np.dot(a, b) / denom)
