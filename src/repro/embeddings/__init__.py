"""Deterministic hashed embeddings (the pretrained-embedding substitute).

See :mod:`repro.embeddings.hashing` for the substitution rationale: GloVe /
FastText are unavailable offline, and the matchers only need "similar value
sets embed nearby", which feature hashing provides deterministically.
"""

from .column import ColumnEmbedder, ColumnEmbedderConfig, ColumnProfile
from .hashing import HashedVectorSpace, signed_slot, stable_hash, token_vector

__all__ = [
    "stable_hash",
    "signed_slot",
    "token_vector",
    "HashedVectorSpace",
    "ColumnEmbedder",
    "ColumnEmbedderConfig",
    "ColumnProfile",
]
