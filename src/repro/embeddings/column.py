"""Column embeddings: the featurization behind holistic schema matching.

A column is embedded from three channels, each in its own salted hash space
so they cannot collide:

* **value channel** -- word tokens + character trigrams of the cell values
  (what the column *contains*);
* **header channel** -- tokens and trigrams of the column name (what the
  column *claims* to be; data lakes make this unreliable, so it gets a
  configurable, typically small, weight);
* **type channel** -- a coarse signature (numeric fraction, mean string
  length, distinctness) so a numeric column never drifts toward a text one.

The ALITE aligner consumes these embeddings; see
:mod:`repro.alignment.features`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..table.values import Cell, is_null
from ..text.normalize import numeric_fraction
from ..text.tokenize import cell_tokens, char_ngrams, word_tokens
from .hashing import HashedVectorSpace

__all__ = ["ColumnEmbedderConfig", "ColumnEmbedder", "ColumnProfile"]


@dataclass(frozen=True)
class ColumnEmbedderConfig:
    """Weights and dimensions for :class:`ColumnEmbedder`."""

    dim: int = 256
    value_weight: float = 1.0
    header_weight: float = 0.25
    max_values: int = 512  # sample cap: embeddings stabilize long before this


@dataclass
class ColumnProfile:
    """A column's embedding plus the scalar statistics matchers gate on."""

    embedding: np.ndarray
    numeric_fraction: float
    mean_length: float
    distinct_ratio: float
    non_null: int
    header_tokens: tuple[str, ...] = field(default=())


class ColumnEmbedder:
    """Embeds (header, values) into a single L2-normalized vector."""

    def __init__(self, config: ColumnEmbedderConfig | None = None):
        self.config = config or ColumnEmbedderConfig()
        self._value_space = HashedVectorSpace(self.config.dim, salt="value")
        self._header_space = HashedVectorSpace(self.config.dim, salt="header")

    def profile(self, header: str, values: Sequence[Cell]) -> ColumnProfile:
        """Full profile: embedding + statistics for matcher gating."""
        non_null = [v for v in values if not is_null(v)]
        sample = non_null[: self.config.max_values]
        value_tokens: dict[str, float] = {}
        total_length = 0
        for value in sample:
            text = _text_of(value)
            total_length += len(text)
            for token in cell_tokens(value):
                value_tokens[token] = value_tokens.get(token, 0.0) + 1.0
                for gram in char_ngrams(token, 3):
                    value_tokens[gram] = value_tokens.get(gram, 0.0) + 0.5
        header_tokens: dict[str, float] = {}
        for token in word_tokens(header):
            header_tokens[token] = header_tokens.get(token, 0.0) + 1.0
            for gram in char_ngrams(token, 3):
                header_tokens[gram] = header_tokens.get(gram, 0.0) + 0.5

        vector = self.config.value_weight * self._value_space.embed_tokens(value_tokens)
        vector = vector + self.config.header_weight * self._header_space.embed_tokens(
            header_tokens
        )
        norm = np.linalg.norm(vector)
        if norm > 0:
            vector = vector / norm
        distinct = len({str(v) for v in sample})
        return ColumnProfile(
            embedding=vector,
            numeric_fraction=numeric_fraction(list(sample)),
            mean_length=(total_length / len(sample)) if sample else 0.0,
            distinct_ratio=(distinct / len(sample)) if sample else 0.0,
            non_null=len(non_null),
            header_tokens=tuple(word_tokens(header)),
        )

    def embed(self, header: str, values: Sequence[Cell]) -> np.ndarray:
        """Just the embedding vector (convenience over :meth:`profile`)."""
        return self.profile(header, values).embedding

    @staticmethod
    def similarity(a: ColumnProfile, b: ColumnProfile) -> float:
        """Cosine between two column profiles' embeddings."""
        return HashedVectorSpace.cosine(a.embedding, b.embedding)


def _text_of(value: Cell) -> str:
    if isinstance(value, float):
        return f"{value:g}"
    return str(value)
