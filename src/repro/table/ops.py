"""Relational operators over :class:`~repro.table.table.Table`.

These are the classical operators DIALITE's integration baselines are built
from: projection, selection, natural inner/left/full-outer joins, outer
union, distinct, sort and group-by aggregation.  All joins are *natural*
(keyed on shared column names) unless an explicit ``on`` list is given,
because after alignment the shared names are exactly the integration IDs.

The hot operators (joins, outer union, distinct, sort, project) run
**columnar**: join keys are precomputed as per-column key vectors, matches
are collected as row-index gather lists, and output tables are assembled
column-by-column with :meth:`Table.from_columns` -- no intermediate row
tuples are ever materialized.  Projection and union are (near) zero-copy
because derived tables share the parents' immutable column arrays.

Null semantics follow SQL: a null (of either kind) never matches a join key
and is skipped by aggregates.  Cells *introduced* by an operator (padding of
non-matching rows, outer-union widening) are :data:`PRODUCED` (``⊥``) nulls,
which is precisely how the paper's Figure 8(a) outer join is rendered.
"""

from __future__ import annotations

from operator import itemgetter
from typing import Callable, Mapping, Sequence

from .table import Table
from .values import PRODUCED, Cell, Null, is_null

__all__ = [
    "project",
    "select",
    "distinct",
    "sort_by",
    "limit",
    "union_all",
    "outer_union",
    "inner_join",
    "left_outer_join",
    "full_outer_join",
    "semi_join",
    "anti_join",
    "aggregate",
    "AGGREGATES",
    "add_column",
    "drop_columns",
    "value_counts",
    "sample",
    "pivot",
]


def _gather(array: tuple[Cell, ...], indices: Sequence[int]) -> tuple[Cell, ...]:
    """Column gather: ``tuple(array[i] for i in indices)`` at C speed."""
    if not indices:
        return ()
    if len(indices) == 1:
        return (array[indices[0]],)
    return itemgetter(*indices)(array)


def _tagged_column(array: tuple[Cell, ...]) -> list:
    """Hashable, type-tagged stand-ins for one column's cells."""
    return [_hashable(cell) for cell in array]


def _tag_or_none(cell: Cell):
    """``_hashable(cell)`` for concrete cells, ``None`` for nulls -- with an
    exact-type fast path, because this runs once per key cell per join."""
    kind = type(cell)
    if kind is str:
        return ("str", cell)
    if kind is Null:
        return None
    if kind is bool:
        return ("bool", str(cell))
    if kind is int or kind is float:
        return ("num", f"{float(cell):g}")
    if is_null(cell):
        return None
    return _hashable(cell)


def _key_vector(table: Table, positions: Sequence[int]) -> list:
    """Per-row join keys from the key columns, ``None`` where any key cell
    is null.  Single-column keys skip the tuple wrapper entirely."""
    arrays = table.column_arrays
    tag = _tag_or_none
    if len(positions) == 1:
        return [tag(cell) for cell in arrays[positions[0]]]
    tagged = [[tag(cell) for cell in arrays[p]] for p in positions]
    return [None if None in key else key for key in zip(*tagged)]


# ----------------------------------------------------------------------
# Unary operators
# ----------------------------------------------------------------------
def project(table: Table, columns: Sequence[str], name: str | None = None) -> Table:
    """Keep only *columns*, in the given order (zero-copy: the projected
    table shares the source's column arrays)."""
    arrays = table.column_arrays
    coldata = tuple(arrays[table.column_index(c)] for c in columns)
    return Table._from_columns_unchecked(
        list(columns), coldata, table.num_rows, name or table.name
    )


def select(
    table: Table, predicate: Callable[[dict[str, Cell]], bool], name: str | None = None
) -> Table:
    """Keep rows where ``predicate(row_as_dict)`` is true."""
    columns = table.columns
    keep = [
        i
        for i, row in enumerate(table.rows)
        if predicate(dict(zip(columns, row)))
    ]
    result = table.take(keep)
    return result if name is None else result.with_name(name)


def distinct(table: Table) -> Table:
    """Remove duplicate rows, keeping first occurrences (null kind matters)."""
    arrays = table.column_arrays
    if not arrays:
        keep = [0] if table.num_rows else []
        return table.take(keep)
    seen: set = set()
    seen_add = seen.add
    keep = []
    keep_append = keep.append
    if len(arrays) == 1:
        for i, key in enumerate(_tagged_column(arrays[0])):
            if key not in seen:
                seen_add(key)
                keep_append(i)
    else:
        tagged = [_tagged_column(array) for array in arrays]
        for i, key in enumerate(zip(*tagged)):
            if key not in seen:
                seen_add(key)
                keep_append(i)
    if len(keep) == table.num_rows:
        return table  # already distinct; reuse the immutable table
    return table.take(keep)


def sort_by(table: Table, columns: Sequence[str], descending: bool = False) -> Table:
    """Stable sort by *columns*; nulls sort last regardless of direction."""
    positions = [table.column_index(c) for c in columns]
    arrays = table.column_arrays

    # (null flag, type name, value-as-string) is a total order over
    # heterogeneous cells; the null flag pushes nulls to the end.
    sort_columns = [
        [(is_null(cell), type(cell).__name__, str(cell)) for cell in arrays[p]]
        for p in positions
    ]
    keys = list(zip(*sort_columns)) if sort_columns else [()] * table.num_rows
    order = sorted(range(table.num_rows), key=keys.__getitem__, reverse=descending)
    return table.take(order)


def limit(table: Table, n: int) -> Table:
    """The first *n* rows."""
    return table.head(n)


# ----------------------------------------------------------------------
# Union-family operators
# ----------------------------------------------------------------------
def union_all(tables: Sequence[Table], name: str = "union") -> Table:
    """Concatenate tables that share an identical header (bag semantics)."""
    if not tables:
        raise ValueError("union_all of zero tables")
    header = tables[0].columns
    for table in tables[1:]:
        if table.columns != header:
            raise ValueError(
                f"union_all header mismatch: {header} vs {table.columns} ({table.name!r})"
            )
    coldata = []
    for position in range(len(header)):
        merged: list[Cell] = []
        for table in tables:
            merged.extend(table.column_arrays[position])
        coldata.append(tuple(merged))
    num_rows = sum(t.num_rows for t in tables)
    return Table._from_columns_unchecked(header, tuple(coldata), num_rows, name)


def outer_union(tables: Sequence[Table], name: str = "outer_union") -> Table:
    """Union over the *united* header: columns are aligned by name and rows
    are padded with produced nulls for attributes a source table lacks.

    This is the first step of every Full Disjunction algorithm in
    :mod:`repro.integration`.  Column order: first appearance wins.
    Assembly is per output column: each source either contributes its
    column array verbatim or a run of produced nulls.
    """
    if not tables:
        raise ValueError("outer_union of zero tables")
    header: list[str] = []
    seen: set[str] = set()
    for table in tables:
        for column in table.columns:
            if column not in seen:
                seen.add(column)
                header.append(column)
    num_rows = sum(t.num_rows for t in tables)
    coldata = []
    for column in header:
        parts: list[Cell] = []
        for table in tables:
            if table.has_column(column):
                parts.extend(table.column_array(column))
            else:
                parts.extend((PRODUCED,) * table.num_rows)
        coldata.append(tuple(parts))
    return Table._from_columns_unchecked(header, tuple(coldata), num_rows, name)


# ----------------------------------------------------------------------
# Joins
# ----------------------------------------------------------------------
def inner_join(
    left: Table, right: Table, on: Sequence[str] | None = None, name: str | None = None
) -> Table:
    """Natural (or ``on``-keyed) inner join; null keys never match."""
    return _hash_join(left, right, on, keep_left=False, keep_right=False, name=name)


def left_outer_join(
    left: Table, right: Table, on: Sequence[str] | None = None, name: str | None = None
) -> Table:
    """Left outer join; unmatched left rows are padded with ``⊥``."""
    return _hash_join(left, right, on, keep_left=True, keep_right=False, name=name)


def full_outer_join(
    left: Table, right: Table, on: Sequence[str] | None = None, name: str | None = None
) -> Table:
    """Full outer join (the paper's ``⟗``); unmatched rows on either side are
    padded with ``⊥``.  Note this operator is **not associative** -- the very
    deficiency Full Disjunction exists to fix -- and
    :mod:`repro.integration.outerjoin` demonstrates the order sensitivity.
    """
    return _hash_join(left, right, on, keep_left=True, keep_right=True, name=name)


def _hash_join(
    left: Table,
    right: Table,
    on: Sequence[str] | None,
    keep_left: bool,
    keep_right: bool,
    name: str | None,
) -> Table:
    """Columnar hash join.

    Phase 1 precomputes per-side key vectors (one pass per key column).
    Phase 2 probes a right-side hash index and records the output as two
    gather segments: ``seg_left[i]``/``seg_right[i]`` index the source row
    of each output row (``-1`` = padded side), then unmatched right rows.
    Phase 3 assembles every output column with one gather -- no row tuples.
    """
    if on is None:
        on = [c for c in left.columns if right.has_column(c)]
    else:
        for column in on:
            left.column_index(column)
            right.column_index(column)
    if not on:
        raise ValueError(
            f"no shared columns between {left.name!r} and {right.name!r}; "
            "pass on=[...] or align the tables first"
        )
    left_key_pos = [left.column_index(c) for c in on]
    right_key_pos = [right.column_index(c) for c in on]
    on_set = set(on)
    right_extra = [c for c in right.columns if c not in on_set]
    right_extra_pos = [right.column_index(c) for c in right_extra]
    header = list(left.columns) + right_extra

    left_keys = _key_vector(left, left_key_pos)
    right_keys = _key_vector(right, right_key_pos)

    index: dict = {}
    for j, key in enumerate(right_keys):
        if key is not None:
            bucket = index.get(key)
            if bucket is None:
                index[key] = [j]
            else:
                bucket.append(j)

    # Segment 1: one entry per output row derived from a left row, in left
    # row order (matched expansions, then -- interleaved -- padded rows).
    seg_left: list[int] = []
    seg_right: list[int] = []
    matched_right: set[int] = set()
    index_get = index.get
    for i, key in enumerate(left_keys):
        matches = index_get(key) if key is not None else None
        if matches:
            matched_right.update(matches)
            seg_left.extend([i] * len(matches))
            seg_right.extend(matches)
        elif keep_left:
            seg_left.append(i)
            seg_right.append(-1)

    # Segment 2: unmatched right rows (full outer join only), right order.
    tail_right: list[int] = []
    if keep_right:
        tail_right = [j for j in range(right.num_rows) if j not in matched_right]

    left_arrays = left.column_arrays
    right_arrays = right.column_arrays
    key_pos_of = dict(zip(left_key_pos, right_key_pos))
    coldata: list[tuple[Cell, ...]] = []

    pad_right = not all(j >= 0 for j in seg_right)
    for p, _ in enumerate(left.columns):
        array = left_arrays[p]
        part1 = _gather(array, seg_left)
        if not tail_right:
            coldata.append(part1)
        elif p in key_pos_of:
            # Key columns take the right side's value for unmatched rights.
            part2 = _gather(right_arrays[key_pos_of[p]], tail_right)
            coldata.append(part1 + part2)
        else:
            coldata.append(part1 + (PRODUCED,) * len(tail_right))
    for rp in right_extra_pos:
        array = right_arrays[rp]
        if pad_right:
            part1 = tuple(
                array[j] if j >= 0 else PRODUCED for j in seg_right
            )
        else:
            part1 = _gather(array, seg_right)
        if tail_right:
            part1 += _gather(array, tail_right)
        coldata.append(part1)

    join_name = name or f"{left.name}_join_{right.name}"
    return Table._from_columns_unchecked(
        header, tuple(coldata), len(seg_left) + len(tail_right), join_name
    )


def semi_join(
    left: Table, right: Table, on: Sequence[str] | None = None, name: str | None = None
) -> Table:
    """Left rows that have at least one join partner in *right*."""
    return _filter_join(left, right, on, keep_matching=True, name=name)


def anti_join(
    left: Table, right: Table, on: Sequence[str] | None = None, name: str | None = None
) -> Table:
    """Left rows with **no** join partner in *right* (null keys count as
    unmatched, SQL-style)."""
    return _filter_join(left, right, on, keep_matching=False, name=name)


def _filter_join(
    left: Table,
    right: Table,
    on: Sequence[str] | None,
    keep_matching: bool,
    name: str | None,
) -> Table:
    if on is None:
        on = [c for c in left.columns if right.has_column(c)]
    if not on:
        raise ValueError(
            f"no shared columns between {left.name!r} and {right.name!r}; pass on=[...]"
        )
    left_positions = [left.column_index(c) for c in on]
    right_positions = [right.column_index(c) for c in on]
    right_keys = {
        key for key in _key_vector(right, right_positions) if key is not None
    }
    keep = [
        i
        for i, key in enumerate(_key_vector(left, left_positions))
        if (key is not None and key in right_keys) == keep_matching
    ]
    result = left.take(keep)
    return result if name is None else result.with_name(name)


def _key_of(row: tuple[Cell, ...], positions: Sequence[int]) -> tuple | None:
    """Join key for a row, or ``None`` if any key cell is null."""
    key = []
    for position in positions:
        cell = row[position]
        if is_null(cell):
            return None
        key.append(_hashable(cell))
    return tuple(key)


def _hashable(cell: Cell) -> tuple[str, str]:
    """A hashable, type-tagged stand-in for a cell (nulls keep their kind)."""
    if is_null(cell):
        return ("null", repr(cell))
    if isinstance(cell, bool):
        return ("bool", str(cell))
    if isinstance(cell, (int, float)):
        # 1 and 1.0 join; format drops the distinction deliberately.
        return ("num", f"{float(cell):g}")
    return ("str", str(cell))


# ----------------------------------------------------------------------
# Aggregation
# ----------------------------------------------------------------------
def _agg_count(values: list[Cell]) -> int:
    return len(values)


def _agg_sum(values: list[Cell]) -> Cell:
    numeric = [v for v in values if isinstance(v, (int, float)) and not isinstance(v, bool)]
    if not numeric:
        return PRODUCED
    return sum(numeric)


def _agg_mean(values: list[Cell]) -> Cell:
    numeric = [v for v in values if isinstance(v, (int, float)) and not isinstance(v, bool)]
    if not numeric:
        return PRODUCED
    return sum(numeric) / len(numeric)


def _agg_min(values: list[Cell]) -> Cell:
    if not values:
        return PRODUCED
    try:
        return min(values)
    except TypeError:
        return min(values, key=str)


def _agg_max(values: list[Cell]) -> Cell:
    if not values:
        return PRODUCED
    try:
        return max(values)
    except TypeError:
        return max(values, key=str)


#: Built-in aggregate functions usable by name in :func:`aggregate`.
AGGREGATES: dict[str, Callable[[list[Cell]], Cell]] = {
    "count": _agg_count,
    "sum": _agg_sum,
    "mean": _agg_mean,
    "min": _agg_min,
    "max": _agg_max,
}


def aggregate(
    table: Table,
    group_by: Sequence[str],
    aggregations: Mapping[str, tuple[str, str | Callable[[list[Cell]], Cell]]],
    name: str | None = None,
) -> Table:
    """Group-by aggregation.

    *aggregations* maps each output column name to ``(input column, func)``
    where *func* is a key of :data:`AGGREGATES` or any callable from a list
    of non-null cells to one cell.  Rows with a null in a grouping column
    form their own per-kind null group (so incomplete integrated tuples stay
    visible rather than silently vanishing, which is the analytic point of
    Section 2.3).

    An empty *group_by* aggregates the whole table into a single row.
    """
    group_pos = [table.column_index(c) for c in group_by]
    resolved: list[tuple[str, int, Callable[[list[Cell]], Cell]]] = []
    for out_column, (in_column, func) in aggregations.items():
        func_callable = AGGREGATES[func] if isinstance(func, str) else func
        resolved.append((out_column, table.column_index(in_column), func_callable))

    groups: dict[tuple, list[tuple[Cell, ...]]] = {}
    order: list[tuple] = []
    for row in table.rows:
        key = tuple(_hashable(row[p]) for p in group_pos)
        if key not in groups:
            groups[key] = []
            order.append(key)
        groups[key].append(row)

    header = list(group_by) + [out for out, _, _ in resolved]
    out_rows = []
    for key in order:
        members = groups[key]
        group_cells = [members[0][p] for p in group_pos]
        for out_column, position, func_callable in resolved:
            values = [row[position] for row in members if not is_null(row[position])]
            group_cells.append(func_callable(values))
        out_rows.append(tuple(group_cells))
    return Table(header, out_rows, name=name or f"{table.name}_agg")


# ----------------------------------------------------------------------
# Column-level and reshaping operators
# ----------------------------------------------------------------------
def add_column(
    table: Table,
    name: str,
    func: Callable[[dict[str, Cell]], Cell],
    position: int | None = None,
) -> Table:
    """Append (or insert at *position*) a computed column.

    *func* receives each row as a dict.  The classic use is materializing a
    parsed numeric view next to a messy source column.
    """
    if table.has_column(name):
        raise ValueError(f"table {table.name!r} already has a column {name!r}")
    insert_at = len(table.columns) if position is None else position
    columns = list(table.columns)
    columns.insert(insert_at, name)
    computed = tuple(
        func(dict(zip(table.columns, row))) for row in table.rows
    )
    coldata = list(table.column_arrays)
    coldata.insert(insert_at, computed)
    return Table._from_columns_unchecked(
        columns, tuple(coldata), table.num_rows, table.name
    )


def drop_columns(table: Table, names: Sequence[str]) -> Table:
    """Remove *names*; dropping every column raises."""
    for column in names:
        table.column_index(column)
    remaining = [c for c in table.columns if c not in set(names)]
    if not remaining:
        raise ValueError(f"cannot drop every column of {table.name!r}")
    return project(table, remaining)


def value_counts(table: Table, column: str, descending: bool = True) -> Table:
    """Distinct values of *column* with their frequencies (nulls grouped by
    kind, rendered with the paper's markers)."""
    array = table.column_array(column)
    counts: dict[tuple, tuple[Cell, int]] = {}
    for cell in array:
        key = _hashable(cell)
        current = counts.get(key)
        counts[key] = (cell, (current[1] if current else 0) + 1)
    rows = sorted(
        counts.values(),
        key=lambda pair: (-pair[1] if descending else pair[1], str(pair[0])),
    )
    return Table([column, "count"], rows, name=f"{table.name}_counts")


def sample(table: Table, n: int, seed: int = 0) -> Table:
    """A deterministic pseudo-random sample of *n* rows (without
    replacement; all rows if ``n >= len``)."""
    import random as _random

    if n < 0:
        raise ValueError("sample size must be non-negative")
    if n >= table.num_rows:
        return table
    rng = _random.Random(seed)
    indices = sorted(rng.sample(range(table.num_rows), n))
    return table.take(indices)


def pivot(
    table: Table,
    index: str,
    columns: str,
    values: str,
    agg: str | Callable[[list[Cell]], Cell] = "mean",
) -> Table:
    """Long-to-wide reshape: one output row per *index* value, one output
    column per distinct *columns* value, cells aggregated from *values*.

    Missing combinations are produced nulls; distinct pivot values are
    ordered by first appearance for determinism.
    """
    func = AGGREGATES[agg] if isinstance(agg, str) else agg
    index_array = table.column_array(index)
    column_array = table.column_array(columns)
    value_array = table.column_array(values)

    column_order: list[str] = []
    seen_columns: set[str] = set()
    groups: dict[tuple, dict[str, list[Cell]]] = {}
    row_order: list[tuple] = []
    labels: dict[tuple, Cell] = {}
    for index_cell, pivot_value, value_cell in zip(
        index_array, column_array, value_array
    ):
        if is_null(pivot_value):
            continue
        pivot_label = str(pivot_value)
        if pivot_label not in seen_columns:
            seen_columns.add(pivot_label)
            column_order.append(pivot_label)
        key = _hashable(index_cell)
        if key not in groups:
            groups[key] = {}
            row_order.append(key)
            labels[key] = index_cell
        if not is_null(value_cell):
            groups[key].setdefault(pivot_label, []).append(value_cell)

    header = [index] + column_order
    out_rows = []
    for key in row_order:
        cells: list[Cell] = [labels[key]]
        for label in column_order:
            bucket = groups[key].get(label)
            cells.append(func(bucket) if bucket else PRODUCED)
        out_rows.append(tuple(cells))
    return Table(header, out_rows, name=f"{table.name}_pivot")
