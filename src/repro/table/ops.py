"""Relational operators over :class:`~repro.table.table.Table`.

These are the classical operators DIALITE's integration baselines are built
from: projection, selection, natural inner/left/full-outer joins, outer
union, distinct, sort and group-by aggregation.  All joins are *natural*
(keyed on shared column names) unless an explicit ``on`` list is given,
because after alignment the shared names are exactly the integration IDs.

Null semantics follow SQL: a null (of either kind) never matches a join key
and is skipped by aggregates.  Cells *introduced* by an operator (padding of
non-matching rows, outer-union widening) are :data:`PRODUCED` (``⊥``) nulls,
which is precisely how the paper's Figure 8(a) outer join is rendered.
"""

from __future__ import annotations

from typing import Callable, Iterable, Mapping, Sequence

from .table import Table
from .values import PRODUCED, Cell, is_null

__all__ = [
    "project",
    "select",
    "distinct",
    "sort_by",
    "limit",
    "union_all",
    "outer_union",
    "inner_join",
    "left_outer_join",
    "full_outer_join",
    "semi_join",
    "anti_join",
    "aggregate",
    "AGGREGATES",
    "add_column",
    "drop_columns",
    "value_counts",
    "sample",
    "pivot",
]


# ----------------------------------------------------------------------
# Unary operators
# ----------------------------------------------------------------------
def project(table: Table, columns: Sequence[str], name: str | None = None) -> Table:
    """Keep only *columns*, in the given order."""
    positions = [table.column_index(c) for c in columns]
    rows = (tuple(row[p] for p in positions) for row in table.rows)
    return Table(columns, rows, name=name or table.name)


def select(
    table: Table, predicate: Callable[[dict[str, Cell]], bool], name: str | None = None
) -> Table:
    """Keep rows where ``predicate(row_as_dict)`` is true."""
    columns = table.columns
    rows = (row for row in table.rows if predicate(dict(zip(columns, row))))
    return Table(columns, rows, name=name or table.name)


def distinct(table: Table) -> Table:
    """Remove duplicate rows, keeping first occurrences (null kind matters)."""
    seen: set[tuple] = set()
    rows = []
    for row in table.rows:
        key = tuple(_hashable(cell) for cell in row)
        if key not in seen:
            seen.add(key)
            rows.append(row)
    return Table(table.columns, rows, name=table.name)


def sort_by(table: Table, columns: Sequence[str], descending: bool = False) -> Table:
    """Stable sort by *columns*; nulls sort last regardless of direction."""
    positions = [table.column_index(c) for c in columns]

    def key(row: tuple[Cell, ...]):
        parts = []
        for position in positions:
            cell = row[position]
            # (null flag, type name, value-as-string) is a total order over
            # heterogeneous cells; the null flag pushes nulls to the end.
            parts.append((is_null(cell), type(cell).__name__, str(cell)))
        return tuple(parts)

    rows = sorted(table.rows, key=key, reverse=descending)
    return Table(table.columns, rows, name=table.name)


def limit(table: Table, n: int) -> Table:
    """The first *n* rows."""
    return table.head(n)


# ----------------------------------------------------------------------
# Union-family operators
# ----------------------------------------------------------------------
def union_all(tables: Sequence[Table], name: str = "union") -> Table:
    """Concatenate tables that share an identical header (bag semantics)."""
    if not tables:
        raise ValueError("union_all of zero tables")
    header = tables[0].columns
    for table in tables[1:]:
        if table.columns != header:
            raise ValueError(
                f"union_all header mismatch: {header} vs {table.columns} ({table.name!r})"
            )
    rows: list[tuple[Cell, ...]] = []
    for table in tables:
        rows.extend(table.rows)
    return Table(header, rows, name=name)


def outer_union(tables: Sequence[Table], name: str = "outer_union") -> Table:
    """Union over the *united* header: columns are aligned by name and rows
    are padded with produced nulls for attributes a source table lacks.

    This is the first step of every Full Disjunction algorithm in
    :mod:`repro.integration`.  Column order: first appearance wins.
    """
    if not tables:
        raise ValueError("outer_union of zero tables")
    header: list[str] = []
    seen: set[str] = set()
    for table in tables:
        for column in table.columns:
            if column not in seen:
                seen.add(column)
                header.append(column)
    rows = []
    for table in tables:
        positions = {column: i for i, column in enumerate(table.columns)}
        for row in table.rows:
            rows.append(
                tuple(
                    row[positions[column]] if column in positions else PRODUCED
                    for column in header
                )
            )
    return Table(header, rows, name=name)


# ----------------------------------------------------------------------
# Joins
# ----------------------------------------------------------------------
def inner_join(
    left: Table, right: Table, on: Sequence[str] | None = None, name: str | None = None
) -> Table:
    """Natural (or ``on``-keyed) inner join; null keys never match."""
    return _hash_join(left, right, on, keep_left=False, keep_right=False, name=name)


def left_outer_join(
    left: Table, right: Table, on: Sequence[str] | None = None, name: str | None = None
) -> Table:
    """Left outer join; unmatched left rows are padded with ``⊥``."""
    return _hash_join(left, right, on, keep_left=True, keep_right=False, name=name)


def full_outer_join(
    left: Table, right: Table, on: Sequence[str] | None = None, name: str | None = None
) -> Table:
    """Full outer join (the paper's ``⟗``); unmatched rows on either side are
    padded with ``⊥``.  Note this operator is **not associative** -- the very
    deficiency Full Disjunction exists to fix -- and
    :mod:`repro.integration.outerjoin` demonstrates the order sensitivity.
    """
    return _hash_join(left, right, on, keep_left=True, keep_right=True, name=name)


def _hash_join(
    left: Table,
    right: Table,
    on: Sequence[str] | None,
    keep_left: bool,
    keep_right: bool,
    name: str | None,
) -> Table:
    if on is None:
        on = [c for c in left.columns if right.has_column(c)]
    else:
        for column in on:
            left.column_index(column)
            right.column_index(column)
    if not on:
        raise ValueError(
            f"no shared columns between {left.name!r} and {right.name!r}; "
            "pass on=[...] or align the tables first"
        )
    left_key_pos = [left.column_index(c) for c in on]
    right_key_pos = [right.column_index(c) for c in on]
    right_extra = [c for c in right.columns if c not in on]
    right_extra_pos = [right.column_index(c) for c in right_extra]
    header = list(left.columns) + right_extra

    index: dict[tuple, list[int]] = {}
    for i, row in enumerate(right.rows):
        key = _key_of(row, right_key_pos)
        if key is not None:
            index.setdefault(key, []).append(i)

    matched_right: set[int] = set()
    rows: list[tuple[Cell, ...]] = []
    for row in left.rows:
        key = _key_of(row, left_key_pos)
        matches = index.get(key, []) if key is not None else []
        if matches:
            for j in matches:
                matched_right.add(j)
                right_row = right.rows[j]
                rows.append(row + tuple(right_row[p] for p in right_extra_pos))
        elif keep_left:
            rows.append(row + (PRODUCED,) * len(right_extra))
    if keep_right:
        left_extra_width = len(left.columns) - len(on)
        left_on_pos = {c: i for i, c in enumerate(left.columns)}
        for j, right_row in enumerate(right.rows):
            if j in matched_right:
                continue
            out: list[Cell] = [PRODUCED] * len(left.columns)
            for column, right_pos in zip(on, right_key_pos):
                out[left_on_pos[column]] = right_row[right_pos]
            out.extend(right_row[p] for p in right_extra_pos)
            rows.append(tuple(out))
        del left_extra_width
    join_name = name or f"{left.name}_join_{right.name}"
    return Table(header, rows, name=join_name)


def semi_join(
    left: Table, right: Table, on: Sequence[str] | None = None, name: str | None = None
) -> Table:
    """Left rows that have at least one join partner in *right*."""
    return _filter_join(left, right, on, keep_matching=True, name=name)


def anti_join(
    left: Table, right: Table, on: Sequence[str] | None = None, name: str | None = None
) -> Table:
    """Left rows with **no** join partner in *right* (null keys count as
    unmatched, SQL-style)."""
    return _filter_join(left, right, on, keep_matching=False, name=name)


def _filter_join(
    left: Table,
    right: Table,
    on: Sequence[str] | None,
    keep_matching: bool,
    name: str | None,
) -> Table:
    if on is None:
        on = [c for c in left.columns if right.has_column(c)]
    if not on:
        raise ValueError(
            f"no shared columns between {left.name!r} and {right.name!r}; pass on=[...]"
        )
    left_positions = [left.column_index(c) for c in on]
    right_positions = [right.column_index(c) for c in on]
    right_keys = {
        key
        for key in (_key_of(row, right_positions) for row in right.rows)
        if key is not None
    }
    rows = []
    for row in left.rows:
        key = _key_of(row, left_positions)
        matched = key is not None and key in right_keys
        if matched == keep_matching:
            rows.append(row)
    return Table(left.columns, rows, name=name or left.name)


def _key_of(row: tuple[Cell, ...], positions: Sequence[int]) -> tuple | None:
    """Join key for a row, or ``None`` if any key cell is null."""
    key = []
    for position in positions:
        cell = row[position]
        if is_null(cell):
            return None
        key.append(_hashable(cell))
    return tuple(key)


def _hashable(cell: Cell) -> tuple[str, str]:
    """A hashable, type-tagged stand-in for a cell (nulls keep their kind)."""
    if is_null(cell):
        return ("null", repr(cell))
    if isinstance(cell, bool):
        return ("bool", str(cell))
    if isinstance(cell, (int, float)):
        # 1 and 1.0 join; format drops the distinction deliberately.
        return ("num", f"{float(cell):g}")
    return ("str", str(cell))


# ----------------------------------------------------------------------
# Aggregation
# ----------------------------------------------------------------------
def _agg_count(values: list[Cell]) -> int:
    return len(values)


def _agg_sum(values: list[Cell]) -> Cell:
    numeric = [v for v in values if isinstance(v, (int, float)) and not isinstance(v, bool)]
    if not numeric:
        return PRODUCED
    return sum(numeric)


def _agg_mean(values: list[Cell]) -> Cell:
    numeric = [v for v in values if isinstance(v, (int, float)) and not isinstance(v, bool)]
    if not numeric:
        return PRODUCED
    return sum(numeric) / len(numeric)


def _agg_min(values: list[Cell]) -> Cell:
    if not values:
        return PRODUCED
    try:
        return min(values)
    except TypeError:
        return min(values, key=str)


def _agg_max(values: list[Cell]) -> Cell:
    if not values:
        return PRODUCED
    try:
        return max(values)
    except TypeError:
        return max(values, key=str)


#: Built-in aggregate functions usable by name in :func:`aggregate`.
AGGREGATES: dict[str, Callable[[list[Cell]], Cell]] = {
    "count": _agg_count,
    "sum": _agg_sum,
    "mean": _agg_mean,
    "min": _agg_min,
    "max": _agg_max,
}


def aggregate(
    table: Table,
    group_by: Sequence[str],
    aggregations: Mapping[str, tuple[str, str | Callable[[list[Cell]], Cell]]],
    name: str | None = None,
) -> Table:
    """Group-by aggregation.

    *aggregations* maps each output column name to ``(input column, func)``
    where *func* is a key of :data:`AGGREGATES` or any callable from a list
    of non-null cells to one cell.  Rows with a null in a grouping column
    form their own per-kind null group (so incomplete integrated tuples stay
    visible rather than silently vanishing, which is the analytic point of
    Section 2.3).

    An empty *group_by* aggregates the whole table into a single row.
    """
    group_pos = [table.column_index(c) for c in group_by]
    resolved: list[tuple[str, int, Callable[[list[Cell]], Cell]]] = []
    for out_column, (in_column, func) in aggregations.items():
        func_callable = AGGREGATES[func] if isinstance(func, str) else func
        resolved.append((out_column, table.column_index(in_column), func_callable))

    groups: dict[tuple, list[tuple[Cell, ...]]] = {}
    order: list[tuple] = []
    for row in table.rows:
        key = tuple(_hashable(row[p]) for p in group_pos)
        if key not in groups:
            groups[key] = []
            order.append(key)
        groups[key].append(row)

    header = list(group_by) + [out for out, _, _ in resolved]
    out_rows = []
    for key in order:
        members = groups[key]
        group_cells = [members[0][p] for p in group_pos]
        for out_column, position, func_callable in resolved:
            values = [row[position] for row in members if not is_null(row[position])]
            group_cells.append(func_callable(values))
        out_rows.append(tuple(group_cells))
    return Table(header, out_rows, name=name or f"{table.name}_agg")


# ----------------------------------------------------------------------
# Column-level and reshaping operators
# ----------------------------------------------------------------------
def add_column(
    table: Table,
    name: str,
    func: Callable[[dict[str, Cell]], Cell],
    position: int | None = None,
) -> Table:
    """Append (or insert at *position*) a computed column.

    *func* receives each row as a dict.  The classic use is materializing a
    parsed numeric view next to a messy source column.
    """
    if table.has_column(name):
        raise ValueError(f"table {table.name!r} already has a column {name!r}")
    insert_at = len(table.columns) if position is None else position
    columns = list(table.columns)
    columns.insert(insert_at, name)
    rows = []
    for row in table.rows:
        value = func(dict(zip(table.columns, row)))
        cells = list(row)
        cells.insert(insert_at, value)
        rows.append(tuple(cells))
    return Table(columns, rows, name=table.name)


def drop_columns(table: Table, names: Sequence[str]) -> Table:
    """Remove *names*; dropping every column raises."""
    for column in names:
        table.column_index(column)
    remaining = [c for c in table.columns if c not in set(names)]
    if not remaining:
        raise ValueError(f"cannot drop every column of {table.name!r}")
    return project(table, remaining)


def value_counts(table: Table, column: str, descending: bool = True) -> Table:
    """Distinct values of *column* with their frequencies (nulls grouped by
    kind, rendered with the paper's markers)."""
    position = table.column_index(column)
    counts: dict[tuple, tuple[Cell, int]] = {}
    for row in table.rows:
        cell = row[position]
        key = _hashable(cell)
        current = counts.get(key)
        counts[key] = (cell, (current[1] if current else 0) + 1)
    rows = sorted(
        counts.values(),
        key=lambda pair: (-pair[1] if descending else pair[1], str(pair[0])),
    )
    return Table([column, "count"], rows, name=f"{table.name}_counts")


def sample(table: Table, n: int, seed: int = 0) -> Table:
    """A deterministic pseudo-random sample of *n* rows (without
    replacement; all rows if ``n >= len``)."""
    import random as _random

    if n < 0:
        raise ValueError("sample size must be non-negative")
    if n >= table.num_rows:
        return Table(table.columns, table.rows, name=table.name)
    rng = _random.Random(seed)
    indices = sorted(rng.sample(range(table.num_rows), n))
    return Table(table.columns, [table.rows[i] for i in indices], name=table.name)


def pivot(
    table: Table,
    index: str,
    columns: str,
    values: str,
    agg: str | Callable[[list[Cell]], Cell] = "mean",
) -> Table:
    """Long-to-wide reshape: one output row per *index* value, one output
    column per distinct *columns* value, cells aggregated from *values*.

    Missing combinations are produced nulls; distinct pivot values are
    ordered by first appearance for determinism.
    """
    func = AGGREGATES[agg] if isinstance(agg, str) else agg
    index_position = table.column_index(index)
    column_position = table.column_index(columns)
    value_position = table.column_index(values)

    column_order: list[str] = []
    seen_columns: set[str] = set()
    groups: dict[tuple, dict[str, list[Cell]]] = {}
    row_order: list[tuple] = []
    labels: dict[tuple, Cell] = {}
    for row in table.rows:
        pivot_value = row[column_position]
        if is_null(pivot_value):
            continue
        pivot_label = str(pivot_value)
        if pivot_label not in seen_columns:
            seen_columns.add(pivot_label)
            column_order.append(pivot_label)
        key = _hashable(row[index_position])
        if key not in groups:
            groups[key] = {}
            row_order.append(key)
            labels[key] = row[index_position]
        if not is_null(row[value_position]):
            groups[key].setdefault(pivot_label, []).append(row[value_position])

    header = [index] + column_order
    out_rows = []
    for key in row_order:
        cells: list[Cell] = [labels[key]]
        for label in column_order:
            bucket = groups[key].get(label)
            cells.append(func(bucket) if bucket else PRODUCED)
        out_rows.append(tuple(cells))
    return Table(header, out_rows, name=f"{table.name}_pivot")
