"""Cell values and the two-kind null model used throughout the library.

DIALITE (following ALITE) distinguishes two kinds of nulls:

* **missing nulls** (rendered ``±`` in the paper) -- nulls that were present
  in the *input* tables, i.e. a value the data producer did not provide;
* **produced nulls** (rendered ``⊥``) -- nulls *created by integration*, i.e.
  an attribute a source tuple simply does not speak about.

Both behave identically for relational semantics (a null never equals
anything, including another null), but the output of integration must report
which kind each null is -- Figures 2, 3 and 8 of the paper annotate every
null with its kind.  This module makes the distinction first-class.
"""

from __future__ import annotations

from typing import Any, Union

__all__ = [
    "Null",
    "MISSING",
    "PRODUCED",
    "Cell",
    "is_null",
    "is_missing",
    "is_produced",
    "values_equal",
    "merge_null_kind",
    "coalesce",
]


class Null:
    """A null marker carrying its provenance kind.

    Exactly two instances exist: :data:`MISSING` and :data:`PRODUCED`.
    Instances are falsy, hashable and compare equal only to themselves, so a
    null never accidentally joins with a concrete value.  Use
    :func:`values_equal` for SQL-style comparison where ``null != null``.
    """

    __slots__ = ("_kind",)
    _instances: dict[str, "Null"] = {}

    def __new__(cls, kind: str) -> "Null":
        if kind not in ("missing", "produced"):
            raise ValueError(f"unknown null kind: {kind!r}")
        existing = cls._instances.get(kind)
        if existing is not None:
            return existing
        instance = super().__new__(cls)
        instance._kind = kind
        cls._instances[kind] = instance
        return instance

    @property
    def kind(self) -> str:
        """Either ``"missing"`` or ``"produced"``."""
        return self._kind

    def __bool__(self) -> bool:
        return False

    def __repr__(self) -> str:
        return "±" if self._kind == "missing" else "⊥"

    def __reduce__(self):
        # Preserve singleton identity across pickling (used by parallel FD).
        return (Null, (self._kind,))


#: The null that was already present in an input table ("±" in the paper).
MISSING = Null("missing")

#: The null introduced by an integration operator ("⊥" in the paper).
PRODUCED = Null("produced")

#: Type alias for anything a table cell may hold.
Cell = Union[str, int, float, bool, Null]


def is_null(value: Any) -> bool:
    """Return ``True`` if *value* is a null of either kind."""
    return isinstance(value, Null)


def is_missing(value: Any) -> bool:
    """Return ``True`` only for the input-data ("missing", ``±``) null."""
    return value is MISSING


def is_produced(value: Any) -> bool:
    """Return ``True`` only for the integration-time ("produced", ``⊥``) null."""
    return value is PRODUCED


def values_equal(a: Cell, b: Cell) -> bool:
    """SQL-style equality: nulls are never equal to anything.

    Two concrete values are compared with ``==`` after unifying numeric
    types, so ``1 == 1.0`` holds but ``"1" != 1`` (string/number confusion is
    the type-inference layer's job, not the comparator's).
    """
    if is_null(a) or is_null(b):
        return False
    if isinstance(a, bool) != isinstance(b, bool):
        # bool is an int subclass; keep True distinct from 1 in data context.
        return False
    return a == b


def merge_null_kind(a: Null, b: Null) -> Null:
    """Combine two nulls during tuple merge.

    A *missing* null records positive knowledge ("the source said this value
    exists but withheld it"), so it dominates a produced null: the merged
    tuple still owes the reader that caveat.
    """
    if a is MISSING or b is MISSING:
        return MISSING
    return PRODUCED


def coalesce(a: Cell, b: Cell) -> Cell:
    """Return the more informative of two cells (used by tuple merge).

    Non-null beats null; two nulls combine via :func:`merge_null_kind`.  The
    caller is responsible for having checked that two non-null values agree
    (see :func:`repro.integration.tuples.joinable`).
    """
    if is_null(a) and is_null(b):
        return merge_null_kind(a, b)
    if is_null(a):
        return b
    return a
