"""Schemas: ordered, named, typed column descriptions.

Data-lake tables notoriously have unreliable headers; the schema layer keeps
whatever names exist but never *trusts* them -- alignment (integration IDs)
is computed from values by :mod:`repro.alignment`.  Types are one of a small
closed set inferred by :mod:`repro.table.infer`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping

__all__ = ["DTYPES", "ColumnSpec", "Schema"]

#: The closed set of column types the engine distinguishes.
DTYPES = ("string", "int", "float", "bool", "any", "empty")


@dataclass(frozen=True)
class ColumnSpec:
    """A single column: a name plus an inferred type."""

    name: str
    dtype: str = "any"

    def __post_init__(self) -> None:
        if self.dtype not in DTYPES:
            raise ValueError(f"unknown dtype {self.dtype!r}; expected one of {DTYPES}")

    def is_numeric(self) -> bool:
        """Whether values of this column can participate in arithmetic."""
        return self.dtype in ("int", "float")

    def renamed(self, name: str) -> "ColumnSpec":
        """A copy of this spec under a new name."""
        return ColumnSpec(name, self.dtype)


class Schema:
    """An ordered collection of :class:`ColumnSpec` with unique names."""

    __slots__ = ("_specs", "_index")

    def __init__(self, specs: Iterable[ColumnSpec]):
        self._specs = tuple(specs)
        self._index = {spec.name: i for i, spec in enumerate(self._specs)}
        if len(self._index) != len(self._specs):
            seen: set[str] = set()
            dupes = sorted(
                {s.name for s in self._specs if s.name in seen or seen.add(s.name)}
            )
            raise ValueError(f"duplicate column names in schema: {dupes}")

    @classmethod
    def from_names(cls, names: Iterable[str]) -> "Schema":
        """Build an untyped (``any``) schema from column names."""
        return cls(ColumnSpec(name) for name in names)

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(spec.name for spec in self._specs)

    @property
    def dtypes(self) -> tuple[str, ...]:
        return tuple(spec.dtype for spec in self._specs)

    def index_of(self, name: str) -> int:
        """Position of *name*, raising ``KeyError`` with context if absent."""
        try:
            return self._index[name]
        except KeyError:
            raise KeyError(f"no column {name!r}; columns are {list(self.names)}") from None

    def __contains__(self, name: object) -> bool:
        return name in self._index

    def __len__(self) -> int:
        return len(self._specs)

    def __iter__(self) -> Iterator[ColumnSpec]:
        return iter(self._specs)

    def __getitem__(self, key: int | str) -> ColumnSpec:
        if isinstance(key, str):
            return self._specs[self.index_of(key)]
        return self._specs[key]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schema):
            return NotImplemented
        return self._specs == other._specs

    def __hash__(self) -> int:
        return hash(self._specs)

    def __repr__(self) -> str:
        inner = ", ".join(f"{s.name}:{s.dtype}" for s in self._specs)
        return f"Schema({inner})"

    def renamed(self, mapping: Mapping[str, str]) -> "Schema":
        """Apply a partial column-rename *mapping* (old name -> new name)."""
        unknown = sorted(set(mapping) - set(self._index))
        if unknown:
            raise KeyError(f"cannot rename unknown columns: {unknown}")
        return Schema(spec.renamed(mapping.get(spec.name, spec.name)) for spec in self._specs)

    def project(self, names: Iterable[str]) -> "Schema":
        """The sub-schema containing *names*, in the given order."""
        return Schema(self[name] for name in names)
