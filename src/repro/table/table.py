"""The in-memory table: the data structure every stage of DIALITE shares.

A :class:`Table` is an immutable-by-convention relation with named columns
and null-aware cells, stored **columnar**: the canonical representation is a
tuple of per-column cell tuples, with the row-major view materialized lazily
on first access.  Columnar storage is what lets the relational operators in
:mod:`repro.table.ops` run as column gathers and lets derived tables share
column arrays instead of copying rows.  It deliberately stays small:
relational operators live in :mod:`repro.table.ops`, per-column statistics
in :mod:`repro.table.stats`, CSV I/O in :mod:`repro.table.io`, and
integration provenance (tuple IDs / output IDs) in
:mod:`repro.integration.tuples` -- the table itself is just well-formed data.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Iterable, Iterator, Mapping, Sequence

from .schema import ColumnSpec, Schema
from .stats import TableStats
from .values import MISSING, Cell, is_null

__all__ = ["Table"]

# Monotonic table identities.  Cache consumers key per-table state by
# ``table.uid`` rather than ``id(table)``: CPython recycles object ids as
# soon as a table is garbage collected, so an id-keyed external cache could
# silently serve one table's statistics for an unrelated successor at the
# same address.  uids are never reused within a process.
_NEXT_UID = itertools.count(1)


class Table:
    """A named relation: ordered, equal-length column arrays.

    Cells are :data:`repro.table.values.Cell` values.  Construction validates
    shape (ragged rows and duplicate column names are rejected immediately
    rather than surfacing later as silent misalignment, the classic data-lake
    failure mode).  The ``rows`` view is built lazily from the column arrays
    and cached, so row-major consumers keep working unchanged while
    column-major consumers never pay for it.
    """

    __slots__ = (
        "_name",
        "_columns",
        "_coldata",
        "_num_rows",
        "_rows",
        "_schema",
        "_col_index",
        "_stats",
        "_uid",
    )

    def __init__(
        self,
        columns: Sequence[str],
        rows: Iterable[Sequence[Cell]] = (),
        name: str = "table",
    ):
        self._name = name
        self._columns = tuple(str(c) for c in columns)
        self._col_index = {c: i for i, c in enumerate(self._columns)}
        if len(self._col_index) != len(self._columns):
            raise ValueError(f"duplicate column names in table {name!r}: {self._columns}")
        width = len(self._columns)
        materialized = []
        for row_number, row in enumerate(rows):
            row_tuple = tuple(row)
            if len(row_tuple) != width:
                raise ValueError(
                    f"row {row_number} of table {name!r} has {len(row_tuple)} cells, "
                    f"expected {width}"
                )
            materialized.append(row_tuple)
        self._num_rows = len(materialized)
        if materialized:
            self._coldata = tuple(zip(*materialized))
        else:
            self._coldata = ((),) * width
        # The columnar arrays are canonical; the row view is rebuilt lazily
        # rather than retained (holding both would double table memory).
        self._rows: list[tuple[Cell, ...]] | None = None
        self._schema: Schema | None = None
        self._stats: TableStats | None = None
        self._uid: int = next(_NEXT_UID)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_columns(
        cls,
        columns: Sequence[str],
        arrays: Sequence[Sequence[Cell]],
        name: str = "table",
    ) -> "Table":
        """Build a table directly from column arrays (the fast path every
        columnar operator uses).  All arrays must have equal length."""
        if len(columns) != len(arrays):
            raise ValueError(
                f"table {name!r}: {len(columns)} column names for {len(arrays)} arrays"
            )
        coldata = tuple(
            array if type(array) is tuple else tuple(array) for array in arrays
        )
        lengths = {len(array) for array in coldata}
        if len(lengths) > 1:
            raise ValueError(
                f"columns of table {name!r} have unequal lengths: {sorted(lengths)}"
            )
        table = cls.__new__(cls)
        table._init_columnar(columns, coldata, lengths.pop() if lengths else 0, name)
        return table

    @classmethod
    def _from_columns_unchecked(
        cls,
        columns: Sequence[str],
        coldata: tuple[tuple[Cell, ...], ...],
        num_rows: int,
        name: str,
    ) -> "Table":
        """Internal zero-validation constructor for trusted operator output."""
        table = cls.__new__(cls)
        table._init_columnar(columns, coldata, num_rows, name)
        return table

    def _init_columnar(
        self,
        columns: Sequence[str],
        coldata: tuple[tuple[Cell, ...], ...],
        num_rows: int,
        name: str,
    ) -> None:
        self._name = name
        self._columns = tuple(str(c) for c in columns)
        self._col_index = {c: i for i, c in enumerate(self._columns)}
        if len(self._col_index) != len(self._columns):
            raise ValueError(f"duplicate column names in table {name!r}: {self._columns}")
        self._coldata = coldata
        self._num_rows = num_rows
        self._rows = None
        self._schema = None
        self._stats = None
        self._uid = next(_NEXT_UID)

    @classmethod
    def from_dict(cls, data: Mapping[str, Sequence[Cell]], name: str = "table") -> "Table":
        """Build a table from ``{column name: column values}``.

        All columns must have equal length (ragged input raises).
        """
        return cls.from_columns(list(data), list(data.values()), name=name)

    @classmethod
    def empty(cls, columns: Sequence[str], name: str = "table") -> "Table":
        """A zero-row table with the given header."""
        return cls(columns, (), name=name)

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        return self._name

    @property
    def columns(self) -> tuple[str, ...]:
        return self._columns

    @property
    def rows(self) -> list[tuple[Cell, ...]]:
        """The row-major view (built lazily, cached); treat it as read-only."""
        if self._rows is None:
            if self._coldata:
                self._rows = list(zip(*self._coldata))
            else:
                self._rows = [()] * self._num_rows
        return self._rows

    @property
    def column_arrays(self) -> tuple[tuple[Cell, ...], ...]:
        """The canonical columnar storage: one immutable cell tuple per
        column, in header order.  Derived tables may share these arrays."""
        return self._coldata

    def column_array(self, name: str) -> tuple[Cell, ...]:
        """One column as its immutable backing array."""
        return self._coldata[self.column_index(name)]

    @property
    def num_rows(self) -> int:
        return self._num_rows

    @property
    def num_columns(self) -> int:
        return len(self._columns)

    @property
    def shape(self) -> tuple[int, int]:
        """``(rows, columns)``, pandas-style."""
        return (self._num_rows, len(self._columns))

    @property
    def schema(self) -> Schema:
        """The inferred schema (computed lazily per column and cached)."""
        if self._schema is None:
            from .infer import infer_dtype

            self._schema = Schema(
                ColumnSpec(name, infer_dtype(self._coldata[i]))
                for i, name in enumerate(self._columns)
            )
        return self._schema

    @property
    def uid(self) -> int:
        """A process-unique, monotonically increasing table identity.

        This is the cache key every table-scoped cache uses (see the
        invalidation contract in :mod:`repro.table.stats`): unlike
        ``id(table)``, a uid is never recycled after garbage collection, so
        an external cache keyed by ``(table.uid, column)`` can never serve
        one table's statistics for an unrelated successor allocated at the
        same address.  Unpickled tables receive a fresh uid -- identities
        are process-scoped, never shipped across processes.
        """
        return self._uid

    @property
    def stats(self) -> TableStats:
        """Per-column statistics (:mod:`repro.table.stats`), computed once
        per column and cached on this table for its lifetime."""
        if self._stats is None:
            self._stats = TableStats(self)
        return self._stats

    def adopt_stats(self, stats: TableStats) -> "Table":
        """Attach pre-computed statistics (a hydrated snapshot from
        :mod:`repro.store`) as this table's stats cache; returns self.

        The snapshot must describe exactly this table's columns.  Adoption
        re-keys the stats to this table's :attr:`uid` and binds any
        lazily-loading column arrays to the in-memory ones, so subsequent
        consumers read cached statistics without a single raw scan.
        """
        if stats.columns != self._columns:
            raise ValueError(
                f"stats columns {list(stats.columns)} do not match table "
                f"{self._name!r} columns {list(self._columns)}"
            )
        stats._rekey(self._uid)
        for position, name in enumerate(self._columns):
            stats.column(name)._bind_array(self._coldata[position])
        self._stats = stats
        return self

    def __setstate__(self, state: tuple[Any, dict[str, Any]]) -> None:
        # Default slots pickling, except uids are process-scoped: a table
        # arriving from another process is a *new* object here and must not
        # import an identity that may collide with locally issued uids.
        _, slots = state
        for key, value in slots.items():
            setattr(self, key, value)
        self._uid = next(_NEXT_UID)
        if getattr(self, "_stats", None) is not None:
            self._stats._rekey(self._uid)

    def column_index(self, name: str) -> int:
        """Position of column *name* (KeyError lists available columns)."""
        try:
            return self._col_index[name]
        except KeyError:
            raise KeyError(
                f"table {self._name!r} has no column {name!r}; columns: {list(self._columns)}"
            ) from None

    def has_column(self, name: str) -> bool:
        """Whether the table has a column called *name*."""
        return name in self._col_index

    def column(self, name: str) -> list[Cell]:
        """All values of one column, in row order.

        The returned list is a **cached shared view** -- the same object on
        every call -- so discovery loops stop paying a fresh copy per probe.
        It is read-only (mutators raise; copy with ``list(...)`` if needed);
        see the invalidation contract in :mod:`repro.table.stats`.
        """
        return self.stats.column(name).column_list

    def column_values(self, name: str) -> list[Cell]:
        """Non-null values of one column, in row order (cached shared
        read-only view; copy with ``list(...)`` if mutation is needed)."""
        return self.stats.column(name).values

    def distinct_values(self, name: str) -> frozenset[Cell]:
        """The set of distinct non-null values in a column (a *domain*).

        Cached and returned as a frozenset: every consumer across discovery,
        alignment and integration shares one computation per column.
        """
        return self.stats.column(name).distinct

    def cell(self, row: int, column: str) -> Cell:
        """One cell by row index and column name."""
        return self._coldata[self.column_index(column)][row]

    # ------------------------------------------------------------------
    # Iteration
    # ------------------------------------------------------------------
    def __iter__(self) -> Iterator[tuple[Cell, ...]]:
        return iter(self.rows)

    def __len__(self) -> int:
        return self._num_rows

    def iter_dicts(self) -> Iterator[dict[str, Cell]]:
        """Rows as ``{column: value}`` dictionaries."""
        for row in self.rows:
            yield dict(zip(self._columns, row))

    # ------------------------------------------------------------------
    # Lightweight transforms (anything heavier lives in table.ops)
    # ------------------------------------------------------------------
    def with_name(self, name: str) -> "Table":
        """The same data under a different table name (column arrays are
        shared, not copied)."""
        return Table._from_columns_unchecked(
            self._columns, self._coldata, self._num_rows, name
        )

    def renamed(self, mapping: Mapping[str, str]) -> "Table":
        """Rename a subset of columns (old name -> new name); data is shared."""
        unknown = sorted(set(mapping) - set(self._col_index))
        if unknown:
            raise KeyError(f"cannot rename unknown columns of {self._name!r}: {unknown}")
        new_columns = [mapping.get(c, c) for c in self._columns]
        return Table._from_columns_unchecked(
            new_columns, self._coldata, self._num_rows, self._name
        )

    def head(self, n: int = 5) -> "Table":
        """The first *n* rows."""
        kept = len(range(self._num_rows)[:n])  # Python slice semantics
        return Table._from_columns_unchecked(
            self._columns,
            tuple(array[:n] for array in self._coldata),
            kept,
            self._name,
        )

    def take(self, indices: Sequence[int]) -> "Table":
        """Rows at *indices*, in that order (a columnar gather)."""
        if not indices:
            coldata: tuple[tuple[Cell, ...], ...] = ((),) * len(self._coldata)
        elif len(indices) == 1:
            i = indices[0]
            coldata = tuple((array[i],) for array in self._coldata)
        else:
            from operator import itemgetter

            getter = itemgetter(*indices)
            coldata = tuple(getter(array) for array in self._coldata)
        return Table._from_columns_unchecked(
            self._columns, coldata, len(indices), self._name
        )

    def map_column(self, name: str, func: Callable[[Cell], Cell]) -> "Table":
        """Apply *func* to every cell of one column, nulls included."""
        position = self.column_index(name)
        coldata = list(self._coldata)
        coldata[position] = tuple(func(cell) for cell in coldata[position])
        return Table._from_columns_unchecked(
            self._columns, tuple(coldata), self._num_rows, self._name
        )

    def fill_missing(self) -> "Table":
        """Replace every null by :data:`MISSING` -- used when loading input
        tables so that file-borne nulls carry the *missing* (``±``) kind."""
        coldata = tuple(
            tuple(MISSING if is_null(cell) else cell for cell in array)
            for array in self._coldata
        )
        return Table._from_columns_unchecked(
            self._columns, coldata, self._num_rows, self._name
        )

    def null_count(self) -> int:
        """Total number of null cells of either kind."""
        return sum(
            1 for array in self._coldata for cell in array if is_null(cell)
        )

    def completeness(self) -> float:
        """Fraction of non-null cells (1.0 for an empty table)."""
        total = self._num_rows * len(self._columns)
        if total == 0:
            return 1.0
        return 1.0 - self.null_count() / total

    def to_dict(self) -> dict[str, list[Cell]]:
        """Column-major view: ``{column name: list of values}`` (fresh lists,
        safe to mutate)."""
        return {
            column: list(self._coldata[i]) for i, column in enumerate(self._columns)
        }

    def to_records(self) -> list[dict[str, Cell]]:
        """Row-major view: a list of ``{column: value}`` dictionaries."""
        return [dict(zip(self._columns, row)) for row in self.rows]

    # ------------------------------------------------------------------
    # Comparison and display
    # ------------------------------------------------------------------
    def equals(self, other: "Table", ignore_row_order: bool = False) -> bool:
        """Structural equality on columns + cells (names ignored).

        Null kind matters: a table whose null is ``±`` is *not* equal to one
        whose null is ``⊥`` in the same cell, mirroring the paper's figures.
        """
        if self._columns != other._columns:
            return False
        if self._num_rows != other._num_rows:
            return False
        if ignore_row_order:
            return sorted(map(_row_sort_key, self.rows)) == sorted(
                map(_row_sort_key, other.rows)
            )
        return self._coldata == other._coldata

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Table):
            return NotImplemented
        return self.equals(other)

    def __hash__(self) -> int:  # pragma: no cover - tables are not dict keys
        raise TypeError("Table is not hashable; key by table.name instead")

    def __repr__(self) -> str:
        return f"Table({self._name!r}, {self.num_rows}x{self.num_columns})"

    def to_pretty(self, max_rows: int = 20) -> str:
        """A fixed-width rendering with ``±``/``⊥`` null markers."""
        shown = self.rows[:max_rows]
        cells = [[_render(c) for c in self._columns]]
        cells.extend([_render(v) for v in row] for row in shown)
        widths = [max(len(r[i]) for r in cells) for i in range(self.num_columns)] or [0]
        lines = []
        for rendered in cells:
            lines.append("  ".join(value.ljust(widths[i]) for i, value in enumerate(rendered)))
        if self._num_rows > max_rows:
            lines.append(f"... ({self._num_rows - max_rows} more rows)")
        return "\n".join(lines)


def _render(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:g}"
    return str(value)


def _row_sort_key(row: tuple[Cell, ...]) -> tuple[tuple[str, str], ...]:
    """A total order over heterogeneous rows, for order-insensitive equality."""
    return tuple((type(cell).__name__, _render(cell)) for cell in row)
