"""The in-memory table: the data structure every stage of DIALITE shares.

A :class:`Table` is an immutable-by-convention, row-major relation with named
columns and null-aware cells.  It deliberately stays small: relational
operators live in :mod:`repro.table.ops`, CSV I/O in :mod:`repro.table.io`,
and integration provenance (tuple IDs / output IDs) in
:mod:`repro.integration.tuples` -- the table itself is just well-formed data.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Iterator, Mapping, Sequence

from .infer import infer_schema
from .schema import Schema
from .values import MISSING, Cell, is_null

__all__ = ["Table"]


class Table:
    """A named relation: ordered columns over a list of equal-width rows.

    Rows are stored as tuples; cells are :data:`repro.table.values.Cell`
    values.  Construction validates shape (ragged rows and duplicate column
    names are rejected immediately rather than surfacing later as silent
    misalignment, the classic data-lake failure mode).
    """

    __slots__ = ("_name", "_columns", "_rows", "_schema", "_col_index")

    def __init__(
        self,
        columns: Sequence[str],
        rows: Iterable[Sequence[Cell]] = (),
        name: str = "table",
    ):
        self._name = name
        self._columns = tuple(str(c) for c in columns)
        self._col_index = {c: i for i, c in enumerate(self._columns)}
        if len(self._col_index) != len(self._columns):
            raise ValueError(f"duplicate column names in table {name!r}: {self._columns}")
        width = len(self._columns)
        materialized = []
        for row_number, row in enumerate(rows):
            row_tuple = tuple(row)
            if len(row_tuple) != width:
                raise ValueError(
                    f"row {row_number} of table {name!r} has {len(row_tuple)} cells, "
                    f"expected {width}"
                )
            materialized.append(row_tuple)
        self._rows = materialized
        self._schema: Schema | None = None

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_dict(cls, data: Mapping[str, Sequence[Cell]], name: str = "table") -> "Table":
        """Build a table from ``{column name: column values}``.

        All columns must have equal length (ragged input raises).
        """
        columns = list(data)
        lengths = {len(values) for values in data.values()}
        if len(lengths) > 1:
            raise ValueError(f"columns of table {name!r} have unequal lengths: {sorted(lengths)}")
        height = lengths.pop() if lengths else 0
        rows = (tuple(data[c][i] for c in columns) for i in range(height))
        return cls(columns, rows, name=name)

    @classmethod
    def empty(cls, columns: Sequence[str], name: str = "table") -> "Table":
        """A zero-row table with the given header."""
        return cls(columns, (), name=name)

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        return self._name

    @property
    def columns(self) -> tuple[str, ...]:
        return self._columns

    @property
    def rows(self) -> list[tuple[Cell, ...]]:
        """The row list itself; treat it as read-only."""
        return self._rows

    @property
    def num_rows(self) -> int:
        return len(self._rows)

    @property
    def num_columns(self) -> int:
        return len(self._columns)

    @property
    def shape(self) -> tuple[int, int]:
        """``(rows, columns)``, pandas-style."""
        return (len(self._rows), len(self._columns))

    @property
    def schema(self) -> Schema:
        """The inferred schema (computed lazily and cached)."""
        if self._schema is None:
            self._schema = infer_schema(self._columns, self._rows)
        return self._schema

    def column_index(self, name: str) -> int:
        """Position of column *name* (KeyError lists available columns)."""
        try:
            return self._col_index[name]
        except KeyError:
            raise KeyError(
                f"table {self._name!r} has no column {name!r}; columns: {list(self._columns)}"
            ) from None

    def has_column(self, name: str) -> bool:
        """Whether the table has a column called *name*."""
        return name in self._col_index

    def column(self, name: str) -> list[Cell]:
        """All values of one column, in row order."""
        position = self.column_index(name)
        return [row[position] for row in self._rows]

    def column_values(self, name: str) -> list[Cell]:
        """Non-null values of one column, in row order."""
        position = self.column_index(name)
        return [row[position] for row in self._rows if not is_null(row[position])]

    def distinct_values(self, name: str) -> set[Cell]:
        """The set of distinct non-null values in a column (a *domain*)."""
        return set(self.column_values(name))

    def cell(self, row: int, column: str) -> Cell:
        """One cell by row index and column name."""
        return self._rows[row][self.column_index(column)]

    # ------------------------------------------------------------------
    # Iteration
    # ------------------------------------------------------------------
    def __iter__(self) -> Iterator[tuple[Cell, ...]]:
        return iter(self._rows)

    def __len__(self) -> int:
        return len(self._rows)

    def iter_dicts(self) -> Iterator[dict[str, Cell]]:
        """Rows as ``{column: value}`` dictionaries."""
        for row in self._rows:
            yield dict(zip(self._columns, row))

    # ------------------------------------------------------------------
    # Lightweight transforms (anything heavier lives in table.ops)
    # ------------------------------------------------------------------
    def with_name(self, name: str) -> "Table":
        """The same data under a different table name."""
        return Table(self._columns, self._rows, name=name)

    def renamed(self, mapping: Mapping[str, str]) -> "Table":
        """Rename a subset of columns (old name -> new name)."""
        unknown = sorted(set(mapping) - set(self._col_index))
        if unknown:
            raise KeyError(f"cannot rename unknown columns of {self._name!r}: {unknown}")
        new_columns = [mapping.get(c, c) for c in self._columns]
        return Table(new_columns, self._rows, name=self._name)

    def head(self, n: int = 5) -> "Table":
        """The first *n* rows."""
        return Table(self._columns, self._rows[:n], name=self._name)

    def map_column(self, name: str, func: Callable[[Cell], Cell]) -> "Table":
        """Apply *func* to every cell of one column, nulls included."""
        position = self.column_index(name)
        rows = (
            row[:position] + (func(row[position]),) + row[position + 1 :] for row in self._rows
        )
        return Table(self._columns, rows, name=self._name)

    def fill_missing(self) -> "Table":
        """Replace every null by :data:`MISSING` -- used when loading input
        tables so that file-borne nulls carry the *missing* (``±``) kind."""
        rows = (
            tuple(MISSING if is_null(cell) else cell for cell in row) for row in self._rows
        )
        return Table(self._columns, rows, name=self._name)

    def null_count(self) -> int:
        """Total number of null cells of either kind."""
        return sum(1 for row in self._rows for cell in row if is_null(cell))

    def completeness(self) -> float:
        """Fraction of non-null cells (1.0 for an empty table)."""
        total = self.num_rows * self.num_columns
        if total == 0:
            return 1.0
        return 1.0 - self.null_count() / total

    def to_dict(self) -> dict[str, list[Cell]]:
        """Column-major view: ``{column name: list of values}``."""
        return {column: self.column(column) for column in self._columns}

    def to_records(self) -> list[dict[str, Cell]]:
        """Row-major view: a list of ``{column: value}`` dictionaries."""
        return [dict(zip(self._columns, row)) for row in self._rows]

    # ------------------------------------------------------------------
    # Comparison and display
    # ------------------------------------------------------------------
    def equals(self, other: "Table", ignore_row_order: bool = False) -> bool:
        """Structural equality on columns + rows (names ignored).

        Null kind matters: a table whose null is ``±`` is *not* equal to one
        whose null is ``⊥`` in the same cell, mirroring the paper's figures.
        """
        if self._columns != other._columns:
            return False
        if ignore_row_order:
            return sorted(map(_row_sort_key, self._rows)) == sorted(
                map(_row_sort_key, other._rows)
            )
        return self._rows == other._rows

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Table):
            return NotImplemented
        return self.equals(other)

    def __hash__(self) -> int:  # pragma: no cover - tables are not dict keys
        raise TypeError("Table is not hashable; key by table.name instead")

    def __repr__(self) -> str:
        return f"Table({self._name!r}, {self.num_rows}x{self.num_columns})"

    def to_pretty(self, max_rows: int = 20) -> str:
        """A fixed-width rendering with ``±``/``⊥`` null markers."""
        shown = self._rows[:max_rows]
        cells = [[_render(c) for c in self._columns]]
        cells.extend([_render(v) for v in row] for row in shown)
        widths = [max(len(r[i]) for r in cells) for i in range(self.num_columns)] or [0]
        lines = []
        for rendered in cells:
            lines.append("  ".join(value.ljust(widths[i]) for i, value in enumerate(rendered)))
        if len(self._rows) > max_rows:
            lines.append(f"... ({len(self._rows) - max_rows} more rows)")
        return "\n".join(lines)


def _render(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:g}"
    return str(value)


def _row_sort_key(row: tuple[Cell, ...]) -> tuple[tuple[str, str], ...]:
    """A total order over heterogeneous rows, for order-insensitive equality."""
    return tuple((type(cell).__name__, _render(cell)) for cell in row)

