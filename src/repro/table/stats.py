"""Per-column statistics, computed once and shared by every layer.

Before this module existed, the profiler, every discoverer (SANTOS, JOSIE,
LSH Ensemble, TUS, COCOA, Starmie), the aligner's featurization and ALITE's
hot path each re-extracted columns, re-built distinct sets and re-hashed
sketches from the same immutable tables -- an O(consumers x columns x rows)
tax on every pipeline run.  :class:`TableStats` is the fix: one
:class:`ColumnStats` per column, filled by a **single pass** over the raw
column array and memoized on the owning :class:`~repro.table.table.Table`.

Invalidation contract
---------------------
Tables are immutable by convention, so the cache never invalidates: stats
are keyed by *table identity* -- ``(table.uid, column)`` when viewed
lake-wide -- and live exactly as long as the table object.  ``table.uid``
is a process-unique monotonic counter, **not** ``id(table)``: object ids
are recycled the moment a table is garbage collected, so an id-keyed
external cache could serve a dead table's statistics for an unrelated
successor at the same address; uids can never collide that way.  Deriving
a new table (every operator returns a new ``Table``) starts from an empty
cache under a fresh uid; mutating ``table.rows`` in place is already
outside the API contract and additionally yields stale statistics.

Hydration (the persistent lake store)
-------------------------------------
:mod:`repro.store` persists every :class:`ColumnStats` product to disk and
restores it with :meth:`ColumnStats.from_snapshot`: a hydrated column is
born ``scanned`` with all base statistics, token sets, normalized text and
sketches pre-filled, and holds only a *loader* for its raw array -- cell
data is paged in per column, on first raw access, and ``scan_count`` stays
0 for the whole warm run (the observable warm-start guarantee).

Every consumer-facing product is immutable: ``distinct`` and ``tokens``
are frozensets, column arrays are tuples, and the shared ``values`` /
column lists are :class:`ReadOnlyView` instances whose mutators raise.

``scan_count`` records how many raw passes the base scan performed for a
column -- it is the observable that lets tests assert the whole pipeline
touches each column's raw data exactly once.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Iterable, Iterator, Mapping

from .infer import infer_dtype
from .values import MISSING, Cell, is_null

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..sketch.hll import HyperLogLog
    from ..sketch.minhash import MinHasher, MinHashSignature
    from .table import Table

__all__ = ["ColumnStats", "TableStats", "ReadOnlyView"]


class ReadOnlyView(list):
    """A list whose mutators raise -- the type of every cached column view.

    It *is* a list (so ``view == [1, 2]`` and slicing keep working for all
    existing consumers), but ``sort``/``append``/item assignment fail
    loudly instead of silently corrupting the shared stats cache.  Copy
    with ``list(view)`` if a mutable list is needed.
    """

    __slots__ = ()

    def _blocked(self, *args: Any, **kwargs: Any):
        raise TypeError(
            "cached column view is read-only; copy it with list(view) first"
        )

    append = extend = insert = remove = pop = clear = _blocked
    sort = reverse = __setitem__ = __delitem__ = _blocked
    __iadd__ = __imul__ = _blocked  # type: ignore[assignment]

    def __reduce__(self):
        # Default list-subclass pickling rebuilds via append/extend, which
        # are blocked here; reconstruct through the constructor instead.
        return (self.__class__, (list(self),))


class ColumnStats:
    """Memoized statistics of one column of one (immutable) table.

    The base scan -- one pass over the raw column array -- fills the value
    list, null counts, distinct set, dtype and numeric fraction together.
    Sketches (MinHash, HyperLogLog) and token sets derive from the scanned
    values and are memoized separately, so nothing is ever computed twice.
    """

    __slots__ = (
        "table_name",
        "name",
        "_array",
        "_array_loader",
        "scan_count",
        "_scanned",
        "values",
        "row_count",
        "null_count",
        "missing_count",
        "distinct",
        "dtype",
        "numeric_fraction",
        "_tokens",
        "_text_values",
        "_minhash",
        "_hll",
        "_column_list",
    )

    def __init__(
        self,
        table_name: str,
        name: str,
        array: tuple[Cell, ...] | None,
        array_loader: "Callable[[], tuple[Cell, ...]] | None" = None,
    ):
        if array is None and array_loader is None:
            raise ValueError("ColumnStats needs an array or an array loader")
        self.table_name = table_name
        self.name = name
        self._array = array
        self._array_loader = array_loader
        self.scan_count = 0
        self._scanned = False
        self._tokens: frozenset[str] | None = None
        self._text_values: dict[int | None, frozenset[str]] = {}
        self._minhash: dict[tuple[int, int], "MinHashSignature"] = {}
        self._hll: dict[int, "HyperLogLog"] = {}
        self._column_list: list[Cell] | None = None

    @classmethod
    def from_snapshot(
        cls,
        table_name: str,
        name: str,
        *,
        dtype: str,
        row_count: int,
        null_count: int,
        missing_count: int,
        numeric_fraction: float,
        distinct: Iterable[Cell],
        tokens: Iterable[str] | None = None,
        text_values: Iterable[str] | None = None,
        minhash: "Mapping[tuple[int, int], MinHashSignature] | None" = None,
        hll: "Mapping[int, HyperLogLog] | None" = None,
        array: tuple[Cell, ...] | None = None,
        array_loader: "Callable[[], tuple[Cell, ...]] | None" = None,
    ) -> "ColumnStats":
        """Rebuild fully-scanned column statistics from a persisted snapshot.

        The column is born with ``scan_count == 0`` and ``_scanned`` set:
        every cached product (distinct set, tokens, sketches, normalized
        text) is served from the snapshot, and the raw cell array -- the one
        thing a snapshot deliberately does not duplicate -- is paged in
        through *array_loader* only if a consumer actually asks for cells.
        """
        stats = cls(table_name, name, array, array_loader=array_loader)
        stats.row_count = row_count
        stats.null_count = null_count
        stats.missing_count = missing_count
        stats.numeric_fraction = numeric_fraction
        stats.distinct = frozenset(distinct)
        stats.dtype = dtype
        if tokens is not None:
            stats._tokens = frozenset(tokens)
        if text_values is not None:
            stats._text_values[None] = frozenset(text_values)
        if minhash:
            stats._minhash.update(minhash)
        if hll:
            stats._hll.update(hll)
        stats._scanned = True
        return stats

    # ------------------------------------------------------------------
    # The one pass
    # ------------------------------------------------------------------
    def _scan(self) -> None:
        """The single raw pass: values, nulls, distinct, dtype, numerics."""
        from ..text.normalize import to_float

        self.scan_count += 1
        values: list[Cell] = []
        null_count = missing_count = numeric = 0
        for cell in self.array:
            if is_null(cell):
                null_count += 1
                if cell is MISSING:
                    missing_count += 1
                continue
            values.append(cell)
            if to_float(cell) is not None:
                numeric += 1
        self.numeric_fraction = numeric / len(values) if values else 0.0
        self.values = ReadOnlyView(values)
        self.row_count = len(self.array)
        self.null_count = null_count
        self.missing_count = missing_count
        self.distinct = frozenset(values)
        # Delegated to the one canonical implementation so table.schema and
        # the stats cache can never disagree on a column's dtype.
        self.dtype = infer_dtype(values)
        self._scanned = True

    def _ensure(self) -> "ColumnStats":
        if not self._scanned:
            self._scan()
        return self

    def __getattr__(self, attribute: str) -> Any:
        # Base stats materialize on first access; __getattr__ only fires for
        # slots that were never assigned -- before the scan ran, or (for the
        # value list only) on a hydrated snapshot, which restores every base
        # statistic except the raw cells.
        if attribute in (
            "values", "row_count", "null_count", "missing_count",
            "distinct", "dtype", "numeric_fraction",
        ):
            if self._scanned:
                if attribute == "values":
                    # Hydrated column: derive the non-null value list from
                    # the (lazily paged-in) array.  This is a filter over
                    # already-loaded cells, not a counted statistics scan.
                    view = ReadOnlyView(c for c in self.array if not is_null(c))
                    self.values = view
                    return view
                raise AttributeError(attribute)
            self._scan()
            return getattr(self, attribute)
        raise AttributeError(attribute)

    # ------------------------------------------------------------------
    # Derived, individually memoized products
    # ------------------------------------------------------------------
    @property
    def array(self) -> tuple[Cell, ...]:
        """The raw column, nulls included, as an immutable tuple.

        For a hydrated snapshot column the array is paged in from the
        segment store on first access (and cached); every other consumer of
        this property then shares the loaded tuple."""
        if self._array is None:
            assert self._array_loader is not None  # enforced at construction
            self._array = tuple(self._array_loader())
        return self._array

    def _bind_array(self, array: tuple[Cell, ...]) -> None:
        """Wire an already-materialized cell array into a hydrated column
        (used when a stored table and its stats snapshot meet in memory),
        saving the segment read the lazy loader would otherwise perform."""
        if self._array is None:
            self._array = array

    @property
    def column_list(self) -> list[Cell]:
        """The raw column as a cached :class:`ReadOnlyView` -- the object
        :meth:`Table.column` hands out."""
        if self._column_list is None:
            self._column_list = ReadOnlyView(self.array)
        return self._column_list

    @property
    def non_null_count(self) -> int:
        return len(self._ensure().values)

    @property
    def tokens(self) -> frozenset[str]:
        """The domain token set (what JOSIE / LSH Ensemble index and the
        TF-IDF corpus counts)."""
        if self._tokens is None:
            from ..text.tokenize import cell_tokens

            tokens: set[str] = set()
            for value in self._ensure().distinct:
                tokens.update(cell_tokens(value))
            self._tokens = frozenset(tokens)
        return self._tokens

    def text_values(self, limit: int | None = None) -> frozenset[str]:
        """Normalized string values (TUS / alignment evidence), optionally
        computed over only the first *limit* non-null values."""
        values = self._ensure().values
        if limit is not None and limit >= len(values):
            limit = None
        cached = self._text_values.get(limit)
        if cached is None:
            from ..text.tokenize import normalize_token

            sample = values if limit is None else values[:limit]
            cached = frozenset(
                normalize_token(str(v)) for v in sample if isinstance(v, str)
            )
            self._text_values[limit] = cached
        return cached

    def example_values(self, n: int = 3) -> list[str]:
        """First *n* distinct values as strings, in row order."""
        return list(dict.fromkeys(str(v) for v in self._ensure().values))[:n]

    def minhash(self, hasher: "MinHasher") -> "MinHashSignature":
        """The column's MinHash signature under *hasher* (memoized per
        ``(num_perm, seed)``, so every discoverer shares one signature)."""
        key = (hasher.num_perm, hasher.seed)
        signature = self._minhash.get(key)
        if signature is None:
            signature = hasher.signature(self.tokens)
            self._minhash[key] = signature
        return signature

    def hll(self, precision: int = 12) -> "HyperLogLog":
        """A HyperLogLog over the non-null values (memoized per precision)."""
        sketch = self._hll.get(precision)
        if sketch is None:
            from ..sketch.hll import HyperLogLog

            sketch = HyperLogLog(precision=precision).update(
                self._ensure().values
            )
            self._hll[precision] = sketch
        return sketch

    # ------------------------------------------------------------------
    # Pickling: a lazy array loader is a live handle into a store on disk;
    # materialize the cells so pickles stay self-contained.
    # ------------------------------------------------------------------
    def __getstate__(self) -> dict[str, Any]:
        state: dict[str, Any] = {}
        for slot in self.__slots__:
            try:
                state[slot] = object.__getattribute__(self, slot)
            except AttributeError:
                continue  # never-assigned slot (base stats before the scan)
        if state.get("_array") is None and self._array_loader is not None:
            state["_array"] = self.array
        state["_array_loader"] = None
        return state

    def __setstate__(self, state: dict[str, Any]) -> None:
        for key, value in state.items():
            setattr(self, key, value)

    def __repr__(self) -> str:
        state = "scanned" if self._scanned else "unscanned"
        return f"ColumnStats({self.table_name}.{self.name}, {state})"


class TableStats:
    """All column stats of one table, plus the table-level scan ledger.

    Keyed by the owning table's :attr:`~repro.table.table.Table.uid` (see
    :attr:`table_uid`), never by ``id(table)``.
    """

    __slots__ = ("_table_name", "_columns", "_by_name", "_table_uid")

    def __init__(self, table: "Table"):
        self._table_name = table.name
        self._columns = table.columns
        self._table_uid: int | None = table.uid
        arrays = table.column_arrays
        self._by_name = {
            name: ColumnStats(table.name, name, arrays[i])
            for i, name in enumerate(self._columns)
        }

    @classmethod
    def hydrated(
        cls,
        table_name: str,
        columns: Iterable[str],
        stats_by_name: Mapping[str, ColumnStats],
    ) -> "TableStats":
        """Assemble table stats from already-hydrated per-column snapshots
        (no owning table yet -- :meth:`Table.adopt_stats` re-keys these to a
        concrete table's uid when the cell data materializes)."""
        stats = cls.__new__(cls)
        stats._table_name = table_name
        stats._columns = tuple(columns)
        stats._table_uid = None
        missing = [c for c in stats._columns if c not in stats_by_name]
        if missing:
            raise ValueError(
                f"hydrated stats for table {table_name!r} missing columns: {missing}"
            )
        stats._by_name = {name: stats_by_name[name] for name in stats._columns}
        return stats

    @property
    def table_uid(self) -> int | None:
        """The uid of the owning table (None for a hydrated snapshot that
        has not been adopted by a materialized table yet)."""
        return self._table_uid

    @property
    def columns(self) -> tuple[str, ...]:
        return self._columns

    def _rekey(self, table_uid: int) -> None:
        """Bind these stats to a (new) owning table identity."""
        self._table_uid = table_uid

    def column(self, name: str) -> ColumnStats:
        try:
            return self._by_name[name]
        except KeyError:
            raise KeyError(
                f"table {self._table_name!r} has no column {name!r}; "
                f"columns: {list(self._columns)}"
            ) from None

    def __iter__(self) -> Iterator[ColumnStats]:
        return iter(self._by_name.values())

    def warm(self) -> "TableStats":
        """Run every column's base scan now (one pass each); returns self."""
        for stats in self._by_name.values():
            stats._ensure()
        return self

    @property
    def scan_counts(self) -> dict[str, int]:
        """Per-column count of raw base-scan passes performed so far."""
        return {name: s.scan_count for name, s in self._by_name.items()}

    @property
    def total_scans(self) -> int:
        return sum(s.scan_count for s in self._by_name.values())

    def __repr__(self) -> str:
        return f"TableStats({self._table_name!r}, {len(self._by_name)} columns)"
