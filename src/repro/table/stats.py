"""Per-column statistics, computed once and shared by every layer.

Before this module existed, the profiler, every discoverer (SANTOS, JOSIE,
LSH Ensemble, TUS, COCOA, Starmie), the aligner's featurization and ALITE's
hot path each re-extracted columns, re-built distinct sets and re-hashed
sketches from the same immutable tables -- an O(consumers x columns x rows)
tax on every pipeline run.  :class:`TableStats` is the fix: one
:class:`ColumnStats` per column, filled by a **single pass** over the raw
column array and memoized on the owning :class:`~repro.table.table.Table`.

Invalidation contract
---------------------
Tables are immutable by convention, so the cache never invalidates: stats
are keyed by *object identity* -- ``(id(table), column)`` when viewed
lake-wide -- and live exactly as long as the table object.  Deriving a new
table (every operator returns a new ``Table``) starts from an empty cache;
mutating ``table.rows`` in place is already outside the API contract and
now additionally yields stale statistics.

Every consumer-facing product is immutable: ``distinct`` and ``tokens``
are frozensets, column arrays are tuples, and the shared ``values`` /
column lists are :class:`ReadOnlyView` instances whose mutators raise.

``scan_count`` records how many raw passes the base scan performed for a
column -- it is the observable that lets tests assert the whole pipeline
touches each column's raw data exactly once.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Iterator

from .infer import infer_dtype
from .values import MISSING, Cell, is_null

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..sketch.hll import HyperLogLog
    from ..sketch.minhash import MinHasher, MinHashSignature
    from .table import Table

__all__ = ["ColumnStats", "TableStats", "ReadOnlyView"]


class ReadOnlyView(list):
    """A list whose mutators raise -- the type of every cached column view.

    It *is* a list (so ``view == [1, 2]`` and slicing keep working for all
    existing consumers), but ``sort``/``append``/item assignment fail
    loudly instead of silently corrupting the shared stats cache.  Copy
    with ``list(view)`` if a mutable list is needed.
    """

    __slots__ = ()

    def _blocked(self, *args: Any, **kwargs: Any):
        raise TypeError(
            "cached column view is read-only; copy it with list(view) first"
        )

    append = extend = insert = remove = pop = clear = _blocked
    sort = reverse = __setitem__ = __delitem__ = _blocked
    __iadd__ = __imul__ = _blocked  # type: ignore[assignment]

    def __reduce__(self):
        # Default list-subclass pickling rebuilds via append/extend, which
        # are blocked here; reconstruct through the constructor instead.
        return (self.__class__, (list(self),))


class ColumnStats:
    """Memoized statistics of one column of one (immutable) table.

    The base scan -- one pass over the raw column array -- fills the value
    list, null counts, distinct set, dtype and numeric fraction together.
    Sketches (MinHash, HyperLogLog) and token sets derive from the scanned
    values and are memoized separately, so nothing is ever computed twice.
    """

    __slots__ = (
        "table_name",
        "name",
        "_array",
        "scan_count",
        "_scanned",
        "values",
        "row_count",
        "null_count",
        "missing_count",
        "distinct",
        "dtype",
        "numeric_fraction",
        "_tokens",
        "_text_values",
        "_minhash",
        "_hll",
        "_column_list",
    )

    def __init__(self, table_name: str, name: str, array: tuple[Cell, ...]):
        self.table_name = table_name
        self.name = name
        self._array = array
        self.scan_count = 0
        self._scanned = False
        self._tokens: frozenset[str] | None = None
        self._text_values: dict[int | None, frozenset[str]] = {}
        self._minhash: dict[tuple[int, int], "MinHashSignature"] = {}
        self._hll: dict[int, "HyperLogLog"] = {}
        self._column_list: list[Cell] | None = None

    # ------------------------------------------------------------------
    # The one pass
    # ------------------------------------------------------------------
    def _scan(self) -> None:
        """The single raw pass: values, nulls, distinct, dtype, numerics."""
        from ..text.normalize import to_float

        self.scan_count += 1
        values: list[Cell] = []
        null_count = missing_count = numeric = 0
        for cell in self._array:
            if is_null(cell):
                null_count += 1
                if cell is MISSING:
                    missing_count += 1
                continue
            values.append(cell)
            if to_float(cell) is not None:
                numeric += 1
        self.numeric_fraction = numeric / len(values) if values else 0.0
        self.values = ReadOnlyView(values)
        self.row_count = len(self._array)
        self.null_count = null_count
        self.missing_count = missing_count
        self.distinct = frozenset(values)
        # Delegated to the one canonical implementation so table.schema and
        # the stats cache can never disagree on a column's dtype.
        self.dtype = infer_dtype(values)
        self._scanned = True

    def _ensure(self) -> "ColumnStats":
        if not self._scanned:
            self._scan()
        return self

    def __getattr__(self, attribute: str) -> Any:
        # Base stats materialize on first access; __getattr__ only fires for
        # slots that were never assigned, i.e. before the scan ran.
        if attribute in (
            "values", "row_count", "null_count", "missing_count",
            "distinct", "dtype", "numeric_fraction",
        ):
            self._scan()
            return getattr(self, attribute)
        raise AttributeError(attribute)

    # ------------------------------------------------------------------
    # Derived, individually memoized products
    # ------------------------------------------------------------------
    @property
    def array(self) -> tuple[Cell, ...]:
        """The raw column, nulls included, as an immutable tuple."""
        return self._array

    @property
    def column_list(self) -> list[Cell]:
        """The raw column as a cached :class:`ReadOnlyView` -- the object
        :meth:`Table.column` hands out."""
        if self._column_list is None:
            self._column_list = ReadOnlyView(self._array)
        return self._column_list

    @property
    def non_null_count(self) -> int:
        return len(self._ensure().values)

    @property
    def tokens(self) -> frozenset[str]:
        """The domain token set (what JOSIE / LSH Ensemble index and the
        TF-IDF corpus counts)."""
        if self._tokens is None:
            from ..text.tokenize import cell_tokens

            tokens: set[str] = set()
            for value in self._ensure().distinct:
                tokens.update(cell_tokens(value))
            self._tokens = frozenset(tokens)
        return self._tokens

    def text_values(self, limit: int | None = None) -> frozenset[str]:
        """Normalized string values (TUS / alignment evidence), optionally
        computed over only the first *limit* non-null values."""
        values = self._ensure().values
        if limit is not None and limit >= len(values):
            limit = None
        cached = self._text_values.get(limit)
        if cached is None:
            from ..text.tokenize import normalize_token

            sample = values if limit is None else values[:limit]
            cached = frozenset(
                normalize_token(str(v)) for v in sample if isinstance(v, str)
            )
            self._text_values[limit] = cached
        return cached

    def example_values(self, n: int = 3) -> list[str]:
        """First *n* distinct values as strings, in row order."""
        return list(dict.fromkeys(str(v) for v in self._ensure().values))[:n]

    def minhash(self, hasher: "MinHasher") -> "MinHashSignature":
        """The column's MinHash signature under *hasher* (memoized per
        ``(num_perm, seed)``, so every discoverer shares one signature)."""
        key = (hasher.num_perm, hasher.seed)
        signature = self._minhash.get(key)
        if signature is None:
            signature = hasher.signature(self.tokens)
            self._minhash[key] = signature
        return signature

    def hll(self, precision: int = 12) -> "HyperLogLog":
        """A HyperLogLog over the non-null values (memoized per precision)."""
        sketch = self._hll.get(precision)
        if sketch is None:
            from ..sketch.hll import HyperLogLog

            sketch = HyperLogLog(precision=precision).update(
                self._ensure().values
            )
            self._hll[precision] = sketch
        return sketch

    def __repr__(self) -> str:
        state = "scanned" if self._scanned else "unscanned"
        return f"ColumnStats({self.table_name}.{self.name}, {state})"


class TableStats:
    """All column stats of one table, plus the table-level scan ledger."""

    __slots__ = ("_table_name", "_columns", "_by_name")

    def __init__(self, table: "Table"):
        self._table_name = table.name
        self._columns = table.columns
        arrays = table.column_arrays
        self._by_name = {
            name: ColumnStats(table.name, name, arrays[i])
            for i, name in enumerate(self._columns)
        }

    def column(self, name: str) -> ColumnStats:
        try:
            return self._by_name[name]
        except KeyError:
            raise KeyError(
                f"table {self._table_name!r} has no column {name!r}; "
                f"columns: {list(self._columns)}"
            ) from None

    def __iter__(self) -> Iterator[ColumnStats]:
        return iter(self._by_name.values())

    def warm(self) -> "TableStats":
        """Run every column's base scan now (one pass each); returns self."""
        for stats in self._by_name.values():
            stats._ensure()
        return self

    @property
    def scan_counts(self) -> dict[str, int]:
        """Per-column count of raw base-scan passes performed so far."""
        return {name: s.scan_count for name, s in self._by_name.items()}

    @property
    def total_scans(self) -> int:
        return sum(s.scan_count for s in self._by_name.values())

    def __repr__(self) -> str:
        return f"TableStats({self._table_name!r}, {len(self._by_name)} columns)"
