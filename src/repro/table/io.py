"""CSV reading and writing for :class:`~repro.table.table.Table`.

Open-data lakes are directories of CSV files; this module is the only place
the library touches the filesystem for table data.  Reading parses cells via
:func:`repro.table.infer.parse_cell` (so numerics become numbers and blank /
"NA"-style fields become *missing* nulls); writing renders nulls back as the
paper's ``±`` / ``⊥`` markers by default so round-trips preserve null kind.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Iterable

from .infer import DEFAULT_MISSING_TOKENS, parse_cell
from .table import Table
from .values import MISSING, PRODUCED, Cell, is_null, is_produced

__all__ = ["read_csv", "write_csv", "read_lake_dir"]


def read_csv(
    path: str | Path,
    name: str | None = None,
    missing_tokens: frozenset[str] = DEFAULT_MISSING_TOKENS,
    infer_types: bool = True,
    delimiter: str | None = None,
) -> Table:
    """Load one CSV file as a :class:`Table`.

    The first row is the header.  Ragged data rows are padded (short) or
    truncated (long) to the header width with *missing* nulls -- real open
    data does contain such rows and dropping them silently would bias
    discovery statistics.

    The delimiter is sniffed from the first line (``,``, ``;``, ``\\t`` or
    ``|`` -- European open data loves semicolons) unless given explicitly.
    ``infer_types=False`` keeps every cell a raw string except for missing
    markers, which still become nulls.
    """
    path = Path(path)
    table_name = name if name is not None else path.stem
    if delimiter is None:
        delimiter = _sniff_delimiter(path)
    with path.open(newline="", encoding="utf-8") as handle:
        reader = csv.reader(handle, delimiter=delimiter)
        try:
            header = next(reader)
        except StopIteration:
            return Table.empty([], name=table_name)
        header = _dedupe_header(header)
        width = len(header)
        rows = []
        for raw_row in reader:
            raw_row = list(raw_row[:width]) + [""] * (width - len(raw_row))
            if infer_types:
                row = [parse_cell(field, missing_tokens) for field in raw_row]
            else:
                row = [
                    MISSING if field.strip().lower() in missing_tokens else field.strip()
                    for field in raw_row
                ]
            rows.append(row)
    return Table(header, rows, name=table_name)


def write_csv(
    table: Table,
    path: str | Path,
    missing_marker: str = "±",
    produced_marker: str = "⊥",
) -> None:
    """Write *table* to CSV, rendering nulls with explicit kind markers."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(table.columns)
        for row in table.rows:
            writer.writerow([_render_cell(c, missing_marker, produced_marker) for c in row])


def read_lake_dir(directory: str | Path, pattern: str = "*.csv") -> list[Table]:
    """Load every CSV under *directory* (sorted by filename) as tables."""
    directory = Path(directory)
    tables = []
    for path in sorted(directory.glob(pattern)):
        tables.append(read_csv(path))
    return tables


def _render_cell(cell: Cell, missing_marker: str, produced_marker: str) -> str:
    if is_null(cell):
        return produced_marker if is_produced(cell) else missing_marker
    if isinstance(cell, float):
        return f"{cell:g}"
    return str(cell)


def _sniff_delimiter(path: Path) -> str:
    """Pick the candidate delimiter that splits the header most often
    (defaulting to comma when nothing else wins)."""
    with path.open(newline="", encoding="utf-8") as handle:
        first_line = handle.readline()
    best, best_count = ",", first_line.count(",")
    for candidate in (";", "\t", "|"):
        count = first_line.count(candidate)
        if count > best_count:
            best, best_count = candidate, count
    return best


def _dedupe_header(header: Iterable[str]) -> list[str]:
    """Make header names unique (``col``, ``col_2``, ...): duplicate headers
    are common in scraped open data and Table construction rejects them."""
    seen: dict[str, int] = {}
    result = []
    for raw in header:
        base = raw.strip() or "column"
        count = seen.get(base, 0) + 1
        seen[base] = count
        result.append(base if count == 1 else f"{base}_{count}")
    return result
