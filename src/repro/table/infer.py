"""Type inference and raw-text cell parsing.

Open-data CSVs arrive as strings.  :func:`parse_cell` turns a raw string into
the richest :class:`~repro.table.values.Cell` it can justify (``int`` before
``float`` before ``bool`` before ``str``); :func:`infer_dtype` summarizes a
column of already-parsed cells into one of :data:`repro.table.schema.DTYPES`.

Nothing here guesses at semantics (percentages, "1.4M" counts, currencies);
that normalization lives in :mod:`repro.text.normalize` and is applied only
when an analysis explicitly asks for numbers.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from .schema import ColumnSpec, Schema
from .values import MISSING, Cell, is_null

__all__ = [
    "DEFAULT_MISSING_TOKENS",
    "parse_cell",
    "infer_dtype",
    "infer_schema",
]

#: Raw strings (case-insensitive, after stripping) read as a *missing* null.
DEFAULT_MISSING_TOKENS = frozenset(
    {"", "na", "n/a", "nan", "null", "none", "missing", "±", "-", "--"}
)

_TRUE_TOKENS = frozenset({"true", "yes"})
_FALSE_TOKENS = frozenset({"false", "no"})


def parse_cell(raw: str, missing_tokens: frozenset[str] = DEFAULT_MISSING_TOKENS) -> Cell:
    """Parse one raw CSV field into a typed cell.

    The parser is deliberately conservative: anything that is not clearly a
    number, boolean or missing marker stays a (stripped) string, because
    discovery and alignment treat strings as the common currency.
    """
    text = raw.strip()
    if text.lower() in missing_tokens:
        return MISSING
    lowered = text.lower()
    if lowered in _TRUE_TOKENS:
        return True
    if lowered in _FALSE_TOKENS:
        return False
    try:
        return int(text)
    except ValueError:
        pass
    try:
        value = float(text)
    except ValueError:
        return text
    return value


def infer_dtype(values: Iterable[Cell]) -> str:
    """The narrowest dtype that covers every non-null cell in *values*.

    All-null (or empty) columns are ``"empty"``; columns mixing, say, strings
    and ints are ``"any"``.  ``int`` widens to ``float`` but not vice versa.
    """
    saw_any = False
    saw_int = saw_float = saw_bool = saw_str = False
    for value in values:
        if is_null(value):
            continue
        saw_any = True
        if isinstance(value, bool):
            saw_bool = True
        elif isinstance(value, int):
            saw_int = True
        elif isinstance(value, float):
            saw_float = True
        elif isinstance(value, str):
            saw_str = True
        else:
            return "any"
    if not saw_any:
        return "empty"
    kinds = sum((saw_bool, saw_int or saw_float, saw_str))
    if kinds > 1:
        return "any"
    if saw_str:
        return "string"
    if saw_bool:
        return "bool"
    if saw_float:
        return "float"
    return "int"


def infer_schema(names: Sequence[str], rows: Sequence[Sequence[Cell]]) -> Schema:
    """Infer a full :class:`Schema` for *rows* laid out under *names*."""
    specs = []
    for position, name in enumerate(names):
        column = (row[position] for row in rows)
        specs.append(ColumnSpec(name, infer_dtype(column)))
    return Schema(specs)
