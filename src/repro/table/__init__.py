"""Null-aware in-memory table engine (the pandas substitute).

This package is DIALITE's common substrate: a typed, row-major relation with
the paper's two-kind null model (*missing* ``±`` from inputs, *produced*
``⊥`` from integration), CSV I/O, type inference and the classical
relational operators.

Quick tour::

    from repro.table import Table, ops
    t = Table(["City", "Rate"], [("Berlin", 63), ("Boston", 62)], name="T1")
    joined = ops.full_outer_join(t, other)
"""

from . import ops
from .infer import infer_dtype, infer_schema, parse_cell
from .io import read_csv, read_lake_dir, write_csv
from .schema import ColumnSpec, Schema
from .table import Table
from .values import (
    MISSING,
    PRODUCED,
    Cell,
    Null,
    coalesce,
    is_missing,
    is_null,
    is_produced,
    values_equal,
)

__all__ = [
    "Table",
    "Schema",
    "ColumnSpec",
    "Cell",
    "Null",
    "MISSING",
    "PRODUCED",
    "is_null",
    "is_missing",
    "is_produced",
    "values_equal",
    "coalesce",
    "parse_cell",
    "infer_dtype",
    "infer_schema",
    "read_csv",
    "write_csv",
    "read_lake_dir",
    "ops",
]
