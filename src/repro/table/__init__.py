"""Null-aware in-memory table engine (the pandas substitute).

This package is DIALITE's common substrate: a typed relation with the
paper's two-kind null model (*missing* ``±`` from inputs, *produced* ``⊥``
from integration), CSV I/O, type inference and the classical relational
operators.

Quick tour::

    from repro.table import Table, ops
    t = Table(["City", "Rate"], [("Berlin", 63), ("Boston", 62)], name="T1")
    joined = ops.full_outer_join(t, other)

Architecture: columnar substrate & stats cache
----------------------------------------------
A :class:`Table` stores its data **columnar** -- a tuple of immutable
per-column cell tuples (``table.column_arrays``) -- and materializes the
row-major ``table.rows`` view lazily, on first access.  The operators in
:mod:`repro.table.ops` exploit this: joins precompute per-column key
vectors and assemble output column-by-column as index gathers, projection
and renames share the parents' arrays outright, and outer union
concatenates column runs instead of padding row tuples.

On top of the arrays sits the per-column statistics cache
(:mod:`repro.table.stats`): ``table.stats.column(name)`` memoizes dtype,
null counts, the distinct-value set, the domain token set, MinHash and
HyperLogLog sketches and normalized text values, each computed at most
once per (table object, column).  ``Table.column`` /
``Table.column_values`` / ``Table.distinct_values`` serve **cached,
read-only views** from that cache.

The invalidation contract is deliberate and simple: tables are immutable
by convention, so caches are keyed by table identity --
``(table.uid, column)`` when viewed lake-wide through
:class:`repro.datalake.stats.LakeStats` -- and are never invalidated.
``table.uid`` is a process-unique monotonic counter assigned at
construction; it replaces ``id(table)`` as the cache key because CPython
recycles object ids as soon as a table is garbage collected, so an
id-keyed cache could silently serve a dead table's statistics for an
unrelated new table at the same address.  Every operator returns a *new*
table, which starts cold under a fresh uid.  Do not mutate a table's
cells in place; beyond being outside the API contract, it now also yields
stale cached statistics.
"""

from . import ops
from .infer import infer_dtype, infer_schema, parse_cell
from .io import read_csv, read_lake_dir, write_csv
from .schema import ColumnSpec, Schema
from .stats import ColumnStats, TableStats
from .table import Table
from .values import (
    MISSING,
    PRODUCED,
    Cell,
    Null,
    coalesce,
    is_missing,
    is_null,
    is_produced,
    values_equal,
)

__all__ = [
    "Table",
    "TableStats",
    "ColumnStats",
    "Schema",
    "ColumnSpec",
    "Cell",
    "Null",
    "MISSING",
    "PRODUCED",
    "is_null",
    "is_missing",
    "is_produced",
    "values_equal",
    "coalesce",
    "parse_cell",
    "infer_dtype",
    "infer_schema",
    "read_csv",
    "write_csv",
    "read_lake_dir",
    "ops",
]
