"""Bounded exponential backoff with jitter for the service client.

A :class:`RetryPolicy` is pure arithmetic: ``delay(attempt)`` returns
how long to sleep before retry number ``attempt`` (0-based), capped at
``max_delay`` and fuzzed by up to ``jitter`` of itself so a thundering
herd of clients does not re-dial in lockstep.  The caller decides *what*
is retryable -- the policy only shapes the schedule.

The server's overload pushback can carry a ``retry_after`` hint
(seconds); passing it as ``floor`` makes the backoff honor the server's
estimate instead of hammering earlier than invited.
"""

from __future__ import annotations

import random

__all__ = ["RetryPolicy"]


class RetryPolicy:
    """``attempts`` total tries; sleeps ``base_delay * multiplier**n``
    (jittered, capped at ``max_delay``) between them."""

    def __init__(
        self,
        attempts: int = 4,
        base_delay: float = 0.05,
        multiplier: float = 2.0,
        max_delay: float = 2.0,
        jitter: float = 0.25,
    ):
        if attempts < 1:
            raise ValueError("attempts must be >= 1")
        if base_delay < 0 or max_delay < 0 or multiplier < 1 or not 0 <= jitter <= 1:
            raise ValueError("invalid backoff parameters")
        self.attempts = attempts
        self.base_delay = base_delay
        self.multiplier = multiplier
        self.max_delay = max_delay
        self.jitter = jitter

    def delay(self, attempt: int, floor: float | None = None) -> float:
        """Sleep before retry ``attempt`` (0-based).  ``floor`` is a
        server-supplied minimum (its Retry-After-style hint)."""
        delay = min(self.base_delay * (self.multiplier ** attempt), self.max_delay)
        if self.jitter:
            delay *= 1.0 + random.random() * self.jitter
        if floor is not None:
            delay = max(delay, float(floor))
        return min(delay, self.max_delay)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RetryPolicy(attempts={self.attempts}, base_delay={self.base_delay}, "
            f"multiplier={self.multiplier}, max_delay={self.max_delay}, "
            f"jitter={self.jitter})"
        )
