"""Test-only fault plane: named injection points in production code.

Production call sites declare where a fault *could* happen by firing a
registered point name::

    from ..faults import inject
    inject.fire("store.write_segment", table=name)

Nothing is armed by default and ``fire`` short-circuits on a single
module-level flag, so the shipped cost is one attribute load and one
truthiness check per call site.  Tests and the chaos harness arm faults:

* :func:`crash_after` -- raise :class:`FaultInjected` at the *nth* fire
  of a point (simulates a crash immediately after that write completes);
* :func:`fail_at` -- raise an arbitrary error at the nth fire;
* :func:`kill_worker` -- the next scatter to shard *i* ships a poison
  payload whose worker calls ``os._exit`` (a real process death, not an
  exception -- the driver sees ``BrokenProcessPool``);
* :func:`drop_connection` -- the nth client connect raises
  ``ConnectionError`` before touching the socket;
* :func:`record` -- count every fire, used by the crash-recovery
  property suite to enumerate the write points of an operation before
  crashing at each one in turn.

``FAULT_POINTS`` is the registry of every legal point, mapping each name
to the source file expected to host its call site (and, for points that
cannot use a literal ``fire`` call, the token that marks the site).
``tools/check_fault_sites.py`` lints the registry against the tree so a
refactor cannot silently strand a point with no caller.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Any, Callable, Iterator

__all__ = [
    "FAULT_POINTS",
    "FaultInjected",
    "active",
    "crash_after",
    "drop_connection",
    "fail_at",
    "fire",
    "kill_worker",
    "record",
    "reset",
    "take_worker_kill",
]

# point name -> (file under src/repro hosting the call site, marker token).
# A ``None`` token means the default marker ``inject.fire("<name>"`` --
# the two exceptions are the worker-kill pair, which crosses a process
# boundary: the driver consumes the kill at submit time and the worker
# honors a poison payload flag instead of calling back into this module.
FAULT_POINTS: dict[str, tuple[str, str | None]] = {
    "store.write_journal": ("store/journal.py", None),
    "store.clear_journal": ("store/journal.py", None),
    "store.write_segment": ("store/lakestore.py", None),
    "store.write_stats": ("store/lakestore.py", None),
    "store.write_manifest": ("store/lakestore.py", None),
    "store.write_version": ("store/lakestore.py", None),
    "store.unlink_stale": ("store/lakestore.py", None),
    "shard.rebalance.stage": ("shard/store.py", None),
    "shard.rebalance.backup": ("shard/store.py", None),
    "shard.rebalance.move": ("shard/store.py", None),
    "shard.rebalance.commit": ("shard/store.py", None),
    "shard.scatter.kill": ("shard/index.py", "inject.take_worker_kill("),
    "shard.worker.exit": ("shard/worker.py", "_fault_kill"),
    "client.connect": ("service/protocol.py", None),
    "server.handle": ("service/protocol.py", None),
}


class FaultInjected(RuntimeError):
    """Raised by an armed :func:`crash_after` -- stands in for the
    process dying right after the named write point."""

    def __init__(self, point: str):
        super().__init__(f"injected crash after fault point {point!r}")
        self.point = point


class _Armed:
    """One armed fault: trigger at the nth fire (counted from arming),
    for ``times`` consecutive fires."""

    def __init__(self, nth: int, times: int, factory: Callable[[], BaseException]):
        self.nth = nth
        self.times = times
        self.factory = factory
        self.seen = 0
        self.triggered = 0

    def step(self) -> BaseException | None:
        self.seen += 1
        if self.seen >= self.nth and self.triggered < self.times:
            self.triggered += 1
            return self.factory()
        return None

    @property
    def spent(self) -> bool:
        return self.triggered >= self.times


_lock = threading.Lock()
_enabled = False  # fast-path gate: True iff anything below is armed
_faults: dict[str, list[_Armed]] = {}
_counts: dict[str, int] | None = None
_worker_kills: dict[int, int] = {}


def _recompute_enabled() -> None:
    global _enabled
    _enabled = bool(_faults) or _counts is not None or bool(_worker_kills)


def active() -> bool:
    """True when any fault or recorder is armed."""
    return _enabled


def _check_point(point: str) -> None:
    if point not in FAULT_POINTS:
        raise ValueError(
            f"unknown fault point {point!r}; registered: {sorted(FAULT_POINTS)}"
        )


def fail_at(
    point: str,
    error: Callable[[], BaseException] | BaseException,
    nth: int = 1,
    times: int = 1,
) -> None:
    """Arm ``point`` to raise ``error`` at its nth fire (then for
    ``times - 1`` further consecutive fires)."""
    _check_point(point)
    if nth < 1 or times < 1:
        raise ValueError("nth and times must be >= 1")
    factory = error if callable(error) else (lambda err=error: err)
    with _lock:
        _faults.setdefault(point, []).append(_Armed(nth, times, factory))
        _recompute_enabled()


def crash_after(point: str, nth: int = 1) -> None:
    """Arm a simulated crash (``FaultInjected``) at the nth fire of
    ``point`` -- i.e. the process dies right after that write."""
    fail_at(point, lambda: FaultInjected(point), nth=nth)


def drop_connection(nth: int = 1, times: int = 1) -> None:
    """Arm the client's nth connection attempt to fail before the socket
    is touched (the retry loop's bread and butter)."""
    fail_at(
        "client.connect",
        lambda: ConnectionError("injected connection drop"),
        nth=nth,
        times=times,
    )


def kill_worker(shard: int, times: int = 1) -> None:
    """Arm the next ``times`` scatter submissions to shard ``shard`` to
    carry a poison payload: the pool worker ``os._exit``s before
    answering, so the driver observes a genuine ``BrokenProcessPool``."""
    if shard < 0 or times < 1:
        raise ValueError("shard must be >= 0 and times >= 1")
    with _lock:
        _worker_kills[shard] = _worker_kills.get(shard, 0) + times
        _recompute_enabled()


def take_worker_kill(shard: int) -> bool:
    """Consume one armed kill for ``shard`` (called by the scatter
    driver at submit time).  Fault point ``shard.scatter.kill``."""
    if not _enabled:
        return False
    with _lock:
        if _counts is not None:
            _counts["shard.scatter.kill"] = _counts.get("shard.scatter.kill", 0) + 1
        pending = _worker_kills.get(shard, 0)
        if not pending:
            return False
        if pending == 1:
            del _worker_kills[shard]
        else:
            _worker_kills[shard] = pending - 1
        _recompute_enabled()
        return True


def fire(point: str, **context: Any) -> None:
    """Hit a fault point.  No-op unless something is armed; raises the
    armed error when this fire matches an armed fault's trigger."""
    if not _enabled:
        return
    to_raise: BaseException | None = None
    with _lock:
        _check_point(point)
        if _counts is not None:
            _counts[point] = _counts.get(point, 0) + 1
        armed = _faults.get(point)
        if armed:
            for fault in armed:
                error = fault.step()
                if error is not None and to_raise is None:
                    to_raise = error
            if all(f.spent for f in armed):
                del _faults[point]
                _recompute_enabled()
    if to_raise is not None:
        raise to_raise


@contextmanager
def record() -> Iterator[dict[str, int]]:
    """Count every fire inside the block -- how the crash-recovery
    property suite enumerates an operation's write points."""
    global _counts
    with _lock:
        previous = _counts
        counts: dict[str, int] = {}
        _counts = counts
        _recompute_enabled()
    try:
        yield counts
    finally:
        with _lock:
            _counts = previous
            _recompute_enabled()


def reset() -> None:
    """Disarm everything (tests call this in teardown)."""
    global _counts
    with _lock:
        _faults.clear()
        _worker_kills.clear()
        _counts = None
        _recompute_enabled()
