"""repro.faults -- the pipeline-wide fault-tolerance layer.

Two halves:

* :mod:`repro.faults.inject` -- a test-only fault plane.  Production
  code threads named *fault points* through its write and I/O paths
  (``inject.fire("store.write_segment")``); tests and the chaos harness
  arm crashes, worker kills and connection drops against those points.
  When nothing is armed the plane is a single predicate check per call
  site.
* :mod:`repro.faults.retry` -- the bounded exponential-backoff policy
  used by :class:`~repro.service.protocol.ServiceClient` to absorb
  transient connection failures and overload pushback.

Call sites import the module, never the functions, mirroring the
``repro.obs`` convention so tests can stub or record the whole plane::

    from ..faults import inject
    inject.fire("store.write_manifest")
"""

from . import inject
from .inject import FaultInjected
from .retry import RetryPolicy

__all__ = ["inject", "FaultInjected", "RetryPolicy"]
