"""LSH Ensemble: containment search with domain partitioning (VLDB 2016).

The problem with plain MinHash LSH for joinability is that *containment*
(query ⊆ candidate) does not translate to a single Jaccard threshold: the
conversion depends on the candidate's size.  LSH Ensemble's fix, reproduced
here, is to

1. partition the indexed domains by cardinality (equi-depth),
2. within each partition use the partition's *upper* size bound to convert
   the containment threshold into a per-partition Jaccard threshold, and
3. tune the LSH ``(b, r)`` parameters per partition, per query, choosing
   among prebuilt band structures (the prefix-of-bands trick).

Candidates from all partitions are verified against their signatures and
ranked by estimated containment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterable, Sequence

from .lsh import BandedLSHIndex, optimal_param
from .minhash import MinHasher, MinHashSignature

__all__ = ["LSHEnsemble", "EnsembleMatch"]

_DEFAULT_ALLOWED_R = (1, 2, 4, 8, 16, 32)


@dataclass(frozen=True)
class EnsembleMatch:
    """One query result: the indexed key and its estimated containment."""

    key: Hashable
    containment: float


class _Partition:
    """One cardinality range: shared signatures, one banded index per r.

    With ``fixed_upper`` the partition's upper size bound is pinned at
    construction (size-bucket mode) instead of tracking the max observed
    cardinality -- the bound is then a function of the bucket alone, not
    of which keys happen to be indexed.
    """

    def __init__(
        self,
        num_perm: int,
        allowed_r: Sequence[int],
        fixed_upper: int | None = None,
    ):
        self.upper = fixed_upper if fixed_upper is not None else 0
        self._fixed = fixed_upper is not None
        self.signatures: dict[Hashable, MinHashSignature] = {}
        self.indexes = {r: BandedLSHIndex(num_perm, r) for r in allowed_r}

    def insert(self, key: Hashable, signature: MinHashSignature) -> None:
        if not self._fixed:
            self.upper = max(self.upper, signature.size)
        self.signatures[key] = signature
        for index in self.indexes.values():
            index.insert(key, signature)


class LSHEnsemble:
    """Top-k containment search over indexed token sets.

    Usage::

        ensemble = LSHEnsemble(num_perm=128, num_partitions=8)
        ensemble.index([("lake.T3.City", city_tokens), ...])
        for match in ensemble.query(query_tokens, threshold=0.5, k=10):
            ...

    ``index`` may be called once with all entries (it sorts by cardinality to
    form equi-depth partitions); incremental ``insert`` routes to the best
    existing partition, trading a little tuning accuracy for convenience.

    Two partitioning modes:

    ``equi-depth`` (default)
        The paper's scheme: sort by cardinality, cut into
        ``num_partitions`` equal chunks, upper bound = max observed size
        per chunk.  Best tuning accuracy for a one-shot bulk index, but
        the partition a key lands in -- and hence the ``(b, r)`` choice
        that decides its band hits -- depends on the *whole* indexed
        distribution.

    ``size-buckets``
        Deterministic geometric buckets: a key with cardinality ``s``
        lands in bucket ``floor(log2(s))`` with a fixed upper bound
        ``2^(bucket+1) - 1``.  Bucket and bound are functions of the key's
        own cardinality alone, so the band-hit decision for any key is
        independent of what else is indexed -- an ensemble over any
        subset of the entries returns exactly the global matches
        restricted to that subset.  This is what makes sharded retrieval
        decomposable, at a small tuning cost (bounds are powers of two
        rather than observed maxima).
    """

    def __init__(
        self,
        num_perm: int = 128,
        num_partitions: int = 8,
        seed: int = 1,
        allowed_r: Sequence[int] | None = None,
        partitioning: str = "equi-depth",
    ):
        if num_partitions <= 0:
            raise ValueError("num_partitions must be positive")
        if partitioning not in ("equi-depth", "size-buckets"):
            raise ValueError(
                f"unknown partitioning {partitioning!r} "
                "(expected 'equi-depth' or 'size-buckets')"
            )
        self.num_perm = num_perm
        self.num_partitions = num_partitions
        self.partitioning = partitioning
        self._hasher = MinHasher(num_perm=num_perm, seed=seed)
        self._allowed_r = tuple(
            r for r in (allowed_r or _DEFAULT_ALLOWED_R) if r <= num_perm
        )
        if not self._allowed_r:
            raise ValueError("allowed_r has no entry <= num_perm")
        self._partitions: list[_Partition] = []
        # size-buckets mode: bucket index -> partition, created on demand.
        self._buckets: dict[int, _Partition] = {}
        self._indexed = 0

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._indexed

    @property
    def hasher(self) -> MinHasher:
        """The ensemble's MinHasher -- callers holding a signature cache
        (e.g. :class:`~repro.table.stats.ColumnStats`) key sketches by its
        ``(num_perm, seed)`` so one signature serves every consumer."""
        return self._hasher

    def signature_of(self, tokens: Iterable[Hashable]) -> MinHashSignature:
        """Expose the hasher so callers can cache query signatures."""
        return self._hasher.signature(tokens)

    def index(self, entries: Iterable[tuple[Hashable, Iterable[Hashable]]]) -> None:
        """Bulk-index ``(key, token set)`` pairs with equi-depth partitioning."""
        self.index_signatures(
            (key, self._hasher.signature(tokens)) for key, tokens in entries
        )

    def index_signatures(
        self, entries: Iterable[tuple[Hashable, MinHashSignature]]
    ) -> None:
        """Bulk-index precomputed ``(key, signature)`` pairs (signatures must
        come from a hasher matching :attr:`hasher`)."""
        signed = [(key, sig) for key, sig in entries if sig.size > 0]
        if not signed:
            return
        if self.partitioning == "size-buckets":
            for key, signature in signed:
                self._bucket_for(signature.size).insert(key, signature)
            self._indexed += len(signed)
            return
        signed.sort(key=lambda pair: pair[1].size)
        chunks = max(1, min(self.num_partitions, len(signed)))
        per_chunk = -(-len(signed) // chunks)  # ceil division: equi-depth
        for start in range(0, len(signed), per_chunk):
            partition = _Partition(self.num_perm, self._allowed_r)
            for key, signature in signed[start : start + per_chunk]:
                partition.insert(key, signature)
            self._partitions.append(partition)
        self._indexed += len(signed)

    def _bucket_for(self, size: int) -> _Partition:
        """The geometric bucket owning cardinality *size* (size-buckets
        mode), created on first use.  Bucket ``b`` covers sizes in
        ``[2^b, 2^(b+1) - 1]`` with that fixed upper bound."""
        bucket = max(0, size.bit_length() - 1)
        partition = self._buckets.get(bucket)
        if partition is None:
            partition = _Partition(
                self.num_perm, self._allowed_r, fixed_upper=(1 << (bucket + 1)) - 1
            )
            self._buckets[bucket] = partition
        return partition

    def insert(self, key: Hashable, tokens: Iterable[Hashable]) -> None:
        """Incrementally index one set (routed by cardinality)."""
        signature = self._hasher.signature(tokens)
        if signature.size == 0:
            return
        if self.partitioning == "size-buckets":
            self._bucket_for(signature.size).insert(key, signature)
            self._indexed += 1
            return
        if not self._partitions:
            self._partitions.append(_Partition(self.num_perm, self._allowed_r))
        target = min(
            self._partitions,
            key=lambda p: abs(p.upper - signature.size),
        )
        target.insert(key, signature)
        self._indexed += 1

    # ------------------------------------------------------------------
    def query(
        self,
        tokens: Iterable[Hashable] | MinHashSignature,
        threshold: float = 0.5,
        k: int | None = None,
    ) -> list[EnsembleMatch]:
        """Indexed sets whose estimated containment of the query is >=
        *threshold*, best first, optionally truncated to *k*.

        *tokens* may be a raw token set or an already-computed
        :class:`MinHashSignature` (from a matching hasher), so cached query
        sketches are probed without re-hashing."""
        if not 0.0 <= threshold <= 1.0:
            raise ValueError("threshold must be in [0, 1]")
        query_sig = (
            tokens
            if isinstance(tokens, MinHashSignature)
            else self._hasher.signature(tokens)
        )
        if query_sig.size == 0:
            return []
        candidates: set[Hashable] = set()
        signature_of: dict[Hashable, MinHashSignature] = {}
        partitions: Iterable[_Partition] = self._partitions
        if self.partitioning == "size-buckets":
            partitions = (self._buckets[b] for b in sorted(self._buckets))
        for partition in partitions:
            if not partition.signatures:
                continue
            jaccard_threshold = self._containment_to_jaccard(
                threshold, query_sig.size, partition.upper
            )
            b, r = optimal_param(jaccard_threshold, self.num_perm, self._allowed_r)
            hits = partition.indexes[r].query(query_sig, bands=b)
            for key in hits:
                candidates.add(key)
                signature_of[key] = partition.signatures[key]
        matches = []
        for key in candidates:
            candidate_sig = signature_of[key]
            # Cardinality gate: containment_from_jaccard is increasing in
            # the Jaccard estimate, so its value at j = 1 -- (|Q| + |C|) /
            # 2|Q| -- bounds every possible estimate for this candidate.
            # A candidate whose (sketched) cardinality puts that bound
            # below the threshold can never verify; skip the signature
            # comparison entirely.  Pure pruning: never changes results.
            upper = (query_sig.size + candidate_sig.size) / (2.0 * query_sig.size)
            if upper < threshold:
                continue
            estimate = query_sig.containment_in(candidate_sig)
            if estimate >= threshold:
                matches.append(EnsembleMatch(key=key, containment=estimate))
        matches.sort(key=lambda m: (-m.containment, str(m.key)))
        if k is not None:
            matches = matches[:k]
        return matches

    @staticmethod
    def _containment_to_jaccard(threshold: float, query_size: int, upper: int) -> float:
        """Per-partition conversion using the partition's max cardinality.

        For candidate size ``u``: ``j = t·|Q| / (|Q| + u − t·|Q|)``.  Using
        the partition upper bound makes the converted threshold a *lower*
        bound over the partition, so recall is preserved (the Ensemble
        paper's central inequality).
        """
        denominator = query_size + upper - threshold * query_size
        if denominator <= 0:
            return 1.0
        return max(0.0, min(1.0, threshold * query_size / denominator))
