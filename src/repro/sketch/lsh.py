"""Banded locality-sensitive hashing over MinHash signatures.

Standard b-bands-of-r-rows LSH: a pair whose Jaccard is ``s`` collides in at
least one band with probability ``1 - (1 - s^r)^b``.  The Ensemble layer
(:mod:`repro.sketch.ensemble`) picks ``(b, r)`` per query; this module
provides the bucket structure and the false-positive/negative optimizer.
"""

from __future__ import annotations

import math
from typing import Hashable

import numpy as np

from .minhash import MinHashSignature

__all__ = ["collision_probability", "optimal_param", "BandedLSHIndex"]


def collision_probability(similarity: float, b: int, r: int) -> float:
    """P[at least one band collides] for a pair with Jaccard *similarity*."""
    return 1.0 - (1.0 - similarity**r) ** b


def _false_positive_area(threshold: float, b: int, r: int, steps: int = 64) -> float:
    """∫₀ᵗ P(collide | s) ds -- mass of unwanted collisions below threshold."""
    if threshold <= 0.0:
        return 0.0
    xs = np.linspace(0.0, threshold, steps)
    ys = 1.0 - (1.0 - xs**r) ** b
    return float(np.trapezoid(ys, xs))


def _false_negative_area(threshold: float, b: int, r: int, steps: int = 64) -> float:
    """∫ₜ¹ P(miss | s) ds -- mass of wanted pairs that never collide."""
    if threshold >= 1.0:
        return 0.0
    xs = np.linspace(threshold, 1.0, steps)
    ys = (1.0 - xs**r) ** b
    return float(np.trapezoid(ys, xs))


def optimal_param(
    threshold: float,
    num_perm: int,
    allowed_r: tuple[int, ...] | None = None,
    fp_weight: float = 0.5,
) -> tuple[int, int]:
    """The ``(b, r)`` pair minimizing weighted FP+FN area at *threshold*.

    Only ``b * r <= num_perm`` combinations are considered; *allowed_r*
    restricts the row counts to those the index has prebuilt.
    """
    threshold = min(max(threshold, 0.0), 1.0)
    candidates = allowed_r if allowed_r is not None else tuple(range(1, num_perm + 1))
    best: tuple[float, int, int] | None = None
    for r in candidates:
        b = num_perm // r
        if b == 0:
            continue
        error = fp_weight * _false_positive_area(threshold, b, r) + (
            1.0 - fp_weight
        ) * _false_negative_area(threshold, b, r)
        if best is None or error < best[0]:
            best = (error, b, r)
    if best is None:
        raise ValueError(f"no feasible (b, r) for num_perm={num_perm}")
    return best[1], best[2]


class BandedLSHIndex:
    """One banded index with fixed ``r``; bands can be probed prefix-wise.

    The same stored signatures serve any effective band count ``b' <= b``:
    probing only the first ``b'`` bands is exactly LSH with ``(b', r)``.
    That prefix trick is what lets LSH Ensemble tune parameters per query
    without rebuilding anything.
    """

    def __init__(self, num_perm: int, r: int):
        if r <= 0 or r > num_perm:
            raise ValueError(f"invalid band width r={r} for num_perm={num_perm}")
        self.num_perm = num_perm
        self.r = r
        self.b = num_perm // r
        self._buckets: list[dict[bytes, list[Hashable]]] = [{} for _ in range(self.b)]
        self._count = 0

    def __len__(self) -> int:
        return self._count

    def _band_key(self, signature: MinHashSignature, band: int) -> bytes:
        start = band * self.r
        return signature.values[start : start + self.r].tobytes()

    def insert(self, key: Hashable, signature: MinHashSignature) -> None:
        """Index *signature* under *key* in every band."""
        self._count += 1
        for band in range(self.b):
            self._buckets[band].setdefault(self._band_key(signature, band), []).append(key)

    def query(self, signature: MinHashSignature, bands: int | None = None) -> set[Hashable]:
        """Keys colliding with *signature* in any of the first *bands* bands."""
        use = self.b if bands is None else min(bands, self.b)
        result: set[Hashable] = set()
        for band in range(use):
            hits = self._buckets[band].get(self._band_key(signature, band))
            if hits:
                result.update(hits)
        return result


def minhash_accuracy_stderr(num_perm: int) -> float:
    """Standard error of the Jaccard estimate: 1 / sqrt(num_perm)."""
    return 1.0 / math.sqrt(num_perm)
