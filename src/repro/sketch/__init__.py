"""Probabilistic sketches: MinHash, banded LSH, LSH Ensemble.

These back the joinable-table discoverer
(:class:`repro.discovery.lshensemble.LSHEnsembleJoinSearch`).
"""

from .ensemble import EnsembleMatch, LSHEnsemble
from .hll import HyperLogLog
from .lsh import BandedLSHIndex, collision_probability, optimal_param
from .minhash import (
    DEFAULT_NUM_PERM,
    DEFAULT_SEED,
    MinHasher,
    MinHashSignature,
    containment_from_jaccard,
)

__all__ = [
    "MinHasher",
    "MinHashSignature",
    "containment_from_jaccard",
    "DEFAULT_NUM_PERM",
    "DEFAULT_SEED",
    "BandedLSHIndex",
    "collision_probability",
    "optimal_param",
    "LSHEnsemble",
    "EnsembleMatch",
    "HyperLogLog",
]
