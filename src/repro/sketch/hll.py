"""HyperLogLog cardinality estimation.

Lake-scale discovery wants cheap per-column distinct counts: LSH Ensemble
partitions domains by cardinality, JOSIE's cost model consumes set sizes,
and the lake profiler reports them.  At in-memory scale exact counts are
easy; HyperLogLog is here for the same reason the other sketches are -- it
is the substrate a lake-scale deployment would use, built and tested.

Standard Flajolet et al. construction: ``m = 2**p`` registers, each keeping
the maximum leading-zero count of the hashed values routed to it; harmonic
mean with the usual small-range (linear counting) and bias corrections.
"""

from __future__ import annotations

import math
import struct
from typing import Hashable, Iterable

import numpy as np

from ..embeddings.hashing import stable_hash

__all__ = ["HyperLogLog"]


def _alpha(m: int) -> float:
    if m == 16:
        return 0.673
    if m == 32:
        return 0.697
    if m == 64:
        return 0.709
    return 0.7213 / (1.0 + 1.079 / m)


class HyperLogLog:
    """A HyperLogLog counter with ``2**precision`` byte registers.

    Typical relative error is ``1.04 / sqrt(2**precision)`` (~1.6% at the
    default precision 12).  Counters with equal precision can be merged
    (register-wise max), which is what makes the sketch lake-friendly:
    per-column counters union into per-table or per-lake counters for free.
    """

    __slots__ = ("precision", "_registers")

    def __init__(self, precision: int = 12):
        if not 4 <= precision <= 18:
            raise ValueError("precision must be in [4, 18]")
        self.precision = precision
        self._registers = np.zeros(1 << precision, dtype=np.uint8)

    # ------------------------------------------------------------------
    def add(self, item: Hashable) -> None:
        """Add one item (stringified and stably hashed)."""
        hashed = stable_hash(str(item), salt="hll")
        index = hashed >> (64 - self.precision)
        remainder = hashed << self.precision & ((1 << 64) - 1)
        # Leading zeros of the remaining 64-p bits, plus one.
        rank = 1
        bit = 1 << 63
        while rank <= 64 - self.precision and not remainder & bit:
            rank += 1
            remainder <<= 1
            remainder &= (1 << 64) - 1
        if rank > self._registers[index]:
            self._registers[index] = rank

    def update(self, items: Iterable[Hashable]) -> "HyperLogLog":
        """Add many items; returns self."""
        for item in items:
            self.add(item)
        return self

    # ------------------------------------------------------------------
    def cardinality(self) -> float:
        """The current distinct-count estimate."""
        m = float(len(self._registers))
        registers = self._registers.astype(np.float64)
        estimate = _alpha(int(m)) * m * m / np.sum(np.exp2(-registers))
        if estimate <= 2.5 * m:
            zeros = int(np.count_nonzero(self._registers == 0))
            if zeros:
                return m * math.log(m / zeros)  # linear counting
        return float(estimate)

    def __len__(self) -> int:
        return round(self.cardinality())

    @property
    def relative_error(self) -> float:
        """The sketch's expected standard error."""
        return 1.04 / math.sqrt(len(self._registers))

    # ------------------------------------------------------------------
    # Serialization (the persistent lake store's sketch snapshot format)
    # ------------------------------------------------------------------
    def to_bytes(self) -> bytes:
        """Precision byte followed by the raw register array; the encoding
        is position-exact, so equal-content columns always serialize to
        byte-identical payloads regardless of insertion order."""
        return struct.pack("<B", self.precision) + self._registers.tobytes()

    @classmethod
    def from_bytes(cls, payload: bytes) -> "HyperLogLog":
        """Inverse of :meth:`to_bytes` (byte-identical round trip)."""
        if not payload:
            raise ValueError("empty HyperLogLog payload")
        precision = struct.unpack_from("<B", payload)[0]
        registers = payload[1:]
        if len(registers) != 1 << precision:
            raise ValueError(
                f"HyperLogLog payload declares precision {precision} but "
                f"carries {len(registers)} registers"
            )
        sketch = cls(precision)
        sketch._registers = np.frombuffer(registers, dtype=np.uint8).copy()
        return sketch

    # ------------------------------------------------------------------
    def merge(self, other: "HyperLogLog") -> "HyperLogLog":
        """Union with *other* (same precision required); returns a new sketch."""
        if other.precision != self.precision:
            raise ValueError(
                f"cannot merge precisions {self.precision} and {other.precision}"
            )
        merged = HyperLogLog(self.precision)
        np.maximum(self._registers, other._registers, out=merged._registers)
        return merged
