"""MinHash signatures over token sets.

The estimator behind joinable-table discovery: a fixed number of universal
hash permutations, each contributing the minimum hash of the set.  Equality
fraction between two signatures is an unbiased estimate of Jaccard, and --
following LSH Ensemble (Zhu et al., VLDB 2016) -- Jaccard plus the two set
sizes converts to a *containment* estimate, the measure that actually ranks
joinability.
"""

from __future__ import annotations

import struct
from typing import Hashable, Iterable

import numpy as np

from ..embeddings.hashing import stable_hash

__all__ = [
    "MinHasher",
    "MinHashSignature",
    "containment_from_jaccard",
    "DEFAULT_NUM_PERM",
    "DEFAULT_SEED",
]

#: The library-wide default MinHash parameters.  Signatures are only
#: comparable under identical ``(num_perm, seed)``, so anything that
#: persists sketches (:mod:`repro.store`) records these in its manifest and
#: refuses to mix snapshots built under different parameters.
DEFAULT_NUM_PERM = 128
DEFAULT_SEED = 1

# The Mersenne prime 2**31 - 1.  Tokens are reduced modulo p and the
# multipliers drawn from [1, p), so products reach ~2**62 (safely inside
# uint64) while wrapping around p billions of times -- which is what makes
# (a*x + b) mod p behave like a random permutation.  A 2**31 hash range is
# ample for column domains (collisions only bias Jaccard at ~1e5+ tokens).
_MERSENNE_PRIME = np.uint64((1 << 31) - 1)
_MAX_HASH = np.uint64((1 << 31) - 2)


class MinHashSignature:
    """A signature plus the exact cardinality of the hashed set."""

    __slots__ = ("values", "size")

    def __init__(self, values: np.ndarray, size: int):
        self.values = values
        self.size = size

    def jaccard(self, other: "MinHashSignature") -> float:
        """Estimated Jaccard similarity with *other* (same hasher required)."""
        if len(self.values) != len(other.values):
            raise ValueError("signatures come from different MinHashers")
        if len(self.values) == 0:
            return 1.0
        return float(np.mean(self.values == other.values))

    def containment_in(self, other: "MinHashSignature") -> float:
        """Estimated containment of *this* set in *other*'s set."""
        return containment_from_jaccard(self.jaccard(other), self.size, other.size)

    def merge(self, other: "MinHashSignature") -> "MinHashSignature":
        """The signature of the *union* of the two underlying sets.

        Elementwise minimum -- exactly the signature the hasher would have
        produced for the union, so the operation is deterministic,
        commutative and associative across processes (both inputs must come
        from the same hasher).  The union cardinality is estimated from the
        pairwise Jaccard via inclusion-exclusion and rounded, which keeps
        the result reproducible bit-for-bit regardless of merge order.
        """
        if len(self.values) != len(other.values):
            raise ValueError("cannot merge signatures from different MinHashers")
        jaccard = self.jaccard(other)
        union_size = int(round((self.size + other.size) / (1.0 + jaccard)))
        return MinHashSignature(np.minimum(self.values, other.values), union_size)

    # ------------------------------------------------------------------
    # Serialization (the persistent lake store's sketch snapshot format)
    # ------------------------------------------------------------------
    def to_bytes(self) -> bytes:
        """A compact, endianness-fixed encoding: ``num_perm``, exact set
        size, then the permutation minima as little-endian uint64."""
        values = np.ascontiguousarray(self.values, dtype="<u8")
        return struct.pack("<IQ", len(values), self.size) + values.tobytes()

    @classmethod
    def from_bytes(cls, payload: bytes) -> "MinHashSignature":
        """Inverse of :meth:`to_bytes` (byte-identical round trip)."""
        header = struct.calcsize("<IQ")
        if len(payload) < header:
            raise ValueError("truncated MinHash signature payload")
        num_perm, size = struct.unpack_from("<IQ", payload)
        body = payload[header:]
        if len(body) != num_perm * 8:
            raise ValueError(
                f"MinHash payload declares {num_perm} permutations but carries "
                f"{len(body)} value bytes"
            )
        values = np.frombuffer(body, dtype="<u8").astype(np.uint64)
        return cls(values, size)


def containment_from_jaccard(jaccard: float, query_size: int, candidate_size: int) -> float:
    """Convert a Jaccard estimate to containment given exact set sizes.

    Derivation: with ``j = |A∩B| / |A∪B|``, ``|A∩B| = j (|A|+|B|) / (1+j)``,
    and containment of A in B is ``|A∩B| / |A|``.  Clamped to [0, 1] because
    the Jaccard input is itself an estimate.
    """
    if query_size == 0:
        return 0.0
    intersection = jaccard * (query_size + candidate_size) / (1.0 + jaccard)
    return max(0.0, min(1.0, intersection / query_size))


class MinHasher:
    """A family of ``num_perm`` universal-hash permutations with fixed seed.

    Signatures are only comparable when produced by hashers constructed with
    the same ``num_perm`` and ``seed``.
    """

    def __init__(self, num_perm: int = DEFAULT_NUM_PERM, seed: int = DEFAULT_SEED):
        if num_perm <= 0:
            raise ValueError("num_perm must be positive")
        self.num_perm = num_perm
        self.seed = seed
        rng = np.random.default_rng(seed)
        self._a = rng.integers(1, int(_MERSENNE_PRIME), size=num_perm, dtype=np.uint64)
        self._b = rng.integers(0, int(_MERSENNE_PRIME), size=num_perm, dtype=np.uint64)

    def signature(self, tokens: Iterable[Hashable]) -> MinHashSignature:
        """MinHash signature of a token set (duplicates collapse)."""
        token_set = {str(t) for t in tokens}
        if not token_set:
            return MinHashSignature(
                np.full(self.num_perm, _MAX_HASH, dtype=np.uint64), 0
            )
        raw = np.fromiter(
            (stable_hash(t, salt="minhash") for t in token_set),
            dtype=np.uint64,
            count=len(token_set),
        )
        raw %= _MERSENNE_PRIME
        hashed = (raw[:, None] * self._a[None, :] + self._b[None, :]) % _MERSENNE_PRIME
        return MinHashSignature(hashed.min(axis=0), len(token_set))
